fn main() {
    println!("aquila-suite");
}
