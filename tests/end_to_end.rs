//! Cross-crate integration tests: the full Aquila stack, the baselines,
//! and the applications, exercised together.

use std::sync::Arc;

use aquila::{Advice, AquilaRegion, AquilaRuntime, DeviceKind, Prot};
use aquila_devices::{Blobstore, StorageAccess};
use aquila_graph::{bfs, rmat_edges, CsrGraph, RmatParams, Team};
use aquila_kvstore::{AquilaEnv, DynEnv, Krill, KrillConfig, StoneConfig, StoneDb};
use aquila_sim::{CoreDebts, Cycles, DramRegion, FreeCtx, MemRegion, SimCtx};
use aquila_ycsb::workload::{value_of, KeyGen, OpKind, VALUE_SIZE};
use aquila_ycsb::{run_ops, Distribution, Workload};

fn runtime(kind: DeviceKind, frames: usize, pages: u64) -> (FreeCtx, AquilaRuntime) {
    let mut ctx = FreeCtx::new(0xE2E);
    let debts = Arc::new(CoreDebts::new(1));
    let rt = AquilaRuntime::build(&mut ctx, kind, pages, frames, 1, debts);
    rt.aquila.thread_enter(&mut ctx);
    (ctx, rt)
}

#[test]
fn data_survives_an_aquila_restart() {
    // Write through mmio, sync, tear the engine down, boot a fresh engine
    // over the same device, and read the data back — end-to-end
    // durability through blobstore metadata and the mmio path.
    let mut ctx = FreeCtx::new(1);
    let debts = Arc::new(CoreDebts::new(1));
    let rt = AquilaRuntime::build(&mut ctx, DeviceKind::NvmeSpdk, 32768, 512, 1, debts.clone());
    let f = rt.open("/persist/data", 128).unwrap();
    let addr = rt.aquila.mmap(&mut ctx, f, 0, 128, Prot::RW).unwrap();
    rt.aquila
        .write(&mut ctx, addr.add(12345), b"survives reboot")
        .unwrap();
    rt.aquila.msync(&mut ctx, addr, 128).unwrap();
    rt.store.sync_md(&mut ctx).unwrap();
    let access: Arc<dyn StorageAccess> = Arc::clone(&rt.access);
    drop(rt);

    // "Reboot": reload the blobstore from the same device, new engine.
    let store2 = Arc::new(Blobstore::load(&mut ctx, Arc::clone(&access)).expect("reload"));
    let cfg = aquila::AquilaConfig::builder(1, 512).build();
    let aquila2 = Arc::new(aquila::Aquila::new(cfg, debts));
    let f2 = aquila2
        .files()
        .open_blob(&store2, &access, "/persist/data", 128)
        .unwrap();
    let addr2 = aquila2.mmap(&mut ctx, f2, 0, 128, Prot::RW).unwrap();
    let mut back = [0u8; 15];
    aquila2.read(&mut ctx, addr2.add(12345), &mut back).unwrap();
    assert_eq!(&back, b"survives reboot");
}

#[test]
fn stonedb_over_aquila_serves_verified_ycsb_a() {
    let (mut ctx, rt) = runtime(DeviceKind::PmemDax, 4096, 1 << 17);
    let env: DynEnv = Arc::new(AquilaEnv::new(
        Arc::clone(&rt.aquila),
        Arc::clone(&rt.store),
        Arc::clone(&rt.access),
    ));
    let db = Arc::new(StoneDb::new(env, StoneConfig::default()));
    let records = 3000u64;
    db.bulk_load(
        &mut ctx,
        (0..records).map(|i| {
            let k = KeyGen::key_of(i);
            let v = value_of(&k, VALUE_SIZE);
            (k, v)
        }),
    );
    let db2 = Arc::clone(&db);
    let mut reads = 0u64;
    let mut hits = 0u64;
    run_ops(
        &mut ctx,
        Workload::A,
        Distribution::Zipfian,
        records,
        2000,
        7,
        |ctx, op| match op.kind {
            OpKind::Read => {
                reads += 1;
                if let Some(v) = db2.get(ctx, &op.key) {
                    assert_eq!(v, value_of(&op.key, VALUE_SIZE));
                    hits += 1;
                }
            }
            _ => db2.put(ctx, &op.key, &value_of(&op.key, VALUE_SIZE)),
        },
    );
    assert!(reads > 800);
    assert_eq!(hits, reads, "every loaded key must be found");
    assert!(ctx.stats.page_faults > 0, "reads go through mmio");
}

#[test]
fn krill_results_identical_across_backends() {
    // The same Krill workload over DRAM and over Aquila mmio must return
    // byte-identical results — only the timing differs.
    let run = |region: Arc<dyn MemRegion>, ctx: &mut FreeCtx| -> Vec<Option<Vec<u8>>> {
        let db = Krill::new(
            region,
            KrillConfig {
                l0_entries: 128,
                max_runs: 2,
                log_frac: 0.6,
            },
        );
        for i in 0..800u64 {
            let k = KeyGen::key_of(i % 500); // Overwrites.
            db.put(ctx, &k, &value_of(&k, 200)).unwrap();
        }
        (0..520u64)
            .map(|i| db.get(ctx, &KeyGen::key_of(i)))
            .collect()
    };

    let mut ctx1 = FreeCtx::new(3);
    let dram: Arc<dyn MemRegion> = Arc::new(DramRegion::new(32 << 20));
    let expect = run(dram, &mut ctx1);

    let (mut ctx2, rt) = runtime(DeviceKind::PmemDax, 1024, 16384);
    let f = rt.open("/krill", 8192).unwrap();
    let region: Arc<dyn MemRegion> =
        Arc::new(AquilaRegion::map(&mut ctx2, Arc::clone(&rt.aquila), f, 8192).unwrap());
    let got = run(region, &mut ctx2);

    assert_eq!(expect, got);
    assert!(ctx2.now() > ctx1.now(), "mmio costs more than DRAM");
    for (i, v) in expect.iter().enumerate() {
        if (i as u64) < 500 {
            assert!(v.is_some(), "key {i} must exist");
        } else {
            assert!(v.is_none(), "key {i} must not exist");
        }
    }
}

#[test]
fn bfs_identical_across_heap_backends() {
    let edges = rmat_edges(12, 16_384, RmatParams::default(), 77);
    let mut results = Vec::new();
    // DRAM heap.
    {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(16 << 20));
        let mut team = Team::new(4, 1);
        let g = CsrGraph::build(team.ctx(0), region, 4096, &edges);
        team.barrier();
        results.push(bfs(&mut team, &g, 0).visited);
    }
    // Aquila heap.
    {
        let (mut ctx, rt) = runtime(DeviceKind::PmemDax, 512, 16384);
        let f = rt.open("/bfs-heap", 4096).unwrap();
        let region = AquilaRegion::map(&mut ctx, Arc::clone(&rt.aquila), f, 4096).unwrap();
        rt.aquila
            .madvise(&mut ctx, region.base(), 4096, Advice::Random)
            .unwrap();
        let region: Arc<dyn MemRegion> = Arc::new(region);
        let mut team = Team::new(4, 1);
        let g = CsrGraph::build(team.ctx(0), region, 4096, &edges);
        team.barrier();
        results.push(bfs(&mut team, &g, 0).visited);
    }
    assert_eq!(results[0], results[1], "heap backend must not change BFS");
    assert!(results[0] > 1000, "graph is mostly reachable");
}

#[test]
fn runs_are_deterministic() {
    // Same seed -> bit-identical virtual time and counters.
    let run = || {
        let (mut ctx, rt) = runtime(DeviceKind::NvmeSpdk, 256, 8192);
        let f = rt.open("/det", 1024).unwrap();
        let addr = rt.aquila.mmap(&mut ctx, f, 0, 1024, Prot::RW).unwrap();
        for i in 0..500u64 {
            let page = (i * 2654435761) % 1024;
            rt.aquila
                .write(&mut ctx, addr.add(page * 4096), &i.to_le_bytes())
                .unwrap();
        }
        rt.aquila.sync_all(&mut ctx).unwrap();
        (ctx.now(), ctx.stats.page_faults, ctx.stats.writebacks)
    };
    assert_eq!(run(), run());
}

#[test]
fn cache_pressure_full_pipeline() {
    // Cache of 64 frames, file of 1024 pages: constant eviction with
    // writeback, then verify every page's content.
    let (mut ctx, rt) = runtime(DeviceKind::PmemDax, 64, 8192);
    let f = rt.open("/pressure", 1024).unwrap();
    let addr = rt.aquila.mmap(&mut ctx, f, 0, 1024, Prot::RW).unwrap();
    rt.aquila
        .madvise(&mut ctx, addr, 1024, Advice::Random)
        .unwrap();
    for p in 0..1024u64 {
        rt.aquila
            .write(&mut ctx, addr.add(p * 4096 + 7), &p.to_le_bytes())
            .unwrap();
    }
    assert!(ctx.stats.evictions > 500);
    for p in 0..1024u64 {
        let mut b = [0u8; 8];
        rt.aquila
            .read(&mut ctx, addr.add(p * 4096 + 7), &mut b)
            .unwrap();
        assert_eq!(u64::from_le_bytes(b), p, "page {p}");
    }
    // Latency of an access is bounded even under pressure.
    let t0 = ctx.now();
    let mut b = [0u8; 8];
    rt.aquila.read(&mut ctx, addr.add(7), &mut b).unwrap();
    assert!(ctx.now() - t0 < Cycles::from_micros(1000));
}

#[test]
fn dynamic_cache_resize_under_load() {
    let mut ctx = FreeCtx::new(9);
    let debts = Arc::new(CoreDebts::new(1));
    let cfg = aquila::AquilaConfig::builder(1, 64)
        .max_cache_frames(1024)
        .build();
    let aquila = Arc::new(aquila::Aquila::new(cfg, debts));
    // Build storage by hand.
    let rt_ctx = &mut ctx;
    let dev = Arc::new(aquila_devices::PmemDevice::dram_backed(16384));
    let access: Arc<dyn StorageAccess> = Arc::new(aquila_devices::DaxAccess::new(dev, true));
    let store = Arc::new(Blobstore::format(rt_ctx, Arc::clone(&access)).unwrap());
    let f = aquila
        .files()
        .open_blob(&store, &access, "/resize", 2048)
        .unwrap();
    let addr = aquila.mmap(&mut ctx, f, 0, 2048, Prot::RW).unwrap();

    // Measure fault count for a scan with the small cache.
    let mut b = [0u8; 8];
    for p in 0..1024u64 {
        aquila.read(&mut ctx, addr.add(p * 4096), &mut b).unwrap();
    }
    let major_small = ctx.stats.major_faults;
    assert!(ctx.stats.evictions > 0);

    // Grow the cache 8x (vmcall + EPT 1 GiB mappings) and rescan twice:
    // the second scan fits and evicts nothing new.
    assert_eq!(aquila.grow_cache(&mut ctx, 960), 960);
    for _ in 0..2 {
        for p in 0..1024u64 {
            aquila.read(&mut ctx, addr.add(p * 4096), &mut b).unwrap();
        }
    }
    let evictions_before_last = ctx.stats.evictions;
    for p in 0..1024u64 {
        aquila.read(&mut ctx, addr.add(p * 4096), &mut b).unwrap();
    }
    assert_eq!(
        ctx.stats.evictions, evictions_before_last,
        "after growth the working set fits"
    );
    assert!(
        ctx.stats.major_faults > major_small,
        "growth happened mid-run"
    );
    assert!(ctx.stats.ept_faults > 0, "growth mapped new EPT granules");
}
