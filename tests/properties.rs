//! Property-based tests over the core data structures: each structure is
//! driven with random operation sequences and checked against a simple
//! reference model or invariant.
//!
//! The random cases are generated with the workspace's own deterministic
//! [`Rng64`] (the build is fully offline, so there is no `proptest`); a
//! fixed seed per property keeps failures exactly reproducible.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use aquila_mmu::{Access, Gva, PageTable, PteFlags};
use aquila_pcache::{coalesce_runs, DirtyPage, InsertOutcome, LockFreeMap, PageKey};
use aquila_sim::{Cycles, FreeCtx, LatencyHist, Rng64};
use aquila_vma::{Prot, VmaTree};

const CASES: u64 = 64;

/// The page table agrees with a HashMap model under arbitrary
/// map/unmap/protect sequences.
#[test]
fn page_table_matches_model() {
    let mut rng = Rng64::new(0x9A6E);
    for _ in 0..CASES {
        let mut pt = PageTable::new();
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        let n = rng.range(1, 199);
        for _ in 0..n {
            let op = rng.below(4) as u8;
            let slot = rng.below(128);
            let writable = rng.chance(0.5);
            let gva = Gva(slot * 4096);
            let gpa = aquila_vmx::Gpa(0x10_0000 + slot * 4096);
            match op {
                0 => {
                    let flags = if writable { PteFlags::RW } else { PteFlags::RO };
                    pt.map(gva, gpa, flags);
                    model.insert(slot, (gpa.get(), writable));
                }
                1 => {
                    let got = pt.unmap(gva).map(|p| p.gpa.get());
                    let want = model.remove(&slot).map(|(g, _)| g);
                    assert_eq!(got, want);
                }
                2 => {
                    let flags = if writable { PteFlags::RW } else { PteFlags::RO };
                    let got = pt.protect(gva, flags).is_some();
                    if let Some(e) = model.get_mut(&slot) {
                        e.1 = writable;
                        assert!(got);
                    } else {
                        assert!(!got);
                    }
                }
                _ => {
                    let access = if writable {
                        Access::Write
                    } else {
                        Access::Read
                    };
                    let got = pt.translate(gva, access);
                    match model.get(&slot) {
                        None => assert!(got.is_err()),
                        Some(&(g, w)) => {
                            if writable && !w {
                                assert!(got.is_err());
                            } else {
                                assert_eq!(got.ok().map(|x| x.get()), Some(g));
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(pt.mapped_pages() as usize, model.len());
    }
}

/// The concurrent page map agrees with a HashMap model.
#[test]
fn lockfree_map_matches_model() {
    let mut rng = Rng64::new(0x10CF);
    for _ in 0..CASES {
        let m = LockFreeMap::new(128);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n = rng.range(1, 299);
        for _ in 0..n {
            let op = rng.below(3) as u8;
            let page = rng.below(64);
            let val = rng.below(1000);
            let key = PageKey::new(1, page);
            match op {
                0 => match m.insert(key, val) {
                    InsertOutcome::Inserted => {
                        assert!(!model.contains_key(&page));
                        model.insert(page, val);
                    }
                    InsertOutcome::AlreadyPresent(v) => {
                        assert_eq!(model.get(&page), Some(&v));
                    }
                },
                1 => {
                    assert_eq!(m.remove(key), model.remove(&page));
                }
                _ => {
                    assert_eq!(m.get(key), model.get(&page).copied());
                }
            }
        }
        assert_eq!(m.len(), model.len());
    }
}

/// VMA lookups agree with a per-page model under map/unmap/protect.
#[test]
fn vma_tree_matches_model() {
    let mut rng = Rng64::new(0x07A3);
    for _ in 0..CASES {
        let tree = VmaTree::new(0);
        let mut ctx = FreeCtx::new(1);
        let mut model: HashMap<u64, bool> = HashMap::new(); // vpn -> writable
        let n = rng.range(1, 99);
        for _ in 0..n {
            let op = rng.below(3) as u8;
            let start = rng.below(96);
            let len = rng.range(1, 15);
            let writable = rng.chance(0.5);
            match op {
                0 => {
                    let prot = if writable { Prot::RW } else { Prot::READ };
                    let free = (start..start + len).all(|v| !model.contains_key(&v));
                    let res = tree.map(&mut ctx, Some(aquila_mmu::Vpn(start)), len, 0, start, prot);
                    assert_eq!(res.is_ok(), free);
                    if free {
                        for v in start..start + len {
                            model.insert(v, writable);
                        }
                    }
                }
                1 => {
                    let removed = tree.unmap(&mut ctx, aquila_mmu::Vpn(start), len);
                    let expected = (start..start + len)
                        .filter(|v| model.remove(v).is_some())
                        .count();
                    assert_eq!(removed.len(), expected);
                }
                _ => {
                    for v in start..start + len {
                        let got = tree.lookup(&mut ctx, aquila_mmu::Vpn(v));
                        assert_eq!(got.is_some(), model.contains_key(&v));
                    }
                }
            }
        }
        assert_eq!(tree.mapped_pages() as usize, model.len());
    }
}

/// The spill-free region map is observationally equivalent to the VMA
/// radix tree: random mmap/munmap/mremap/mprotect sequences driven
/// through [`aquila_vma::AddressSpace`] produce identical placement,
/// identical map/unmap/remap results, and identical per-page lookups
/// (presence, backing file window, and effective protection).
#[test]
fn region_map_matches_vma_tree() {
    use aquila_mmu::Vpn;
    use aquila_vma::AddressSpace;

    let mut rng = Rng64::new(0x5F11);
    for _ in 0..CASES {
        let tree = AddressSpace::new(0x1000, false);
        let regions = AddressSpace::new(0x1000, true);
        let mut ctx_t = FreeCtx::new(1);
        let mut ctx_r = FreeCtx::new(1);
        // Fixed-placement ops land in this window, below the automatic
        // bump base at 0x1000 so the two placement modes never collide;
        // auto placement bumps from 0x1000 identically on both sides.
        let lo = 0x100u64;
        let n = rng.range(1, 99);
        for _ in 0..n {
            let start = lo + rng.below(192);
            let len = rng.range(1, 15);
            match rng.below(5) {
                0 => {
                    // Fixed-placement map: same Ok/Overlap outcome.
                    let prot = if rng.chance(0.5) {
                        Prot::RW
                    } else {
                        Prot::READ
                    };
                    let file = rng.below(8) as u32;
                    let fpage = rng.below(1000);
                    let a = tree.map(&mut ctx_t, Some(Vpn(start)), len, file, fpage, prot);
                    let b = regions.map(&mut ctx_r, Some(Vpn(start)), len, file, fpage, prot);
                    assert_eq!(a.is_ok(), b.is_ok());
                }
                1 => {
                    // Auto placement: both structures share the bump policy.
                    let pages = if rng.chance(0.2) {
                        rng.range(512, 1024) // exercise the 2 MiB alignment
                    } else {
                        rng.range(1, 15)
                    };
                    let a = tree.map(&mut ctx_t, None, pages, 1, 0, Prot::RW).unwrap();
                    let b = regions
                        .map(&mut ctx_r, None, pages, 1, 0, Prot::RW)
                        .unwrap();
                    assert_eq!(a.start, b.start, "auto placement diverged");
                }
                2 => {
                    let mut a: Vec<u64> = tree
                        .unmap(&mut ctx_t, Vpn(start), len)
                        .iter()
                        .map(|(v, _)| v.0)
                        .collect();
                    let mut b: Vec<u64> = regions
                        .unmap(&mut ctx_r, Vpn(start), len)
                        .iter()
                        .map(|(v, _)| v.0)
                        .collect();
                    a.sort_unstable();
                    b.sort_unstable();
                    assert_eq!(a, b, "unmap removed different pages");
                }
                3 => {
                    let prot = if rng.chance(0.5) {
                        Prot::RW
                    } else {
                        Prot::READ
                    };
                    let a = tree.protect(&mut ctx_t, Vpn(start), len, prot);
                    let b = regions.protect(&mut ctx_r, Vpn(start), len, prot);
                    assert_eq!(a, b, "mprotect affected different page counts");
                }
                _ => {
                    let grow = rng.range(1, 15);
                    let a = tree.remap(&mut ctx_t, Vpn(start), len, grow);
                    let b = regions.remap(&mut ctx_r, Vpn(start), len, grow);
                    assert_eq!(a.is_ok(), b.is_ok(), "remap outcome diverged");
                    if let (Ok(a), Ok(b)) = (a, b) {
                        assert_eq!(a.start, b.start);
                        assert_eq!(a.pages, b.pages);
                    }
                }
            }
        }
        // Full observational sweep: every page of the fixed window and
        // the head of the auto-placement area resolves identically —
        // presence, file window, and effective protection.
        assert_eq!(tree.mapped_pages(), regions.mapped_pages());
        let pages: Vec<u64> = (lo..lo + 192 + 16).chain(0x1000..0x1000 + 3072).collect();
        for v in pages {
            let a = tree.lookup(&mut ctx_t, Vpn(v));
            let b = regions.lookup(&mut ctx_r, Vpn(v));
            match (a, b) {
                (None, None) => {}
                (Some((da, pa)), Some((db, pb))) => {
                    assert_eq!(da.file, db.file, "vpn {v}");
                    assert_eq!(da.file_page_of(Vpn(v)), db.file_page_of(Vpn(v)), "vpn {v}");
                    assert_eq!(pa.write, pb.write, "vpn {v}");
                    assert_eq!(pa.read, pb.read, "vpn {v}");
                }
                (a, b) => panic!("vpn {v}: tree={:?} regions={:?}", a.is_some(), b.is_some()),
            }
        }
    }
}

/// Turning on the whole scaled fault path — spill-free regions, a
/// sharded page table, and freelist steal batching — does not change
/// what the engine computes: the same random fault-heavy workload takes
/// exactly the same faults (minor and major), evicts the same number of
/// pages, and reads back the same values as the legacy tree + shared
/// page table.
#[test]
fn spill_free_fault_counts_match_tree_path() {
    use aquila::{Advice, AquilaRuntime, DeviceKind, MmioPolicy, Prot};
    use aquila_sim::CoreDebts;

    const FILE_PAGES: u64 = 512;
    const CACHE_FRAMES: usize = 128; // pressure: forces evictions
    const OPS: u64 = 1200;

    let run = |seed: u64, policy: MmioPolicy| -> (u64, u64, u64, u64, u64) {
        let mut ctx = FreeCtx::new(seed);
        let debts = Arc::new(CoreDebts::new(1));
        let rt = AquilaRuntime::build_with_policy(
            &mut ctx,
            DeviceKind::NvmeSpdk,
            FILE_PAGES + 1024,
            CACHE_FRAMES,
            1,
            debts,
            policy,
        );
        rt.aquila.thread_enter(&mut ctx);
        let f = rt.open("/prop/scale", FILE_PAGES).unwrap();
        let addr = rt
            .aquila
            .mmap(&mut ctx, f, 0, FILE_PAGES, Prot::RW)
            .unwrap();
        rt.aquila
            .madvise(&mut ctx, addr, FILE_PAGES, Advice::Random)
            .unwrap();
        let mut rng = Rng64::new(seed ^ 0x5CA1);
        let mut buf = [0u8; 8];
        let mut read_sum = 0u64;
        for _ in 0..OPS {
            let page = rng.below(FILE_PAGES);
            let off = rng.below(4096 - 8);
            if rng.chance(0.5) {
                let val = rng.next_u64();
                rt.aquila
                    .write(&mut ctx, addr.add(page * 4096 + off), &val.to_le_bytes())
                    .unwrap();
            } else {
                rt.aquila
                    .read(&mut ctx, addr.add(page * 4096 + off), &mut buf)
                    .unwrap();
                read_sum = read_sum
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(u64::from_le_bytes(buf));
            }
        }
        let c = &ctx.stats;
        (
            c.page_faults,
            c.minor_faults,
            c.major_faults,
            c.evictions,
            read_sum,
        )
    };

    for case in 0..6u64 {
        let seed = 0x5CA1E + case * 0x9E37;
        let legacy = run(seed, MmioPolicy::default());
        let scaled = run(
            seed,
            MmioPolicy {
                spill_regions: true,
                pt_shards: 4,
                freelist_steal_batch: 8,
                ..MmioPolicy::default()
            },
        );
        assert_eq!(legacy, scaled, "fault behavior diverged (case {case})");
        // Shard count 1 is the degenerate sharded configuration: one
        // modeled shard must behave exactly like the legacy shared
        // table (and a zero steal batch like the legacy freelist).
        let degenerate = run(
            seed,
            MmioPolicy {
                spill_regions: true,
                pt_shards: 1,
                freelist_steal_batch: 0,
                ..MmioPolicy::default()
            },
        );
        assert_eq!(
            legacy, degenerate,
            "single-shard config diverged from legacy (case {case})"
        );
    }
}

/// Coalesced writeback runs preserve exactly the input pages, in
/// order, and every run is contiguous within one file.
#[test]
fn coalesce_runs_partition_invariants() {
    let mut rng = Rng64::new(0xC0A1);
    for _ in 0..CASES {
        let mut pages: BTreeSet<(u32, u64)> = BTreeSet::new();
        let n = rng.below(80);
        for _ in 0..n {
            pages.insert((rng.below(4) as u32, rng.below(200)));
        }
        let input: Vec<DirtyPage> = pages
            .iter()
            .map(|&(f, p)| DirtyPage {
                key: PageKey::new(f, p),
                frame: aquila_mmu::FrameId(0),
            })
            .collect();
        let runs = coalesce_runs(&input);
        let flat: Vec<(u32, u64)> = runs
            .iter()
            .flatten()
            .map(|d| (d.key.file, d.key.page))
            .collect();
        let expect: Vec<(u32, u64)> = pages.iter().copied().collect();
        assert_eq!(flat, expect);
        for run in &runs {
            for w in run.windows(2) {
                assert_eq!(w[0].key.file, w[1].key.file);
                assert_eq!(w[0].key.page + 1, w[1].key.page);
            }
        }
    }
}

/// Histogram quantiles are monotone and bounded by min/max, and the
/// mean is exact.
#[test]
fn histogram_invariants() {
    let mut rng = Rng64::new(0x4157);
    for _ in 0..CASES {
        let n = rng.range(1, 499);
        let values: Vec<u64> = (0..n).map(|_| rng.range(1, 999_999_999)).collect();
        let mut h = LatencyHist::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(Cycles(v));
            sum += v as u128;
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.mean().get(), (sum / values.len() as u128) as u64);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let mut prev = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0).get();
            assert!(q >= prev);
            assert!(q >= lo && q <= hi);
            prev = q;
        }
    }
}

/// Exact quantile over a sorted vector: the value at rank
/// `max(1, ceil(q * n))`, matching `LatencyHist::quantile`'s rank rule.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// `LatencyHist::quantile` stays within the documented ~1.5% relative
/// error (1/64, one linear sub-bucket) of the exact sorted-vector
/// quantile — across magnitudes, including values placed exactly on
/// bucket boundaries.
#[test]
fn histogram_quantile_matches_exact_within_bound() {
    const BOUND: f64 = 1.0 / 64.0; // one sub-bucket of relative error
    let mut rng = Rng64::new(0x0E51);
    for case in 0..CASES {
        let n = rng.range(1, 800);
        let mut values: Vec<u64> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let v = match case % 4 {
                // Small exact range (group 0 buckets are exact).
                0 => rng.below(64),
                // Wide uniform range.
                1 => rng.range(1, 10_000_000),
                // Log-uniform across magnitudes.
                2 => {
                    let bits = rng.range(1, 40);
                    rng.below(1u64 << bits)
                }
                // Exact bucket boundaries: (64 + sub) << (group - 1).
                _ => {
                    let group = rng.range(1, 20);
                    let sub = rng.below(64);
                    (64 + sub) << (group - 1)
                }
            };
            values.push(v);
        }
        let mut h = LatencyHist::new();
        for &v in &values {
            h.record(Cycles(v));
        }
        values.sort_unstable();
        for &q in &[0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&values, q);
            let got = h.quantile(q).get();
            if exact == 0 {
                assert_eq!(got, 0, "q={q} exact=0 got={got}");
            } else {
                let err = (got as f64 - exact as f64).abs() / exact as f64;
                assert!(
                    err <= BOUND,
                    "case={case} q={q} exact={exact} got={got} err={err}"
                );
            }
        }
    }
}

/// The empty histogram reports zero for every statistic.
#[test]
fn histogram_empty_is_all_zero() {
    let h = LatencyHist::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean(), Cycles::ZERO);
    assert_eq!(h.min(), Cycles::ZERO);
    assert_eq!(h.max(), Cycles::ZERO);
    for &q in &[0.0, 0.5, 0.999, 1.0] {
        assert_eq!(h.quantile(q), Cycles::ZERO);
    }
}

/// Blobstore allocation never double-assigns clusters across blobs.
#[test]
fn blobstore_clusters_disjoint() {
    let mut rng = Rng64::new(0xB10B);
    for _ in 0..8 {
        let mut ctx = FreeCtx::new(1);
        let dev = Arc::new(aquila_devices::NvmeDevice::optane(16384));
        let access: Arc<dyn aquila_devices::StorageAccess> =
            Arc::new(aquila_devices::SpdkAccess::new(dev));
        let bs = aquila_devices::Blobstore::format(&mut ctx, access).unwrap();
        let mut blobs = Vec::new();
        let count = rng.range(1, 9);
        for _ in 0..count {
            let s = rng.range(1, 4);
            let b = bs.create();
            if bs.resize(b, s).is_ok() {
                blobs.push((b, s));
            }
        }
        // Every (blob, page) maps to a unique device page.
        let mut seen = std::collections::HashSet::new();
        for &(b, s) in &blobs {
            for page in 0..s * aquila_devices::PAGES_PER_CLUSTER {
                let lba = bs.lba_page(b, page).unwrap();
                assert!(seen.insert(lba), "device page {lba} double-mapped");
            }
        }
    }
}

/// Zipfian sampling stays in range and is reproducible.
#[test]
fn zipfian_range_and_determinism() {
    let mut rng = Rng64::new(0x21FF);
    for _ in 0..CASES {
        let n = rng.range(1, 9_999);
        let seed = rng.next_u64();
        let z = aquila_sim::Zipfian::new(n, 0.99);
        let mut a = Rng64::new(seed);
        let mut b = Rng64::new(seed);
        for _ in 0..50 {
            let x = z.sample(&mut a);
            let y = z.sample(&mut b);
            assert!(x < n);
            assert_eq!(x, y);
        }
    }
}

/// The asynchronous write-behind pipeline is invisible to durability:
/// a random store workload run under the evictor pipeline leaves the
/// device (`PageStore`) byte-identical to the same workload evicting
/// synchronously on the faulting vcore.
#[test]
fn async_pipeline_matches_sync_device_contents() {
    for case in 0..6u64 {
        let seed = 0xA51C + case * 0x9E37;
        let sync_img = write_behind_device_image(seed, false);
        let async_img = write_behind_device_image(seed, true);
        assert_eq!(sync_img.len(), async_img.len());
        assert!(
            sync_img == async_img,
            "device contents diverged (case {case})"
        );
    }
}

/// Transparent 2 MiB promotion is invisible to correctness: the same
/// random mmap/read/write/msync workload produces byte-identical device
/// images, identical final page contents, and identical in-flight read
/// values with `huge_pages` on and off.
///
/// The workload holds its one `sync_all` until the end: promoted-mode
/// `sync_all` splinters every run (write tracking restarts at 4 KiB),
/// while 4 KiB mode leaves RW PTEs in place, so mid-workload full syncs
/// are the one operation whose *tracking* side effects legitimately
/// differ. Mid-workload durability uses `msync` ranges, which downgrade
/// (4 KiB) or demote (2 MiB) equivalently.
#[test]
fn huge_page_promotion_matches_4k_results() {
    for case in 0..4u64 {
        let seed = 0x2417 + case * 0x9E37;
        let (img4k, mem4k, rd4k) = huge_equivalence_run(seed, false);
        let (img2m, mem2m, rd2m) = huge_equivalence_run(seed, true);
        assert_eq!(rd4k, rd2m, "in-flight read values diverged (case {case})");
        assert!(mem4k == mem2m, "final page contents diverged (case {case})");
        assert!(img4k == img2m, "device image diverged (case {case})");
    }
}

/// Runs the promotion-equivalence workload and returns (device image,
/// 64-byte prefix of every file page read back through the fault path,
/// FNV fold of every value read during the workload).
fn huge_equivalence_run(seed: u64, huge: bool) -> (Vec<u8>, Vec<u8>, u64) {
    use aquila::{Advice, AquilaRuntime, DeviceKind, MmioPolicy, Prot};
    use aquila_sim::CoreDebts;

    const FILE_PAGES: u64 = 1536; // three 2 MiB runs
    const DEVICE_PAGES: u64 = 4096;
    const CACHE_FRAMES: usize = 1024; // eviction pressure + 1 slab run
    const OPS: u64 = 1500;

    let policy = if huge {
        MmioPolicy {
            huge_pages: true,
            promote_threshold: 128,
            ..MmioPolicy::default()
        }
    } else {
        MmioPolicy::default()
    };
    let mut ctx = FreeCtx::new(seed);
    let debts = Arc::new(CoreDebts::new(1));
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::NvmeSpdk,
        DEVICE_PAGES,
        CACHE_FRAMES,
        1,
        debts,
        policy,
    );
    rt.aquila.thread_enter(&mut ctx);
    let f = rt.open("/prop/huge", FILE_PAGES).unwrap();
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, FILE_PAGES, Prot::RW)
        .unwrap();
    rt.aquila
        .madvise(&mut ctx, addr, FILE_PAGES, Advice::Random)
        .unwrap();

    // Sequential warm touch: crosses each run's promotion threshold
    // (with holes device-filled, since only the first 128 pages of a run
    // are resident at the crossing).
    let mut buf = [0u8; 8];
    for p in 0..FILE_PAGES {
        rt.aquila
            .read(&mut ctx, addr.add(p * 4096), &mut buf)
            .unwrap();
    }
    if huge {
        assert!(
            rt.aquila.promoted_runs() > 0,
            "the workload must actually exercise promotion"
        );
    }

    let mut rng = Rng64::new(seed ^ 0x2417);
    let mut read_sum = 0u64;
    for _ in 0..OPS {
        let page = rng.below(FILE_PAGES);
        let off = rng.below(4096 - 8);
        match rng.below(8) {
            0..=4 => {
                let val = rng.next_u64();
                rt.aquila
                    .write(&mut ctx, addr.add(page * 4096 + off), &val.to_le_bytes())
                    .unwrap();
            }
            5 | 6 => {
                rt.aquila
                    .read(&mut ctx, addr.add(page * 4096 + off), &mut buf)
                    .unwrap();
                read_sum = read_sum
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(u64::from_le_bytes(buf));
            }
            _ => {
                // Durability point on a random sub-range: downgrades the
                // 4 KiB PTEs, demotes any promoted run it overlaps.
                let base = rng.below(FILE_PAGES - 1);
                let len = rng.range(1, (FILE_PAGES - base).min(700));
                rt.aquila
                    .msync(&mut ctx, addr.add(base * 4096), len)
                    .unwrap();
            }
        }
    }
    rt.aquila.sync_all(&mut ctx).unwrap();

    // Final page contents, read back through the fault path.
    let mut mem = vec![0u8; (FILE_PAGES * 64) as usize];
    for p in 0..FILE_PAGES {
        rt.aquila
            .read(
                &mut ctx,
                addr.add(p * 4096),
                &mut mem[(p * 64) as usize..((p + 1) * 64) as usize],
            )
            .unwrap();
    }
    // And the raw device image underneath.
    let mut img = vec![0u8; (DEVICE_PAGES * 4096) as usize];
    for chunk in 0..DEVICE_PAGES / 64 {
        let base = chunk * 64;
        rt.access
            .read_pages(
                &mut ctx,
                base,
                &mut img[(base * 4096) as usize..((base + 64) * 4096) as usize],
            )
            .unwrap();
    }
    (img, mem, read_sum)
}

/// Runs a random store workload (writes, interleaved msyncs, final
/// sync_all) over an NVMe-backed Aquila stack and returns the full
/// device contents.
fn write_behind_device_image(seed: u64, pipeline: bool) -> Vec<u8> {
    use aquila::{Advice, AquilaRuntime, DeviceKind, MmioPolicy, Prot, WritePolicy};
    use aquila_sim::{Engine, Step};
    use std::sync::atomic::{AtomicBool, Ordering};

    const FILE_PAGES: u64 = 384;
    const DEVICE_PAGES: u64 = 4096;
    const CACHE_FRAMES: usize = 64;
    const OPS: u64 = 600;

    let policy = if pipeline {
        MmioPolicy {
            low_watermark: 8,
            high_watermark: 24,
            evictor_cores: vec![1],
            write_policy: WritePolicy::Async,
            queue_depth: 8,
            evict_batch: 16,
            ..MmioPolicy::default()
        }
    } else {
        MmioPolicy {
            evict_batch: 16,
            ..MmioPolicy::default()
        }
    };
    let cores = if pipeline { 2 } else { 1 };
    let mut engine = Engine::new(cores, seed);
    let mut ctx = FreeCtx::new(seed);
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::NvmeSpdk,
        DEVICE_PAGES,
        CACHE_FRAMES,
        cores,
        engine.debts(),
        policy,
    );
    let f = rt.open("/prop/wb", FILE_PAGES).unwrap();
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, FILE_PAGES, Prot::RW)
        .unwrap();
    rt.aquila
        .madvise(&mut ctx, addr, FILE_PAGES, Advice::Random)
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    {
        let aquila = Arc::clone(&rt.aquila);
        let stop = Arc::clone(&stop);
        // The op sequence comes from its own generator so both runs see
        // identical stores regardless of engine interleaving.
        let mut rng = Rng64::new(seed ^ 0x57E9);
        let mut done = 0u64;
        engine.spawn(
            0,
            Box::new(move |ctx| {
                let page = rng.below(FILE_PAGES);
                let off = rng.below(4096 - 8);
                let val = rng.next_u64();
                aquila
                    .write(ctx, addr.add(page * 4096 + off), &val.to_le_bytes())
                    .unwrap();
                if done % 97 == 96 {
                    let base = rng.below(FILE_PAGES / 2);
                    let len = rng.range(1, FILE_PAGES / 2);
                    aquila.msync(ctx, addr.add(base * 4096), len).unwrap();
                }
                done += 1;
                if done >= OPS {
                    aquila.sync_all(ctx).unwrap();
                    stop.store(true, Ordering::Release);
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    if pipeline {
        engine.spawn(
            1,
            rt.aquila.evictor(Arc::clone(&stop), Cycles::from_micros(2)),
        );
    }
    engine.run();

    // Read the whole device back through the access path.
    let mut img = vec![0u8; (DEVICE_PAGES * 4096) as usize];
    for chunk in 0..DEVICE_PAGES / 64 {
        let base = chunk * 64;
        rt.access
            .read_pages(
                &mut ctx,
                base,
                &mut img[(base * 4096) as usize..((base + 64) * 4096) as usize],
            )
            .unwrap();
    }
    img
}
