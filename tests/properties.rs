//! Property-based tests over the core data structures: each structure is
//! driven with random operation sequences and checked against a simple
//! reference model or invariant.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use aquila_mmu::{Access, Gva, PageTable, PteFlags};
use aquila_pcache::{coalesce_runs, DirtyPage, InsertOutcome, LockFreeMap, PageKey};
use aquila_sim::{Cycles, FreeCtx, LatencyHist};
use aquila_vma::{Prot, VmaTree};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The page table agrees with a HashMap model under arbitrary
    /// map/unmap/protect sequences.
    #[test]
    fn page_table_matches_model(ops in prop::collection::vec((0u8..4, 0u64..128, any::<bool>()), 1..200)) {
        let mut pt = PageTable::new();
        let mut model: HashMap<u64, (u64, bool)> = HashMap::new();
        for (op, slot, writable) in ops {
            let gva = Gva(slot * 4096);
            let gpa = aquila_vmx::Gpa(0x10_0000 + slot * 4096);
            match op {
                0 => {
                    let flags = if writable { PteFlags::RW } else { PteFlags::RO };
                    pt.map(gva, gpa, flags);
                    model.insert(slot, (gpa.get(), writable));
                }
                1 => {
                    let got = pt.unmap(gva).map(|p| p.gpa.get());
                    let want = model.remove(&slot).map(|(g, _)| g);
                    prop_assert_eq!(got, want);
                }
                2 => {
                    let flags = if writable { PteFlags::RW } else { PteFlags::RO };
                    let got = pt.protect(gva, flags).is_some();
                    if let Some(e) = model.get_mut(&slot) {
                        e.1 = writable;
                        prop_assert!(got);
                    } else {
                        prop_assert!(!got);
                    }
                }
                _ => {
                    let access = if writable { Access::Write } else { Access::Read };
                    let got = pt.translate(gva, access);
                    match model.get(&slot) {
                        None => prop_assert!(got.is_err()),
                        Some(&(g, w)) => {
                            if writable && !w {
                                prop_assert!(got.is_err());
                            } else {
                                prop_assert_eq!(got.ok().map(|x| x.get()), Some(g));
                            }
                        }
                    }
                }
            }
        }
        prop_assert_eq!(pt.mapped_pages() as usize, model.len());
    }

    /// The concurrent page map agrees with a HashMap model.
    #[test]
    fn lockfree_map_matches_model(ops in prop::collection::vec((0u8..3, 0u64..64, 0u64..1000), 1..300)) {
        let m = LockFreeMap::new(128);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (op, page, val) in ops {
            let key = PageKey::new(1, page);
            match op {
                0 => match m.insert(key, val) {
                    InsertOutcome::Inserted => {
                        prop_assert!(!model.contains_key(&page));
                        model.insert(page, val);
                    }
                    InsertOutcome::AlreadyPresent(v) => {
                        prop_assert_eq!(model.get(&page), Some(&v));
                    }
                },
                1 => {
                    prop_assert_eq!(m.remove(key), model.remove(&page));
                }
                _ => {
                    prop_assert_eq!(m.get(key), model.get(&page).copied());
                }
            }
        }
        prop_assert_eq!(m.len(), model.len());
    }

    /// VMA lookups agree with a per-page model under map/unmap/protect.
    #[test]
    fn vma_tree_matches_model(ops in prop::collection::vec((0u8..3, 0u64..96, 1u64..16, any::<bool>()), 1..100)) {
        let tree = VmaTree::new(0);
        let mut ctx = FreeCtx::new(1);
        let mut model: HashMap<u64, bool> = HashMap::new(); // vpn -> writable
        for (op, start, len, writable) in ops {
            match op {
                0 => {
                    let prot = if writable { Prot::RW } else { Prot::READ };
                    let free = (start..start + len).all(|v| !model.contains_key(&v));
                    let res = tree.map(&mut ctx, Some(aquila_mmu::Vpn(start)), len, 0, start, prot);
                    prop_assert_eq!(res.is_ok(), free);
                    if free {
                        for v in start..start + len {
                            model.insert(v, writable);
                        }
                    }
                }
                1 => {
                    let removed = tree.unmap(&mut ctx, aquila_mmu::Vpn(start), len);
                    let expected = (start..start + len).filter(|v| model.remove(v).is_some()).count();
                    prop_assert_eq!(removed.len(), expected);
                }
                _ => {
                    for v in start..start + len {
                        let got = tree.lookup(&mut ctx, aquila_mmu::Vpn(v));
                        prop_assert_eq!(got.is_some(), model.contains_key(&v));
                    }
                }
            }
        }
        prop_assert_eq!(tree.mapped_pages() as usize, model.len());
    }

    /// Coalesced writeback runs preserve exactly the input pages, in
    /// order, and every run is contiguous within one file.
    #[test]
    fn coalesce_runs_partition_invariants(pages in prop::collection::btree_set((0u32..4, 0u64..200), 0..80)) {
        let input: Vec<DirtyPage> = pages
            .iter()
            .map(|&(f, p)| DirtyPage {
                key: PageKey::new(f, p),
                frame: aquila_mmu::FrameId(0),
            })
            .collect();
        let runs = coalesce_runs(&input);
        let flat: Vec<(u32, u64)> = runs
            .iter()
            .flatten()
            .map(|d| (d.key.file, d.key.page))
            .collect();
        let expect: Vec<(u32, u64)> = pages.iter().copied().collect();
        prop_assert_eq!(flat, expect);
        for run in &runs {
            for w in run.windows(2) {
                prop_assert_eq!(w[0].key.file, w[1].key.file);
                prop_assert_eq!(w[0].key.page + 1, w[1].key.page);
            }
        }
    }

    /// Histogram quantiles are monotone and bounded by min/max, and the
    /// mean is exact.
    #[test]
    fn histogram_invariants(values in prop::collection::vec(1u64..1_000_000_000, 1..500)) {
        let mut h = LatencyHist::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(Cycles(v));
            sum += v as u128;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.mean().get(), (sum / values.len() as u128) as u64);
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let mut prev = 0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0).get();
            prop_assert!(q >= prev);
            prop_assert!(q >= lo && q <= hi);
            prev = q;
        }
        // Bounded relative error at the median for single-value input.
        if values.iter().all(|&v| v == values[0]) {
            let err = (h.quantile(0.5).get() as f64 - values[0] as f64).abs() / values[0] as f64;
            prop_assert!(err < 0.02, "relative error {err}");
        }
    }

    /// Blobstore allocation never double-assigns clusters across blobs.
    #[test]
    fn blobstore_clusters_disjoint(sizes in prop::collection::vec(1u64..5, 1..10)) {
        let mut ctx = FreeCtx::new(1);
        let dev = Arc::new(aquila_devices::NvmeDevice::optane(16384));
        let access: Arc<dyn aquila_devices::StorageAccess> =
            Arc::new(aquila_devices::SpdkAccess::new(dev));
        let bs = aquila_devices::Blobstore::format(&mut ctx, access);
        let mut blobs = Vec::new();
        for &s in &sizes {
            let b = bs.create();
            if bs.resize(b, s).is_ok() {
                blobs.push((b, s));
            }
        }
        // Every (blob, page) maps to a unique device page.
        let mut seen = std::collections::HashSet::new();
        for &(b, s) in &blobs {
            for page in 0..s * aquila_devices::PAGES_PER_CLUSTER {
                let lba = bs.lba_page(b, page).unwrap();
                prop_assert!(seen.insert(lba), "device page {lba} double-mapped");
            }
        }
    }

    /// Zipfian sampling stays in range and is reproducible.
    #[test]
    fn zipfian_range_and_determinism(n in 1u64..10_000, seed in any::<u64>()) {
        let z = aquila_sim::Zipfian::new(n, 0.99);
        let mut a = aquila_sim::Rng64::new(seed);
        let mut b = aquila_sim::Rng64::new(seed);
        for _ in 0..50 {
            let x = z.sample(&mut a);
            let y = z.sample(&mut b);
            prop_assert!(x < n);
            prop_assert_eq!(x, y);
        }
    }
}
