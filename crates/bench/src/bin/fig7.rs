fn main() {
    aquila_bench::cli::main_for("fig7");
}
