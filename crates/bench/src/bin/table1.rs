//! Table 1: the standard YCSB workloads.

use aquila_ycsb::Workload;

fn main() {
    println!("Table 1. Standard YCSB Workloads.");
    println!();
    println!("  {:<4} {}", "", "Workload");
    for w in Workload::ALL {
        println!("  {:<4} {}", w.label(), w.description());
    }
    println!();
    println!(
        "Key size {} B, value size {} B, scan length {} (paper section 5/6.1).",
        aquila_ycsb::workload::KEY_SIZE,
        aquila_ycsb::workload::VALUE_SIZE,
        aquila_ycsb::workload::SCAN_LEN
    );
}
