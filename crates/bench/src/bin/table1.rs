fn main() {
    aquila_bench::cli::main_for("table1");
}
