//! `aquila-prof` — offline analysis of trace and report artifacts.
//!
//! Modes:
//!
//! - `aquila-prof flame <trace.json> [--out <folded.txt>]`
//!   Reconstructs causal spans from a Chrome trace export and prints a
//!   per-stage self/total cycle table; the folded flamegraph lines
//!   (`stack self_cycles`) go to `--out` or stdout.
//!
//! - `aquila-prof check <current.json> --baseline <golden.json>
//!    [--tolerance 0.10] [--quantiles p99_cycles,p999_cycles]`
//!   Diffs two schema-v3 reports' latency arrays; exits 4 when any
//!   selected percentile exceeds the baseline by more than the
//!   tolerance (or a baseline histogram disappeared).
//!
//! - `aquila-prof get <report.json> <scalar> [--ge <x>] [--le <x>]`
//!   Prints a named scalar from a report's `scalars` object (the one
//!   shared extraction path — verify.sh uses this instead of awk);
//!   exits 1 when a bound fails, 3 when the scalar is missing.
//!
//! Exit codes: 0 ok, 1 bound failed, 2 usage/parse error, 3 missing
//! data, 4 latency regression.

use std::process::ExitCode;

use aquila_bench::json::Json;
use aquila_bench::prof;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("flame") => cmd_flame(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("get") => cmd_get(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            Ok(ExitCode::from(if args.is_empty() { 2 } else { 0 }))
        }
        Some(other) => Err(format!("unknown mode '{other}'")),
    };
    code.unwrap_or_else(|e| {
        eprintln!("aquila-prof: {e}");
        eprint!("{USAGE}");
        ExitCode::from(2)
    })
}

const USAGE: &str = "\
usage: aquila-prof flame <trace.json> [--out <folded.txt>]
       aquila-prof check <current.json> --baseline <golden.json> \
[--tolerance <frac>] [--quantiles <f1,f2,..>]
       aquila-prof get <report.json> <scalar> [--ge <x>] [--le <x>]
";

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Pulls `--flag value` out of an argument list, leaving positionals.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn cmd_flame(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let out_path = take_flag(&mut args, "--out")?;
    let [trace_path] = args.as_slice() else {
        return Err("flame takes exactly one trace file".into());
    };
    let doc = load(trace_path)?;
    let spans = prof::parse_trace(&doc)?;
    let profile = prof::fold(&spans);
    print!("{}", prof::stage_table(&profile));
    let folded = profile.folded_text();
    match out_path {
        Some(p) => {
            std::fs::write(&p, &folded).map_err(|e| format!("write {p}: {e}"))?;
            println!("folded stacks ({} lines) -> {p}", profile.folded.len());
        }
        None => print!("{folded}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let baseline_path =
        take_flag(&mut args, "--baseline")?.ok_or("check requires --baseline <golden.json>")?;
    let tolerance: f64 = take_flag(&mut args, "--tolerance")?
        .map(|t| t.parse().map_err(|_| format!("bad tolerance '{t}'")))
        .transpose()?
        .unwrap_or(0.10);
    let quantiles = take_flag(&mut args, "--quantiles")?
        .unwrap_or_else(|| "p99_cycles,p999_cycles".to_string());
    let quantiles: Vec<&str> = quantiles.split(',').filter(|q| !q.is_empty()).collect();
    let [current_path] = args.as_slice() else {
        return Err("check takes exactly one current report".into());
    };
    let current = load(current_path)?;
    let baseline = load(&baseline_path)?;
    let regressions = prof::diff_latency(&current, &baseline, &quantiles, tolerance)?;
    if regressions.is_empty() {
        println!(
            "ok: no latency regression vs {baseline_path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
        return Ok(ExitCode::SUCCESS);
    }
    for r in &regressions {
        if r.quantile == "missing" {
            println!(
                "REGRESSION {}: histogram missing from current report",
                r.name
            );
        } else {
            println!(
                "REGRESSION {} {}: {} -> {} cycles ({:.2}x, limit +{:.0}%)",
                r.name,
                r.quantile,
                r.baseline,
                r.current,
                r.ratio(),
                tolerance * 100.0
            );
        }
    }
    Ok(ExitCode::from(4))
}

fn cmd_get(rest: &[String]) -> Result<ExitCode, String> {
    let mut args = rest.to_vec();
    let ge: Option<f64> = take_flag(&mut args, "--ge")?
        .map(|v| v.parse().map_err(|_| format!("bad --ge '{v}'")))
        .transpose()?;
    let le: Option<f64> = take_flag(&mut args, "--le")?
        .map(|v| v.parse().map_err(|_| format!("bad --le '{v}'")))
        .transpose()?;
    let [report_path, name] = args.as_slice() else {
        return Err("get takes <report.json> <scalar>".into());
    };
    let report = load(report_path)?;
    let Some(value) = report.report_scalar(name) else {
        eprintln!("aquila-prof: scalar '{name}' not in {report_path}");
        return Ok(ExitCode::from(3));
    };
    println!("{value}");
    // NaN fails every bound: a report whose scalar didn't compute must
    // not pass a gate.
    if let Some(min) = ge {
        if value < min || value.is_nan() {
            eprintln!("aquila-prof: {name} = {value} violates --ge {min}");
            return Ok(ExitCode::from(1));
        }
    }
    if let Some(max) = le {
        if value > max || value.is_nan() {
            eprintln!("aquila-prof: {name} = {value} violates --le {max}");
            return Ok(ExitCode::from(1));
        }
    }
    Ok(ExitCode::SUCCESS)
}
