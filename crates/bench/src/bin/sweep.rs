//! Write-behind sweep (beyond the paper's numbered figures): synchronous
//! eviction on the faulting vcore vs the asynchronous evictor pipeline,
//! swept over NVMe queue depth and watermark placement.
//!
//! Four worker vcores issue random 64-bit stores over an NVMe-backed
//! mapping 8x the DRAM cache, so every round of progress needs eviction
//! with dirty writeback. Under `sync` the faulting worker runs the whole
//! round — detach, shootdown, blocking one-command-at-a-time writeback —
//! inline. Under `async` a dedicated evictor vcore watches the freelist
//! watermarks and retires victims through a real NVMe queue pair at the
//! configured depth; workers just pop clean frames. The figure of merit
//! is the mean fault-path cycles observed by the workers: the cycles an
//! op spends whenever it takes a page fault, which is where the paper
//! says write-behind overlap buys its latency hiding.
//!
//! Parts: `qd` sweeps sync vs async x queue depth {1,2,4,8}; `watermark`
//! sweeps the low/high watermark pair at fixed depth 4.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use aquila::{Advice, AquilaRuntime, DeviceKind, MmioPolicy, Prot, WritePolicy};
use aquila_bench::report::{banner, JsonReport};
use aquila_bench::{BenchArgs, Runner};
use aquila_sim::{Cycles, Engine, SimCtx, Step};

const WORKERS: usize = 4;
const FILE_PAGES: u64 = 8192;
const CACHE_FRAMES: usize = 1024;

struct Cell {
    label: String,
    mean_fault_cycles: f64,
    faults: u64,
    makespan: Cycles,
    writebacks: u64,
}

/// Runs one sweep cell: four workers (plus any configured evictor cores)
/// over a fresh NVMe-backed stack under `policy`.
fn run_cell(label: &str, policy: MmioPolicy, ops_per_thread: u64) -> Cell {
    let cores = WORKERS + policy.evictor_cores.len();
    let evictor_cores = policy.evictor_cores.clone();
    let mut engine = Engine::new(cores, 0x5EE9);
    let mut ctx = aquila_sim::FreeCtx::new(0x5EE9);
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::NvmeSpdk,
        FILE_PAGES + 4096,
        CACHE_FRAMES,
        cores,
        engine.debts(),
        policy,
    );
    let f = rt.open("/sweep", FILE_PAGES).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, FILE_PAGES, Prot::RW)
        .expect("mmap");
    rt.aquila
        .madvise(&mut ctx, addr, FILE_PAGES, Advice::Random)
        .expect("madvise");

    let stop = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicUsize::new(WORKERS));
    // Per-worker (fault-path cycles, faulting ops).
    let tallies: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(vec![(0, 0); WORKERS]));
    let chunk = FILE_PAGES / WORKERS as u64;
    for t in 0..WORKERS {
        let aquila = Arc::clone(&rt.aquila);
        let tallies = Rc::clone(&tallies);
        let stop = Arc::clone(&stop);
        let live = Arc::clone(&live);
        let lo = t as u64 * chunk;
        let mut done = 0u64;
        engine.spawn(
            t,
            Box::new(move |ctx| {
                // Disjoint per-worker slices: no page is ever hot in two
                // workers, so fault counts do not depend on interleaving.
                let page = lo + ctx.rng().below(chunk);
                let pf0 = ctx.counters().page_faults;
                let t0 = ctx.now();
                aquila
                    .write(ctx, addr.add(page * 4096 + 16), &page.to_le_bytes())
                    .expect("store");
                if ctx.counters().page_faults > pf0 {
                    let mut tl = tallies.borrow_mut();
                    tl[t].0 += (ctx.now() - t0).get();
                    tl[t].1 += 1;
                }
                done += 1;
                if done >= ops_per_thread {
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        stop.store(true, Ordering::Release);
                    }
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    for &core in &evictor_cores {
        engine.spawn(
            core,
            rt.aquila.evictor(Arc::clone(&stop), Cycles::from_micros(2)),
        );
    }
    let report = engine.run();
    let (cycles, faults) = tallies
        .borrow()
        .iter()
        .fold((0u64, 0u64), |(c, n), &(tc, tn)| (c + tc, n + tn));
    Cell {
        label: label.to_string(),
        mean_fault_cycles: cycles as f64 / faults.max(1) as f64,
        faults,
        makespan: report.makespan,
        writebacks: report.counters.writebacks,
    }
}

fn async_policy(queue_depth: usize, low: usize, high: usize) -> MmioPolicy {
    MmioPolicy {
        low_watermark: low,
        high_watermark: high,
        evictor_cores: vec![WORKERS],
        write_policy: WritePolicy::Async,
        queue_depth,
        ..MmioPolicy::default()
    }
}

fn print_cells(cells: &[Cell], json: &mut JsonReport) {
    println!(
        "{:<16} {:>18} {:>10} {:>14} {:>12}",
        "policy", "fault-path cyc", "faults", "makespan(ms)", "writebacks"
    );
    for c in cells {
        println!(
            "{:<16} {:>18.0} {:>10} {:>14.3} {:>12}",
            c.label,
            c.mean_fault_cycles,
            c.faults,
            c.makespan.as_secs_f64() * 1e3,
            c.writebacks
        );
        json.add_scalar(format!("{}/mean_fault_cycles", c.label), c.mean_fault_cycles);
        json.add_scalar(
            format!("{}/makespan_ms", c.label),
            c.makespan.as_secs_f64() * 1e3,
        );
        json.add_scalar(format!("{}/faults", c.label), c.faults as f64);
    }
}

fn part_qd(args: &BenchArgs, json: &mut JsonReport) {
    let ops: u64 = if args.has_flag("--full") { 4000 } else { 1500 };
    banner(
        "Write-behind sweep (qd): sync eviction vs async pipeline x NVMe queue depth",
        "expected: async < sync fault-path cycles once the qpair overlaps writes (qd >= 4)",
    );
    let mut cells = vec![run_cell("sync", MmioPolicy::default(), ops)];
    for qd in [1usize, 2, 4, 8] {
        cells.push(run_cell(&format!("async-qd{qd}"), async_policy(qd, 0, 0), ops));
    }
    print_cells(&cells, json);
    let sync = cells[0].mean_fault_cycles;
    for c in &cells[1..] {
        let speedup = sync / c.mean_fault_cycles;
        println!("  -> {}: {speedup:.2}x lower fault-path cycles than sync", c.label);
        json.add_scalar(format!("{}/speedup_over_sync", c.label), speedup);
    }
}

fn part_watermark(args: &BenchArgs, json: &mut JsonReport) {
    let ops: u64 = if args.has_flag("--full") { 4000 } else { 1500 };
    banner(
        "Write-behind sweep (watermark): async pipeline, qd 4, low/high watermark placement",
        "higher watermarks wake the evictor earlier and refill deeper, trading cache hit rate for stall-free faults",
    );
    let mut cells = Vec::new();
    for (low, high) in [(64usize, 128usize), (128, 256), (256, 512)] {
        cells.push(run_cell(
            &format!("wm{low}-{high}"),
            async_policy(4, low, high),
            ops,
        ));
    }
    print_cells(&cells, json);
}

fn main() {
    Runner::new("sweep", "Sync vs async write-behind across queue depth and watermarks")
        .part("qd", "sync vs async x NVMe queue depth {1,2,4,8}", part_qd)
        .part("watermark", "async watermark placement at queue depth 4", part_watermark)
        .run(BenchArgs::parse(), "all");
}
