//! A minimal JSON value and serializer for machine-readable reports.
//!
//! The workspace builds without external crates, so this is a small
//! hand-rolled emitter: enough JSON to write schema-versioned experiment
//! records and nothing more. Keys keep insertion order (reports are
//! diffable run to run), numbers are emitted losslessly for `u64` and
//! with enough precision for `f64`, and strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (cycle counts, op counts).
    U64(u64),
    /// A float (throughput, shares). Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a key to an object (panics on non-objects: a programming bug).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .with("schema_version", Json::U64(1))
            .with("name", Json::from("fig8"))
            .with(
                "rows",
                Json::Arr(vec![Json::obj()
                    .with("kops", Json::F64(12.5))
                    .with("ok", Json::Bool(true))]),
            )
            .with("empty", Json::Arr(vec![]))
            .with("none", Json::Null);
        let s = j.render();
        assert!(s.contains("\"schema_version\": 1"));
        assert!(s.contains("\"kops\": 12.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"none\": null"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        Json::Str("a\"b\\c\nd\u{1}".into()).write(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn u64_is_lossless() {
        let mut out = String::new();
        Json::U64(u64::MAX).write(&mut out, 0);
        assert_eq!(out, format!("{}", u64::MAX));
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut out = String::new();
        Json::F64(f64::NAN).write(&mut out, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn get_finds_keys() {
        let j = Json::obj().with("a", Json::U64(1));
        assert_eq!(j.get("a"), Some(&Json::U64(1)));
        assert_eq!(j.get("b"), None);
    }
}
