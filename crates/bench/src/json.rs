//! A minimal JSON value, serializer, and parser for machine-readable
//! reports.
//!
//! The workspace builds without external crates, so this is a small
//! hand-rolled implementation: enough JSON to write schema-versioned
//! experiment records and read them back (`aquila-prof`, verify.sh
//! scalar assertions) and nothing more. Keys keep insertion order
//! (reports are diffable run to run), numbers are emitted losslessly for
//! `u64` and with enough precision for `f64`, and strings are escaped
//! per RFC 8259.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (cycle counts, op counts).
    U64(u64),
    /// A float (throughput, shares). Non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Creates an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a key to an object (panics on non-objects: a programming bug).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `/`-separated key path through nested objects
    /// (`"scalars/async-qd4/speedup_over_sync"`).
    pub fn lookup(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('/') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The value as a float, accepting both number kinds.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an unsigned integer (floats only when integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Extracts a named scalar from a schema-v3+ report's `scalars`
    /// object. This is the one place report consumers (aquila-prof,
    /// verify.sh via `aquila-prof get`, the regression baseline) resolve
    /// scalar names, replacing ad-hoc awk extraction.
    pub fn report_scalar(&self, name: &str) -> Option<f64> {
        self.get("scalars")?.get(name)?.as_f64()
    }

    /// Parses a JSON document (strict enough for our own reports and
    /// Chrome trace exports; rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest representation that round-trips.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// A parse failure with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates only appear for astral-plane
                            // chars, which our emitters never escape;
                            // map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .with("schema_version", Json::U64(1))
            .with("name", Json::from("fig8"))
            .with(
                "rows",
                Json::Arr(vec![Json::obj()
                    .with("kops", Json::F64(12.5))
                    .with("ok", Json::Bool(true))]),
            )
            .with("empty", Json::Arr(vec![]))
            .with("none", Json::Null);
        let s = j.render();
        assert!(s.contains("\"schema_version\": 1"));
        assert!(s.contains("\"kops\": 12.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.contains("\"none\": null"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn escapes_strings() {
        let mut out = String::new();
        Json::Str("a\"b\\c\nd\u{1}".into()).write(&mut out, 0);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn u64_is_lossless() {
        let mut out = String::new();
        Json::U64(u64::MAX).write(&mut out, 0);
        assert_eq!(out, format!("{}", u64::MAX));
    }

    #[test]
    fn non_finite_floats_are_null() {
        let mut out = String::new();
        Json::F64(f64::NAN).write(&mut out, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn get_finds_keys() {
        let j = Json::obj().with("a", Json::U64(1));
        assert_eq!(j.get("a"), Some(&Json::U64(1)));
        assert_eq!(j.get("b"), None);
    }

    #[test]
    fn parse_roundtrips_render() {
        let j = Json::obj()
            .with("schema_version", Json::U64(3))
            .with("name", Json::from("fig8 \"quoted\"\npath\\x"))
            .with("neg", Json::F64(-1.5))
            .with("big", Json::U64(u64::MAX))
            .with(
                "rows",
                Json::Arr(vec![
                    Json::obj()
                        .with("kops", Json::F64(12.5))
                        .with("ok", Json::Bool(true)),
                    Json::Null,
                ]),
            )
            .with("empty_arr", Json::Arr(vec![]))
            .with("empty_obj", Json::obj());
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        let j = Json::parse("\"a\\u0041\\u00e9\\t\"").unwrap();
        assert_eq!(j, Json::Str("aA\u{e9}\t".into()));
    }

    #[test]
    fn lookup_walks_paths() {
        let j = Json::obj().with(
            "scalars",
            Json::obj().with("latency", Json::obj().with("p99", Json::U64(123))),
        );
        assert_eq!(j.lookup("scalars/latency/p99"), Some(&Json::U64(123)));
        assert_eq!(j.lookup("scalars/missing"), None);
        assert_eq!(
            j.lookup("scalars/latency/p99").unwrap().as_f64(),
            Some(123.0)
        );
    }

    #[test]
    fn report_scalar_resolves_names() {
        let j = Json::obj().with(
            "scalars",
            Json::obj()
                .with("a/b", Json::F64(2.5))
                .with("c", Json::U64(7)),
        );
        assert_eq!(j.report_scalar("a/b"), Some(2.5));
        assert_eq!(j.report_scalar("c"), Some(7.0));
        assert_eq!(j.report_scalar("missing"), None);
    }
}
