//! Offline analysis for Chrome-trace exports and schema-v3+ reports
//! (the `aquila-prof` binary is a thin CLI over this module).
//!
//! Three capabilities:
//!
//! - **Span reconstruction** — parse the `b`/`e` async events written by
//!   `aquila_sim::trace::Tracer::export_chrome` back into completed
//!   spans with parent links, using the exact `ts_cycles` stamps from
//!   `args` (the `ts` microsecond field is lossy; cycles are not).
//! - **Folding** — attribute each span's *self* cycles (duration minus
//!   the part covered by its children) to its full parent-chain stack,
//!   producing `a;b;c <cycles>` folded-flamegraph lines plus a per-stage
//!   self/total table. Folding walks parent ids, not per-tid stacks, so
//!   it is robust to several virtual threads multiplexed on one core
//!   and to cross-thread causal children.
//! - **Regression diff** — compare the `latency` arrays of two schema-v3+
//!   reports quantile by quantile with a multiplicative tolerance.
//!
//! Determinism: all aggregation is over sorted keys, so identical traces
//! fold to byte-identical output.

use std::collections::BTreeMap;

use crate::json::Json;

/// A span reconstructed from a Chrome trace export.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Span name (the `&'static str` the sim path used).
    pub name: String,
    /// Unique span id (`args.span_id`).
    pub id: u64,
    /// Parent span id, 0 for roots (`args.parent_span`).
    pub parent: u64,
    /// Begin timestamp in exact cycles (`args.ts_cycles`).
    pub begin_cycles: u64,
    /// End timestamp in exact cycles; `None` while open in the trace.
    pub end_cycles: Option<u64>,
    /// Virtual core the begin was recorded on (`tid`).
    pub tid: u64,
}

impl SpanRec {
    /// Duration in cycles; `None` for spans without an end event.
    pub fn duration(&self) -> Option<u64> {
        self.end_cycles.map(|e| e.saturating_sub(self.begin_cycles))
    }
}

/// Parses a Chrome trace document into spans (other phases are ignored).
///
/// An `e` without a matching `b` is impossible in our exports (the ring
/// exporter suppresses torn pairs) but tolerated here: it is dropped.
pub fn parse_trace(doc: &Json) -> Result<Vec<SpanRec>, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("no traceEvents array")?;
    let mut spans: Vec<SpanRec> = Vec::new();
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let args = ev.get("args");
        let span_id = args.and_then(|a| a.get("span_id")).and_then(Json::as_u64);
        let ts_cycles = args.and_then(|a| a.get("ts_cycles")).and_then(Json::as_u64);
        match ph {
            "b" => {
                let (Some(id), Some(ts)) = (span_id, ts_cycles) else {
                    return Err("span begin without span_id/ts_cycles".into());
                };
                let rec = SpanRec {
                    name: ev
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    id,
                    parent: args
                        .and_then(|a| a.get("parent_span"))
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    begin_cycles: ts,
                    end_cycles: None,
                    tid: ev.get("tid").and_then(Json::as_u64).unwrap_or(0),
                };
                by_id.insert(id, spans.len());
                spans.push(rec);
            }
            "e" => {
                if let (Some(id), Some(ts)) = (span_id, ts_cycles) {
                    if let Some(&i) = by_id.get(&id) {
                        spans[i].end_cycles = Some(ts);
                    }
                }
            }
            _ => {}
        }
    }
    Ok(spans)
}

/// Per-stage (per span name) cycle attribution.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Sum of span durations.
    pub total_cycles: u64,
    /// Sum of self time (duration not covered by children).
    pub self_cycles: u64,
}

/// A folded profile: flamegraph lines plus the per-stage table.
#[derive(Debug, Clone)]
pub struct Profile {
    /// `root;child;leaf cycles` lines, sorted by stack, self-time
    /// weights.
    pub folded: Vec<(String, u64)>,
    /// Per-name stats sorted by descending total.
    pub stages: Vec<StageStat>,
}

impl Profile {
    /// Renders the folded lines in the common `stack weight` format.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (stack, cycles) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }

    /// Total self cycles attributed under stacks rooted at `root`
    /// (exact; used to cross-check against engine histograms).
    pub fn rooted_total(&self, root: &str) -> u64 {
        self.folded
            .iter()
            .filter(|(stack, _)| stack == root || stack.starts_with(&format!("{root};")))
            .map(|(_, c)| *c)
            .sum()
    }
}

/// Folds completed spans into a profile.
///
/// Self time is `duration - sum(child overlap with this span)`. A child
/// strictly nested on the same virtual thread overlaps its parent
/// completely, so self times telescope: the subtree under a root sums
/// exactly to the root's duration. A *causal* child on another thread
/// (e.g. an msync drain linked under an evictor round) only subtracts
/// the part that falls inside the parent's window; its remainder stays
/// attributed to its own stack line.
pub fn fold(spans: &[SpanRec]) -> Profile {
    let by_id: BTreeMap<u64, &SpanRec> = spans.iter().map(|s| (s.id, s)).collect();
    // Overlap of each completed child with its completed parent.
    let mut covered: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        let Some(end) = s.end_cycles else { continue };
        let Some(parent) = by_id.get(&s.parent) else {
            continue;
        };
        let Some(pend) = parent.end_cycles else {
            continue;
        };
        let lo = s.begin_cycles.max(parent.begin_cycles);
        let hi = end.min(pend);
        *covered.entry(parent.id).or_insert(0) += hi.saturating_sub(lo);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut stages: BTreeMap<&str, StageStat> = BTreeMap::new();
    for s in spans {
        let Some(dur) = s.duration() else { continue };
        let self_cycles = dur.saturating_sub(covered.get(&s.id).copied().unwrap_or(0));
        // Build the stack by walking parent ids (depth-capped: cycles in
        // the parent graph would be a tracer bug, not a reason to hang).
        let mut stack = vec![s.name.as_str()];
        let mut cur = s.parent;
        for _ in 0..64 {
            let Some(p) = by_id.get(&cur) else { break };
            stack.push(p.name.as_str());
            cur = p.parent;
        }
        stack.reverse();
        *folded.entry(stack.join(";")).or_insert(0) += self_cycles;
        let st = stages.entry(s.name.as_str()).or_insert_with(|| StageStat {
            name: s.name.clone(),
            count: 0,
            total_cycles: 0,
            self_cycles: 0,
        });
        st.count += 1;
        st.total_cycles += dur;
        st.self_cycles += self_cycles;
    }
    let mut stages: Vec<StageStat> = stages.into_values().collect();
    stages.sort_by(|a, b| {
        b.total_cycles
            .cmp(&a.total_cycles)
            .then_with(|| a.name.cmp(&b.name))
    });
    Profile {
        folded: folded.into_iter().collect(),
        stages,
    }
}

/// Renders the per-stage table (`name count total self`).
pub fn stage_table(p: &Profile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>16} {:>16}\n",
        "stage", "count", "total_cycles", "self_cycles"
    ));
    for s in &p.stages {
        out.push_str(&format!(
            "{:<28} {:>8} {:>16} {:>16}\n",
            s.name, s.count, s.total_cycles, s.self_cycles
        ));
    }
    out
}

/// One percentile that got worse than the baseline allows.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Histogram name (e.g. `aquila.fault.cycles`).
    pub name: String,
    /// Which field regressed (e.g. `p99_cycles`).
    pub quantile: String,
    /// Baseline value in cycles.
    pub baseline: u64,
    /// Current value in cycles.
    pub current: u64,
}

impl Regression {
    /// current / baseline (baseline 0 reports as infinite).
    pub fn ratio(&self) -> f64 {
        if self.baseline == 0 {
            f64::INFINITY
        } else {
            self.current as f64 / self.baseline as f64
        }
    }
}

/// Diffs the `latency` arrays of two schema-v3+ reports.
///
/// For every histogram present in the baseline and every quantile field
/// in `quantiles` (e.g. `["p99_cycles", "p999_cycles"]`), the current
/// value may exceed the baseline by at most `tolerance` (0.10 = +10%).
/// Histograms missing from the current report are regressions too: the
/// instrumentation was lost.
pub fn diff_latency(
    current: &Json,
    baseline: &Json,
    quantiles: &[&str],
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    for (doc, which) in [(current, "current"), (baseline, "baseline")] {
        let v = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{which}: missing schema_version"))?;
        if v < 3 {
            return Err(format!("{which}: schema_version {v} has no latency array"));
        }
    }
    let base = baseline
        .get("latency")
        .and_then(Json::as_arr)
        .ok_or("baseline: no latency array")?;
    let cur = current
        .get("latency")
        .and_then(Json::as_arr)
        .ok_or("current: no latency array")?;
    let cur_by_name: BTreeMap<&str, &Json> = cur
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(|n| (n, e)))
        .collect();
    let mut regressions = Vec::new();
    for b in base {
        let Some(name) = b.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(c) = cur_by_name.get(name) else {
            regressions.push(Regression {
                name: name.to_string(),
                quantile: "missing".to_string(),
                baseline: 0,
                current: 0,
            });
            continue;
        };
        for q in quantiles {
            let (Some(bv), Some(cv)) = (
                b.get(q).and_then(Json::as_u64),
                c.get(q).and_then(Json::as_u64),
            ) else {
                continue;
            };
            let limit = (bv as f64 * (1.0 + tolerance)).ceil() as u64;
            if cv > limit {
                regressions.push(Regression {
                    name: name.to_string(),
                    quantile: q.to_string(),
                    baseline: bv,
                    current: cv,
                });
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, b: u64, e: u64) -> SpanRec {
        SpanRec {
            name: name.to_string(),
            id,
            parent,
            begin_cycles: b,
            end_cycles: Some(e),
            tid: 0,
        }
    }

    #[test]
    fn fold_telescopes_nested_spans() {
        // root [0,1000] -> a [100,400] -> b [150,300]; c [500,600].
        let spans = vec![
            span(1, 0, "root", 0, 1000),
            span(2, 1, "a", 100, 400),
            span(3, 2, "b", 150, 300),
            span(4, 1, "c", 500, 600),
        ];
        let p = fold(&spans);
        let m: BTreeMap<_, _> = p.folded.iter().cloned().collect();
        assert_eq!(m["root"], 600); // 1000 - 300 - 100
        assert_eq!(m["root;a"], 150); // 300 - 150
        assert_eq!(m["root;a;b"], 150);
        assert_eq!(m["root;c"], 100);
        assert_eq!(p.rooted_total("root"), 1000);
    }

    #[test]
    fn fold_clips_cross_thread_children_to_parent_window() {
        // Causal child extends past its parent: only the overlap is
        // subtracted from the parent; the remainder stays on the child.
        let spans = vec![span(1, 0, "round", 0, 100), span(2, 1, "drain", 50, 300)];
        let p = fold(&spans);
        let m: BTreeMap<_, _> = p.folded.iter().cloned().collect();
        assert_eq!(m["round"], 50); // 100 - overlap 50
        assert_eq!(m["round;drain"], 250);
        assert_eq!(p.rooted_total("round"), 300);
    }

    #[test]
    fn open_spans_are_skipped() {
        let mut open = span(2, 1, "open", 10, 0);
        open.end_cycles = None;
        let spans = vec![span(1, 0, "root", 0, 100), open];
        let p = fold(&spans);
        assert_eq!(p.rooted_total("root"), 100);
        assert_eq!(p.stages.len(), 1);
    }

    #[test]
    fn parse_trace_reconstructs_pairs() {
        let doc = Json::parse(
            r#"{"traceEvents":[
            {"name":"f","cat":"fault","ph":"b","id2":{"local":"0x1"},"ts":0.0,"pid":1,"tid":2,"args":{"span_id":1,"parent_span":0,"ts_cycles":100}},
            {"name":"x","ph":"M"},
            {"name":"f","cat":"fault","ph":"e","id2":{"local":"0x1"},"ts":1.0,"pid":1,"tid":2,"args":{"span_id":1,"ts_cycles":350}}
            ]}"#,
        )
        .unwrap();
        let spans = parse_trace(&doc).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].duration(), Some(250));
        assert_eq!(spans[0].tid, 2);
    }

    fn report(p99: u64) -> Json {
        Json::obj().with("schema_version", Json::U64(3)).with(
            "latency",
            Json::Arr(vec![Json::obj()
                .with("name", Json::from("aquila.fault.cycles"))
                .with("p50_cycles", Json::U64(100))
                .with("p99_cycles", Json::U64(p99))]),
        )
    }

    #[test]
    fn diff_flags_inflated_p99() {
        let regs = diff_latency(&report(250), &report(200), &["p99_cycles"], 0.10).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].quantile, "p99_cycles");
        assert!(regs[0].ratio() > 1.2);
    }

    #[test]
    fn diff_allows_within_tolerance() {
        let regs = diff_latency(&report(219), &report(200), &["p99_cycles"], 0.10).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn diff_flags_missing_histogram() {
        let cur = Json::obj()
            .with("schema_version", Json::U64(3))
            .with("latency", Json::Arr(vec![]));
        let regs = diff_latency(&cur, &report(200), &["p99_cycles"], 0.10).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].quantile, "missing");
    }

    #[test]
    fn diff_rejects_old_schema() {
        let old = Json::obj().with("schema_version", Json::U64(2));
        assert!(diff_latency(&old, &report(200), &["p99_cycles"], 0.1).is_err());
    }
}
