//! Benchmark harness for the Aquila reproduction: scenario builders,
//! result reporting, and the paper's microbenchmark.
//!
//! Each figure/table of the paper has a binary under `src/bin/`:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 (YCSB workload definitions) |
//! | `fig5`   | RocksDB YCSB-C throughput/latency across backends |
//! | `fig6`   | Ligra BFS with the heap over storage |
//! | `fig7`   | RocksDB per-get cycle breakdown |
//! | `fig8`   | Page-fault overhead breakdowns (a/b/c) |
//! | `fig9`   | Kreon kmmap vs Aquila, YCSB A-F |
//! | `fig10`  | Microbenchmark scalability, shared vs private files |
//! | `sweep`  | Sync vs async write-behind across queue depth and watermarks |
//! | `serve`  | Multi-tenant open-loop serving with QoS and per-tenant SLOs |
//!
//! Every binary is a set of named parts behind [`Runner`]: select parts
//! positionally or as `--<part>` flags, `--list` to enumerate them. The
//! binaries themselves are one-line shims over [`cli::main_for`]; their
//! bodies live in [`figs`]. Sizes are scaled from the paper's testbed
//! (see DESIGN.md); pass `--full` to the binaries for larger runs.

pub mod cli;
pub mod figs;
pub mod json;
pub mod kvscen;
pub mod micro;
pub mod prof;
pub mod report;
pub mod runner;

pub use cli::BenchArgs;
pub use json::Json;
pub use kvscen::{build_stone, load_stone, warm_stone, Backend, Dev, StoneScenario};
pub use micro::{micro_aquila, micro_linux, run_micro, Micro, MicroResult};
pub use report::{
    banner, fig7_bars, print_breakdown_per_op, print_rows, print_speedup, JsonReport, Row,
    TenantEntry, SCHEMA_VERSION,
};
pub use runner::Runner;
