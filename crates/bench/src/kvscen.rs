//! StoneDB scenario construction: one call builds the store over any
//! (backend, device) pair, loads it, and warms the relevant cache.

use std::sync::Arc;

use aquila::{AquilaRuntime, DeviceKind};
use aquila_devices::{
    CallDomain, HostNvmeAccess, HostPmemAccess, NvmeDevice, PmemDevice, StorageAccess,
};
use aquila_kvstore::{AquilaEnv, DirectIoEnv, DynEnv, MmapEnv, StoneConfig, StoneDb};
use aquila_linuxsim::{KernelDevice, LinuxConfig, LinuxMmap};
use aquila_sim::{CoreDebts, FreeCtx, SimCtx};
use aquila_ycsb::workload::{value_of, KeyGen, VALUE_SIZE};

/// Read-path backend (the Figure 5 dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// O_DIRECT read/write + user-space cache.
    DirectIo,
    /// Linux mmap reads.
    Mmap,
    /// Aquila mmio reads.
    Aquila,
}

impl Backend {
    /// Display name (paper's legend).
    pub fn name(self) -> &'static str {
        match self {
            Backend::DirectIo => "read/write",
            Backend::Mmap => "mmap",
            Backend::Aquila => "aquila",
        }
    }

    /// All three, in the paper's order.
    pub const ALL: [Backend; 3] = [Backend::DirectIo, Backend::Mmap, Backend::Aquila];
}

/// Storage device (the Figure 5 second dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dev {
    /// Optane-class NVMe.
    Nvme,
    /// DRAM-backed pmem.
    Pmem,
}

impl Dev {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dev::Nvme => "nvme",
            Dev::Pmem => "pmem",
        }
    }
}

/// A built StoneDB scenario.
pub struct StoneScenario {
    /// The store.
    pub db: Arc<StoneDb>,
    /// Human-readable configuration label.
    pub label: String,
    resets: Vec<Box<dyn Fn()>>,
}

impl StoneScenario {
    /// Resets all timing models (run between load and measurement).
    pub fn reset_timing(&self) {
        for r in &self.resets {
            r();
        }
    }
}

/// Builds a StoneDB over `(backend, dev)` with a cache of `cache_frames`
/// 4 KiB blocks/frames and a device of `device_pages` pages.
///
/// `fit` marks the dataset-fits-in-cache configuration: it disables the
/// Aquila TLB-pressure surcharge (no eviction churn) and undersizes the
/// Linux kernel cache by 5% (the cgroup shares its budget with kernel
/// overheads, so `mmap` never gets the full nominal size).
pub fn build_stone(
    backend: Backend,
    dev: Dev,
    cores: usize,
    cache_frames: usize,
    device_pages: u64,
    fit: bool,
    debts: Arc<CoreDebts>,
) -> StoneScenario {
    let mut setup = FreeCtx::new(0xBEEF);
    let mut resets: Vec<Box<dyn Fn()>> = Vec::new();
    let env: DynEnv = match backend {
        Backend::DirectIo => {
            let access: Arc<dyn StorageAccess> = match dev {
                Dev::Nvme => Arc::new(HostNvmeAccess::new(
                    Arc::new(NvmeDevice::optane(device_pages)),
                    CallDomain::User,
                )),
                Dev::Pmem => Arc::new(HostPmemAccess::new(
                    Arc::new(PmemDevice::dram_backed(device_pages)),
                    CallDomain::User,
                )),
            };
            let e = Arc::new(DirectIoEnv::new(Arc::clone(&access), cache_frames));
            let cache = Arc::clone(e.cache());
            resets.push(Box::new(move || access.reset_timing()));
            resets.push(Box::new(move || cache.reset_timing()));
            e
        }
        Backend::Mmap => {
            let kdev = match dev {
                Dev::Nvme => KernelDevice::Nvme(Arc::new(NvmeDevice::optane(device_pages))),
                Dev::Pmem => KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(device_pages))),
            };
            let frames = if fit {
                cache_frames * 95 / 100
            } else {
                cache_frames
            };
            let lm = Arc::new(LinuxMmap::new(
                LinuxConfig::linux(cores, frames),
                kdev.clone(),
                debts,
            ));
            let lm2 = Arc::clone(&lm);
            resets.push(Box::new(move || {
                lm2.reset_timing();
                kdev.reset_timing();
            }));
            Arc::new(MmapEnv::new(lm))
        }
        Backend::Aquila => {
            let kind = match dev {
                Dev::Nvme => DeviceKind::NvmeSpdk,
                Dev::Pmem => DeviceKind::PmemDax,
            };
            let rt =
                AquilaRuntime::build(&mut setup, kind, device_pages, cache_frames, cores, debts);
            let access = Arc::clone(&rt.access);
            resets.push(Box::new(move || access.reset_timing()));
            Arc::new(AquilaEnv::new(
                Arc::clone(&rt.aquila),
                Arc::clone(&rt.store),
                Arc::clone(&rt.access),
            ))
        }
    };
    let cfg = StoneConfig {
        mmio_tlb_pressure: !fit,
        ..Default::default()
    };
    let db = Arc::new(StoneDb::new(env, cfg));
    StoneScenario {
        db,
        label: format!("{}/{}", backend.name(), dev.name()),
        resets,
    }
}

/// Bulk-loads `records` YCSB records (sorted keys, 1 KiB values).
pub fn load_stone(ctx: &mut dyn SimCtx, db: &StoneDb, records: u64) {
    db.bulk_load(
        ctx,
        (0..records).map(|i| {
            let k = KeyGen::key_of(i);
            let v = value_of(&k, VALUE_SIZE);
            (k, v)
        }),
    );
}

/// Warms the read cache by touching every record once.
pub fn warm_stone(ctx: &mut dyn SimCtx, db: &StoneDb, records: u64) {
    for i in 0..records {
        let k = KeyGen::key_of(i);
        let _ = db.get(ctx, &k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_load_and_read() {
        for backend in Backend::ALL {
            for dev in [Dev::Nvme, Dev::Pmem] {
                let debts = Arc::new(CoreDebts::new(1));
                let scen = build_stone(backend, dev, 1, 2048, 65536, true, debts);
                let mut ctx = FreeCtx::new(1);
                load_stone(&mut ctx, &scen.db, 500);
                scen.reset_timing();
                let mut hits = 0;
                for i in (0..500).step_by(37) {
                    let k = KeyGen::key_of(i);
                    if scen.db.get(&mut ctx, &k) == Some(value_of(&k, VALUE_SIZE)) {
                        hits += 1;
                    }
                }
                assert_eq!(hits, 14, "{}: wrong values", scen.label);
            }
        }
    }

    #[test]
    fn warm_makes_repeat_reads_cheap_for_mmio() {
        let debts = Arc::new(CoreDebts::new(1));
        let scen = build_stone(Backend::Aquila, Dev::Pmem, 1, 4096, 65536, true, debts);
        let mut ctx = FreeCtx::new(1);
        load_stone(&mut ctx, &scen.db, 300);
        warm_stone(&mut ctx, &scen.db, 300);
        scen.reset_timing();
        let major_before = ctx.stats.major_faults;
        warm_stone(&mut ctx, &scen.db, 300);
        assert_eq!(
            ctx.stats.major_faults, major_before,
            "warm data stays cached"
        );
    }
}
