//! Figure 8: page-fault overhead breakdowns.
//!
//! (a) Average page-fault cost, Linux vs Aquila, pmem device, dataset in
//!     memory (paper: Linux 5380 cycles with 24% trap / 49% device I/O;
//!     Aquila's trap is 552 vs 1287 cycles, 2.33x lower).
//! (b) Same with evictions in the common path (8 GB cache, 100 GB
//!     dataset; paper: Aquila 2.06x lower, no Aquila component >10%).
//! (c) Device access paths in Aquila: Cache-Hit 2179 cycles; DAX-pmem vs
//!     HOST-pmem = 7.77x; SPDK-NVMe vs HOST-NVMe = 1.53x.
//!
//! `--json <path>` writes the breakdowns as a machine-readable record;
//! `--trace <path>` writes a Chrome trace of the run (Perfetto).
//! `--race` runs the deterministic race detector over the workload.

use std::sync::Arc;

use crate::micro::{micro_aquila_policy, micro_linux, prepare_micro, run_micro};
use crate::report::{banner, print_breakdown_per_op, JsonReport};
use crate::{BenchArgs, Dev, Runner};
use aquila::{DeviceKind, MmioPolicy};
use aquila_sim::CoreDebts;

/// Aquila policy for the run: `--huge` turns on transparent 2 MiB
/// promotion (khugepaged-style, threshold 64 resident pages per run).
fn aquila_policy(args: &BenchArgs) -> MmioPolicy {
    if args.has_flag("--huge") {
        MmioPolicy {
            huge_pages: true,
            promote_threshold: 64,
            ..MmioPolicy::default()
        }
    } else {
        MmioPolicy::default()
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    Runner::new("fig8", "Page-fault overhead breakdowns")
        .part(
            "a",
            "fault cost, dataset fits in memory (pmem)",
            |args, r| part_a(&aquila_policy(args), r),
        )
        .part(
            "b",
            "fault cost with evictions in the common path",
            |args, r| part_b(&aquila_policy(args), r),
        )
        .part(
            "c",
            "device access paths (DAX/SPDK vs host kernel)",
            |args, r| part_c(&aquila_policy(args), r),
        )
}

/// Single-threaded fault-cost probe: every access faults (cache warm,
/// mappings dropped), pmem device.
fn fault_cost(
    aquila: Option<&MmioPolicy>,
    warm: bool,
    cache_frames: usize,
    pages: u64,
) -> (f64, aquila_sim::Breakdown, u64) {
    let debts = Arc::new(CoreDebts::new(1));
    let micro = Arc::new(if let Some(policy) = aquila {
        micro_aquila_policy(
            DeviceKind::PmemDax,
            1,
            cache_frames,
            1,
            pages,
            debts,
            policy.clone(),
        )
    } else {
        micro_linux(false, Dev::Pmem, 1, cache_frames, 1, pages, debts)
    });
    prepare_micro(&micro, warm);
    let ops = 4000u64.min(pages / 2);
    let r = run_micro(micro, 1, ops, true, 0xF8);
    let faults = r.counters.page_faults.max(1);
    (r.elapsed.get() as f64 / faults as f64, r.breakdown, faults)
}

fn part_a(policy: &MmioPolicy, report: &mut JsonReport) {
    banner(
        "Figure 8(a): page-fault overhead, dataset fits in memory (pmem)",
        "Linux 5380 cycles total (49% device I/O, 24% trap); Aquila trap 552 vs 1287 (2.33x)",
    );
    // The paper's 8(a) faults fill from the pmem device (no evictions):
    // cold cache sized to hold the whole dataset.
    let (lx, lxb, lxf) = fault_cost(None, false, 16384, 8192);
    let (aq, aqb, aqf) = fault_cost(Some(policy), false, 16384, 8192);
    println!("Linux  mmap  (device fill): {lx:.0} cycles/fault");
    print_breakdown_per_op("  components", &lxb, lxf);
    println!("Aquila mmio  (device fill): {aq:.0} cycles/fault");
    print_breakdown_per_op("  components", &aqb, aqf);
    println!("  -> Aquila/Linux fault cost: {:.2}x lower", lx / aq);
    report.add_breakdown("8a/linux-device-fill", &lxb, lxf);
    report.add_breakdown("8a/aquila-device-fill", &aqb, aqf);
    report.add_scalar("8a/linux_over_aquila", lx / aq);
    // And the pure protection-switch comparison (page already cached).
    let (lxh, _, _) = fault_cost(None, true, 16384, 8192);
    let (aqh, _, _) = fault_cost(Some(policy), true, 16384, 8192);
    println!("Linux  mmap  (cache hit)  : {lxh:.0} cycles/fault");
    println!("Aquila mmio  (cache hit)  : {aqh:.0} cycles/fault (paper: 2179)");
    report.add_scalar("8a/linux_cache_hit_cycles", lxh);
    report.add_scalar("8a/aquila_cache_hit_cycles", aqh);
}

fn part_b(policy: &MmioPolicy, report: &mut JsonReport) {
    banner(
        "Figure 8(b): page-fault overhead with evictions (cache 1/8 of dataset)",
        "Aquila 2.06x lower than Linux mmap; no Aquila component above ~10%",
    );
    // Dataset 8x the cache: every fault is major and eviction runs in the
    // common path.
    let (lx, lxb, lxf) = fault_cost(None, false, 1024, 8192);
    let (aq, aqb, aqf) = fault_cost(Some(policy), false, 1024, 8192);
    println!("Linux  mmap : {lx:.0} cycles/fault");
    print_breakdown_per_op("  components", &lxb, lxf);
    println!("Aquila mmio : {aq:.0} cycles/fault");
    print_breakdown_per_op("  components", &aqb, aqf);
    println!("  -> Aquila/Linux fault cost: {:.2}x lower", lx / aq);
    report.add_breakdown("8b/linux-evicting", &lxb, lxf);
    report.add_breakdown("8b/aquila-evicting", &aqb, aqf);
    report.add_scalar("8b/linux_over_aquila", lx / aq);
}

fn part_c(policy: &MmioPolicy, report: &mut JsonReport) {
    banner(
        "Figure 8(c): Aquila device access paths (cycles per fault)",
        "Cache-Hit 2179; HOST-pmem/DAX-pmem = 7.77x; HOST-NVMe/SPDK-NVMe = 1.53x",
    );
    let mut results: Vec<(&str, f64)> = Vec::new();

    // Cache-Hit: warm cache, pmem (no device I/O on the fault path).
    let (hit, _, _) = fault_cost(Some(policy), true, 16384, 8192);
    results.push(("Cache-Hit", hit));

    // Cold-cache fault cost per access path.
    for (label, kind) in [
        ("DAX-pmem", DeviceKind::PmemDax),
        ("HOST-pmem", DeviceKind::PmemHost),
        ("SPDK-NVMe", DeviceKind::NvmeSpdk),
        ("HOST-NVMe", DeviceKind::NvmeHost),
    ] {
        let debts = Arc::new(CoreDebts::new(1));
        let micro = Arc::new(micro_aquila_policy(
            kind,
            1,
            16384,
            1,
            8192,
            debts,
            policy.clone(),
        ));
        prepare_micro(&micro, false);
        let r = run_micro(micro, 1, 3000, true, 0xF8);
        let faults = r.counters.page_faults.max(1);
        let per = r.elapsed.get() as f64 / faults as f64;
        results.push((label, per));
        report.add_breakdown(format!("8c/{label}"), &r.breakdown, faults);
        report.add_counters(format!("8c/{label}"), &r.counters);
    }

    for (label, cyc) in &results {
        println!("  {label:<12} {cyc:>10.0} cycles/fault");
        report.add_scalar(format!("8c/{label}_cycles_per_fault"), *cyc);
    }
    let get = |l: &str| {
        results
            .iter()
            .find(|(a, _)| *a == l)
            .map(|(_, c)| *c)
            .unwrap_or(1.0)
    };
    let pmem_ratio = get("HOST-pmem") / get("DAX-pmem");
    let nvme_ratio = get("HOST-NVMe") / get("SPDK-NVMe");
    println!("  -> HOST-pmem / DAX-pmem : {pmem_ratio:.2}x   (paper: 7.77x)");
    println!("  -> HOST-NVMe / SPDK-NVMe: {nvme_ratio:.2}x   (paper: 1.53x)");
    report.add_scalar("8c/host_pmem_over_dax", pmem_ratio);
    report.add_scalar("8c/host_nvme_over_spdk", nvme_ratio);
}
