//! Multi-tenant serving (beyond the paper's numbered figures): per-tenant
//! QoS over a shared page cache, measured open loop.
//!
//! Eight tenants share one mmio cache through the tenant-scoped session
//! API. One tenant is *protected*: steady Poisson load, warmed working
//! set inside its declared quota, and a p99 SLO. One is a *zipf-hot*
//! noisy neighbor: bursty arrivals over a footprint 4x the whole cache,
//! drawn Zipfian-hot so it keeps re-heating the same frames. Six
//! background tenants trickle along. The experiment runs twice from the
//! same seed — QoS on, then off — and reports every tenant's latency
//! percentiles against its SLO (schema v4 `tenants` section).
//!
//! Expected: with QoS on, quota self-reclaim and weighted-fair eviction
//! keep the noisy neighbor's pressure on its own frames, so the
//! protected tenant's p99 stays at cache-hit latency and inside its
//! SLO; with QoS off the neighbor evicts the protected working set and
//! the refault tail blows the SLO.

use aquila::TenantSpec;
use aquila_serve::{run, Arrival, ServeConfig, TenantProfile};
use aquila_sim::Cycles;

use crate::report::{banner, JsonReport, TenantEntry};
use crate::{BenchArgs, Runner};

/// The protected tenant's declared p99 SLO. Cache-hit service sits two
/// orders of magnitude under this; a single NVMe refault sits well
/// over it.
const PROTECTED_SLO: Cycles = Cycles::from_micros(20);

const CACHE_FRAMES: usize = 1024;
const WORKER_CORES: usize = 8;

/// The eight-tenant cast: protected + zipf-hot neighbor + six
/// background tenants.
fn tenant_set(reqs: u64) -> Vec<TenantProfile> {
    let mut tenants = vec![
        TenantProfile {
            spec: TenantSpec {
                id: 1,
                quota_frames: 256,
                weight: 4,
                slo_p99: PROTECTED_SLO,
            },
            label: "protected".into(),
            arrival: Arrival::Poisson {
                mean: Cycles::from_micros(100),
            },
            footprint_pages: 192,
            zipf_theta: None,
            write_fraction: 0.1,
            warm: true,
            sessions: 2,
            requests_per_session: reqs * 2,
        },
        TenantProfile {
            spec: TenantSpec {
                id: 2,
                quota_frames: 256,
                weight: 1,
                slo_p99: Cycles::from_millis(2),
            },
            label: "zipf-hot".into(),
            arrival: Arrival::Bursty {
                mean: Cycles::from_micros(1),
                burst: 128,
                calm: 100,
            },
            footprint_pages: 8192,
            zipf_theta: Some(0.99),
            write_fraction: 0.5,
            warm: false,
            sessions: 4,
            requests_per_session: reqs * 4,
        },
    ];
    for id in 3..=8u16 {
        tenants.push(TenantProfile {
            spec: TenantSpec {
                id,
                quota_frames: 128,
                weight: 1,
                slo_p99: Cycles::from_millis(5),
            },
            label: format!("background-{id}"),
            arrival: Arrival::Poisson {
                mean: Cycles::from_micros(60),
            },
            footprint_pages: 256,
            zipf_theta: None,
            write_fraction: 0.3,
            warm: false,
            sessions: 1,
            requests_per_session: reqs / 2,
        });
    }
    tenants
}

pub(crate) fn part_qos(args: &BenchArgs, json: &mut JsonReport) {
    let reqs: u64 = if args.has_flag("--full") { 800 } else { 200 };
    banner(
        "Serve (qos): 8 tenants, open-loop Poisson + bursty arrivals, QoS on vs off",
        "expected: protected tenant's p99 meets its SLO with QoS on; the zipf-hot neighbor blows it with QoS off",
    );
    for (qos, tag) in [(true, "qos_on"), (false, "qos_off")] {
        let cfg = ServeConfig {
            seed: 0x5E47E,
            worker_cores: WORKER_CORES,
            cache_frames: CACHE_FRAMES,
            qos,
            mirror: false,
            scrub_rate: Cycles::ZERO,
            tenants: tenant_set(reqs),
        };
        let report = run(&cfg);
        println!(
            "[{tag}] {} tenants, {} requests, makespan {:.3} ms",
            report.tenants.len(),
            report.total_requests(),
            report.makespan.as_secs_f64() * 1e3,
        );
        println!(
            "  {:<14} {:>6} {:>7} {:>6} {:>10} {:>10} {:>10} {:>10} {:>5}",
            "tenant", "quota", "reqs", "shed", "p50", "p99", "p99.9", "SLO", "met"
        );
        for t in &report.tenants {
            println!(
                "  {:<14} {:>6} {:>7} {:>6} {:>10} {:>10} {:>10} {:>10} {:>5}",
                t.label,
                t.quota_frames,
                t.requests,
                t.shed,
                t.hist.quantile(0.5).get(),
                t.hist.quantile(0.99).get(),
                t.hist.quantile(0.999).get(),
                t.slo_p99.get(),
                if t.slo_met() { "yes" } else { "NO" },
            );
            json.add_tenant(
                &TenantEntry {
                    id: t.id,
                    label: format!("{tag}/{}", t.label),
                    quota_frames: t.quota_frames,
                    weight: t.weight,
                    slo_p99: t.slo_p99,
                    requests: t.requests,
                    shed: t.shed,
                },
                &t.hist,
            );
        }
        let protected = &report.tenants[0];
        let noisy = &report.tenants[1];
        json.add_scalar(
            format!("serve/{tag}/protected_p99_cycles"),
            protected.hist.quantile(0.99).get() as f64,
        );
        json.add_scalar(
            format!("serve/{tag}/protected_slo_met"),
            if protected.slo_met() { 1.0 } else { 0.0 },
        );
        json.add_scalar(format!("serve/{tag}/protected_shed"), protected.shed as f64);
        json.add_scalar(format!("serve/{tag}/noisy_shed"), noisy.shed as f64);
        json.add_scalar(
            format!("serve/{tag}/noisy_resident_frames"),
            noisy.resident_at_end as f64,
        );
    }
}

/// The default silent-corruption storm for `serve integrity`. Every
/// clause is a *silent* kind (bit flips, latent sectors) and the
/// mirrored build attaches the global plan to the primary device only,
/// so each injected fault is repairable from the clean replica — the
/// run must finish with `unrepairable == 0` and `undetected == 0`.
const INTEGRITY_STORM: &str = "nvme.write:corrupt=8@op=6; nvme.read:corrupt=2@op=9; \
     nvme.write:corrupt=4@op=30; nvme.read:latent=2@op=24; nvme.write:latent=1@op=50";

pub(crate) fn part_integrity(args: &BenchArgs, json: &mut JsonReport) {
    let reqs: u64 = if args.has_flag("--full") { 800 } else { 200 };
    banner(
        "Serve (integrity): 8-tenant QoS workload under a silent-corruption storm, mirrored + scrubbed",
        "expected: every injected corruption is detected by sector checksums and repaired from the replica; zero corrupted payloads acked",
    );
    // Install the default storm; a user-supplied `--faults` spec was
    // installed earlier and wins (global install is first-come).
    let _ = aquila_sim::fault::install_spec(INTEGRITY_STORM);
    let cfg = ServeConfig {
        seed: 0x1D7E6,
        worker_cores: WORKER_CORES,
        cache_frames: CACHE_FRAMES,
        qos: true,
        mirror: true,
        scrub_rate: Cycles::from_micros(1),
        tenants: tenant_set(reqs),
    };
    let report = run(&cfg);
    let c = report
        .integrity
        .expect("mirrored serve run reports integrity counters");
    let injected = aquila_sim::fault::global().map_or(0, |p| p.injected());
    println!(
        "[integrity] {} faults injected, {} detected, {} repaired ({} skipped), {} unrepairable, {} undetected",
        injected, c.detected, c.repaired, c.repair_skipped, c.unrepairable, c.undetected(),
    );
    assert_eq!(
        c.undetected(),
        0,
        "integrity invariant violated: corrupted payload acked to a session ({c:?})"
    );
    for t in &report.tenants {
        json.add_tenant(
            &TenantEntry {
                id: t.id,
                label: format!("integrity/{}", t.label),
                quota_frames: t.quota_frames,
                weight: t.weight,
                slo_p99: t.slo_p99,
                requests: t.requests,
                shed: t.shed,
            },
            &t.hist,
        );
    }
    let protected = &report.tenants[0];
    println!(
        "  protected tenant p99 {} (SLO {}, {})",
        protected.hist.quantile(0.99),
        protected.slo_p99,
        if protected.slo_met() { "met" } else { "MISSED" },
    );
    json.set_integrity(&c);
    json.add_scalar("integrity/injected", injected as f64);
    json.add_scalar("integrity/detected", c.detected as f64);
    json.add_scalar("integrity/repaired", c.repaired as f64);
    json.add_scalar("integrity/unrepairable", c.unrepairable as f64);
    json.add_scalar("integrity/undetected", c.undetected() as f64);
    json.add_scalar(
        "serve/integrity/protected_p99_cycles",
        protected.hist.quantile(0.99).get() as f64,
    );
    json.add_scalar(
        "serve/integrity/protected_slo_met",
        if protected.slo_met() { 1.0 } else { 0.0 },
    );
}

fn part_diurnal(args: &BenchArgs, json: &mut JsonReport) {
    let reqs: u64 = if args.has_flag("--full") { 1200 } else { 400 };
    banner(
        "Serve (diurnal): sinusoidally modulated load next to a steady tenant",
        "expected: the diurnal tenant's arrival count matches the steady one's at equal mean rate, with a wider latency spread at peak",
    );
    let cfg = ServeConfig {
        seed: 0xD1E1,
        worker_cores: 4,
        cache_frames: 512,
        qos: true,
        mirror: false,
        scrub_rate: Cycles::ZERO,
        tenants: vec![
            TenantProfile {
                spec: TenantSpec {
                    id: 1,
                    quota_frames: 256,
                    weight: 1,
                    slo_p99: Cycles::from_millis(2),
                },
                label: "steady".into(),
                arrival: Arrival::Poisson {
                    mean: Cycles::from_micros(20),
                },
                footprint_pages: 384,
                zipf_theta: None,
                write_fraction: 0.3,
                warm: false,
                sessions: 2,
                requests_per_session: reqs,
            },
            TenantProfile {
                spec: TenantSpec {
                    id: 2,
                    quota_frames: 256,
                    weight: 1,
                    slo_p99: Cycles::from_millis(2),
                },
                label: "diurnal".into(),
                arrival: Arrival::Diurnal {
                    mean: Cycles::from_micros(20),
                    period: Cycles::from_millis(2),
                    swing: 0.8,
                },
                footprint_pages: 384,
                zipf_theta: Some(0.9),
                write_fraction: 0.3,
                warm: false,
                sessions: 2,
                requests_per_session: reqs,
            },
        ],
    };
    let report = run(&cfg);
    println!(
        "  {:<10} {:>7} {:>6} {:>10} {:>10} {:>10}",
        "tenant", "reqs", "shed", "p50", "p99", "p99.9"
    );
    for t in &report.tenants {
        println!(
            "  {:<10} {:>7} {:>6} {:>10} {:>10} {:>10}",
            t.label,
            t.requests,
            t.shed,
            t.hist.quantile(0.5).get(),
            t.hist.quantile(0.99).get(),
            t.hist.quantile(0.999).get(),
        );
        json.add_tenant(
            &TenantEntry {
                id: t.id,
                label: t.label.clone(),
                quota_frames: t.quota_frames,
                weight: t.weight,
                slo_p99: t.slo_p99,
                requests: t.requests,
                shed: t.shed,
            },
            &t.hist,
        );
        json.add_scalar(
            format!("serve/diurnal/{}_p99_cycles", t.label),
            t.hist.quantile(0.99).get() as f64,
        );
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    Runner::new(
        "serve",
        "Multi-tenant open-loop serving with QoS and per-tenant SLOs",
    )
    .part(
        "qos",
        "8 tenants, QoS isolation vs a zipf-hot noisy neighbor",
        part_qos,
    )
    .part(
        "diurnal",
        "diurnally modulated load next to a steady tenant",
        part_diurnal,
    )
    .part(
        "integrity",
        "silent-corruption storm under the QoS workload, mirrored + scrubbed",
        part_integrity,
    )
}
