//! Table 1: the standard YCSB workloads.

use crate::{BenchArgs, JsonReport, Runner};
use aquila_ycsb::Workload;

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    Runner::new("table1", "Standard YCSB workloads").part(
        "workloads",
        "the paper's YCSB workload definitions",
        print_table,
    )
}

fn print_table(_args: &BenchArgs, json: &mut JsonReport) {
    println!("Table 1. Standard YCSB Workloads.");
    println!();
    println!("  {:<4} Workload", "");
    for w in Workload::ALL {
        println!("  {:<4} {}", w.label(), w.description());
    }
    println!();
    println!(
        "Key size {} B, value size {} B, scan length {} (paper section 5/6.1).",
        aquila_ycsb::workload::KEY_SIZE,
        aquila_ycsb::workload::VALUE_SIZE,
        aquila_ycsb::workload::SCAN_LEN
    );
    json.add_scalar("key_size_bytes", aquila_ycsb::workload::KEY_SIZE as f64);
    json.add_scalar("value_size_bytes", aquila_ycsb::workload::VALUE_SIZE as f64);
    json.add_scalar("scan_len", aquila_ycsb::workload::SCAN_LEN as f64);
}
