//! Figure 10: scalability of Aquila vs Linux mmap — random reads over a
//! shared file and over a private file per thread, with the dataset
//! fitting in memory (a) and not fitting (b).
//!
//! Paper results: shared file, in-memory — Aquila 1.81x (1 thread) to
//! 8.37x (32 threads) higher throughput; out-of-memory — 2.17x to 12.92x.
//! Private files: 1.82x-1.99x (in-memory), 2.21x-2.84x (out-of-memory).
//! Tail latency collapses for Linux on the shared file (p99 up to 177x).

use std::sync::Arc;

use crate::micro::{micro_aquila_policy, micro_linux, prepare_micro, run_micro, Micro};
use crate::report::{banner, print_rows, JsonReport, Row};
use crate::{BenchArgs, Dev, Runner};
use aquila::{DeviceKind, MmioPolicy};
use aquila_sim::CoreDebts;

struct Scale {
    pages_per_file: u64,
    ops_per_thread: u64,
    threads: Vec<usize>,
}

fn scales(args: &BenchArgs) -> Scale {
    if args.has_flag("--full") {
        Scale {
            pages_per_file: 16384, // 64 MiB per file.
            ops_per_thread: 3000,
            threads: vec![1, 2, 4, 8, 16, 32],
        }
    } else if args.has_flag("--tiny") {
        // CI-sized: enough to exercise promotion (>2 MiB per file) and
        // cross-core shootdowns, small enough for a double run.
        Scale {
            pages_per_file: 1024, // 4 MiB per file.
            ops_per_thread: 300,
            threads: vec![1, 4],
        }
    } else {
        Scale {
            pages_per_file: 4096, // 16 MiB per file.
            ops_per_thread: 1000,
            threads: vec![1, 4, 8, 16, 32],
        }
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    // `fit` is (a), `nofit` is (b); the historical `--fit`/`--nofit`
    // flag spellings select the same parts.
    Runner::new(
        "fig10",
        "Microbenchmark scalability, shared vs private files",
    )
    .part("fit", "(a) dataset fits in memory", |args, r| {
        run_case(&scales(args), true, args.has_flag("--huge"), r)
    })
    .part("nofit", "(b) dataset 12x the cache", |args, r| {
        run_case(&scales(args), false, args.has_flag("--huge"), r)
    })
}

fn build(
    aquila: bool,
    fit: bool,
    huge: bool,
    threads: usize,
    sc: &Scale,
    shared: bool,
) -> Arc<Micro> {
    let debts = Arc::new(CoreDebts::new(threads));
    // Private-file mode sizes the dataset with the thread count, as the
    // paper's per-thread files do.
    let nfiles = if shared { 1 } else { threads };
    let total_pages = sc.pages_per_file * nfiles as u64;
    // In-memory: cache holds the whole dataset. Out-of-memory: 1/12.5 of
    // it (the paper's 8 GB cache / 100 GB dataset ratio).
    let cache = if fit {
        (total_pages + total_pages / 8) as usize
    } else {
        (total_pages / 12) as usize
    };
    let policy = if huge {
        MmioPolicy {
            huge_pages: true,
            promote_threshold: 64,
            ..MmioPolicy::default()
        }
    } else {
        MmioPolicy::default()
    };
    Arc::new(if aquila {
        micro_aquila_policy(
            DeviceKind::PmemDax,
            threads,
            cache,
            nfiles,
            sc.pages_per_file,
            debts,
            policy,
        )
    } else {
        micro_linux(
            false,
            Dev::Pmem,
            threads,
            cache,
            nfiles,
            sc.pages_per_file,
            debts,
        )
    })
}

fn run_case(sc: &Scale, fit: bool, huge: bool, json: &mut JsonReport) {
    let case = if fit {
        "(a) dataset fits in memory"
    } else {
        "(b) dataset does not fit (cache = dataset/12)"
    };
    let paper = if fit {
        "shared: aquila 1.81x (1T) -> 8.37x (32T); private: 1.82x -> 1.99x"
    } else {
        "shared: aquila 2.17x (1T) -> 12.92x (32T); private: 2.21x -> 2.84x"
    };
    banner(&format!("Figure 10{case}"), paper);

    for shared in [true, false] {
        println!(
            "--- {} file ---",
            if shared {
                "single shared"
            } else {
                "private per-thread"
            }
        );
        let mut rows = Vec::new();
        let mut ratios = Vec::new();
        for &t in &sc.threads {
            let mut pair = Vec::new();
            for aquila in [false, true] {
                let micro = build(aquila, fit, huge, t, sc, shared);
                prepare_micro(&micro, fit);
                let r = run_micro(
                    Arc::clone(&micro),
                    t,
                    sc.ops_per_thread,
                    shared,
                    0x10 + t as u64,
                );
                let label = format!(
                    "{} {} threads={t}",
                    micro.label,
                    if shared { "shared" } else { "private" }
                );
                let row = Row::from_hist(label, r.ops, r.elapsed, &r.latency);
                json.add_hist(
                    format!("10{}/{}", if fit { "a" } else { "b" }, row.label.clone()),
                    &r.latency,
                );
                pair.push(row.kops);
                rows.push(row);
            }
            ratios.push((t, pair[1] / pair[0]));
        }
        print_rows(&rows);
        json.add_rows(&rows);
        for (t, ratio) in ratios {
            println!("  -> aquila/mmap at {t:>2} threads: {ratio:.2}x");
            json.add_scalar(
                format!(
                    "10{}/{}/threads={t}/aquila_over_mmap",
                    if fit { "a" } else { "b" },
                    if shared { "shared" } else { "private" }
                ),
                ratio,
            );
        }
        println!();
    }
}
