//! Write-behind sweep (beyond the paper's numbered figures): synchronous
//! eviction on the faulting vcore vs the asynchronous evictor pipeline,
//! swept over NVMe queue depth and watermark placement.
//!
//! Four worker vcores issue random 64-bit stores over an NVMe-backed
//! mapping 8x the DRAM cache, so every round of progress needs eviction
//! with dirty writeback. Under `sync` the faulting worker runs the whole
//! round — detach, shootdown, blocking one-command-at-a-time writeback —
//! inline. Under `async` a dedicated evictor vcore watches the freelist
//! watermarks and retires victims through a real NVMe queue pair at the
//! configured depth; workers just pop clean frames. The figure of merit
//! is the mean fault-path cycles observed by the workers: the cycles an
//! op spends whenever it takes a page fault, which is where the paper
//! says write-behind overlap buys its latency hiding.
//!
//! Parts: `qd` sweeps sync vs async x queue depth {1,2,4,8}; `watermark`
//! sweeps the low/high watermark pair at fixed depth 4; `tlb` compares
//! 4 KiB mappings against transparent 2 MiB promotion on a sequential
//! in-cache scan whose footprint exceeds the 4 KiB dTLB reach (dTLB miss
//! rate and fault-path cycles per touched page); `latency` runs the same
//! store workload under linuxsim, mmio-sync, mmio-async qd4, and
//! mmio-huge, recording every fault-service latency into a cycle-exact
//! histogram and reporting p50/p90/p99/p999.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::micro::{micro_aquila_policy, micro_linux, prepare_micro, run_micro};
use crate::report::{banner, JsonReport};
use crate::{BenchArgs, Dev, Runner};
use aquila::{Advice, AquilaRuntime, DeviceKind, MmioPolicy, Prot, WritePolicy};
use aquila_devices::NvmeDevice;
use aquila_linuxsim::{KernelDevice, LinuxConfig, LinuxMmap};
use aquila_sim::{CoreDebts, Cycles, Engine, LatencyHist, SimCtx, Step};

const WORKERS: usize = 4;
const FILE_PAGES: u64 = 8192;
const CACHE_FRAMES: usize = 1024;

struct Cell {
    label: String,
    mean_fault_cycles: f64,
    faults: u64,
    makespan: Cycles,
    writebacks: u64,
}

/// Runs one sweep cell: four workers (plus any configured evictor cores)
/// over a fresh NVMe-backed stack under `policy`.
fn run_cell(label: &str, policy: MmioPolicy, ops_per_thread: u64) -> Cell {
    let cores = WORKERS + policy.evictor_cores.len();
    let evictor_cores = policy.evictor_cores.clone();
    let mut engine = Engine::new(cores, 0x5EE9);
    let mut ctx = aquila_sim::FreeCtx::new(0x5EE9);
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::NvmeSpdk,
        FILE_PAGES + 4096,
        CACHE_FRAMES,
        cores,
        engine.debts(),
        policy,
    );
    let f = rt.open("/sweep", FILE_PAGES).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, FILE_PAGES, Prot::RW)
        .expect("mmap");
    rt.aquila
        .madvise(&mut ctx, addr, FILE_PAGES, Advice::Random)
        .expect("madvise");

    let stop = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicUsize::new(WORKERS));
    // Per-worker (fault-path cycles, faulting ops).
    let tallies: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(vec![(0, 0); WORKERS]));
    let chunk = FILE_PAGES / WORKERS as u64;
    for t in 0..WORKERS {
        let aquila = Arc::clone(&rt.aquila);
        let tallies = Rc::clone(&tallies);
        let stop = Arc::clone(&stop);
        let live = Arc::clone(&live);
        let lo = t as u64 * chunk;
        let mut done = 0u64;
        engine.spawn(
            t,
            Box::new(move |ctx| {
                // Disjoint per-worker slices: no page is ever hot in two
                // workers, so fault counts do not depend on interleaving.
                let page = lo + ctx.rng().below(chunk);
                let pf0 = ctx.counters().page_faults;
                let t0 = ctx.now();
                aquila
                    .write(ctx, addr.add(page * 4096 + 16), &page.to_le_bytes())
                    .expect("store");
                if ctx.counters().page_faults > pf0 {
                    let mut tl = tallies.borrow_mut();
                    tl[t].0 += (ctx.now() - t0).get();
                    tl[t].1 += 1;
                }
                done += 1;
                if done >= ops_per_thread {
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        stop.store(true, Ordering::Release);
                    }
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    for &core in &evictor_cores {
        engine.spawn(
            core,
            rt.aquila.evictor(Arc::clone(&stop), Cycles::from_micros(2)),
        );
    }
    let report = engine.run();
    let (cycles, faults) = tallies
        .borrow()
        .iter()
        .fold((0u64, 0u64), |(c, n), &(tc, tn)| (c + tc, n + tn));
    Cell {
        label: label.to_string(),
        mean_fault_cycles: cycles as f64 / faults.max(1) as f64,
        faults,
        makespan: report.makespan,
        writebacks: report.counters.writebacks,
    }
}

fn async_policy(queue_depth: usize, low: usize, high: usize) -> MmioPolicy {
    MmioPolicy {
        low_watermark: low,
        high_watermark: high,
        evictor_cores: vec![WORKERS],
        write_policy: WritePolicy::Async,
        queue_depth,
        ..MmioPolicy::default()
    }
}

fn print_cells(cells: &[Cell], json: &mut JsonReport) {
    println!(
        "{:<16} {:>18} {:>10} {:>14} {:>12}",
        "policy", "fault-path cyc", "faults", "makespan(ms)", "writebacks"
    );
    for c in cells {
        println!(
            "{:<16} {:>18.0} {:>10} {:>14.3} {:>12}",
            c.label,
            c.mean_fault_cycles,
            c.faults,
            c.makespan.as_secs_f64() * 1e3,
            c.writebacks
        );
        json.add_scalar(
            format!("{}/mean_fault_cycles", c.label),
            c.mean_fault_cycles,
        );
        json.add_scalar(
            format!("{}/makespan_ms", c.label),
            c.makespan.as_secs_f64() * 1e3,
        );
        json.add_scalar(format!("{}/faults", c.label), c.faults as f64);
    }
}

fn part_qd(args: &BenchArgs, json: &mut JsonReport) {
    let ops: u64 = if args.has_flag("--full") { 4000 } else { 1500 };
    banner(
        "Write-behind sweep (qd): sync eviction vs async pipeline x NVMe queue depth",
        "expected: async < sync fault-path cycles once the qpair overlaps writes (qd >= 4)",
    );
    let mut cells = vec![run_cell("sync", MmioPolicy::default(), ops)];
    for qd in [1usize, 2, 4, 8] {
        cells.push(run_cell(
            &format!("async-qd{qd}"),
            async_policy(qd, 0, 0),
            ops,
        ));
    }
    print_cells(&cells, json);
    let sync = cells[0].mean_fault_cycles;
    for c in &cells[1..] {
        let speedup = sync / c.mean_fault_cycles;
        println!(
            "  -> {}: {speedup:.2}x lower fault-path cycles than sync",
            c.label
        );
        json.add_scalar(format!("{}/speedup_over_sync", c.label), speedup);
    }
}

fn part_watermark(args: &BenchArgs, json: &mut JsonReport) {
    let ops: u64 = if args.has_flag("--full") { 4000 } else { 1500 };
    banner(
        "Write-behind sweep (watermark): async pipeline, qd 4, low/high watermark placement",
        "higher watermarks wake the evictor earlier and refill deeper, trading cache hit rate for stall-free faults",
    );
    let mut cells = Vec::new();
    for (low, high) in [(64usize, 128usize), (128, 256), (256, 512)] {
        cells.push(run_cell(
            &format!("wm{low}-{high}"),
            async_policy(4, low, high),
            ops,
        ));
    }
    print_cells(&cells, json);
}

// ---------------------------------------------------------------------
// Part `tlb`: page-size-aware TLB model, 4 KiB vs transparent 2 MiB.
// ---------------------------------------------------------------------

/// 16 MiB scanned sequentially: larger than the 4 KiB dTLB reach, well
/// inside the 2 MiB sub-TLB reach once promoted.
const TLB_FILE_PAGES: u64 = 4096;
const TLB_CACHE_FRAMES: usize = 8192;
const TLB_PASSES: u64 = 4;

struct TlbCell {
    label: String,
    fault_cycles_per_page: f64,
    faults: u64,
    miss_rate: f64,
    scan_accesses: u64,
    scan_cycles_per_access: f64,
    promoted_runs: usize,
    huge_hits: u64,
}

/// One `tlb` cell: a single vcore touches the file once (cold, fault-path
/// cycles per page), then scans it `TLB_PASSES` times warm with mappings
/// intact (dTLB miss rate).
fn run_tlb_cell(label: &str, policy: MmioPolicy) -> TlbCell {
    let mut ctx = aquila_sim::FreeCtx::new(0x71B);
    let debts = Arc::new(aquila_sim::CoreDebts::new(1));
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::PmemDax,
        TLB_FILE_PAGES + 4096,
        TLB_CACHE_FRAMES,
        1,
        debts,
        policy,
    );
    rt.aquila.thread_enter(&mut ctx);
    let f = rt.open("/tlb", TLB_FILE_PAGES).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, TLB_FILE_PAGES, Prot::RW)
        .expect("mmap");
    rt.aquila
        .madvise(&mut ctx, addr, TLB_FILE_PAGES, Advice::Sequential)
        .expect("madvise");
    // Cold touch: cycles spent on accesses that fault, per touched page.
    // With promotion enabled one fault can map 512 pages, so most pages
    // never fault at all.
    let mut buf = [0u8; 64];
    let mut fault_cycles = 0u64;
    for p in 0..TLB_FILE_PAGES {
        let pf0 = ctx.stats.page_faults;
        let t0 = ctx.now();
        rt.aquila
            .read(&mut ctx, addr.add(p * 4096), &mut buf)
            .expect("touch");
        if ctx.stats.page_faults > pf0 {
            fault_cycles += (ctx.now() - t0).get();
        }
    }
    let faults = ctx.stats.page_faults;
    // Warm scan, mappings intact: pure translation behaviour.
    let (h0, m0) = rt.aquila.tlb_stats();
    let t0 = ctx.now();
    for _ in 0..TLB_PASSES {
        for p in 0..TLB_FILE_PAGES {
            rt.aquila
                .read(&mut ctx, addr.add(p * 4096), &mut buf)
                .expect("scan");
        }
    }
    let scan_cycles = (ctx.now() - t0).get();
    let (h1, m1) = rt.aquila.tlb_stats();
    let accesses = (h1 - h0) + (m1 - m0);
    TlbCell {
        label: label.to_string(),
        fault_cycles_per_page: fault_cycles as f64 / TLB_FILE_PAGES as f64,
        faults,
        miss_rate: (m1 - m0) as f64 / accesses.max(1) as f64,
        scan_accesses: accesses,
        scan_cycles_per_access: scan_cycles as f64 / accesses.max(1) as f64,
        promoted_runs: rt.aquila.promoted_runs(),
        huge_hits: rt.aquila.tlb_huge_hits(),
    }
}

fn part_tlb(_args: &BenchArgs, json: &mut JsonReport) {
    banner(
        "TLB sweep: sequential in-cache scan, 4 KiB mappings vs transparent 2 MiB promotion",
        "expected: >=4x lower dTLB miss rate and lower fault-path cycles per page with promotion on",
    );
    let cells = [
        run_tlb_cell("4k", MmioPolicy::default()),
        run_tlb_cell(
            "2m",
            MmioPolicy {
                huge_pages: true,
                promote_threshold: 64,
                ..MmioPolicy::default()
            },
        ),
    ];
    println!(
        "{:<6} {:>16} {:>8} {:>14} {:>14} {:>9} {:>10}",
        "policy", "fault cyc/page", "faults", "dTLB miss", "scan cyc/acc", "promoted", "huge hits"
    );
    for c in &cells {
        println!(
            "{:<6} {:>16.0} {:>8} {:>13.2}% {:>14.0} {:>9} {:>10}",
            c.label,
            c.fault_cycles_per_page,
            c.faults,
            c.miss_rate * 100.0,
            c.scan_cycles_per_access,
            c.promoted_runs,
            c.huge_hits
        );
        json.add_scalar(
            format!("tlb/{}/fault_cycles_per_page", c.label),
            c.fault_cycles_per_page,
        );
        json.add_scalar(format!("tlb/{}/faults", c.label), c.faults as f64);
        json.add_scalar(format!("tlb/{}/dtlb_miss_rate", c.label), c.miss_rate);
        json.add_scalar(
            format!("tlb/{}/scan_cycles_per_access", c.label),
            c.scan_cycles_per_access,
        );
        json.add_scalar(
            format!("tlb/{}/promoted_runs", c.label),
            c.promoted_runs as f64,
        );
        json.add_scalar(format!("tlb/{}/huge_tlb_hits", c.label), c.huge_hits as f64);
    }
    // Floor the promoted miss rate at one miss per scan so a perfect
    // zero-miss run reports a finite, interpretable ratio.
    let floor = 1.0 / cells[1].scan_accesses.max(1) as f64;
    let miss_improvement = cells[0].miss_rate / cells[1].miss_rate.max(floor);
    let fault_reduction = cells[0].fault_cycles_per_page / cells[1].fault_cycles_per_page.max(1e-9);
    println!("  -> dTLB miss rate : {miss_improvement:.1}x lower with 2 MiB promotion");
    println!("  -> fault-path work: {fault_reduction:.1}x fewer cycles per touched page");
    json.add_scalar("tlb/dtlb_miss_improvement", miss_improvement);
    json.add_scalar("tlb/fault_cycle_reduction", fault_reduction);
}

// ---------------------------------------------------------------------
// Part `latency`: cycle-exact fault-service latency distributions.
// ---------------------------------------------------------------------

/// Runs the random-store workload under `policy`, recording each fault's
/// service latency (cycles the faulting worker lost to the store that
/// faulted) in per-worker histograms merged in worker order.
fn run_latency_mmio(policy: MmioPolicy, ops_per_thread: u64) -> LatencyHist {
    let cores = WORKERS + policy.evictor_cores.len();
    let evictor_cores = policy.evictor_cores.clone();
    let mut engine = Engine::new(cores, 0x5EE9);
    let mut ctx = aquila_sim::FreeCtx::new(0x5EE9);
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::NvmeSpdk,
        FILE_PAGES + 4096,
        CACHE_FRAMES,
        cores,
        engine.debts(),
        policy,
    );
    let f = rt.open("/sweep-lat", FILE_PAGES).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, FILE_PAGES, Prot::RW)
        .expect("mmap");
    rt.aquila
        .madvise(&mut ctx, addr, FILE_PAGES, Advice::Random)
        .expect("madvise");

    let stop = Arc::new(AtomicBool::new(false));
    let live = Arc::new(AtomicUsize::new(WORKERS));
    let hists: Rc<RefCell<Vec<LatencyHist>>> = Rc::new(RefCell::new(
        (0..WORKERS).map(|_| LatencyHist::new()).collect(),
    ));
    let chunk = FILE_PAGES / WORKERS as u64;
    for t in 0..WORKERS {
        let aquila = Arc::clone(&rt.aquila);
        let hists = Rc::clone(&hists);
        let stop = Arc::clone(&stop);
        let live = Arc::clone(&live);
        let lo = t as u64 * chunk;
        let mut done = 0u64;
        engine.spawn(
            t,
            Box::new(move |ctx| {
                let page = lo + ctx.rng().below(chunk);
                let pf0 = ctx.counters().page_faults;
                let t0 = ctx.now();
                aquila
                    .write(ctx, addr.add(page * 4096 + 16), &page.to_le_bytes())
                    .expect("store");
                if ctx.counters().page_faults > pf0 {
                    hists.borrow_mut()[t].record(ctx.now() - t0);
                }
                done += 1;
                if done >= ops_per_thread {
                    if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        stop.store(true, Ordering::Release);
                    }
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    for &core in &evictor_cores {
        engine.spawn(
            core,
            rt.aquila.evictor(Arc::clone(&stop), Cycles::from_micros(2)),
        );
    }
    engine.run();
    let mut merged = LatencyHist::new();
    for h in hists.borrow().iter() {
        merged.merge(h);
    }
    merged
}

/// The linuxsim analog: same stores, same footprint, kernel mmap path
/// (inline reclaim, no evictor thread).
fn run_latency_linux(ops_per_thread: u64) -> LatencyHist {
    let mut engine = Engine::new(WORKERS, 0x5EE9);
    let mut ctx = aquila_sim::FreeCtx::new(0x5EE9);
    let kdev = KernelDevice::Nvme(Arc::new(NvmeDevice::optane(FILE_PAGES + 4096)));
    let mut cfg = LinuxConfig::linux(WORKERS, CACHE_FRAMES);
    cfg.readahead_pages = 1; // random access pattern, no window
    let lm = Arc::new(LinuxMmap::new(cfg, kdev, engine.debts()));
    let f = lm.open_file(FILE_PAGES).expect("open");
    let base = lm.mmap(&mut ctx, f, 0, FILE_PAGES, true).expect("mmap");

    let hists: Rc<RefCell<Vec<LatencyHist>>> = Rc::new(RefCell::new(
        (0..WORKERS).map(|_| LatencyHist::new()).collect(),
    ));
    let chunk = FILE_PAGES / WORKERS as u64;
    for t in 0..WORKERS {
        let lm = Arc::clone(&lm);
        let hists = Rc::clone(&hists);
        let lo = t as u64 * chunk;
        let mut done = 0u64;
        engine.spawn(
            t,
            Box::new(move |ctx| {
                let page = lo + ctx.rng().below(chunk);
                let pf0 = ctx.counters().page_faults;
                let t0 = ctx.now();
                lm.write(ctx, ((base + page) << 12) + 16, &page.to_le_bytes())
                    .expect("store");
                if ctx.counters().page_faults > pf0 {
                    hists.borrow_mut()[t].record(ctx.now() - t0);
                }
                done += 1;
                if done >= ops_per_thread {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    engine.run();
    let mut merged = LatencyHist::new();
    for h in hists.borrow().iter() {
        merged.merge(h);
    }
    merged
}

fn part_latency(args: &BenchArgs, json: &mut JsonReport) {
    let ops: u64 = if args.has_flag("--full") { 4000 } else { 1500 };
    banner(
        "Fault-service latency: cycle-exact distributions per backend",
        "expected: mmio beats linuxsim at p50 (lean fault path); sync pays a heavy eviction tail at p99 that the async qd4 pipeline trims",
    );
    let cells: [(&str, LatencyHist); 4] = [
        ("linuxsim", run_latency_linux(ops)),
        ("mmio-sync", run_latency_mmio(MmioPolicy::default(), ops)),
        (
            "mmio-async-qd4",
            run_latency_mmio(async_policy(4, 0, 0), ops),
        ),
        (
            "mmio-huge",
            run_latency_mmio(
                MmioPolicy {
                    huge_pages: true,
                    promote_threshold: 64,
                    ..MmioPolicy::default()
                },
                ops,
            ),
        ),
    ];
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "config", "faults", "p50", "p90", "p99", "p99.9", "max"
    );
    for (label, h) in &cells {
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            label,
            h.count(),
            h.quantile(0.5).get(),
            h.quantile(0.9).get(),
            h.quantile(0.99).get(),
            h.quantile(0.999).get(),
            h.quantile(1.0).get(),
        );
        json.add_hist(format!("latency/{label}"), h);
        for (q, name) in [(0.5, "p50"), (0.9, "p90"), (0.99, "p99"), (0.999, "p999")] {
            json.add_scalar(
                format!("latency/{label}/{name}_cycles"),
                h.quantile(q).get() as f64,
            );
        }
        json.add_scalar(format!("latency/{label}/faults"), h.count() as f64);
    }
    let p50_speedup =
        cells[0].1.quantile(0.5).get() as f64 / cells[1].1.quantile(0.5).get().max(1) as f64;
    let tail_speedup =
        cells[1].1.quantile(0.99).get() as f64 / cells[2].1.quantile(0.99).get().max(1) as f64;
    println!("  -> mmio-sync p50 is {p50_speedup:.2}x lower than linuxsim");
    println!("  -> async qd4 p99 is {tail_speedup:.2}x lower than sync");
    json.add_scalar("latency/sync_p50_speedup_over_linux", p50_speedup);
    json.add_scalar("latency/async_p99_speedup_over_sync", tail_speedup);
}

// ---------------------------------------------------------------------
// Part `scale`: fault throughput from 1 to 256 vcores (DESIGN.md §17).
// ---------------------------------------------------------------------

/// Vcore counts swept by the `scale` part.
const SCALE_CORES: [usize; 5] = [1, 4, 16, 64, 256];
const SCALE_PAGES: u64 = 8192;
const SCALE_OPS: u64 = 200;

struct ScaleCell {
    cores: usize,
    faults: u64,
    /// Minor-fault throughput in kilo-faults per second of virtual time.
    fault_kops: f64,
    makespan_ms: f64,
}

/// One scaling cell: `cores` vcores take minor faults over disjoint
/// slices of one warm shared file (every access faults; every fault is
/// a cache hit, so the fault path itself is the entire measured cost).
fn run_scale_cell(mmio: bool, cores: usize) -> ScaleCell {
    let cache = SCALE_PAGES as usize * 2 + 512;
    let debts = Arc::new(CoreDebts::new(cores));
    let micro = if mmio {
        // The scaled fault path: spill-free regions (no VMA tree, no
        // shared lock), per-vcore page-table shards, and batched
        // freelist work-stealing.
        let policy = MmioPolicy {
            spill_regions: true,
            pt_shards: cores.max(2),
            freelist_steal_batch: 8,
            ..MmioPolicy::default()
        };
        micro_aquila_policy(
            DeviceKind::PmemDax,
            cores,
            cache,
            1,
            SCALE_PAGES,
            debts,
            policy,
        )
    } else {
        micro_linux(false, Dev::Pmem, cores, cache, 1, SCALE_PAGES, debts)
    };
    prepare_micro(&micro, true);
    let r = run_micro(Arc::new(micro), cores, SCALE_OPS, true, 0x5CA1E);
    let faults = r.counters.page_faults;
    let secs = r.elapsed.as_secs_f64();
    ScaleCell {
        cores,
        faults,
        fault_kops: if secs > 0.0 {
            faults as f64 / secs / 1e3
        } else {
            0.0
        },
        makespan_ms: r.elapsed.as_secs_f64() * 1e3,
    }
}

/// Shared-lock acquisitions the fault fast path is forbidden to take
/// with the scaled policy on: VMA-tree walk locks and legacy shared
/// page-table acquisitions. Zero when the metrics registry is absent.
fn shared_lock_count() -> u64 {
    match aquila_sim::metrics::global() {
        Some(reg) => {
            let snap = reg.snapshot();
            snap.get("vma.tree.lock").unwrap_or(0) + snap.get("mmu.pt.shared_lock").unwrap_or(0)
        }
        None => 0,
    }
}

fn part_scale(args: &BenchArgs, json: &mut JsonReport) {
    banner(
        "Scale sweep: minor-fault throughput, 1 -> 256 vcores, disjoint regions of one shared file",
        "expected: mmio (spill-free regions + sharded page table) near-linear; linuxsim flatlines on its page-cache tree lock",
    );
    // `--cores=N` restricts the sweep to one vcore count (the
    // determinism suite runs single cells double-run bit-identical).
    let only: Option<usize> = args
        .rest
        .iter()
        .find_map(|a| a.strip_prefix("--cores="))
        .and_then(|v| v.parse().ok());
    let swept: Vec<usize> = SCALE_CORES
        .iter()
        .copied()
        .filter(|&c| only.is_none_or(|o| o == c))
        .collect();
    assert!(!swept.is_empty(), "--cores must name a swept vcore count");
    let shared_before = shared_lock_count();
    println!(
        "{:<10} {:>6} {:>10} {:>14} {:>14}",
        "engine", "vcores", "faults", "kfaults/s", "makespan(ms)"
    );
    let mut cells: Vec<(&str, ScaleCell)> = Vec::new();
    for &(label, mmio) in &[("mmio", true), ("linuxsim", false)] {
        for &cores in &swept {
            let c = run_scale_cell(mmio, cores);
            println!(
                "{:<10} {:>6} {:>10} {:>14.1} {:>14.3}",
                label, c.cores, c.faults, c.fault_kops, c.makespan_ms
            );
            json.add_scalar(format!("scale/{label}/c{cores}/faults"), c.faults as f64);
            json.add_scalar(format!("scale/{label}/c{cores}/fault_kops"), c.fault_kops);
            json.add_scalar(format!("scale/{label}/c{cores}/makespan_ms"), c.makespan_ms);
            cells.push((label, c));
        }
    }
    // The scaled fault fast path must never touch a shared lock: not
    // the VMA tree's walk locks, not the legacy shared page table.
    let shared_locks = shared_lock_count() - shared_before;
    json.add_scalar("scale/fastpath/shared_locks", shared_locks as f64);
    println!("  -> fault-fast-path shared-lock acquisitions: {shared_locks}");
    let kops = |eng: &str, n: usize| {
        cells
            .iter()
            .find(|(l, c)| *l == eng && c.cores == n)
            .map(|(_, c)| c.fault_kops)
    };
    if only.is_none() {
        for eng in ["mmio", "linuxsim"] {
            let base = kops(eng, 1).unwrap_or(0.0).max(1e-9);
            let s64 = kops(eng, 64).unwrap_or(0.0) / base;
            let s256 = kops(eng, 256).unwrap_or(0.0) / base;
            println!("  -> {eng}: 64 vcores = {s64:.1}x its 1-vcore throughput, 256 = {s256:.1}x");
            json.add_scalar(format!("scale/{eng}/speedup_64v1"), s64);
            json.add_scalar(format!("scale/{eng}/speedup_256v1"), s256);
        }
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    Runner::new(
        "sweep",
        "Sync vs async write-behind across queue depth and watermarks",
    )
    .part("qd", "sync vs async x NVMe queue depth {1,2,4,8}", part_qd)
    .part(
        "watermark",
        "async watermark placement at queue depth 4",
        part_watermark,
    )
    .part(
        "tlb",
        "dTLB miss rate and fault cycles, 4 KiB vs 2 MiB",
        part_tlb,
    )
    .part(
        "latency",
        "fault-service latency distributions: linuxsim vs mmio sync/async/huge",
        part_latency,
    )
    .part(
        "scale",
        "fault throughput 1 -> 256 vcores: mmio near-linear vs linuxsim flatlining",
        part_scale,
    )
    // The multi-tenant QoS experiment also ships as its own `serve`
    // binary (with a `diurnal` part); this alias keeps the serving
    // story reachable from the sweep entry point.
    .part(
        "serve",
        "multi-tenant QoS isolation (alias of the serve binary's qos part)",
        super::serve::part_qos,
    )
    .part(
        "integrity",
        "silent-corruption storm, mirrored + scrubbed (alias of the serve binary's integrity part)",
        super::serve::part_integrity,
    )
}
