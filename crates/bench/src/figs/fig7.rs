//! Figure 7: RocksDB per-read cycle breakdown — user-space caching +
//! read/write syscalls vs Aquila mmio.
//!
//! Paper: user-space cache configuration needs 65.4 K cycles per get
//! (device I/O 4.8 K, cache management 45.2 K — of which syscalls ~13 K
//! and user-space lookups/evictions ~32 K — and get logic 15.3 K).
//! Aquila needs 3.9 K for I/O, ~17.5 K for cache management, and 18.5 K
//! for get (extra TLB misses), i.e. 2.58x fewer cache-management cycles
//! and ~40% higher throughput.

use std::sync::Arc;

use crate::kvscen::{build_stone, load_stone, warm_stone, Backend, Dev};
use crate::report::{banner, fig7_bars, JsonReport};
use crate::{BenchArgs, Runner};
use aquila_sim::{Breakdown, CoreDebts, FreeCtx};
use aquila_ycsb::{run_ops, Distribution, Workload};

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    Runner::new("fig7", "RocksDB per-get cycle breakdown").part(
        "breakdown",
        "per-get cycles, user-space cache vs Aquila",
        run_breakdown,
    )
}

fn run_breakdown(args: &BenchArgs, json: &mut JsonReport) {
    let full = args.has_flag("--full");
    let records: u64 = if full { 65_536 } else { 16_384 };
    // Cache = 1/4 of the dataset (the paper's 8 GB cache / 32 GB dataset).
    let dataset_pages = records / 2; // ~2 records per 4 KiB of SST data.
    let cache_frames = (dataset_pages / 4) as usize;
    let ops = if full { 40_000 } else { 12_000 };

    banner(
        "Figure 7: RocksDB per-get cycle breakdown (YCSB-C, dataset 4x cache, pmem)",
        "user-cache 65.4K total (io 4.8K / cache 45.2K / get 15.3K); aquila ~40K (3.9/17.5/18.5), 2.58x less cache mgmt",
    );

    let mut totals = Vec::new();
    for backend in [Backend::DirectIo, Backend::Aquila] {
        let debts = Arc::new(CoreDebts::new(1));
        let scen = build_stone(backend, Dev::Pmem, 1, cache_frames, 1 << 20, false, debts);
        let mut ctx = FreeCtx::new(7);
        load_stone(&mut ctx, &scen.db, records);
        // Warm into steady state, then measure.
        warm_stone(&mut ctx, &scen.db, records / 4);
        scen.reset_timing();
        let before: Breakdown = ctx.breakdown.clone();
        let db = Arc::clone(&scen.db);
        let report = run_ops(
            &mut ctx,
            Workload::C,
            Distribution::Uniform,
            records,
            ops,
            42,
            |ctx, op| {
                let _ = db.get(ctx, &op.key);
            },
        );
        let delta = ctx.breakdown.since(&before);
        json.add_breakdown(&scen.label, &delta, ops);
        json.add_counters(&scen.label, &ctx.stats);
        json.add_hist(&scen.label, &report.latency);
        let (dev, cache, get) = fig7_bars(&delta, ops);
        let total = dev + cache + get;
        println!(
            "{:<22} {:>8} cyc/get   [device-io {:>6} | cache-mgmt {:>6} | get {:>6}]   {:.1} kops/s",
            scen.label,
            total,
            dev,
            cache,
            get,
            report.kops_per_sec()
        );
        totals.push((backend, total as f64, cache as f64, report.kops_per_sec()));
    }
    let (_, _, ucache_cm, ucache_kops) = totals[0];
    let (_, _, aq_cm, aq_kops) = totals[1];
    println!();
    println!(
        "  -> cache-management cycles: {:.2}x fewer with Aquila (paper: 2.58x)",
        ucache_cm / aq_cm
    );
    println!(
        "  -> end-to-end throughput:   {:.0}% higher with Aquila (paper: ~40%)",
        (aq_kops / ucache_kops - 1.0) * 100.0
    );
    json.add_scalar("cache_mgmt_ratio", ucache_cm / aq_cm);
    json.add_scalar("throughput_gain_pct", (aq_kops / ucache_kops - 1.0) * 100.0);
}
