//! Figure 5: RocksDB (StoneDB) YCSB-C throughput and latency — explicit
//! read/write + user cache vs Linux mmap vs Aquila, over NVMe and pmem.
//!
//! Paper: (a) dataset fits in the cache — mmap beats read/write, Aquila
//! up to 1.15x over mmap; (b) dataset 4x the cache — mmap collapses (it
//! prefetches 128 KiB for 1 KiB reads), Aquila beats direct I/O by up to
//! 1.65x on pmem at 32 threads while NVMe is device-bound (0.96-1.06x).
//! Aquila also delivers consistently lower average and tail latency.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use crate::kvscen::{build_stone, load_stone, warm_stone, Backend, Dev};
use crate::report::{banner, print_rows, print_speedup, JsonReport, Row};
use crate::Runner;
use aquila_kvstore::StoneDb;
use aquila_sim::{CoreDebts, Engine, FreeCtx, LatencyHist, SimCtx, Step};
use aquila_ycsb::workload::{Distribution, KeyGen, Workload};

struct Scale {
    records_fit: u64,
    records_nofit: u64,
    /// Cache frames for the out-of-memory case (the fit case sizes the
    /// cache to the dataset, like the paper's 8 GB / 8 GB setup).
    cache_frames: usize,
    ops_per_thread: u64,
    threads: Vec<usize>,
}

/// SST data pages a dataset of `records` 1 KiB records occupies (3 records
/// per 4 KiB block) plus metadata slack.
fn dataset_pages(records: u64) -> u64 {
    records / 3 + records / 48 + 64
}

fn scale(full: bool) -> Scale {
    if full {
        Scale {
            records_fit: 16_384,
            records_nofit: 65_536,
            cache_frames: 8_192,
            ops_per_thread: 3_000,
            threads: vec![1, 4, 8, 16, 32],
        }
    } else {
        Scale {
            records_fit: 8_192,
            records_nofit: 32_768,
            cache_frames: 4_096,
            ops_per_thread: 1_200,
            threads: vec![1, 8, 32],
        }
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    // `fit` is (a), `nofit` is (b); the historical `--fit`/`--nofit`
    // flag spellings select the same parts.
    Runner::new("fig5", "YCSB-C on StoneDB across backends")
        .part("fit", "(a) dataset fits in the cache", |args, r| {
            run_case(&scale(args.has_flag("--full")), true, r)
        })
        .part("nofit", "(b) dataset 4x the cache", |args, r| {
            run_case(&scale(args.has_flag("--full")), false, r)
        })
}

fn run_case(sc: &Scale, fit: bool, report: &mut JsonReport) {
    let records = if fit {
        sc.records_fit
    } else {
        sc.records_nofit
    };
    // Fit case: cache == dataset (paper: 8 GB dataset, 8 GB cache, with
    // the kernel's share trimming mmap's effective size). Otherwise the
    // dataset is ~4x the cache.
    let cache_frames = if fit {
        (dataset_pages(records) + dataset_pages(records) / 50) as usize
    } else {
        sc.cache_frames
    };
    banner(
        &format!(
            "Figure 5({}): YCSB-C on StoneDB, {} records, cache {} frames",
            if fit { "a" } else { "b" },
            records,
            cache_frames
        ),
        if fit {
            "mmap > read/write; aquila up to 1.15x over mmap"
        } else {
            "mmap collapses (128KiB readahead); aquila 1.18x-1.65x over read/write on pmem, ~1x on NVMe (device-bound)"
        },
    );
    for dev in [Dev::Pmem, Dev::Nvme] {
        println!("--- device: {} ---", dev.name());
        for &threads in &sc.threads {
            let mut rows = Vec::new();
            for backend in Backend::ALL {
                // Out-of-memory mmap is pathological; the paper still
                // plots it, so we run it (scaled ops keep it fast).
                let debts = Arc::new(CoreDebts::new(threads));
                let scen = build_stone(backend, dev, threads, cache_frames, 2 << 20, fit, debts);
                let mut setup = FreeCtx::new(5);
                load_stone(&mut setup, &scen.db, records);
                if fit {
                    warm_stone(&mut setup, &scen.db, records);
                }
                scen.reset_timing();
                let r = run_threads(&scen.db, records, threads, sc.ops_per_thread);
                let case = format!(
                    "5{}/{}/{} threads={threads}",
                    if fit { "a" } else { "b" },
                    dev.name(),
                    scen.label
                );
                report.add_hist(&case, &r.1);
                let row = Row::from_hist(
                    format!("{} threads={threads}", scen.label),
                    threads as u64 * sc.ops_per_thread,
                    r.0,
                    &r.1,
                );
                report.add_row(&Row {
                    label: case,
                    ..row.clone()
                });
                rows.push(row);
            }
            print_rows(&rows);
            print_speedup("aquila vs read/write", &rows[2], &rows[0]);
            print_speedup("aquila vs mmap", &rows[2], &rows[1]);
        }
        println!();
    }
}

fn run_threads(
    db: &Arc<StoneDb>,
    records: u64,
    threads: usize,
    ops_per_thread: u64,
) -> (aquila_sim::Cycles, LatencyHist) {
    let mut engine = Engine::new(threads, 0xF5);
    let hist: Rc<RefCell<LatencyHist>> = Rc::new(RefCell::new(LatencyHist::new()));
    for t in 0..threads {
        let db = Arc::clone(db);
        let hist = Rc::clone(&hist);
        let mut gen = KeyGen::new(Workload::C, records, Distribution::Uniform);
        let mut rng = aquila_sim::Rng64::new(0x55AA ^ (t as u64) << 8);
        let mut done = 0u64;
        engine.spawn(
            t,
            Box::new(move |ctx| {
                let op = gen.next_op(&mut rng);
                let t0 = ctx.now();
                let _ = db.get(ctx, &op.key);
                hist.borrow_mut().record(ctx.now() - t0);
                done += 1;
                if done >= ops_per_thread {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    let report = engine.run();
    let h = hist.borrow().clone();
    (report.makespan, h)
}
