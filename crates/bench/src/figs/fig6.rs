//! Figure 6: Ligra BFS with the application heap extended over storage —
//! Linux mmap vs Aquila (pmem and NVMe) vs DRAM-only, 1-16 threads, with
//! a DRAM cache of 1/8 (a) or 1/4 (b) of the heap, plus the 16-thread
//! execution-time breakdown (c).
//!
//! Paper: with the small cache Aquila is 1.56x (1T), 2.54x (8T), 4.14x
//! (16T) faster than mmap on pmem; with the larger cache up to 2.3x.
//! Aquila narrows the gap to DRAM-only from 11.8x to 2.8x at 16 threads,
//! cutting system+idle time by 8.31x (mmap: 62% system + idle vs user
//! 10.6%; Aquila: 56% user).

use std::sync::Arc;

use crate::report::{banner, JsonReport};
use crate::{BenchArgs, Dev, Runner};
use aquila::{AquilaRegion, AquilaRuntime, DeviceKind};
use aquila_devices::{NvmeDevice, PmemDevice};
use aquila_graph::{bfs, rmat_edges, CsrGraph, RmatParams, Team};
use aquila_linuxsim::{KernelDevice, LinuxConfig, LinuxMmap, LinuxRegion};
use aquila_sim::{CoreDebts, CostCat, DramRegion, MemRegion};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heap {
    Mmap(Dev),
    Aquila(Dev),
    Dram,
}

impl Heap {
    fn label(self) -> String {
        match self {
            Heap::Mmap(d) => format!("mmap/{}", d.name()),
            Heap::Aquila(d) => format!("aquila/{}", d.name()),
            Heap::Dram => "dram-only".into(),
        }
    }
}

fn build_region(
    heap: Heap,
    threads: usize,
    region_pages: u64,
    cache_frames: usize,
) -> Arc<dyn MemRegion> {
    let debts = Arc::new(CoreDebts::new(threads));
    let mut ctx = aquila_sim::FreeCtx::new(0xF6);
    match heap {
        Heap::Dram => Arc::new(DramRegion::new(region_pages * 4096)),
        Heap::Mmap(dev) => {
            let kdev = match dev {
                Dev::Nvme => KernelDevice::Nvme(Arc::new(NvmeDevice::optane(region_pages + 64))),
                Dev::Pmem => {
                    KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(region_pages + 64)))
                }
            };
            // The heap is a random-access mapping; Linux fault-around for
            // anonymous-style access is modest (16 pages).
            let mut cfg = LinuxConfig::linux(threads, cache_frames);
            cfg.readahead_pages = 16;
            let lm = Arc::new(LinuxMmap::new(cfg, kdev, debts));
            let f = lm.open_file(region_pages).expect("file");
            Arc::new(LinuxRegion::map(&mut ctx, lm, f, region_pages).expect("map"))
        }
        Heap::Aquila(dev) => {
            let kind = match dev {
                Dev::Nvme => DeviceKind::NvmeSpdk,
                Dev::Pmem => DeviceKind::PmemDax,
            };
            let rt = AquilaRuntime::build(
                &mut ctx,
                kind,
                region_pages + 4096,
                cache_frames,
                threads,
                debts,
            );
            let f = rt.open("/ligra-heap", region_pages).expect("open");
            let region =
                AquilaRegion::map(&mut ctx, Arc::clone(&rt.aquila), f, region_pages).expect("map");
            // Graph traversal is random access; advise accordingly (a
            // one-line initialization-time hint, like the paper's
            // minimal-modification ports).
            rt.aquila
                .madvise(
                    &mut ctx,
                    region.base(),
                    region_pages,
                    aquila::Advice::Random,
                )
                .expect("madvise");
            Arc::new(region)
        }
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    // The historical `--large` flag spelling selects the `large` part.
    Runner::new("fig6", "Ligra BFS with the heap over storage")
        .part("small", "(a) DRAM cache = heap/8", |args, r| {
            run_case(args, false, r)
        })
        .part("large", "(b) DRAM cache = heap/4", |args, r| {
            run_case(args, true, r)
        })
}

fn run_case(args: &BenchArgs, big_cache: bool, json: &mut JsonReport) {
    let full = args.has_flag("--full");
    let (scale_exp, edge_factor) = if full { (19, 10) } else { (18, 10) };
    let n = 1u64 << scale_exp;
    let m = n * edge_factor;
    let threads_list: Vec<usize> = if full {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 8, 16]
    };

    // Heap: graph + parents, rounded up.
    let heap_bytes = 16 + (n + 1) * 8 + m * 4 + n * 4 + 8192;
    let region_pages = heap_bytes.div_ceil(4096) + 16;
    let divisor = if big_cache { 4 } else { 8 };
    let cache_frames = (region_pages / divisor).max(512) as usize;

    banner(
        &format!(
            "Figure 6({}): Ligra BFS, R-MAT 2^{scale_exp} vertices x{edge_factor} edges, cache = heap/{divisor}",
            if big_cache { "b" } else { "a" }
        ),
        "aquila vs mmap (pmem): 1.56x @1T, 2.54x @8T, 4.14x @16T (small cache); gap to DRAM shrinks 11.8x -> 2.8x",
    );

    let edges = rmat_edges(scale_exp, m, RmatParams::default(), 0xF6);
    let heaps = [
        Heap::Mmap(Dev::Pmem),
        Heap::Mmap(Dev::Nvme),
        Heap::Aquila(Dev::Pmem),
        Heap::Aquila(Dev::Nvme),
        Heap::Dram,
    ];

    let mut times: Vec<(String, usize, f64)> = Vec::new();
    for &threads in &threads_list {
        for heap in heaps {
            let region = build_region(heap, threads, region_pages, cache_frames);
            let mut team = Team::new(threads, 0x6F);
            let g = CsrGraph::build(team.ctx(0), Arc::clone(&region), n, &edges);
            team.barrier();
            let t0 = team.now();
            let bd0 = team.breakdown();
            let result = bfs(&mut team, &g, 0);
            let secs = (team.now() - t0).as_secs_f64();
            times.push((heap.label(), threads, secs));
            json.add_scalar(format!("{}/threads={threads}/bfs_secs", heap.label()), secs);
            println!(
                "{:<16} threads={threads:<3} BFS time {secs:>8.3}s  visited {} rounds {}",
                heap.label(),
                result.visited,
                result.rounds
            );
            // Part (c): breakdown at the highest thread count.
            if threads == *threads_list.last().expect("threads") {
                let bd = team.breakdown().since(&bd0);
                json.add_breakdown(format!("6c/{}/threads={threads}", heap.label()), &bd, 1);
                let total = bd.total().get().max(1) as f64;
                let user = bd.get(CostCat::App).get() as f64;
                let idle = bd.get(CostCat::Idle).get() as f64;
                let system = total - user - idle;
                println!(
                    "    breakdown: user {:.1}% | system {:.1}% | idle {:.1}%",
                    100.0 * user / total,
                    100.0 * system / total,
                    100.0 * idle / total
                );
            }
        }
        // Ratios at this thread count.
        let get = |label: &str| {
            times
                .iter()
                .rev()
                .find(|(l, t, _)| l == label && *t == threads)
                .map(|&(_, _, s)| s)
                .unwrap_or(f64::NAN)
        };
        println!(
            "  -> aquila vs mmap (pmem): {:.2}x faster | (nvme): {:.2}x | aquila-pmem vs dram: {:.2}x slower",
            get("mmap/pmem") / get("aquila/pmem"),
            get("mmap/nvme") / get("aquila/nvme"),
            get("aquila/pmem") / get("dram-only"),
        );
        json.add_scalar(
            format!("threads={threads}/aquila_vs_mmap_pmem"),
            get("mmap/pmem") / get("aquila/pmem"),
        );
        json.add_scalar(
            format!("threads={threads}/aquila_vs_mmap_nvme"),
            get("mmap/nvme") / get("aquila/nvme"),
        );
        println!();
    }
}
