//! Figure 9: Kreon (Krill) over kmmap vs over Aquila — all YCSB
//! workloads, single thread, dataset 2x the cache, NVMe and pmem.
//!
//! Paper: with NVMe the device bounds throughput (Aquila ~1.02x) but
//! latency improves (1.29x average, 3.78x p99.9); with pmem Aquila gets
//! 1.22x throughput, 1.43x average latency, and 13.72x p99.9 (kmmap's
//! lazy-writeback bursts land on the faulting thread's tail).

use std::sync::Arc;

use crate::report::{banner, print_rows, JsonReport, Row};
use crate::{BenchArgs, Dev, Runner};
use aquila::{AquilaRegion, AquilaRuntime, DeviceKind};
use aquila_devices::{NvmeDevice, PmemDevice};
use aquila_kvstore::{Krill, KrillConfig};
use aquila_linuxsim::{KernelDevice, LinuxConfig, LinuxMmap, LinuxRegion};
use aquila_sim::{CoreDebts, FreeCtx, MemRegion};
use aquila_ycsb::workload::{value_of, KeyGen, OpKind, VALUE_SIZE};
use aquila_ycsb::{run_ops, Distribution, Workload};

struct Setup {
    krill: Krill,
    label: String,
    reset: Box<dyn Fn()>,
}

fn build(aquila: bool, dev: Dev, region_pages: u64, cache_frames: usize) -> Setup {
    let debts = Arc::new(CoreDebts::new(1));
    let mut ctx = FreeCtx::new(0xF9);
    let cfg = KrillConfig {
        l0_entries: 512,
        max_runs: 4,
        log_frac: 0.6,
    };
    if aquila {
        let kind = match dev {
            Dev::Nvme => DeviceKind::NvmeSpdk,
            Dev::Pmem => DeviceKind::PmemDax,
        };
        let rt = AquilaRuntime::build(&mut ctx, kind, region_pages + 4096, cache_frames, 1, debts);
        let f = rt.open("/krill.db", region_pages).expect("open");
        let region =
            AquilaRegion::map(&mut ctx, Arc::clone(&rt.aquila), f, region_pages).expect("region");
        // Kreon's accesses (index pages, log offsets) are random; the
        // port advises the mapping accordingly (kmmap does no readahead).
        rt.aquila
            .madvise(
                &mut ctx,
                region.base(),
                region_pages,
                aquila::Advice::Random,
            )
            .expect("madvise");
        let access = Arc::clone(&rt.access);
        Setup {
            krill: Krill::new(Arc::new(region) as Arc<dyn MemRegion>, cfg),
            label: format!("aquila/{}", dev.name()),
            reset: Box::new(move || access.reset_timing()),
        }
    } else {
        let kdev = match dev {
            Dev::Nvme => KernelDevice::Nvme(Arc::new(NvmeDevice::optane(region_pages + 4096))),
            Dev::Pmem => KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(region_pages + 4096))),
        };
        let lm = Arc::new(LinuxMmap::new(
            LinuxConfig::kmmap(1, cache_frames),
            kdev.clone(),
            debts,
        ));
        let f = lm.open_file(region_pages).expect("file");
        let region = LinuxRegion::map(&mut ctx, Arc::clone(&lm), f, region_pages).expect("region");
        let lm2 = Arc::clone(&lm);
        Setup {
            krill: Krill::new(Arc::new(region) as Arc<dyn MemRegion>, cfg),
            label: format!("kmmap/{}", dev.name()),
            reset: Box::new(move || {
                lm2.reset_timing();
                kdev.reset_timing();
            }),
        }
    }
}

/// Builds this binary's part registry (dispatched by `cli::main_for`).
pub fn runner() -> Runner<'static> {
    Runner::new("fig9", "Krill on kmmap vs Aquila, YCSB A-F")
        .part("nvme", "YCSB A-F over Optane NVMe", |args, r| {
            run_device(args, Dev::Nvme, r)
        })
        .part("pmem", "YCSB A-F over DAX pmem", |args, r| {
            run_device(args, Dev::Pmem, r)
        })
}

fn run_device(args: &BenchArgs, dev: Dev, json: &mut JsonReport) {
    let full = args.has_flag("--full");
    let records: u64 = if full { 16_384 } else { 6_144 };
    let ops: u64 = if full { 8_000 } else { 3_000 };
    // Dataset ~ records * 1KiB of log plus index; region sized with room,
    // cache = half the touched pages (the paper's 16 GB data / 8 GB cache).
    let region_pages: u64 = (records * 3).max(8192);
    // The store touches ~records/3 log pages plus index runs; a cache of
    // records/6 frames puts the dataset at ~2x the cache, like the
    // paper's 16 GB data / 8 GB cache.
    let cache_frames = (records / 6) as usize;

    banner(
        &format!(
            "Figure 9 ({}): Krill (Kreon) on kmmap vs Aquila, YCSB A-F, 1 thread, dataset 2x cache",
            dev.name()
        ),
        "NVMe: ~1.02x ops, 1.29x avg, 3.78x p99.9 latency; pmem: 1.22x ops, 1.43x avg, 13.72x p99.9",
    );

    {
        println!("--- device: {} ---", dev.name());
        let mut rows: Vec<Row> = Vec::new();
        let mut ratios = Vec::new();
        for w in Workload::ALL {
            let mut pair = Vec::new();
            for aquila in [false, true] {
                let setup = build(aquila, dev, region_pages, cache_frames);
                let mut ctx = FreeCtx::new(0x99);
                // Load.
                for i in 0..records {
                    let k = KeyGen::key_of(i);
                    setup
                        .krill
                        .put(&mut ctx, &k, &value_of(&k, VALUE_SIZE))
                        .expect("load");
                }
                (setup.reset)();
                let krill = &setup.krill;
                let report = run_ops(
                    &mut ctx,
                    w,
                    Distribution::Zipfian,
                    records,
                    ops,
                    0xF9,
                    |ctx, op| match op.kind {
                        OpKind::Read => {
                            let _ = krill.get(ctx, &op.key);
                        }
                        OpKind::Update | OpKind::Insert => {
                            let _ = krill.put(ctx, &op.key, &value_of(&op.key, VALUE_SIZE));
                        }
                        OpKind::Scan => {
                            let _ = krill.scan(ctx, &op.key, 20);
                        }
                        OpKind::ReadModifyWrite => {
                            let _ = krill.get(ctx, &op.key);
                            let _ = krill.put(ctx, &op.key, &value_of(&op.key, VALUE_SIZE));
                        }
                    },
                );
                let row = Row::from_hist(
                    format!("{} workload {}", setup.label, w.label()),
                    ops,
                    report.elapsed,
                    &report.latency,
                );
                json.add_hist(&row.label, &report.latency);
                pair.push(row.clone());
                rows.push(row);
            }
            ratios.push((
                w,
                pair[1].kops / pair[0].kops,
                pair[0].avg.get() as f64 / pair[1].avg.get().max(1) as f64,
                pair[0].p999.get() as f64 / pair[1].p999.get().max(1) as f64,
            ));
        }
        print_rows(&rows);
        json.add_rows(&rows);
        let mut t_sum = 0.0;
        let mut a_sum = 0.0;
        let mut p_sum = 0.0;
        for (w, t, a, p) in &ratios {
            println!(
                "  -> {}: aquila/kmmap throughput {t:.2}x, avg latency {a:.2}x lower, p99.9 {p:.2}x lower",
                w.label()
            );
            json.add_scalar(format!("{}/{}/throughput_ratio", dev.name(), w.label()), *t);
            t_sum += t;
            a_sum += a;
            p_sum += p;
        }
        let n = ratios.len() as f64;
        println!(
            "  => average: throughput {:.2}x, avg latency {:.2}x, p99.9 {:.2}x",
            t_sum / n,
            a_sum / n,
            p_sum / n
        );
        json.add_scalar(format!("{}/avg_throughput_ratio", dev.name()), t_sum / n);
        json.add_scalar(format!("{}/avg_latency_ratio", dev.name()), a_sum / n);
        json.add_scalar(format!("{}/avg_p999_ratio", dev.name()), p_sum / n);
        println!();
    }
}
