//! The figure/sweep binaries as library modules.
//!
//! Each binary under `src/bin/` used to carry its own `fn main()` with
//! an identical shape: build a [`crate::Runner`], register parts, parse
//! [`crate::BenchArgs`], run. Those mains are now one-line shims over
//! [`crate::cli::main_for`], which looks the binary up in [`BINS`] —
//! so flag handling (`--json`/`--trace`/`--race`/`--faults`/part
//! selection) lives in exactly one place and a new binary (like
//! `serve`'s `sweep serve` sibling) gets the whole surface for free.

pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod serve;
pub mod sweep;
pub mod table1;

use crate::Runner;

/// One registered binary: its name, the part selector used when the
/// command line names none, and the function building its part registry.
pub struct Bin {
    /// Binary name (matches the `src/bin/<name>.rs` shim).
    pub name: &'static str,
    /// Default part selector (usually `"all"`).
    pub default: &'static str,
    /// Builds the binary's part registry.
    pub build: fn() -> Runner<'static>,
}

/// Every part-registry binary the bench crate ships.
pub const BINS: &[Bin] = &[
    Bin {
        name: "fig5",
        default: "all",
        build: fig5::runner,
    },
    Bin {
        name: "fig6",
        default: "small",
        build: fig6::runner,
    },
    Bin {
        name: "fig7",
        default: "all",
        build: fig7::runner,
    },
    Bin {
        name: "fig8",
        default: "all",
        build: fig8::runner,
    },
    Bin {
        name: "fig9",
        default: "all",
        build: fig9::runner,
    },
    Bin {
        name: "fig10",
        default: "all",
        build: fig10::runner,
    },
    Bin {
        name: "table1",
        default: "all",
        build: table1::runner,
    },
    Bin {
        name: "sweep",
        default: "all",
        build: sweep::runner,
    },
    Bin {
        name: "serve",
        default: "all",
        build: serve::runner,
    },
];

/// Looks a binary up by name.
pub fn find(name: &str) -> Option<&'static Bin> {
    BINS.iter().find(|b| b.name == name)
}
