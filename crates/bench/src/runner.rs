//! Part registry shared by the figure binaries.
//!
//! Every `fig*` binary is a set of named *parts* (`a`/`b`/`c`,
//! `fit`/`nofit`, per-device cases, ...) behind the same CLI shape. The
//! binaries used to hand-roll a `match args.selector(..)` dispatch each;
//! a [`Runner`] replaces that with registration:
//!
//! ```no_run
//! use aquila_bench::{BenchArgs, Runner};
//!
//! Runner::new("fig8", "Page-fault overhead breakdowns")
//!     .part("a", "dataset fits in memory", |_args, report| {
//!         report.add_scalar("8a/demo", 1.0);
//!     })
//!     .run(BenchArgs::parse(), "all");
//! ```
//!
//! Selection rules, shared by every binary:
//!
//! - positional selectors name parts (`fig8 a b`); `all` selects every
//!   part; no selector runs the `default` set passed to [`Runner::run`];
//! - a `--<part>` flag also selects that part, so the historical
//!   `fig5 --nofit` / `fig10 --fit` spellings keep working;
//! - `--list` prints the registered parts and exits without running;
//! - an unknown selector prints usage and exits 2.
//!
//! Parts run in registration order regardless of selector order, each at
//! most once, all against the same [`JsonReport`]; the runner calls
//! [`BenchArgs::finish`] at the end so artifacts and the race summary
//! behave exactly as before.

use crate::cli::BenchArgs;
use crate::report::JsonReport;

type PartFn<'a> = Box<dyn FnMut(&BenchArgs, &mut JsonReport) + 'a>;

struct Part<'a> {
    name: &'static str,
    what: &'static str,
    body: PartFn<'a>,
}

/// A figure binary as a registry of named parts.
pub struct Runner<'a> {
    bin: &'static str,
    report: JsonReport,
    parts: Vec<Part<'a>>,
}

impl<'a> Runner<'a> {
    /// Creates a runner for binary `bin`; `title` seeds the JSON record.
    pub fn new(bin: &'static str, title: &str) -> Runner<'a> {
        Runner {
            bin,
            report: JsonReport::new(bin, title),
            parts: Vec::new(),
        }
    }

    /// Registers a part. `name` is the CLI selector; `what` the one-line
    /// description shown by `--list`.
    pub fn part(
        mut self,
        name: &'static str,
        what: &'static str,
        body: impl FnMut(&BenchArgs, &mut JsonReport) + 'a,
    ) -> Runner<'a> {
        debug_assert!(
            !self.parts.iter().any(|p| p.name == name),
            "duplicate part {name:?}"
        );
        self.parts.push(Part {
            name,
            what,
            body: Box::new(body),
        });
        self
    }

    /// Resolves selection, runs the chosen parts in registration order,
    /// and writes the requested artifacts. `default` is the selector
    /// used when the command line names no part (usually `"all"`).
    pub fn run(mut self, args: BenchArgs, default: &str) {
        if args.has_flag("--list") {
            println!("parts of {}:", self.bin);
            for p in &self.parts {
                println!("  {:<8} {}", p.name, p.what);
            }
            println!("  {:<8} every part above", "all");
            return;
        }
        let mut selected: Vec<String> = args
            .rest
            .iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect();
        // `--fit`-style flags select the part of the same name.
        for p in &self.parts {
            if args.has_flag(&format!("--{}", p.name)) {
                selected.push(p.name.to_string());
            }
        }
        if selected.is_empty() {
            selected.push(default.to_string());
        }
        let all = selected.iter().any(|s| s == "all");
        for s in &selected {
            if s != "all" && !self.parts.iter().any(|p| p.name == s) {
                eprintln!(
                    "error: {}: unknown part {s:?}\nusage: {} [{}|all] [--list] [--full] [--json <path>] [--trace <path>] [--race] [--faults <spec>]",
                    self.bin,
                    self.bin,
                    self.parts
                        .iter()
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join("|"),
                );
                std::process::exit(2);
            }
        }
        for p in &mut self.parts {
            if all || selected.iter().any(|s| s == p.name) {
                (p.body)(&args, &mut self.report);
            }
        }
        args.finish(&self.report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> BenchArgs {
        BenchArgs::from_vec(args.iter().map(|s| s.to_string()).collect())
    }

    fn runner<'a>(ran: &'a std::cell::RefCell<Vec<&'static str>>) -> Runner<'a> {
        Runner::new("figX", "test")
            .part("a", "first", move |_, _| ran.borrow_mut().push("a"))
            .part("b", "second", move |_, _| ran.borrow_mut().push("b"))
    }

    #[test]
    fn default_selector_and_registration_order() {
        let ran = std::cell::RefCell::new(Vec::new());
        runner(&ran).run(argv(&[]), "all");
        assert_eq!(*ran.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn positional_selector_picks_one_part() {
        let ran = std::cell::RefCell::new(Vec::new());
        runner(&ran).run(argv(&["b"]), "all");
        assert_eq!(*ran.borrow(), vec!["b"]);
    }

    #[test]
    fn flag_selects_part_and_each_runs_once() {
        let ran = std::cell::RefCell::new(Vec::new());
        runner(&ran).run(argv(&["b", "--b", "--a"]), "all");
        assert_eq!(*ran.borrow(), vec!["a", "b"]);
    }

    #[test]
    fn narrow_default_runs_only_that_part() {
        let ran = std::cell::RefCell::new(Vec::new());
        runner(&ran).run(argv(&["--full"]), "a");
        assert_eq!(*ran.borrow(), vec!["a"]);
    }

    #[test]
    fn list_runs_nothing() {
        let ran = std::cell::RefCell::new(Vec::new());
        runner(&ran).run(argv(&["--list", "a"]), "all");
        assert!(ran.borrow().is_empty());
    }
}
