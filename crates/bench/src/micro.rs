//! The paper's custom microbenchmark: threads issuing load/store
//! instructions at random offsets of a memory-mapped region, where
//! *every* access takes a page fault (section 5). Used by Figures 8
//! and 10.
//!
//! "Fits in memory" means the DRAM cache already holds every file page,
//! so faults are minor; "does not fit" makes faults major with eviction.
//! To force faults on every access the harness warms the *cache* and then
//! drops the *mappings* (munmap + mmap keeps shared file pages cached in
//! both engines), mirroring how the paper's microbenchmark guarantees a
//! fault per access.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use aquila::{Advice, Aquila, AquilaRuntime, DeviceKind, FileId, Gva, MmioPolicy, Prot};
use aquila_devices::{NvmeDevice, PmemDevice, StorageAccess};
use aquila_linuxsim::{KernelDevice, LinuxConfig, LinuxFileId, LinuxMmap};
use aquila_sim::{
    Breakdown, CoreDebts, Counters, Cycles, Engine, FreeCtx, LatencyHist, SimCtx, Step,
};
use aquila_sync::Mutex;

use crate::kvscen::Dev;

enum Inner {
    Aquila {
        aquila: Arc<Aquila>,
        access: Arc<dyn StorageAccess>,
        files: Vec<FileId>,
        bases: Mutex<Vec<Gva>>,
    },
    Linux {
        lm: Arc<LinuxMmap>,
        kdev: KernelDevice,
        files: Vec<LinuxFileId>,
        bases: Mutex<Vec<u64>>,
    },
}

/// A microbenchmark target: mapped files behind one mmio engine.
pub struct Micro {
    /// Configuration label.
    pub label: String,
    inner: Inner,
    pages_per_file: u64,
}

impl Micro {
    /// Pages per mapped file.
    pub fn pages_per_file(&self) -> u64 {
        self.pages_per_file
    }

    /// Number of mapped files.
    pub fn files(&self) -> usize {
        match &self.inner {
            Inner::Aquila { files, .. } => files.len(),
            Inner::Linux { files, .. } => files.len(),
        }
    }

    /// Reads 64 bytes at the start of `page` of file `file`.
    pub fn read(&self, ctx: &mut dyn SimCtx, file: usize, page: u64) {
        let mut buf = [0u8; 64];
        match &self.inner {
            Inner::Aquila { aquila, bases, .. } => {
                let base = bases.lock()[file % self.files()];
                aquila
                    .read(ctx, base.add(page * 4096), &mut buf)
                    .expect("micro read");
            }
            Inner::Linux { lm, bases, .. } => {
                let base = bases.lock()[file % self.files()];
                lm.read(ctx, (base + page) << 12, &mut buf)
                    .expect("micro read");
            }
        }
    }

    /// Writes 64 bytes at the start of `page` of file `file`.
    pub fn write(&self, ctx: &mut dyn SimCtx, file: usize, page: u64) {
        let buf = [0xA5u8; 64];
        match &self.inner {
            Inner::Aquila { aquila, bases, .. } => {
                let base = bases.lock()[file % self.files()];
                aquila
                    .write(ctx, base.add(page * 4096), &buf)
                    .expect("micro write");
            }
            Inner::Linux { lm, bases, .. } => {
                let base = bases.lock()[file % self.files()];
                lm.write(ctx, (base + page) << 12, &buf)
                    .expect("micro write");
            }
        }
    }

    /// Touches every page once (populates the cache — and the mappings,
    /// which [`Micro::drop_mappings`] then discards).
    pub fn warm_cache(&self, ctx: &mut dyn SimCtx) {
        for f in 0..self.files() {
            for p in 0..self.pages_per_file {
                self.read(ctx, f, p);
            }
        }
    }

    /// Unmaps and remaps every file: cached pages stay cached, but every
    /// subsequent access faults again (the paper's every-access-faults
    /// guarantee).
    pub fn drop_mappings(&self, ctx: &mut dyn SimCtx) {
        match &self.inner {
            Inner::Aquila {
                aquila,
                files,
                bases,
                ..
            } => {
                let mut bases = bases.lock();
                for (i, &f) in files.iter().enumerate() {
                    aquila
                        .munmap(ctx, bases[i], self.pages_per_file)
                        .expect("unmap");
                    let b = aquila
                        .mmap(ctx, f, 0, self.pages_per_file, Prot::RW)
                        .expect("remap");
                    aquila
                        .madvise(ctx, b, self.pages_per_file, Advice::Random)
                        .expect("madvise");
                    bases[i] = b;
                }
            }
            Inner::Linux {
                lm, files, bases, ..
            } => {
                let mut bases = bases.lock();
                for (i, &f) in files.iter().enumerate() {
                    lm.munmap(ctx, bases[i], self.pages_per_file);
                    bases[i] = lm
                        .mmap(ctx, f, 0, self.pages_per_file, true)
                        .expect("remap");
                }
            }
        }
    }

    /// Resets timing models between phases.
    pub fn reset_timing(&self) {
        match &self.inner {
            Inner::Aquila { aquila, access, .. } => {
                aquila.reset_lock_timing();
                access.reset_timing();
            }
            Inner::Linux { lm, kdev, .. } => {
                lm.reset_timing();
                kdev.reset_timing();
            }
        }
    }
}

/// Builds an Aquila microbenchmark target (readahead disabled via
/// `madvise(Random)`, as a random-access benchmark would).
pub fn micro_aquila(
    kind: DeviceKind,
    cores: usize,
    cache_frames: usize,
    nfiles: usize,
    pages_per_file: u64,
    debts: Arc<CoreDebts>,
) -> Micro {
    micro_aquila_policy(
        kind,
        cores,
        cache_frames,
        nfiles,
        pages_per_file,
        debts,
        MmioPolicy::default(),
    )
}

/// [`micro_aquila`] with an explicit [`MmioPolicy`] (used by the `--huge`
/// benchmark variants to enable transparent 2 MiB promotion).
pub fn micro_aquila_policy(
    kind: DeviceKind,
    cores: usize,
    cache_frames: usize,
    nfiles: usize,
    pages_per_file: u64,
    debts: Arc<CoreDebts>,
    policy: MmioPolicy,
) -> Micro {
    let mut ctx = FreeCtx::new(0xA0);
    let device_pages = (nfiles as u64 + 1) * (pages_per_file + 512) + 4096;
    let huge = policy.huge_pages;
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        kind,
        device_pages,
        cache_frames,
        cores,
        debts,
        policy,
    );
    let mut files = Vec::new();
    let mut bases = Vec::new();
    for i in 0..nfiles {
        let f = rt
            .open(&format!("/micro/{i}"), pages_per_file)
            .expect("open");
        let b = rt
            .aquila
            .mmap(&mut ctx, f, 0, pages_per_file, Prot::RW)
            .expect("map");
        rt.aquila
            .madvise(&mut ctx, b, pages_per_file, Advice::Random)
            .expect("madvise");
        files.push(f);
        bases.push(b);
    }
    Micro {
        label: format!("aquila/{:?}{}", rt.kind, if huge { "+2M" } else { "" }),
        inner: Inner::Aquila {
            aquila: Arc::clone(&rt.aquila),
            access: Arc::clone(&rt.access),
            files,
            bases: Mutex::new(bases),
        },
        pages_per_file,
    }
}

/// Builds a Linux (or kmmap) microbenchmark target. Linux detects the
/// random access pattern, so fault readahead is a single page here (the
/// 128 KiB window pathology belongs to file-streaming workloads like
/// RocksDB, Figure 5(b)).
pub fn micro_linux(
    kmmap: bool,
    dev: Dev,
    cores: usize,
    cache_frames: usize,
    nfiles: usize,
    pages_per_file: u64,
    debts: Arc<CoreDebts>,
) -> Micro {
    let mut ctx = FreeCtx::new(0xA1);
    let device_pages = (nfiles as u64 + 1) * (pages_per_file + 512) + 4096;
    let kdev = match dev {
        Dev::Nvme => KernelDevice::Nvme(Arc::new(NvmeDevice::optane(device_pages))),
        Dev::Pmem => KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(device_pages))),
    };
    let mut cfg = if kmmap {
        LinuxConfig::kmmap(cores, cache_frames)
    } else {
        LinuxConfig::linux(cores, cache_frames)
    };
    cfg.readahead_pages = if kmmap { 0 } else { 1 };
    let lm = Arc::new(LinuxMmap::new(cfg, kdev.clone(), debts));
    let mut files = Vec::new();
    let mut bases = Vec::new();
    for _ in 0..nfiles {
        let f = lm.open_file(pages_per_file).expect("file");
        let b = lm.mmap(&mut ctx, f, 0, pages_per_file, true).expect("map");
        files.push(f);
        bases.push(b);
    }
    Micro {
        label: format!("{}/{}", if kmmap { "kmmap" } else { "mmap" }, dev.name()),
        inner: Inner::Linux {
            lm,
            kdev,
            files,
            bases: Mutex::new(bases),
        },
        pages_per_file,
    }
}

/// Result of an engine-driven microbenchmark run.
pub struct MicroResult {
    /// Total operations.
    pub ops: u64,
    /// Makespan in virtual time.
    pub elapsed: Cycles,
    /// Merged per-op latency histogram.
    pub latency: LatencyHist,
    /// Merged cost breakdown.
    pub breakdown: Breakdown,
    /// Merged counters.
    pub counters: Counters,
}

impl MicroResult {
    /// Throughput in kops/s.
    pub fn kops(&self) -> f64 {
        if self.elapsed == Cycles::ZERO {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e3
    }
}

/// Prepares a fault-per-access run: optionally warms the cache (the
/// fits-in-memory case), then drops mappings and resets timing.
pub fn prepare_micro(micro: &Micro, warm: bool) {
    let mut ctx = FreeCtx::new(0xA2);
    if warm {
        micro.warm_cache(&mut ctx);
    }
    micro.drop_mappings(&mut ctx);
    micro.reset_timing();
}

/// Runs `threads` virtual threads, each performing `ops_per_thread`
/// random-page reads. With `shared_file` every thread hits file 0;
/// otherwise thread `t` owns file `t`.
pub fn run_micro(
    micro: Arc<Micro>,
    threads: usize,
    ops_per_thread: u64,
    shared_file: bool,
    seed: u64,
) -> MicroResult {
    let mut engine = Engine::new(threads, seed);
    let hists: Rc<RefCell<Vec<LatencyHist>>> = Rc::new(RefCell::new(
        (0..threads).map(|_| LatencyHist::new()).collect(),
    ));
    for t in 0..threads {
        let micro = Arc::clone(&micro);
        let hists = Rc::clone(&hists);
        let file = if shared_file { 0 } else { t };
        // In shared-file mode each thread samples a disjoint slice, so
        // page collisions between threads never produce free non-faulting
        // accesses (the paper's 100 GB region makes collisions negligible;
        // scaled regions need the explicit partitioning).
        let chunk = micro.pages_per_file() / threads as u64;
        let (lo, span) = if shared_file && threads > 1 && chunk > 0 {
            (t as u64 * chunk, chunk)
        } else {
            (0, micro.pages_per_file())
        };
        let mut done = 0u64;
        engine.spawn(
            t,
            Box::new(move |ctx| {
                let page = lo + ctx.rng().below(span);
                let t0 = ctx.now();
                micro.read(ctx, file, page);
                hists.borrow_mut()[ctx.id() % threads].record(ctx.now() - t0);
                done += 1;
                if done >= ops_per_thread {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
    }
    let report = engine.run();
    let mut latency = LatencyHist::new();
    for h in hists.borrow().iter() {
        latency.merge(h);
    }
    MicroResult {
        ops: threads as u64 * ops_per_thread,
        elapsed: report.makespan,
        latency,
        breakdown: report.breakdown,
        counters: report.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_then_remap_gives_minor_faults() {
        let debts = Arc::new(CoreDebts::new(1));
        let micro = Arc::new(micro_aquila(
            DeviceKind::PmemDax,
            1,
            8192,
            1,
            4096,
            Arc::clone(&debts),
        ));
        prepare_micro(&micro, true);
        // Sparse random access over a large region: almost every access
        // is a first touch and faults.
        let r = run_micro(Arc::clone(&micro), 1, 400, true, 1);
        assert!(
            r.counters.page_faults >= 350,
            "most accesses fault: {}",
            r.counters.page_faults
        );
        assert_eq!(r.counters.major_faults, 0, "warm cache: all minor");
    }

    #[test]
    fn cold_cache_gives_major_faults() {
        let debts = Arc::new(CoreDebts::new(1));
        let micro = Arc::new(micro_aquila(
            DeviceKind::PmemDax,
            1,
            256,
            1,
            2048,
            Arc::clone(&debts),
        ));
        prepare_micro(&micro, false);
        let r = run_micro(Arc::clone(&micro), 1, 300, true, 1);
        assert!(
            r.counters.major_faults > 250,
            "cold large file: major faults"
        );
    }

    #[test]
    fn aquila_scales_on_minor_faults_linux_does_not() {
        // The Figure 10(a) shape, in miniature: shared file, warm cache,
        // every access a minor fault.
        let threads = 32;
        let debts = Arc::new(CoreDebts::new(threads));
        let pages = 8192;

        let aq = Arc::new(micro_aquila(
            DeviceKind::PmemDax,
            threads,
            2 * pages as usize,
            1,
            pages,
            Arc::clone(&debts),
        ));
        prepare_micro(&aq, true);
        let aq1 = run_micro(Arc::clone(&aq), 1, 300, true, 1);
        prepare_micro(&aq, true);
        let aq8 = run_micro(Arc::clone(&aq), threads, 200, true, 1);

        let lx = Arc::new(micro_linux(
            false,
            Dev::Pmem,
            threads,
            2 * pages as usize,
            1,
            pages,
            Arc::clone(&debts),
        ));
        prepare_micro(&lx, true);
        let lx1 = run_micro(Arc::clone(&lx), 1, 300, true, 1);
        prepare_micro(&lx, true);
        let lx8 = run_micro(Arc::clone(&lx), threads, 200, true, 1);

        // Figure 10(a) shape: Aquila's advantage widens with threads
        // (1.81x at 1 thread to 8.37x at 32 in the paper) because Linux's
        // single page-cache tree lock saturates.
        let adv1 = aq1.kops() / lx1.kops();
        let adv32 = aq8.kops() / lx8.kops();
        assert!(adv1 > 1.3, "single-thread advantage {adv1:.2}");
        assert!(
            adv32 > 2.0 * adv1,
            "advantage must widen: {adv1:.2} -> {adv32:.2}"
        );
    }

    #[test]
    fn kmmap_micro_builds_and_runs() {
        let debts = Arc::new(CoreDebts::new(1));
        let micro = micro_linux(true, Dev::Nvme, 1, 256, 1, 512, debts);
        assert!(micro.label.contains("kmmap"));
        let mut ctx = FreeCtx::new(1);
        micro.write(&mut ctx, 0, 5);
        micro.read(&mut ctx, 0, 5);
        assert!(ctx.stats.page_faults > 0);
    }
}
