//! Table printing and result records for the figure binaries.

use aquila_sim::{Breakdown, CostCat, Cycles, LatencyHist};

/// Prints a figure banner.
pub fn banner(title: &str, paper: &str) {
    println!();
    println!("=== {title} ===");
    println!("    paper result: {paper}");
    println!();
}

/// One throughput/latency result row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (configuration).
    pub label: String,
    /// Throughput in kops/s.
    pub kops: f64,
    /// Mean latency.
    pub avg: Cycles,
    /// 99th percentile latency.
    pub p99: Cycles,
    /// 99.9th percentile latency.
    pub p999: Cycles,
}

impl Row {
    /// Builds a row from a latency histogram and elapsed virtual time.
    pub fn from_hist(label: impl Into<String>, ops: u64, elapsed: Cycles, h: &LatencyHist) -> Row {
        let kops = if elapsed == Cycles::ZERO {
            0.0
        } else {
            ops as f64 / elapsed.as_secs_f64() / 1e3
        };
        Row {
            label: label.into(),
            kops,
            avg: h.mean(),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// Prints rows as an aligned table.
pub fn print_rows(rows: &[Row]) {
    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>12}",
        "configuration", "kops/s", "avg", "p99", "p99.9"
    );
    for r in rows {
        println!(
            "{:<44} {:>12.1} {:>12} {:>12} {:>12}",
            r.label,
            r.kops,
            format!("{}", r.avg),
            format!("{}", r.p99),
            format!("{}", r.p999),
        );
    }
}

/// Prints the ratio of two rows' throughput (who wins, by what factor).
pub fn print_speedup(what: &str, a: &Row, b: &Row) {
    if b.kops > 0.0 {
        println!("  -> {what}: {:.2}x", a.kops / b.kops);
    }
}

/// Prints a cycle breakdown normalized per operation.
pub fn print_breakdown_per_op(label: &str, b: &Breakdown, ops: u64) {
    let ops = ops.max(1);
    println!("{label} (cycles per operation):");
    let mut rows: Vec<(CostCat, u64)> = CostCat::ALL
        .iter()
        .map(|&c| (c, b.get(c).get() / ops))
        .filter(|&(_, v)| v > 0)
        .collect();
    rows.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
    let total: u64 = rows.iter().map(|&(_, v)| v).sum();
    for (cat, v) in &rows {
        println!(
            "  {:<14} {:>10} cyc/op  {:>5.1}%",
            cat.name(),
            v,
            100.0 * *v as f64 / total.max(1) as f64
        );
    }
    println!("  {:<14} {:>10} cyc/op", "TOTAL", total);
}

/// Aggregates a breakdown into the paper's Figure 7 three bars:
/// (device I/O, cache management, get logic), per op.
pub fn fig7_bars(b: &Breakdown, ops: u64) -> (u64, u64, u64) {
    let ops = ops.max(1);
    let dev =
        (b.get(CostCat::DeviceIo) + b.get(CostCat::Memcpy) + b.get(CostCat::Idle)).get() / ops;
    let cache = (b.get(CostCat::CacheMgmt)
        + b.get(CostCat::Syscall)
        + b.get(CostCat::LockWait)
        + b.get(CostCat::Trap)
        + b.get(CostCat::FaultHandler)
        + b.get(CostCat::Eviction)
        + b.get(CostCat::Tlb)
        + b.get(CostCat::Vmexit))
    .get()
        / ops;
    let get = b.get(CostCat::App).get() / ops;
    (dev, cache, get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_from_hist_computes_kops() {
        let mut h = LatencyHist::new();
        h.record(Cycles(2400));
        let r = Row::from_hist("x", 1000, Cycles(aquila_sim::CPU_HZ), &h);
        assert!((r.kops - 1.0).abs() < 1e-9);
        assert_eq!(r.avg, Cycles(2400));
    }

    #[test]
    fn fig7_bars_partition_breakdown() {
        let mut b = Breakdown::new();
        b.add(CostCat::DeviceIo, Cycles(1000));
        b.add(CostCat::CacheMgmt, Cycles(2000));
        b.add(CostCat::App, Cycles(3000));
        b.add(CostCat::Trap, Cycles(500));
        let (dev, cache, get) = fig7_bars(&b, 1);
        assert_eq!(dev, 1000);
        assert_eq!(cache, 2500);
        assert_eq!(get, 3000);
    }

    #[test]
    fn zero_elapsed_is_zero_kops() {
        let h = LatencyHist::new();
        let r = Row::from_hist("x", 0, Cycles::ZERO, &h);
        assert_eq!(r.kops, 0.0);
    }
}
