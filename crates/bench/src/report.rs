//! Table printing and result records for the figure binaries.

use aquila_sim::{Breakdown, CostCat, Counters, Cycles, LatencyHist, MetricKind};

use crate::json::Json;

/// Prints a figure banner.
pub fn banner(title: &str, paper: &str) {
    println!();
    println!("=== {title} ===");
    println!("    paper result: {paper}");
    println!();
}

/// One throughput/latency result row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (configuration).
    pub label: String,
    /// Throughput in kops/s.
    pub kops: f64,
    /// Mean latency.
    pub avg: Cycles,
    /// 99th percentile latency.
    pub p99: Cycles,
    /// 99.9th percentile latency.
    pub p999: Cycles,
}

impl Row {
    /// Builds a row from a latency histogram and elapsed virtual time.
    pub fn from_hist(label: impl Into<String>, ops: u64, elapsed: Cycles, h: &LatencyHist) -> Row {
        let kops = if elapsed == Cycles::ZERO {
            0.0
        } else {
            ops as f64 / elapsed.as_secs_f64() / 1e3
        };
        Row {
            label: label.into(),
            kops,
            avg: h.mean(),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// Prints rows as an aligned table.
pub fn print_rows(rows: &[Row]) {
    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>12}",
        "configuration", "kops/s", "avg", "p99", "p99.9"
    );
    for r in rows {
        println!(
            "{:<44} {:>12.1} {:>12} {:>12} {:>12}",
            r.label,
            r.kops,
            format!("{}", r.avg),
            format!("{}", r.p99),
            format!("{}", r.p999),
        );
    }
}

/// Prints the ratio of two rows' throughput (who wins, by what factor).
pub fn print_speedup(what: &str, a: &Row, b: &Row) {
    if b.kops > 0.0 {
        println!("  -> {what}: {:.2}x", a.kops / b.kops);
    }
}

/// Prints a cycle breakdown normalized per operation.
///
/// Shares and the TOTAL row are computed from the *raw* cycle totals:
/// dividing each category by `ops` first and then summing truncates up
/// to `ops - 1` cycles per category, which both understates the total
/// and skews the percentages (categories near the rounding boundary
/// could sum to more or less than 100%).
pub fn print_breakdown_per_op(label: &str, b: &Breakdown, ops: u64) {
    let ops = ops.max(1);
    println!("{label} (cycles per operation):");
    let total_raw = b.total().get();
    let mut rows: Vec<(CostCat, u64)> = b.iter().map(|(c, v)| (c, v.get())).collect();
    rows.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
    for (cat, raw) in &rows {
        println!(
            "  {:<14} {:>10} cyc/op  {:>5.1}%",
            cat.name(),
            raw / ops,
            100.0 * *raw as f64 / total_raw.max(1) as f64
        );
    }
    println!("  {:<14} {:>10} cyc/op", "TOTAL", total_raw / ops);
}

/// Version of the machine-readable record layout. Bump when a field is
/// renamed, removed, or changes meaning; adding fields is compatible.
/// v2: `faults` object (injected count, crash capture flag) added and
/// guaranteed present, zeroed when no fault plan is installed.
/// v3: `latency` array added — one entry per registered latency
/// histogram in the global metrics registry (count, mean, p50/p90/p99/
/// p999/max in cycles), merged deterministically across core shards.
/// v4: `tenants` array added — one entry per tenant of a multi-tenant
/// serving run (declared quota/weight/SLO, request counts, sheds, the
/// per-tenant latency percentiles, and whether the p99 met the SLO);
/// empty for single-tenant binaries.
/// v5: `integrity` object added and guaranteed present — end-to-end
/// data-integrity accounting of a mirrored run (faults injected,
/// corruptions detected/repaired/unrepairable, and the `undetected`
/// invariant that must read zero); zeroed with `"mirrored": false`
/// for unmirrored runs.
pub const SCHEMA_VERSION: u64 = 5;

/// Quantiles recorded for every histogram in a JSON report.
const REPORT_QUANTILES: [f64; 5] = [0.5, 0.9, 0.99, 0.999, 1.0];

/// A machine-readable record of one figure run, written next to the
/// stdout tables by the `--json <path>` flag.
///
/// Every number is derived from the same values the stdout printers use
/// (raw cycle totals, not per-op-rounded ones), so the JSON and the
/// tables always agree.
#[derive(Debug, Default)]
pub struct JsonReport {
    figure: String,
    title: String,
    rows: Vec<Row>,
    breakdowns: Vec<(String, u64, Breakdown)>,
    counters: Vec<(String, Counters)>,
    hists: Vec<Json>,
    scalars: Vec<(String, f64)>,
    tenants: Vec<Json>,
    integrity: Option<aquila::IntegrityCounters>,
}

/// One tenant's record in the schema-v4 `tenants` section: the declared
/// contract (quota/weight/SLO) next to what the run actually delivered.
#[derive(Debug, Clone)]
pub struct TenantEntry {
    /// Tenant id (the label index of its histograms, e.g. `t03`).
    pub id: u16,
    /// Human-readable tenant label (workload shape, role).
    pub label: String,
    /// Declared page-cache quota in frames (0 = unlimited).
    pub quota_frames: usize,
    /// Declared eviction weight.
    pub weight: usize,
    /// Declared p99 latency SLO.
    pub slo_p99: Cycles,
    /// Requests issued (including shed ones).
    pub requests: u64,
    /// Requests shed by admission control.
    pub shed: u64,
}

impl JsonReport {
    /// Creates an empty report for `figure` (e.g. `"fig8"`).
    pub fn new(figure: impl Into<String>, title: impl Into<String>) -> JsonReport {
        JsonReport {
            figure: figure.into(),
            title: title.into(),
            ..JsonReport::default()
        }
    }

    /// Records a throughput/latency row (same data as [`print_rows`]).
    pub fn add_row(&mut self, row: &Row) {
        self.rows.push(row.clone());
    }

    /// Records every row of a table.
    pub fn add_rows(&mut self, rows: &[Row]) {
        for r in rows {
            self.add_row(r);
        }
    }

    /// Records a per-op cycle breakdown (same data as
    /// [`print_breakdown_per_op`]).
    pub fn add_breakdown(&mut self, label: impl Into<String>, b: &Breakdown, ops: u64) {
        self.breakdowns.push((label.into(), ops.max(1), b.clone()));
    }

    /// Records a set of simulation counters.
    pub fn add_counters(&mut self, label: impl Into<String>, c: &Counters) {
        self.counters.push((label.into(), c.clone()));
    }

    /// Records a latency histogram's count, mean, and quantiles.
    pub fn add_hist(&mut self, label: impl Into<String>, h: &LatencyHist) {
        let mut quantiles = Json::obj();
        for q in REPORT_QUANTILES {
            quantiles.set(&format!("p{}", q * 100.0), Json::U64(h.quantile(q).get()));
        }
        self.hists.push(
            Json::obj()
                .with("label", Json::Str(label.into()))
                .with("count", Json::U64(h.count()))
                .with("mean_cycles", Json::U64(h.mean().get()))
                .with("quantiles_cycles", quantiles),
        );
    }

    /// Records a named scalar (speedup ratios, derived figures).
    pub fn add_scalar(&mut self, name: impl Into<String>, value: f64) {
        self.scalars.push((name.into(), value));
    }

    /// Records one tenant of a multi-tenant serving run (schema v4).
    ///
    /// The latency histogram `h` holds the tenant's end-to-end request
    /// latencies (completion minus *scheduled* open-loop arrival, so
    /// queueing shows up); `slo_met` is derived here, not by the caller,
    /// so the JSON and any stdout table always agree on the verdict.
    pub fn add_tenant(&mut self, t: &TenantEntry, h: &LatencyHist) {
        let p99 = h.quantile(0.99);
        self.tenants.push(
            Json::obj()
                .with("id", Json::U64(t.id as u64))
                .with("label", Json::Str(t.label.clone()))
                .with("quota_frames", Json::U64(t.quota_frames as u64))
                .with("weight", Json::U64(t.weight as u64))
                .with("slo_p99_cycles", Json::U64(t.slo_p99.get()))
                .with("requests", Json::U64(t.requests))
                .with("shed", Json::U64(t.shed))
                .with("count", Json::U64(h.count()))
                .with("mean_cycles", Json::U64(h.mean().get()))
                .with("p50_cycles", Json::U64(h.quantile(0.5).get()))
                .with("p99_cycles", Json::U64(p99.get()))
                .with("p999_cycles", Json::U64(h.quantile(0.999).get()))
                .with("slo_met", Json::Bool(p99 <= t.slo_p99)),
        );
    }

    /// Records the end-of-run integrity counters of a mirrored run
    /// (schema v5). Unmirrored parts never call this; their `integrity`
    /// section renders zeroed with `"mirrored": false`.
    pub fn set_integrity(&mut self, c: &aquila::IntegrityCounters) {
        self.integrity = Some(*c);
    }

    /// Builds the full record, including a snapshot of the global metrics
    /// registry (empty when `--trace`/`--json` did not install one).
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .with("label", Json::Str(r.label.clone()))
                    .with("kops", Json::F64(r.kops))
                    .with("avg_cycles", Json::U64(r.avg.get()))
                    .with("p99_cycles", Json::U64(r.p99.get()))
                    .with("p999_cycles", Json::U64(r.p999.get()))
            })
            .collect();
        let breakdowns = self
            .breakdowns
            .iter()
            .map(|(label, ops, b)| {
                let total_raw = b.total().get();
                let cats = b
                    .iter()
                    .map(|(cat, cyc)| {
                        Json::obj()
                            .with("name", Json::from(cat.name()))
                            .with("cycles", Json::U64(cyc.get()))
                            .with("cycles_per_op", Json::U64(cyc.get() / ops))
                            .with("share", Json::F64(b.share(cat)))
                    })
                    .collect();
                Json::obj()
                    .with("label", Json::Str(label.clone()))
                    .with("ops", Json::U64(*ops))
                    .with("total_cycles", Json::U64(total_raw))
                    .with("total_cycles_per_op", Json::U64(total_raw / ops))
                    .with("categories", Json::Arr(cats))
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(label, c)| {
                let mut values = Json::obj();
                for (name, v) in c.iter() {
                    values.set(name, Json::U64(v));
                }
                Json::obj()
                    .with("label", Json::Str(label.clone()))
                    .with("values", values)
            })
            .collect();
        let mut scalars = Json::obj();
        for (name, v) in &self.scalars {
            scalars.set(name, Json::F64(*v));
        }
        let snapshot = aquila_sim::metrics::global().map(|m| m.snapshot());
        let metrics = match &snapshot {
            Some(s) => s
                .entries()
                .iter()
                .map(|(name, kind, value)| {
                    Json::obj()
                        .with("name", Json::Str(name.clone()))
                        .with(
                            "kind",
                            Json::from(match kind {
                                MetricKind::Counter => "counter",
                                MetricKind::Gauge => "gauge",
                            }),
                        )
                        .with("value", Json::U64(*value))
                })
                .collect(),
            None => Vec::new(),
        };
        // Cycle-exact latency distributions (schema v3): one entry per
        // registered histogram, shards merged deterministically.
        let latency = match &snapshot {
            Some(s) => s
                .hists()
                .iter()
                .map(|(name, h)| hist_entry(name, h))
                .collect(),
            None => Vec::new(),
        };
        // Fault-injection counters from the global plan. The fields are
        // always present and read zero both without a plan and with an
        // empty one, so `--faults ""` stays bit-identical to no flag.
        let faults = match aquila_sim::fault::global() {
            Some(plan) => Json::obj()
                .with("injected", Json::U64(plan.injected()))
                .with("crash_captured", Json::Bool(plan.crash_image().is_some())),
            None => Json::obj()
                .with("injected", Json::U64(0))
                .with("crash_captured", Json::Bool(false)),
        };
        // End-to-end integrity accounting (schema v5). Always present;
        // `injected` mirrors the fault plan's count so the section is
        // self-contained for `aquila-prof get` gates. `undetected` is
        // the invariant: with checksums on it must read zero — no
        // corrupted payload was ever acked to a session.
        let c = self.integrity.unwrap_or_default();
        let integrity = Json::obj()
            .with("mirrored", Json::Bool(self.integrity.is_some()))
            .with(
                "injected",
                Json::U64(aquila_sim::fault::global().map_or(0, |p| p.injected())),
            )
            .with("detected", Json::U64(c.detected))
            .with("repaired", Json::U64(c.repaired))
            .with("repair_skipped", Json::U64(c.repair_skipped))
            .with("unrepairable", Json::U64(c.unrepairable))
            .with("tainted", Json::U64(c.tainted))
            .with("undetected", Json::U64(c.undetected()));
        Json::obj()
            .with("schema_version", Json::U64(SCHEMA_VERSION))
            .with("figure", Json::Str(self.figure.clone()))
            .with("title", Json::Str(self.title.clone()))
            .with("cpu_hz", Json::U64(aquila_sim::CPU_HZ))
            .with("rows", Json::Arr(rows))
            .with("breakdowns", Json::Arr(breakdowns))
            .with("histograms", Json::Arr(self.hists.clone()))
            .with("counters", Json::Arr(counters))
            .with("scalars", scalars)
            .with("metrics", Json::Arr(metrics))
            .with("latency", Json::Arr(latency))
            .with("tenants", Json::Arr(self.tenants.clone()))
            .with("faults", faults)
            .with("integrity", integrity)
    }

    /// Writes the record to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render())
    }
}

/// One schema-v3 `latency` entry for a named histogram.
pub fn hist_entry(name: &str, h: &LatencyHist) -> Json {
    Json::obj()
        .with("name", Json::Str(name.to_string()))
        .with("count", Json::U64(h.count()))
        .with("mean_cycles", Json::U64(h.mean().get()))
        .with("p50_cycles", Json::U64(h.quantile(0.5).get()))
        .with("p90_cycles", Json::U64(h.quantile(0.9).get()))
        .with("p99_cycles", Json::U64(h.quantile(0.99).get()))
        .with("p999_cycles", Json::U64(h.quantile(0.999).get()))
        .with("max_cycles", Json::U64(h.quantile(1.0).get()))
}

/// Aggregates a breakdown into the paper's Figure 7 three bars:
/// (device I/O, cache management, get logic), per op.
pub fn fig7_bars(b: &Breakdown, ops: u64) -> (u64, u64, u64) {
    let ops = ops.max(1);
    let dev =
        (b.get(CostCat::DeviceIo) + b.get(CostCat::Memcpy) + b.get(CostCat::Idle)).get() / ops;
    let cache = (b.get(CostCat::CacheMgmt)
        + b.get(CostCat::Syscall)
        + b.get(CostCat::LockWait)
        + b.get(CostCat::Trap)
        + b.get(CostCat::FaultHandler)
        + b.get(CostCat::Eviction)
        + b.get(CostCat::Tlb)
        + b.get(CostCat::Vmexit))
    .get()
        / ops;
    let get = b.get(CostCat::App).get() / ops;
    (dev, cache, get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_from_hist_computes_kops() {
        let mut h = LatencyHist::new();
        h.record(Cycles(2400));
        let r = Row::from_hist("x", 1000, Cycles(aquila_sim::CPU_HZ), &h);
        assert!((r.kops - 1.0).abs() < 1e-9);
        assert_eq!(r.avg, Cycles(2400));
    }

    #[test]
    fn fig7_bars_partition_breakdown() {
        let mut b = Breakdown::new();
        b.add(CostCat::DeviceIo, Cycles(1000));
        b.add(CostCat::CacheMgmt, Cycles(2000));
        b.add(CostCat::App, Cycles(3000));
        b.add(CostCat::Trap, Cycles(500));
        let (dev, cache, get) = fig7_bars(&b, 1);
        assert_eq!(dev, 1000);
        assert_eq!(cache, 2500);
        assert_eq!(get, 3000);
    }

    #[test]
    fn tenant_entry_derives_slo_verdict_from_hist() {
        let mut h = LatencyHist::new();
        for v in [100u64, 200, 300, 400] {
            h.record(Cycles(v));
        }
        let mut r = JsonReport::new("serve", "t");
        let t = TenantEntry {
            id: 3,
            label: "protected".into(),
            quota_frames: 64,
            weight: 4,
            slo_p99: Cycles(1_000_000),
            requests: 4,
            shed: 0,
        };
        r.add_tenant(&t, &h);
        let rendered = r.to_json().render();
        assert!(rendered.contains("\"schema_version\": 5"));
        assert!(rendered.contains("\"slo_met\": true"));
        assert!(rendered.contains("\"quota_frames\": 64"));
    }

    #[test]
    fn integrity_section_is_always_present_and_zeroed_by_default() {
        let r = JsonReport::new("serve", "t");
        let rendered = r.to_json().render();
        assert!(rendered.contains("\"mirrored\": false"));
        assert!(rendered.contains("\"undetected\": 0"));
        let mut r = JsonReport::new("serve", "t");
        r.set_integrity(&aquila::IntegrityCounters {
            detected: 3,
            repaired: 3,
            ..Default::default()
        });
        let rendered = r.to_json().render();
        assert!(rendered.contains("\"mirrored\": true"));
        assert!(rendered.contains("\"repaired\": 3"));
    }

    #[test]
    fn zero_elapsed_is_zero_kops() {
        let h = LatencyHist::new();
        let r = Row::from_hist("x", 0, Cycles::ZERO, &h);
        assert_eq!(r.kops, 0.0);
    }
}
