//! Shared command-line handling for the figure binaries.
//!
//! Every `fig*` binary accepts, in addition to its own positional
//! selectors and flags:
//!
//! - `--json <path>` — write a schema-versioned machine-readable record
//!   of the run (see [`crate::report::JsonReport`]);
//! - `--trace <path>` — install the global tracer and write a Chrome
//!   `trace_event` file of the run, viewable in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! - `--race` — install the deterministic race detector
//!   ([`aquila_sim::race`]) and print its summary at the end of the run,
//!   exiting with status 3 if any finding was reported;
//! - `--faults <spec>` — install the process-global fault plan
//!   ([`aquila_sim::fault`]); every NVMe device the run builds injects
//!   the planned faults at their seeded virtual-time points (grammar in
//!   EXPERIMENTS.md, e.g. `nvme.write:media_error@op=1000`). The empty
//!   spec installs an empty plan, which is bit-identical to running
//!   without the flag.
//!
//! Either flag also installs the global metrics registry so subsystem
//! counters/gauges land in the JSON record. Without them, the binaries
//! run exactly as before — the instrumentation sites are no-ops, and
//! because observability never charges virtual cycles the simulated
//! results are bit-identical either way.

use std::path::PathBuf;

use crate::report::JsonReport;

/// Parsed common arguments plus the binary-specific remainder.
#[derive(Debug)]
pub struct BenchArgs {
    /// Arguments left after extracting the common flags (positional
    /// selectors like `a`/`b`/`c` and flags like `--full`).
    pub rest: Vec<String>,
    json: Option<PathBuf>,
    trace: Option<PathBuf>,
    race: bool,
    faults: Option<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`, extracting `--json`/`--trace` and
    /// installing the tracer and metrics registry as requested.
    pub fn parse() -> BenchArgs {
        Self::from_vec(std::env::args().skip(1).collect())
    }

    /// Parses an explicit argument vector (testable core of [`parse`]).
    ///
    /// [`parse`]: BenchArgs::parse
    pub fn from_vec(args: Vec<String>) -> BenchArgs {
        let mut rest = Vec::new();
        let mut json = None;
        let mut trace = None;
        let mut race = false;
        let mut faults = None;
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => match it.next() {
                    Some(p) => json = Some(PathBuf::from(p)),
                    None => die("--json requires a path"),
                },
                "--trace" => match it.next() {
                    Some(p) => trace = Some(PathBuf::from(p)),
                    None => die("--trace requires a path"),
                },
                "--race" => race = true,
                "--faults" => match it.next() {
                    Some(s) => faults = Some(s),
                    None => die("--faults requires a spec (may be empty)"),
                },
                _ => rest.push(a),
            }
        }
        let parsed = BenchArgs {
            rest,
            json,
            trace,
            race,
            faults,
        };
        if let Some(spec) = &parsed.faults {
            if let Err(e) = aquila_sim::fault::install_spec(spec) {
                die(&format!("--faults: {e}"));
            }
        }
        if parsed.trace.is_some() {
            aquila_sim::trace::install(aquila_sim::trace::DEFAULT_CAPACITY);
        }
        if parsed.race {
            aquila_sim::race::install();
        }
        if parsed.json.is_some() || parsed.trace.is_some() {
            // Shards wrap (`core % shards`), so this only needs to be an
            // upper bound on the simulated core count; the paper's
            // testbed is 32.
            aquila_sim::metrics::install(64);
        }
        parsed
    }

    /// The first positional argument, or `default`.
    pub fn selector(&self, default: &str) -> String {
        self.rest
            .iter()
            .find(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a boolean flag (e.g. `--full`) is present.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// Whether a JSON record was requested.
    pub fn wants_json(&self) -> bool {
        self.json.is_some()
    }

    /// Whether the race detector was requested with `--race`.
    pub fn wants_race(&self) -> bool {
        self.race
    }

    /// The `--faults` spec, if the flag was given (possibly empty).
    pub fn fault_spec(&self) -> Option<&str> {
        self.faults.as_deref()
    }

    /// Writes the requested artifacts (JSON record and/or Chrome trace),
    /// printing where each landed, then — under `--race` — prints the
    /// race-detector summary and exits 3 if it reported anything.
    pub fn finish(&self, report: &JsonReport) {
        if let Some(path) = &self.json {
            match report.write(path) {
                Ok(()) => println!("wrote JSON record: {}", path.display()),
                Err(e) => {
                    eprintln!("error: writing {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.trace {
            let tracer = aquila_sim::trace::global().expect("installed in parse");
            match tracer.write_chrome(path) {
                Ok(()) => {
                    let dropped = tracer.dropped();
                    let kept = tracer.len();
                    print!("wrote Chrome trace: {} ({kept} events", path.display());
                    if dropped > 0 {
                        print!(", {dropped} oldest dropped");
                    }
                    println!(") - open in https://ui.perfetto.dev");
                }
                Err(e) => {
                    eprintln!("error: writing {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        if self.race {
            let det = aquila_sim::race::global().expect("installed in parse");
            println!("{}", det.summary());
            if !det.findings().is_empty() {
                std::process::exit(3);
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// The entire `main` of a part-registry binary: looks `bin` up in
/// [`crate::figs::BINS`], builds its part registry, parses the process
/// arguments, and runs. Every `src/bin/<name>.rs` is a one-line shim
/// over this, so the CLI surface exists in exactly one place.
///
/// # Panics
///
/// Panics if `bin` is not registered — a build-time wiring error, since
/// the only callers are the shims themselves.
pub fn main_for(bin: &str) {
    let b = crate::figs::find(bin)
        .unwrap_or_else(|| panic!("binary {bin:?} not registered in figs::BINS"));
    (b.build)().run(BenchArgs::parse(), b.default);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extracts_common_flags_and_keeps_rest() {
        let a = BenchArgs::from_vec(argv(&[
            "c", "--json", "r.json", "--full", "--trace", "t.json",
        ]));
        assert_eq!(a.rest, vec!["c", "--full"]);
        assert!(!a.wants_race());
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("r.json")));
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert!(a.wants_json());
        assert!(a.has_flag("--full"));
        assert_eq!(a.selector("all"), "c");
    }

    #[test]
    fn selector_defaults_and_skips_flags() {
        let a = BenchArgs::from_vec(argv(&["--full"]));
        assert_eq!(a.selector("all"), "all");
        assert!(!a.wants_json());
    }
}
