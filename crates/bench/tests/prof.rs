//! End-to-end checks for the `aquila-prof` analysis layer.
//!
//! The load-bearing test here is the cross-check: a real engine run with
//! the global tracer and metrics registry installed, whose exported
//! Chrome trace is folded back into per-stage cycles — and the folded
//! total under the `aquila.fault` root must equal the engine-reported
//! `aquila.fault.cycles` histogram sum *exactly* (both observe the same
//! `[t_fault, now]` windows, and same-thread children telescope).

use std::process::Command;
use std::sync::Arc;

use aquila::{Advice, AquilaRuntime, DeviceKind, MmioPolicy, Prot};
use aquila_bench::json::Json;
use aquila_bench::prof;
use aquila_sim::{CoreDebts, FreeCtx};

/// Drives a small single-core fault-heavy workload with the process
/// globals installed, then folds the trace and cross-checks the
/// histogram. Kept as ONE test because the tracer and registry are
/// process-global: a second engine run in this binary would append to
/// the same ring.
#[test]
fn folded_fault_totals_match_engine_histogram() {
    aquila_sim::trace::install(aquila_sim::trace::DEFAULT_CAPACITY);
    aquila_sim::metrics::install(4);

    const PAGES: u64 = 512;
    let mut ctx = FreeCtx::new(0xF0FA);
    let debts = Arc::new(CoreDebts::new(1));
    let rt = AquilaRuntime::build_with_policy(
        &mut ctx,
        DeviceKind::PmemDax,
        PAGES + 4096,
        256, // fewer frames than pages: direct-reclaim spans nest inside faults
        1,
        debts,
        MmioPolicy::default(),
    );
    rt.aquila.thread_enter(&mut ctx);
    let f = rt.open("/prof", PAGES).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, PAGES, Prot::RW)
        .expect("mmap");
    rt.aquila
        .madvise(&mut ctx, addr, PAGES, Advice::Random)
        .expect("madvise");
    let mut buf = [0u8; 64];
    for p in 0..PAGES {
        rt.aquila
            .read(&mut ctx, addr.add(p * 4096), &mut buf)
            .expect("touch");
    }

    let tracer = aquila_sim::trace::global().expect("installed");
    assert_eq!(tracer.dropped(), 0, "ring must not overflow for this check");
    let doc = Json::parse(&tracer.export_chrome()).expect("export parses");
    let spans = prof::parse_trace(&doc).expect("spans parse");
    let profile = prof::fold(&spans);

    let snap = aquila_sim::metrics::global().expect("installed").snapshot();
    let hist = snap.hist("aquila.fault.cycles").expect("fault histogram");
    assert!(hist.count() >= PAGES, "every cold touch faults");
    assert_eq!(
        profile.rooted_total("aquila.fault") as u128,
        hist.sum(),
        "folded fault-subtree cycles must equal the engine histogram sum"
    );
    // The folded view actually attributes work to children, not just the
    // root: device reads happen inside faults.
    assert!(
        profile
            .folded
            .iter()
            .any(|(stack, c)| stack.starts_with("aquila.fault;") && *c > 0),
        "fault root must have attributed children"
    );
}

fn prof_bin() -> &'static str {
    env!("CARGO_BIN_EXE_aquila-prof")
}

fn write_report(dir: &std::path::Path, name: &str, p99: u64) -> std::path::PathBuf {
    let j = Json::obj()
        .with("schema_version", Json::U64(3))
        .with(
            "scalars",
            Json::obj().with("latency/mmio-sync/p50_cycles", Json::U64(33792)),
        )
        .with(
            "latency",
            Json::Arr(vec![Json::obj()
                .with("name", Json::from("aquila.fault.cycles"))
                .with("count", Json::U64(1000))
                .with("p50_cycles", Json::U64(30000))
                .with("p99_cycles", Json::U64(p99))
                .with("p999_cycles", Json::U64(p99 + 1000))]),
        );
    let path = dir.join(name);
    std::fs::write(&path, j.render()).expect("write report");
    path
}

#[test]
fn baseline_check_fails_on_inflated_p99() {
    let dir = std::env::temp_dir().join(format!("aquila-prof-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let golden = write_report(&dir, "golden.json", 200_000);
    let inflated = write_report(&dir, "inflated.json", 300_000);

    // Inflated current vs golden baseline: regression, exit 4.
    let out = Command::new(prof_bin())
        .args(["check", inflated.to_str().unwrap(), "--baseline"])
        .arg(&golden)
        .output()
        .expect("run aquila-prof");
    assert_eq!(
        out.status.code(),
        Some(4),
        "inflated p99 must fail the check"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSION"));

    // A report within tolerance of itself passes.
    let out = Command::new(prof_bin())
        .args(["check", golden.to_str().unwrap(), "--baseline"])
        .arg(&golden)
        .output()
        .expect("run aquila-prof");
    assert_eq!(out.status.code(), Some(0), "self-comparison must pass");

    // `get` resolves scalars through the shared helper and enforces bounds.
    let out = Command::new(prof_bin())
        .args([
            "get",
            golden.to_str().unwrap(),
            "latency/mmio-sync/p50_cycles",
            "--ge",
            "1",
        ])
        .output()
        .expect("run aquila-prof");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "33792");
    let out = Command::new(prof_bin())
        .args([
            "get",
            golden.to_str().unwrap(),
            "latency/mmio-sync/p50_cycles",
            "--le",
            "1",
        ])
        .output()
        .expect("run aquila-prof");
    assert_eq!(out.status.code(), Some(1), "violated bound exits 1");

    std::fs::remove_dir_all(&dir).ok();
}
