//! Determinism regression: the same figure binary run twice must be a
//! bit-identical pure function of its arguments — stdout, the JSON
//! record, and the Chrome trace all byte-for-byte equal. This is the
//! end-to-end guard behind the static lint (`aquila-analysis`) and the
//! runtime race detector (`aquila_sim::race`): if someone reintroduces
//! a seed-randomized map or a wall-clock read on the sim path, one of
//! the artifacts diverges here.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn run_bin(exe: &str, part: &str, tag: &str) -> (Output, Vec<u8>, Vec<u8>) {
    run_bin_with(exe, part, tag, &[])
}

fn run_bin_with(exe: &str, part: &str, tag: &str, extra: &[&str]) -> (Output, Vec<u8>, Vec<u8>) {
    let dir = std::env::temp_dir().join(format!("aquila-determinism-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    let json = dir.join("r.json");
    let trace = dir.join("t.trace.json");
    // Relative artifact paths, run from inside the temp dir: the binary
    // echoes the paths it wrote, and stdout must match across runs.
    let out = Command::new(exe)
        .current_dir(&dir)
        .args([
            part,
            "--race",
            "--json",
            "r.json",
            "--trace",
            "t.trace.json",
        ])
        .args(extra)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{exe} {part} failed (status {:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json_bytes = fs::read(&json).expect("JSON record written");
    let trace_bytes = fs::read(&trace).expect("trace written");
    fs::remove_dir_all(&dir).ok();
    (out, json_bytes, trace_bytes)
}

fn assert_double_run_identical(exe: &str, part: &str, tag: &str) -> String {
    assert_double_run_identical_with(exe, part, tag, &[])
}

fn assert_double_run_identical_with(exe: &str, part: &str, tag: &str, extra: &[&str]) -> String {
    let (out1, json1, trace1) = run_bin_with(exe, part, &format!("{tag}-one"), extra);
    let (out2, json2, trace2) = run_bin_with(exe, part, &format!("{tag}-two"), extra);

    assert_eq!(
        out1.stdout, out2.stdout,
        "stdout diverged between identical runs"
    );
    assert_eq!(json1, json2, "JSON record diverged between identical runs");
    assert_eq!(
        trace1, trace2,
        "Chrome trace diverged between identical runs"
    );

    // The --race summary is part of stdout; make the zero-findings
    // acceptance explicit rather than implied by byte equality.
    let stdout = String::from_utf8_lossy(&out1.stdout).into_owned();
    assert!(
        stdout.contains("race detector: 0 findings"),
        "expected a clean race-detector summary, got:\n{stdout}"
    );
    stdout
}

#[test]
fn fig8_is_bit_identical_across_runs() {
    assert_double_run_identical(env!("CARGO_BIN_EXE_fig8"), "a", "fig8");
}

/// The asynchronous write-behind pipeline — evictor thread, watermark
/// refill, queue-depth-batched NVMe submission — stays a deterministic
/// pure function of its arguments, with the race detector clean.
#[test]
fn sweep_async_pipeline_is_bit_identical_across_runs() {
    let stdout = assert_double_run_identical(env!("CARGO_BIN_EXE_sweep"), "qd", "sweep");
    assert!(
        stdout.contains("async-qd4"),
        "sweep must exercise the async pipeline:\n{stdout}"
    );
}

/// The page-size-aware TLB sweep — transparent 2 MiB promotion, the
/// huge sub-TLB, and the hole-filling collapse path — is a bit-identical
/// pure function of its arguments, with the race detector clean.
#[test]
fn sweep_tlb_part_is_bit_identical_across_runs() {
    let stdout = assert_double_run_identical(env!("CARGO_BIN_EXE_sweep"), "tlb", "tlb");
    assert!(
        stdout.contains("2m"),
        "tlb sweep must run the promoted cell:\n{stdout}"
    );
}

/// Figure 10 with `--huge`: the multi-core promotion/demotion machinery
/// (candidacy scans under the fault lock, batched shootdowns, munmap
/// splintering on every `drop_mappings`) runs race-clean and
/// deterministically.
#[test]
fn fig10_with_huge_pages_is_race_clean_and_deterministic() {
    let stdout = assert_double_run_identical_with(
        env!("CARGO_BIN_EXE_fig10"),
        "fit",
        "fig10-huge",
        &["--huge", "--tiny"],
    );
    assert!(
        stdout.contains("+2M"),
        "fig10 --huge must label the promoted engine:\n{stdout}"
    );
}

/// The latency part — per-fault cycle-exact histograms across linuxsim,
/// mmio-sync, mmio-async qd4, and mmio-huge, plus the engine-side
/// schema-v3 `latency` section and the causal span trace — is a
/// bit-identical pure function of its arguments, race-clean.
#[test]
fn sweep_latency_part_is_bit_identical_across_runs() {
    let stdout = assert_double_run_identical(env!("CARGO_BIN_EXE_sweep"), "latency", "latency");
    for cfg in ["linuxsim", "mmio-sync", "mmio-async-qd4", "mmio-huge"] {
        assert!(
            stdout.contains(cfg),
            "latency sweep must report {cfg}:\n{stdout}"
        );
    }
}

/// The multi-tenant serving experiment — 8 tenants of open-loop
/// Poisson/bursty sessions over a shared cache, tenant-labeled
/// histograms, quota self-reclaim, weighted-fair eviction — is a
/// bit-identical pure function of its seed, race-clean, and the
/// schema-v4 `tenants` section carries the QoS verdicts.
#[test]
fn serve_qos_part_is_bit_identical_across_runs() {
    let stdout = assert_double_run_identical(env!("CARGO_BIN_EXE_serve"), "qos", "serve");
    for tag in ["[qos_on]", "[qos_off]", "protected", "zipf-hot"] {
        assert!(stdout.contains(tag), "serve must report {tag}:\n{stdout}");
    }
}

/// The integrity part — a seeded silent-corruption storm over the
/// mirrored backend with the background scrubber thread live — is a
/// bit-identical pure function of its seed, race-clean, and the
/// schema-v5 `integrity` section proves the end-to-end invariant:
/// faults were injected, every corruption was detected and repaired,
/// and no corrupted payload was acked (`undetected == 0`).
#[test]
fn serve_integrity_part_is_bit_identical_and_repairs_everything() {
    let stdout = assert_double_run_identical(env!("CARGO_BIN_EXE_serve"), "integrity", "integrity");
    assert!(
        stdout.contains("faults injected"),
        "integrity part must report its storm:\n{stdout}"
    );
    let (_, json, _) = run_bin(env!("CARGO_BIN_EXE_serve"), "integrity", "integrity-json");
    let json = String::from_utf8_lossy(&json);
    assert!(
        json.contains("\"mirrored\": true"),
        "integrity JSON:\n{json}"
    );
    assert!(
        !json.contains("\"injected\": 0,"),
        "the storm must inject faults:\n{json}"
    );
    assert!(
        json.contains("\"unrepairable\": 0") && json.contains("\"undetected\": 0"),
        "every silent corruption must be caught and repaired:\n{json}"
    );
}

/// `sweep serve` (the alias part) runs the same experiment from the
/// sweep entry point, deterministically.
#[test]
fn sweep_serve_part_is_bit_identical_across_runs() {
    let stdout = assert_double_run_identical(env!("CARGO_BIN_EXE_sweep"), "serve", "sweep-serve");
    assert!(
        stdout.contains("zipf-hot"),
        "sweep serve must run the QoS experiment:\n{stdout}"
    );
}

/// Runs one `sweep scale` cell (a seeded many-vcore fault storm over
/// disjoint regions of one shared file) twice and asserts the full
/// determinism contract — bit-identical stdout/JSON/trace, a clean race
/// detector — plus the scale contract: with spill-free regions and the
/// sharded page table on, the fault fast path takes zero shared-lock
/// acquisitions (no VMA-tree walk locks, no legacy shared page table).
fn assert_scale_cell_clean(cores: &str) {
    let stdout = assert_double_run_identical_with(
        env!("CARGO_BIN_EXE_sweep"),
        "scale",
        &format!("scale-c{cores}"),
        &[&format!("--cores={cores}")],
    );
    assert!(
        stdout.contains("shared-lock acquisitions: 0"),
        "fault fast path touched a shared lock at {cores} vcores:\n{stdout}"
    );
    let (_, json, _) = run_bin_with(
        env!("CARGO_BIN_EXE_sweep"),
        "scale",
        &format!("scale-json-c{cores}"),
        &[&format!("--cores={cores}")],
    );
    let json = String::from_utf8_lossy(&json);
    assert!(
        json.contains("\"scale/fastpath/shared_locks\": 0"),
        "shared-lock gate missing or nonzero in the JSON record:\n{json}"
    );
}

/// 1 vcore: the degenerate storm — the scaled fault path must be
/// race-clean and deterministic even with nothing to contend with.
#[test]
fn scale_storm_1_vcore_is_race_clean_and_bit_identical() {
    assert_scale_cell_clean("1");
}

/// 16 vcores: a mid-size concurrent fault storm across disjoint
/// per-vcore slices, race-clean and double-run bit-identical.
#[test]
fn scale_storm_16_vcores_is_race_clean_and_bit_identical() {
    assert_scale_cell_clean("16");
}

/// 256 vcores: the full-width storm — 256 concurrent faulting vcores,
/// 256 page-table shards, freelist steal batching live — race-clean,
/// zero shared-lock acquisitions, bit-identical across runs.
#[test]
fn scale_storm_256_vcores_is_race_clean_and_bit_identical() {
    assert_scale_cell_clean("256");
}

/// Fault-injection property: installing an *empty* fault plan
/// (`--faults ""`) must be bit-identical to not configuring faults at
/// all — same stdout, same JSON record (including the zeroed `faults`
/// section), same trace. The injection hooks cost nothing when the plan
/// has no clauses.
#[test]
fn empty_fault_plan_is_bit_identical_to_unconfigured() {
    let exe = env!("CARGO_BIN_EXE_fig8");
    let (out_base, json_base, trace_base) = run_bin(exe, "a", "nofaults");
    let (out_empty, json_empty, trace_empty) =
        run_bin_with(exe, "a", "emptyfaults", &["--faults", ""]);
    assert_eq!(
        out_base.stdout, out_empty.stdout,
        "stdout diverged with an empty fault plan installed"
    );
    assert_eq!(
        json_base, json_empty,
        "JSON record diverged with an empty fault plan installed"
    );
    assert_eq!(
        trace_base, trace_empty,
        "trace diverged with an empty fault plan installed"
    );
}

/// A non-empty fault plan is still deterministic (double-run identical)
/// and its injections are visible in the JSON record's fault counters.
#[test]
fn injected_faults_are_deterministic_and_reported() {
    let exe = env!("CARGO_BIN_EXE_sweep");
    let spec = "nvme.write:media_error@op=40";
    let run = |tag: &str| run_bin_with(exe, "qd", tag, &["--faults", spec]);
    let (out1, json1, trace1) = run("faults-one");
    let (out2, json2, trace2) = run("faults-two");
    assert_eq!(out1.stdout, out2.stdout, "stdout diverged under faults");
    assert_eq!(json1, json2, "JSON record diverged under faults");
    assert_eq!(trace1, trace2, "trace diverged under faults");
    let json = String::from_utf8_lossy(&json1);
    assert!(
        json.contains("\"injected\": 1"),
        "fault counter missing from the JSON record:\n{json}"
    );
}

#[test]
fn fig8_artifacts_are_nonempty() {
    let (_, json, trace) = run_bin(env!("CARGO_BIN_EXE_fig8"), "a", "nonempty");
    assert!(json.len() > 64, "JSON record suspiciously small");
    assert!(trace.len() > 64, "trace suspiciously small");
    let _ = PathBuf::from(env!("CARGO_BIN_EXE_fig8")); // binary path resolved at compile time
}
