//! Criterion micro-benchmarks of the core data structures (host-time
//! performance of the implementation itself, complementing the
//! virtual-time figure binaries).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use aquila_kvstore::{SstReader, SstWriter};
use aquila_mmu::{Access, Gva, PageTable, PteFlags, Vpn};
use aquila_pcache::{ClockLru, Freelist, FreelistConfig, LockFreeMap, NumaTopology, PageKey};
use aquila_sim::FreeCtx;
use aquila_vmx::Gpa;

fn bench_lockfree_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockfree_map");
    let m = LockFreeMap::new(1 << 16);
    for i in 0..(1u64 << 15) {
        m.insert(PageKey::new(1, i), i);
    }
    let mut i = 0u64;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 12_345) & ((1 << 15) - 1);
            std::hint::black_box(m.get(PageKey::new(1, i)))
        })
    });
    g.bench_function("insert_remove", |b| {
        let mut k = 1u64 << 20;
        b.iter(|| {
            k += 1;
            let key = PageKey::new(2, k & 0xFFFF);
            m.insert(key, k);
            m.remove(key)
        })
    });
    g.finish();
}

fn bench_freelist(c: &mut Criterion) {
    let mut g = c.benchmark_group("freelist");
    let fl = Freelist::new(
        NumaTopology::paper_testbed(),
        FreelistConfig::default(),
        (0..1u32 << 16).map(aquila_mmu::FrameId),
    );
    g.bench_function("alloc_free", |b| {
        b.iter(|| {
            let f = fl.alloc(3).expect("non-empty");
            fl.free(3, f);
        })
    });
    g.finish();
}

fn bench_page_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_table");
    let mut pt = PageTable::new();
    for i in 0..(1u64 << 14) {
        pt.map(Gva(i * 4096), Gpa(i * 4096), PteFlags::RW);
    }
    let mut i = 0u64;
    g.bench_function("translate_hit", |b| {
        b.iter(|| {
            i = (i + 7919) & ((1 << 14) - 1);
            pt.translate(Gva(i * 4096), Access::Read).expect("mapped")
        })
    });
    g.bench_function("map_unmap", |b| {
        let gva = Gva(0xDEAD_0000_0000);
        b.iter(|| {
            pt.map(gva, Gpa(0x1000), PteFlags::RW);
            pt.unmap(gva)
        })
    });
    g.finish();
}

fn bench_clock_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("clock_lru");
    let clock = ClockLru::new(1 << 16);
    for i in 0..(1u32 << 16) {
        clock.mark_resident(aquila_mmu::FrameId(i));
    }
    g.bench_function("collect_512", |b| {
        b.iter_batched(
            || (),
            |_| {
                let victims = clock.collect_victims(512);
                for v in &victims {
                    clock.mark_resident(*v);
                }
                victims.len()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_sst(c: &mut Criterion) {
    let mut g = c.benchmark_group("sst");
    g.sample_size(20);
    // Build an SST in a DRAM-cheap direct env.
    let mut ctx = FreeCtx::new(1);
    let dev = Arc::new(aquila_devices::PmemDevice::dram_backed(1 << 16));
    let access: Arc<dyn aquila_devices::StorageAccess> =
        Arc::new(aquila_devices::DaxAccess::new(dev, true));
    let env = aquila_kvstore::DirectIoEnv::new(access, 1 << 14);
    let mut w = SstWriter::new();
    for i in 0..20_000u64 {
        w.add(format!("key{i:012}").as_bytes(), b"value-payload-64-bytes");
    }
    let file = aquila_kvstore::Env::create(&env, &mut ctx, "bench.sst", w.data_pages() + 16);
    let meta = w.finish(&mut ctx, &file, 10);
    let reader = SstReader::from_meta(meta, file);
    let mut i = 0u64;
    g.bench_function("point_get", |b| {
        b.iter(|| {
            i = (i + 104_729) % 20_000;
            reader
                .get(&mut ctx, format!("key{i:012}").as_bytes())
                .expect("present")
        })
    });
    g.bench_function("bloom_reject", |b| {
        b.iter(|| reader.get(&mut ctx, b"missing-key-entirely"))
    });
    g.finish();
}

fn bench_fault_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("mmio_fault_path");
    g.sample_size(20);
    // Host-time cost of a full simulated minor fault (the engine's own
    // overhead, not virtual cycles).
    let mut ctx = FreeCtx::new(1);
    let debts = Arc::new(aquila_sim::CoreDebts::new(1));
    let rt = aquila::AquilaRuntime::build(
        &mut ctx,
        aquila::DeviceKind::PmemDax,
        1 << 15,
        1 << 13,
        1,
        debts,
    );
    let f = rt.open("/bench", 4096).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, 4096, aquila::Prot::RW)
        .expect("map");
    // Warm everything.
    let mut buf = [0u8; 8];
    for p in 0..4096u64 {
        rt.aquila
            .read(&mut ctx, addr.add(p * 4096), &mut buf)
            .expect("read");
    }
    let mut p = 0u64;
    g.bench_function("tlb_hit_read", |b| {
        b.iter(|| {
            p = (p + 613) & 4095;
            rt.aquila.read(&mut ctx, addr.add(p * 4096), &mut buf)
        })
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("tlb");
    let fabric = aquila_mmu::TlbFabric::new(32);
    let debts = aquila_sim::CoreDebts::new(32);
    let mut ctx = FreeCtx::new(1).with_core(0, 32);
    let pages: Vec<Vpn> = (0..512).map(Vpn).collect();
    g.bench_function("shootdown_batch_512_32cores", |b| {
        b.iter(|| {
            fabric.shootdown_batch(
                &mut ctx,
                &debts,
                aquila_vmx::IpiSendPath::VmexitMediated,
                &pages,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_lockfree_map,
    bench_freelist,
    bench_page_table,
    bench_clock_lru,
    bench_sst,
    bench_fault_path,
    bench_tlb
);
criterion_main!(benches);
