//! Micro-benchmarks of the core data structures (host-time performance
//! of the implementation itself, complementing the virtual-time figure
//! binaries).
//!
//! Plain `std::time::Instant` timing loops — the build is fully offline,
//! so there is no Criterion. Run with `cargo bench -p aquila-bench`.

use std::sync::Arc;
use std::time::Instant;

use aquila_kvstore::{SstReader, SstWriter};
use aquila_mmu::{Access, Gva, PageTable, PteFlags, Vpn};
use aquila_pcache::{ClockLru, Freelist, FreelistConfig, LockFreeMap, NumaTopology, PageKey};
use aquila_sim::FreeCtx;
use aquila_vmx::Gpa;

/// Times `iters` calls of `f` (after a 10% warmup) and prints ns/op.
fn bench<R>(group: &str, name: &str, iters: u64, mut f: impl FnMut() -> R) {
    for _ in 0..iters / 10 {
        std::hint::black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let elapsed = t0.elapsed();
    println!(
        "{group}/{name:<24} {:>10.1} ns/op   ({iters} iters, {:.3} s)",
        elapsed.as_nanos() as f64 / iters as f64,
        elapsed.as_secs_f64()
    );
}

fn bench_lockfree_map() {
    let m = LockFreeMap::new(1 << 16);
    for i in 0..(1u64 << 15) {
        m.insert(PageKey::new(1, i), i);
    }
    let mut i = 0u64;
    bench("lockfree_map", "get_hit", 2_000_000, || {
        i = (i + 12_345) & ((1 << 15) - 1);
        m.get(PageKey::new(1, i))
    });
    let mut k = 1u64 << 20;
    bench("lockfree_map", "insert_remove", 1_000_000, || {
        k += 1;
        let key = PageKey::new(2, k & 0xFFFF);
        m.insert(key, k);
        m.remove(key)
    });
}

fn bench_freelist() {
    let fl = Freelist::new(
        NumaTopology::paper_testbed(),
        FreelistConfig::default(),
        (0..1u32 << 16).map(aquila_mmu::FrameId),
    );
    bench("freelist", "alloc_free", 2_000_000, || {
        let f = fl.alloc(3).expect("non-empty");
        fl.free(3, f);
    });
}

fn bench_page_table() {
    let mut pt = PageTable::new();
    for i in 0..(1u64 << 14) {
        pt.map(Gva(i * 4096), Gpa(i * 4096), PteFlags::RW);
    }
    let mut i = 0u64;
    bench("page_table", "translate_hit", 2_000_000, || {
        i = (i + 7919) & ((1 << 14) - 1);
        pt.translate(Gva(i * 4096), Access::Read).expect("mapped")
    });
    let gva = Gva(0xDEAD_0000_0000);
    bench("page_table", "map_unmap", 1_000_000, || {
        pt.map(gva, Gpa(0x1000), PteFlags::RW);
        pt.unmap(gva)
    });
}

fn bench_clock_lru() {
    let clock = ClockLru::new(1 << 16);
    for i in 0..(1u32 << 16) {
        clock.mark_resident(aquila_mmu::FrameId(i));
    }
    bench("clock_lru", "collect_512", 5_000, || {
        let victims = clock.collect_victims(512);
        for v in &victims {
            clock.mark_resident(*v);
        }
        victims.len()
    });
}

fn bench_sst() {
    // Build an SST in a DRAM-cheap direct env.
    let mut ctx = FreeCtx::new(1);
    let dev = Arc::new(aquila_devices::PmemDevice::dram_backed(1 << 16));
    let access: Arc<dyn aquila_devices::StorageAccess> =
        Arc::new(aquila_devices::DaxAccess::new(dev, true));
    let env = aquila_kvstore::DirectIoEnv::new(access, 1 << 14);
    let mut w = SstWriter::new();
    for i in 0..20_000u64 {
        w.add(format!("key{i:012}").as_bytes(), b"value-payload-64-bytes");
    }
    let file = aquila_kvstore::Env::create(&env, &mut ctx, "bench.sst", w.data_pages() + 16);
    let meta = w.finish(&mut ctx, &file, 10);
    let reader = SstReader::from_meta(meta, file);
    let mut i = 0u64;
    bench("sst", "point_get", 200_000, || {
        i = (i + 104_729) % 20_000;
        reader
            .get(&mut ctx, format!("key{i:012}").as_bytes())
            .expect("present")
    });
    bench("sst", "bloom_reject", 500_000, || {
        reader.get(&mut ctx, b"missing-key-entirely")
    });
}

fn bench_fault_path() {
    // Host-time cost of a full simulated minor fault (the engine's own
    // overhead, not virtual cycles).
    let mut ctx = FreeCtx::new(1);
    let debts = Arc::new(aquila_sim::CoreDebts::new(1));
    let rt = aquila::AquilaRuntime::build(
        &mut ctx,
        aquila::DeviceKind::PmemDax,
        1 << 15,
        1 << 13,
        1,
        debts,
    );
    let f = rt.open("/bench", 4096).expect("open");
    let addr = rt
        .aquila
        .mmap(&mut ctx, f, 0, 4096, aquila::Prot::RW)
        .expect("map");
    // Warm everything.
    let mut buf = [0u8; 8];
    for p in 0..4096u64 {
        rt.aquila
            .read(&mut ctx, addr.add(p * 4096), &mut buf)
            .expect("read");
    }
    let mut p = 0u64;
    bench("mmio_fault_path", "tlb_hit_read", 500_000, || {
        p = (p + 613) & 4095;
        rt.aquila.read(&mut ctx, addr.add(p * 4096), &mut buf)
    });
}

fn bench_tlb() {
    let fabric = aquila_mmu::TlbFabric::new(32);
    let debts = aquila_sim::CoreDebts::new(32);
    let mut ctx = FreeCtx::new(1).with_core(0, 32);
    let pages: Vec<Vpn> = (0..512).map(Vpn).collect();
    bench("tlb", "shootdown_batch_512_32cores", 20_000, || {
        fabric.shootdown_batch(
            &mut ctx,
            &debts,
            aquila_vmx::IpiSendPath::VmexitMediated,
            &pages,
        )
    });
}

fn main() {
    bench_lockfree_map();
    bench_freelist();
    bench_page_table();
    bench_clock_lru();
    bench_sst();
    bench_fault_path();
    bench_tlb();
}
