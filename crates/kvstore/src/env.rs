//! The storage environment abstraction: how an LSM store reads and writes
//! its files.
//!
//! RocksDB supports three ways of reading SSTs (section 5): explicit
//! direct I/O with a user-space block cache (the recommended mode), Linux
//! `mmap`, and — after the paper's port — Aquila mmio. One [`Env`] trait
//! makes the store generic over all three, which is exactly the Figure 5
//! experiment.

use std::sync::Arc;

use aquila_sync::{DetMap, Mutex};

use aquila::{Aquila, FileId, Gva, Prot};
use aquila_devices::{Blobstore, StorageAccess, STORE_PAGE};
use aquila_linuxsim::{LinuxFileId, LinuxMmap, UserCache};
use aquila_sim::SimCtx;

/// Which environment a store runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvKind {
    /// O_DIRECT read/write syscalls + user-space block cache.
    DirectIo,
    /// Linux `mmap` reads, direct writes.
    LinuxMmap,
    /// Aquila mmio reads, blobstore direct writes.
    AquilaMmio,
}

impl EnvKind {
    /// Display name used by the figure binaries.
    pub fn name(self) -> &'static str {
        match self {
            EnvKind::DirectIo => "read/write+ucache",
            EnvKind::LinuxMmap => "mmap",
            EnvKind::AquilaMmio => "aquila",
        }
    }
}

/// A store-visible file.
pub trait EnvFile: Send + Sync {
    /// File length in pages.
    fn len_pages(&self) -> u64;
    /// Reads one 4 KiB page.
    fn read_page(&self, ctx: &mut dyn SimCtx, page: u64, buf: &mut [u8]);
    /// Bulk-writes pages starting at `page` (SST creation; large I/Os).
    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]);
}

/// A storage environment.
pub trait Env: Send + Sync {
    /// The environment kind.
    fn kind(&self) -> EnvKind;
    /// Creates (or truncates) a file of `pages` pages.
    fn create(&self, ctx: &mut dyn SimCtx, name: &str, pages: u64) -> Arc<dyn EnvFile>;
    /// Deletes a file (space accounting only; old handles keep working,
    /// matching POSIX unlink semantics for open files).
    fn delete(&self, ctx: &mut dyn SimCtx, name: &str);
}

// ------------------------------------------------------------------
// Direct I/O + user cache.
// ------------------------------------------------------------------

struct DirectState {
    files: DetMap<String, (u32, u64, u64)>, // name -> (id, base_page, pages)
    next_page: u64,
    next_id: u32,
}

/// The RocksDB-recommended configuration: O_DIRECT + user-space cache.
pub struct DirectIoEnv {
    cache: Arc<UserCache>,
    access: Arc<dyn StorageAccess>,
    state: Mutex<DirectState>,
}

impl DirectIoEnv {
    /// Creates the environment over a direct-I/O access path with a
    /// user-space cache of `cache_blocks` blocks.
    pub fn new(access: Arc<dyn StorageAccess>, cache_blocks: usize) -> DirectIoEnv {
        DirectIoEnv {
            cache: Arc::new(UserCache::new(cache_blocks, 64, Arc::clone(&access))),
            access,
            state: Mutex::new(DirectState {
                files: DetMap::new(),
                next_page: 0,
                next_id: 0,
            }),
        }
    }

    /// The user cache (for hit-rate diagnostics).
    pub fn cache(&self) -> &Arc<UserCache> {
        &self.cache
    }
}

struct DirectFile {
    cache: Arc<UserCache>,
    access: Arc<dyn StorageAccess>,
    id: u32,
    base: u64,
    pages: u64,
}

impl EnvFile for DirectFile {
    fn len_pages(&self) -> u64 {
        self.pages
    }

    fn read_page(&self, ctx: &mut dyn SimCtx, page: u64, buf: &mut [u8]) {
        assert!(page < self.pages, "read beyond file");
        self.cache.get(ctx, (self.id, page), self.base + page, buf);
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) {
        assert!(page + (buf.len() / STORE_PAGE) as u64 <= self.pages);
        self.access
            .write_pages(ctx, self.base + page, buf)
            .expect("SST write within device bounds");
    }
}

impl Env for DirectIoEnv {
    fn kind(&self) -> EnvKind {
        EnvKind::DirectIo
    }

    fn create(&self, _ctx: &mut dyn SimCtx, name: &str, pages: u64) -> Arc<dyn EnvFile> {
        let mut st = self.state.lock();
        let base = st.next_page;
        assert!(
            base + pages <= self.access.capacity_pages(),
            "device full (simple linear allocator)"
        );
        st.next_page += pages;
        let id = st.next_id;
        st.next_id += 1;
        st.files.insert(name.to_string(), (id, base, pages));
        Arc::new(DirectFile {
            cache: Arc::clone(&self.cache),
            access: Arc::clone(&self.access),
            id,
            base,
            pages,
        })
    }

    fn delete(&self, _ctx: &mut dyn SimCtx, name: &str) {
        self.state.lock().files.remove(name);
    }
}

// ------------------------------------------------------------------
// Linux mmap reads.
// ------------------------------------------------------------------

/// RocksDB's mmap mode: reads through Linux mmio, writes via O_DIRECT.
pub struct MmapEnv {
    lm: Arc<LinuxMmap>,
    files: Mutex<DetMap<String, (LinuxFileId, u64, u64)>>, // (file, vpn, pages)
}

impl MmapEnv {
    /// Creates the environment over a Linux mmap engine.
    pub fn new(lm: Arc<LinuxMmap>) -> MmapEnv {
        MmapEnv {
            lm,
            files: Mutex::new(DetMap::new()),
        }
    }

    /// The underlying engine (diagnostics).
    pub fn linux(&self) -> &Arc<LinuxMmap> {
        &self.lm
    }
}

struct MmapFile {
    lm: Arc<LinuxMmap>,
    file: LinuxFileId,
    base_vpn: u64,
    pages: u64,
}

impl EnvFile for MmapFile {
    fn len_pages(&self) -> u64 {
        self.pages
    }

    fn read_page(&self, ctx: &mut dyn SimCtx, page: u64, buf: &mut [u8]) {
        assert!(page < self.pages, "read beyond file");
        self.lm
            .read(ctx, (self.base_vpn + page) << 12, buf)
            .expect("mapped SST read");
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) {
        self.lm
            .pwrite_direct(ctx, self.file, page, buf)
            .expect("SST write");
    }
}

impl Env for MmapEnv {
    fn kind(&self) -> EnvKind {
        EnvKind::LinuxMmap
    }

    fn create(&self, ctx: &mut dyn SimCtx, name: &str, pages: u64) -> Arc<dyn EnvFile> {
        let file = self.lm.open_file(pages).expect("device full");
        let base_vpn = self.lm.mmap(ctx, file, 0, pages, false).expect("mmap SST");
        self.files
            .lock()
            .insert(name.to_string(), (file, base_vpn, pages));
        Arc::new(MmapFile {
            lm: Arc::clone(&self.lm),
            file,
            base_vpn,
            pages,
        })
    }

    fn delete(&self, ctx: &mut dyn SimCtx, name: &str) {
        if let Some((_, vpn, pages)) = self.files.lock().remove(name) {
            self.lm.munmap(ctx, vpn, pages);
        }
    }
}

// ------------------------------------------------------------------
// Aquila mmio reads.
// ------------------------------------------------------------------

/// The Aquila port: mmio reads, blobstore direct writes.
pub struct AquilaEnv {
    aquila: Arc<Aquila>,
    store: Arc<Blobstore>,
    access: Arc<dyn StorageAccess>,
    files: Mutex<DetMap<String, (FileId, Gva, u64)>>,
}

impl AquilaEnv {
    /// Creates the environment over an Aquila engine + blobstore.
    pub fn new(
        aquila: Arc<Aquila>,
        store: Arc<Blobstore>,
        access: Arc<dyn StorageAccess>,
    ) -> AquilaEnv {
        AquilaEnv {
            aquila,
            store,
            access,
            files: Mutex::new(DetMap::new()),
        }
    }

    /// The engine (diagnostics).
    pub fn aquila(&self) -> &Arc<Aquila> {
        &self.aquila
    }
}

struct AquilaFile {
    aquila: Arc<Aquila>,
    file: FileId,
    base: Gva,
    pages: u64,
}

impl EnvFile for AquilaFile {
    fn len_pages(&self) -> u64 {
        self.pages
    }

    fn read_page(&self, ctx: &mut dyn SimCtx, page: u64, buf: &mut [u8]) {
        assert!(page < self.pages, "read beyond file");
        self.aquila
            .read(ctx, self.base.add(page * 4096), buf)
            .expect("mapped SST read");
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) {
        // Intercepted write: function-call cost, straight to the device
        // path through the blobstore mapping.
        self.aquila
            .files()
            .write_pages(ctx, self.file, page, buf)
            .expect("SST write");
    }
}

impl Env for AquilaEnv {
    fn kind(&self) -> EnvKind {
        EnvKind::AquilaMmio
    }

    fn create(&self, ctx: &mut dyn SimCtx, name: &str, pages: u64) -> Arc<dyn EnvFile> {
        let file = self
            .aquila
            .files()
            .open_blob(&self.store, &self.access, name, pages)
            .expect("blob create");
        // Map read-only: the store writes through the direct path. Like
        // RocksDB's `advise_random_on_open`, SSTs are point-lookup files,
        // so readahead is disabled (the paper's mmap mode lacks this
        // control — its forced 128 KiB readahead is the Figure 5(b)
        // collapse).
        let base = self
            .aquila
            .mmap(ctx, file, 0, pages, Prot::READ)
            .expect("mmap SST");
        self.aquila
            .madvise(ctx, base, pages, aquila::Advice::Random)
            .expect("madvise SST");
        self.files
            .lock()
            .insert(name.to_string(), (file, base, pages));
        Arc::new(AquilaFile {
            aquila: Arc::clone(&self.aquila),
            file,
            base,
            pages,
        })
    }

    fn delete(&self, ctx: &mut dyn SimCtx, name: &str) {
        if let Some((_, base, pages)) = self.files.lock().remove(name) {
            let _ = self.aquila.munmap(ctx, base, pages);
        }
    }
}

/// Convenience alias used across the store code.
pub type DynEnv = Arc<dyn Env>;

#[cfg(test)]
mod tests {
    use super::*;
    use aquila::{AquilaRuntime, DeviceKind};
    use aquila_devices::{CallDomain, HostPmemAccess, PmemDevice};
    use aquila_linuxsim::{KernelDevice, LinuxConfig};
    use aquila_sim::{CoreDebts, FreeCtx};

    fn all_envs(ctx: &mut FreeCtx) -> Vec<DynEnv> {
        let debts = Arc::new(CoreDebts::new(1));
        // Direct I/O.
        let pmem = Arc::new(PmemDevice::dram_backed(16384));
        let access: Arc<dyn StorageAccess> = Arc::new(HostPmemAccess::new(pmem, CallDomain::User));
        let direct: DynEnv = Arc::new(DirectIoEnv::new(access, 256));
        // Linux mmap.
        let kdev = KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(16384)));
        let lm = Arc::new(LinuxMmap::new(
            LinuxConfig::linux(1, 256),
            kdev,
            Arc::clone(&debts),
        ));
        let mmap: DynEnv = Arc::new(MmapEnv::new(lm));
        // Aquila.
        let rt = AquilaRuntime::build(ctx, DeviceKind::PmemDax, 65536, 256, 1, debts);
        let aq: DynEnv = Arc::new(AquilaEnv::new(
            Arc::clone(&rt.aquila),
            Arc::clone(&rt.store),
            Arc::clone(&rt.access),
        ));
        vec![direct, mmap, aq]
    }

    #[test]
    fn every_env_roundtrips_pages() {
        let mut ctx = FreeCtx::new(11);
        for env in all_envs(&mut ctx) {
            let f = env.create(&mut ctx, "t.sst", 64);
            assert!(f.len_pages() >= 64);
            let data: Vec<u8> = (0..8 * 4096).map(|i| (i % 239) as u8).collect();
            f.write_pages(&mut ctx, 4, &data);
            let mut page = vec![0u8; 4096];
            f.read_page(&mut ctx, 5, &mut page);
            assert_eq!(&page[..], &data[4096..8192], "{:?}", env.kind());
            env.delete(&mut ctx, "t.sst");
        }
    }

    #[test]
    fn env_kinds_distinct() {
        let mut ctx = FreeCtx::new(11);
        let kinds: Vec<EnvKind> = all_envs(&mut ctx).iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![EnvKind::DirectIo, EnvKind::LinuxMmap, EnvKind::AquilaMmio]
        );
        assert_eq!(EnvKind::DirectIo.name(), "read/write+ucache");
    }

    #[test]
    fn direct_env_repeat_reads_hit_user_cache() {
        let mut ctx = FreeCtx::new(11);
        let pmem = Arc::new(PmemDevice::dram_backed(4096));
        let access: Arc<dyn StorageAccess> = Arc::new(HostPmemAccess::new(pmem, CallDomain::User));
        let env = DirectIoEnv::new(access, 128);
        let f = Env::create(&env, &mut ctx, "x", 16);
        let mut buf = vec![0u8; 4096];
        f.read_page(&mut ctx, 0, &mut buf);
        f.read_page(&mut ctx, 0, &mut buf);
        let (hits, misses) = env.cache().stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn aquila_env_repeat_reads_are_tlb_hits() {
        let mut ctx = FreeCtx::new(11);
        let debts = Arc::new(CoreDebts::new(1));
        let rt = AquilaRuntime::build(&mut ctx, DeviceKind::PmemDax, 8192, 128, 1, debts);
        let env = AquilaEnv::new(
            Arc::clone(&rt.aquila),
            Arc::clone(&rt.store),
            Arc::clone(&rt.access),
        );
        let f = Env::create(&env, &mut ctx, "y", 16);
        let mut buf = vec![0u8; 4096];
        f.read_page(&mut ctx, 3, &mut buf);
        let t0 = ctx.now();
        f.read_page(&mut ctx, 3, &mut buf);
        assert_eq!(ctx.now(), t0, "repeat mmio read is free (TLB hit)");
    }
}
