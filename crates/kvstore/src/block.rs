//! SST data blocks: 4 KiB sorted key-value containers.
//!
//! Encoding: a little-endian `u16` entry count at offset 0, then packed
//! entries `u16 klen | u16 vlen | key | value`. Entries are sorted by key;
//! readers binary-search via a rebuilt offset table. A 32-bit checksum
//! (FNV-based stand-in for RocksDB's CRC32c) guards the payload; the cost
//! model charges checksum verification per block read.

/// Block payload size (one page).
pub const BLOCK_SIZE: usize = 4096;
/// Bytes reserved for the entry count header.
const HDR: usize = 2;
/// Bytes reserved at the block tail for the checksum.
const CSUM: usize = 4;

/// Builds sorted data blocks from an ordered entry stream.
#[derive(Debug, Default)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    count: u16,
    first_key: Option<Vec<u8>>,
    last_key: Option<Vec<u8>>,
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> BlockBuilder {
        BlockBuilder::default()
    }

    /// Whether `key`/`value` fits in the current block.
    pub fn fits(&self, key: &[u8], value: &[u8]) -> bool {
        HDR + self.buf.len() + 4 + key.len() + value.len() + CSUM <= BLOCK_SIZE
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not fit or keys are not appended in
    /// non-decreasing order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        assert!(self.fits(key, value), "entry does not fit in block");
        if let Some(last) = &self.last_key {
            assert!(key >= last.as_slice(), "keys must be sorted");
        }
        self.buf
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.buf
            .extend_from_slice(&(value.len() as u16).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.count += 1;
        if self.first_key.is_none() {
            self.first_key = Some(key.to_vec());
        }
        self.last_key = Some(key.to_vec());
    }

    /// Entries added so far.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether no entries were added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// First key in the block, if any.
    pub fn first_key(&self) -> Option<&[u8]> {
        self.first_key.as_deref()
    }

    /// Finalizes into a checksummed 4 KiB page, resetting the builder.
    pub fn finish(&mut self) -> [u8; BLOCK_SIZE] {
        let mut page = [0u8; BLOCK_SIZE];
        page[0..2].copy_from_slice(&self.count.to_le_bytes());
        page[HDR..HDR + self.buf.len()].copy_from_slice(&self.buf);
        let csum = checksum(&page[..BLOCK_SIZE - CSUM]);
        page[BLOCK_SIZE - CSUM..].copy_from_slice(&csum.to_le_bytes());
        self.buf.clear();
        self.count = 0;
        self.first_key = None;
        self.last_key = None;
        page
    }
}

/// FNV-1a 32-bit checksum (stands in for CRC32c).
pub fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811C9DC5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Errors from block decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Checksum mismatch (corruption).
    BadChecksum,
    /// Malformed entry encoding.
    Corrupt,
}

/// A decoded view over a data block.
pub struct BlockReader<'a> {
    data: &'a [u8],
    offsets: Vec<usize>,
}

impl core::fmt::Debug for BlockReader<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "BlockReader {{ entries: {} }}", self.offsets.len())
    }
}

impl<'a> BlockReader<'a> {
    /// Verifies the checksum and indexes the entries.
    pub fn new(page: &'a [u8]) -> Result<BlockReader<'a>, BlockError> {
        if page.len() != BLOCK_SIZE {
            return Err(BlockError::Corrupt);
        }
        let want = u32::from_le_bytes(page[BLOCK_SIZE - CSUM..].try_into().expect("4 bytes"));
        if checksum(&page[..BLOCK_SIZE - CSUM]) != want {
            return Err(BlockError::BadChecksum);
        }
        let count = u16::from_le_bytes(page[0..2].try_into().expect("2 bytes")) as usize;
        let mut offsets = Vec::with_capacity(count);
        let mut pos = HDR;
        for _ in 0..count {
            if pos + 4 > BLOCK_SIZE - CSUM {
                return Err(BlockError::Corrupt);
            }
            offsets.push(pos);
            let klen = u16::from_le_bytes(page[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            let vlen =
                u16::from_le_bytes(page[pos + 2..pos + 4].try_into().expect("2 bytes")) as usize;
            pos += 4 + klen + vlen;
            if pos > BLOCK_SIZE - CSUM {
                return Err(BlockError::Corrupt);
            }
        }
        Ok(BlockReader {
            data: page,
            offsets,
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    fn entry(&self, i: usize) -> (&'a [u8], &'a [u8]) {
        let pos = self.offsets[i];
        let klen =
            u16::from_le_bytes(self.data[pos..pos + 2].try_into().expect("2 bytes")) as usize;
        let vlen =
            u16::from_le_bytes(self.data[pos + 2..pos + 4].try_into().expect("2 bytes")) as usize;
        let k = &self.data[pos + 4..pos + 4 + klen];
        let v = &self.data[pos + 4 + klen..pos + 4 + klen + vlen];
        (k, v)
    }

    /// Binary-searches for `key`; returns its value if present.
    pub fn get(&self, key: &[u8]) -> Option<&'a [u8]> {
        let mut lo = 0usize;
        let mut hi = self.offsets.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (k, v) = self.entry(mid);
            match k.cmp(key) {
                core::cmp::Ordering::Equal => return Some(v),
                core::cmp::Ordering::Less => lo = mid + 1,
                core::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// Iterates entries in key order starting at the first key `>= from`
    /// (all entries when `from` is empty).
    pub fn iter_from(&self, from: &[u8]) -> impl Iterator<Item = (&'a [u8], &'a [u8])> + '_ {
        let start = self.offsets.partition_point(|&pos| {
            let klen =
                u16::from_le_bytes(self.data[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            &self.data[pos + 4..pos + 4 + klen] < from
        });
        (start..self.offsets.len()).map(move |i| self.entry(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(entries: &[(&[u8], &[u8])]) -> [u8; BLOCK_SIZE] {
        let mut b = BlockBuilder::new();
        for (k, v) in entries {
            b.add(k, v);
        }
        b.finish()
    }

    #[test]
    fn build_and_search() {
        let page = build(&[(b"apple", b"1"), (b"banana", b"2"), (b"cherry", b"3")]);
        let r = BlockReader::new(&page).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(b"banana"), Some(&b"2"[..]));
        assert_eq!(r.get(b"apple"), Some(&b"1"[..]));
        assert_eq!(r.get(b"cherry"), Some(&b"3"[..]));
        assert_eq!(r.get(b"durian"), None);
        assert_eq!(r.get(b"aaa"), None);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut page = build(&[(b"k", b"v")]);
        page[100] ^= 0xFF;
        assert_eq!(
            BlockReader::new(&page).unwrap_err(),
            BlockError::BadChecksum
        );
    }

    #[test]
    fn fits_respects_capacity() {
        let mut b = BlockBuilder::new();
        let big = vec![0u8; 2048];
        assert!(b.fits(b"k1", &big));
        b.add(b"k1", &big);
        assert!(!b.fits(b"k2", &big), "second 2 KB entry cannot fit");
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_keys_panic() {
        let mut b = BlockBuilder::new();
        b.add(b"b", b"1");
        b.add(b"a", b"2");
    }

    #[test]
    fn builder_resets_after_finish() {
        let mut b = BlockBuilder::new();
        b.add(b"x", b"1");
        let _ = b.finish();
        assert!(b.is_empty());
        assert!(b.first_key().is_none());
        b.add(b"a", b"2"); // No sorted-order panic: state was reset.
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn iter_from_starts_at_bound() {
        let page = build(&[(b"a", b"1"), (b"c", b"2"), (b"e", b"3")]);
        let r = BlockReader::new(&page).unwrap();
        let keys: Vec<&[u8]> = r.iter_from(b"b").map(|(k, _)| k).collect();
        assert_eq!(keys, vec![&b"c"[..], &b"e"[..]]);
        let all: Vec<&[u8]> = r.iter_from(b"").map(|(k, _)| k).collect();
        assert_eq!(all.len(), 3);
        let none: Vec<&[u8]> = r.iter_from(b"z").map(|(k, _)| k).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut b = BlockBuilder::new();
        let page = b.finish();
        let r = BlockReader::new(&page).unwrap();
        assert!(r.is_empty());
        assert_eq!(r.get(b"anything"), None);
    }

    #[test]
    fn full_block_of_kv_pairs() {
        // 1 KiB values, 30 B keys: ~3 entries per 4 KiB block (the
        // paper's YCSB shape).
        let mut b = BlockBuilder::new();
        let v = vec![7u8; 1024];
        let mut n = 0;
        loop {
            let k = format!("user{n:026}");
            if !b.fits(k.as_bytes(), &v) {
                break;
            }
            b.add(k.as_bytes(), &v);
            n += 1;
        }
        assert_eq!(n, 3, "expected 3 x (30 B + 1 KiB) entries per block");
        let page = b.finish();
        let r = BlockReader::new(&page).unwrap();
        assert_eq!(
            r.get(b"user00000000000000000000000001").map(|v| v.len()),
            Some(1024)
        );
    }
}
