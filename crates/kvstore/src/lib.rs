//! Key-value stores for the Aquila evaluation.
//!
//! - [`lsm::StoneDb`] — a RocksDB-style LSM tree (skiplist memtable,
//!   leveled SSTs with bloom filters, compaction), generic over an
//!   [`env::Env`]: direct I/O + user cache, Linux `mmap`, or Aquila mmio
//!   (the Figure 5/7 comparison);
//! - [`kreon::Krill`] — a Kreon-style mmio-native store (value log +
//!   per-level index) over any [`aquila_sim::MemRegion`]: kmmap or Aquila
//!   (the Figure 9 comparison).

pub mod block;
pub mod bloom;
pub mod env;
pub mod kreon;
pub mod lsm;
pub mod memtable;
pub mod sst;

pub use env::{AquilaEnv, DirectIoEnv, DynEnv, Env, EnvFile, EnvKind, MmapEnv};
pub use kreon::{Krill, KrillConfig, KrillError};
pub use lsm::{StoneConfig, StoneDb};
pub use memtable::Memtable;
pub use sst::{SstReader, SstWriter};
