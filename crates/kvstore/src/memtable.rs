//! The in-memory write buffer (RocksDB's skiplist memtable).
//!
//! An ordered map with byte accounting; Rust's `BTreeMap` stands in for
//! the concurrent skiplist (the cost model charges skiplist-calibrated
//! cycles per operation, so the constant-factor difference does not leak
//! into measured results).

use std::collections::BTreeMap;

use aquila_sim::{CostCat, Cycles, SimCtx};

/// Cycles charged per memtable insert (skiplist insert with ~20 levels).
pub const MEMTABLE_INSERT: Cycles = Cycles(700);
/// Cycles charged per memtable probe.
pub const MEMTABLE_PROBE: Cycles = Cycles(400);

/// The write buffer.
#[derive(Debug, Default)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memtable is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, ctx: &mut dyn SimCtx, key: &[u8], value: &[u8]) {
        ctx.charge(CostCat::App, MEMTABLE_INSERT);
        if let Some(old) = self.map.insert(key.to_vec(), value.to_vec()) {
            self.bytes -= old.len();
        } else {
            self.bytes += key.len();
        }
        self.bytes += value.len();
    }

    /// Looks up a key.
    pub fn get(&self, ctx: &mut dyn SimCtx, key: &[u8]) -> Option<Vec<u8>> {
        ctx.charge(CostCat::App, MEMTABLE_PROBE);
        self.map.get(key).cloned()
    }

    /// Drains the memtable into a sorted entry vector.
    pub fn drain_sorted(&mut self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.bytes = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }

    /// Iterates entries with keys `>= from`, in order.
    pub fn range_from<'a>(
        &'a self,
        from: &[u8],
    ) -> impl Iterator<Item = (&'a Vec<u8>, &'a Vec<u8>)> + 'a {
        self.map.range(from.to_vec()..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn put_get_overwrite() {
        let mut m = Memtable::new();
        let mut ctx = FreeCtx::new(1);
        m.put(&mut ctx, b"k", b"v1");
        assert_eq!(m.get(&mut ctx, b"k"), Some(b"v1".to_vec()));
        m.put(&mut ctx, b"k", b"value2");
        assert_eq!(m.get(&mut ctx, b"k"), Some(b"value2".to_vec()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.bytes(), 1 + 6);
        assert_eq!(m.get(&mut ctx, b"missing"), None);
    }

    #[test]
    fn drain_is_sorted_and_empties() {
        let mut m = Memtable::new();
        let mut ctx = FreeCtx::new(1);
        for k in [b"c", b"a", b"b"] {
            m.put(&mut ctx, k, b"v");
        }
        let drained = m.drain_sorted();
        let keys: Vec<&[u8]> = drained.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a", b"b", b"c"]);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn range_from_bound() {
        let mut m = Memtable::new();
        let mut ctx = FreeCtx::new(1);
        for k in [&b"a"[..], b"c", b"e"] {
            m.put(&mut ctx, k, b"v");
        }
        let keys: Vec<&[u8]> = m.range_from(b"b").map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"c"[..], b"e"]);
    }

    #[test]
    fn operations_charge_cycles() {
        let mut m = Memtable::new();
        let mut ctx = FreeCtx::new(1);
        m.put(&mut ctx, b"k", b"v");
        m.get(&mut ctx, b"k");
        assert_eq!(ctx.now(), MEMTABLE_INSERT + MEMTABLE_PROBE);
    }
}
