//! StoneDB: the RocksDB-style LSM key-value store.
//!
//! An LSM tree with a skiplist memtable, leveled SSTs (64 MB in RocksDB;
//! scaled here), bloom filters, and leveled compaction. The store is
//! generic over an [`Env`], which is how the Figure 5/7 experiments swap
//! the read path between direct I/O + user cache, Linux `mmap`, and
//! Aquila mmio without touching store logic — mirroring the paper's
//! minimal-port claim.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aquila_sync::Mutex;

use aquila_sim::{CostCat, Cycles, SimCtx};

use crate::env::{DynEnv, EnvKind};
use crate::memtable::Memtable;
use crate::sst::{SstReader, SstWriter};

/// Per-get fixed CPU cost: version/superversion bookkeeping, iterator
/// setup, comparator dispatch. Calibrated with the block costs in
/// [`crate::sst`] so the Figure 7 "RocksDB get" bar lands near the
/// paper's 15.3 K cycles.
pub const GET_BASE: Cycles = Cycles(9000);
/// Cost of copying the value out (1 KiB values).
pub const VALUE_COPY: Cycles = Cycles(600);
/// Extra per-get cost when reading through Aquila mmio: the paper
/// measures RocksDB's get at 18.5 K vs 15.3 K cycles due to increased TLB
/// misses from Aquila's mapping churn (section 6.3).
pub const AQUILA_TLB_SURCHARGE: Cycles = Cycles(3200);
/// Per-get user-space data processing that the paper buckets into
/// Aquila's *cache management* (11.8 K cycles, section 6.3): the block
/// handling that replaces user-cache bookkeeping when reads go through
/// mmio. Charged only under mapping churn (out-of-memory datasets), like
/// the TLB surcharge.
pub const MMIO_DATA_PROC: Cycles = Cycles(11_800);
/// Per-entry scan cost (merge + compare).
pub const SCAN_ENTRY: Cycles = Cycles(150);

/// StoneDB tuning.
#[derive(Debug, Clone)]
pub struct StoneConfig {
    /// Target SST size in pages (RocksDB: 64 MB; scaled default 4 MB).
    pub sst_pages: u64,
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// L0 file count that triggers compaction into L1.
    pub l0_limit: usize,
    /// Level size ratio.
    pub level_ratio: usize,
    /// Bloom bits per key.
    pub bloom_bits: usize,
    /// Charge the Aquila TLB-pressure surcharge per get. The paper's
    /// 18.5 K-cycle get (vs 15.3 K) comes from TLB misses caused by
    /// eviction-driven mapping churn (section 6.3); datasets that fit in
    /// the cache have no churn, so benches disable this for the
    /// in-memory configurations.
    pub mmio_tlb_pressure: bool,
}

impl Default for StoneConfig {
    fn default() -> Self {
        StoneConfig {
            sst_pages: 1024,
            memtable_bytes: 2 << 20,
            l0_limit: 4,
            level_ratio: 10,
            bloom_bits: 10,
            mmio_tlb_pressure: true,
        }
    }
}

struct Table {
    name: String,
    reader: SstReader,
}

/// The LSM store.
pub struct StoneDb {
    env: DynEnv,
    cfg: StoneConfig,
    mem: Mutex<Memtable>,
    /// `levels[0]` is L0 (newest table first); deeper levels are sorted by
    /// smallest key and non-overlapping.
    levels: Mutex<Vec<Vec<Arc<Table>>>>,
    seq: AtomicU64,
}

impl StoneDb {
    /// Opens an empty store over `env`.
    pub fn new(env: DynEnv, cfg: StoneConfig) -> StoneDb {
        StoneDb {
            env,
            cfg,
            mem: Mutex::new(Memtable::new()),
            levels: Mutex::new(vec![Vec::new()]),
            seq: AtomicU64::new(0),
        }
    }

    /// The environment kind this store reads through.
    pub fn env_kind(&self) -> EnvKind {
        self.env.kind()
    }

    /// Table counts per level (diagnostics).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.lock().iter().map(|l| l.len()).collect()
    }

    /// Total entries across SSTs (excluding the memtable).
    pub fn table_entries(&self) -> u64 {
        self.levels
            .lock()
            .iter()
            .flatten()
            .map(|t| t.reader.meta.entries)
            .sum()
    }

    fn next_name(&self) -> String {
        format!("sst{:08}.sst", self.seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Point lookup.
    pub fn get(&self, ctx: &mut dyn SimCtx, key: &[u8]) -> Option<Vec<u8>> {
        ctx.charge(CostCat::App, GET_BASE);
        if self.cfg.mmio_tlb_pressure && self.env.kind() == EnvKind::AquilaMmio {
            ctx.charge(CostCat::App, AQUILA_TLB_SURCHARGE);
            ctx.charge(CostCat::CacheMgmt, MMIO_DATA_PROC);
        }
        if let Some(v) = self.mem.lock().get(ctx, key) {
            ctx.charge(CostCat::App, VALUE_COPY);
            return Some(v);
        }
        let snapshot: Vec<Vec<Arc<Table>>> = self.levels.lock().clone();
        // L0: newest first, ranges may overlap.
        for t in &snapshot[0] {
            if t.reader.in_range(key) {
                if let Some(v) = t.reader.get(ctx, key) {
                    ctx.charge(CostCat::App, VALUE_COPY);
                    return Some(v);
                }
            }
        }
        // Deeper levels: non-overlapping, binary-search by smallest key.
        for level in &snapshot[1..] {
            let idx = level.partition_point(|t| t.reader.meta.smallest.as_slice() <= key);
            if idx == 0 {
                continue;
            }
            let t = &level[idx - 1];
            if t.reader.in_range(key) {
                if let Some(v) = t.reader.get(ctx, key) {
                    ctx.charge(CostCat::App, VALUE_COPY);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Inserts or overwrites a key, flushing and compacting as needed.
    pub fn put(&self, ctx: &mut dyn SimCtx, key: &[u8], value: &[u8]) {
        let full = {
            let mut mem = self.mem.lock();
            mem.put(ctx, key, value);
            mem.bytes() >= self.cfg.memtable_bytes
        };
        if full {
            self.flush(ctx);
            self.maybe_compact(ctx);
        }
    }

    /// Range scan: visits up to `n` entries with keys `>= start` in order;
    /// returns the number visited.
    pub fn scan(&self, ctx: &mut dyn SimCtx, start: &[u8], n: usize) -> usize {
        let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let snapshot: Vec<Vec<Arc<Table>>> = self.levels.lock().clone();
        // Oldest sources first so newer versions overwrite.
        for level in snapshot.iter().skip(1).rev() {
            for t in level {
                let mut taken = 0;
                t.reader.scan_from(ctx, start, |k, v| {
                    merged.insert(k.to_vec(), v.to_vec());
                    taken += 1;
                    taken < n
                });
            }
        }
        for t in snapshot[0].iter().rev() {
            let mut taken = 0;
            t.reader.scan_from(ctx, start, |k, v| {
                merged.insert(k.to_vec(), v.to_vec());
                taken += 1;
                taken < n
            });
        }
        {
            let mem = self.mem.lock();
            for (k, v) in mem.range_from(start).take(n) {
                merged.insert(k.clone(), v.clone());
            }
        }
        let visited = merged.len().min(n);
        ctx.charge(CostCat::App, SCAN_ENTRY * visited as u64);
        visited
    }

    /// Flushes the memtable to new L0 tables.
    pub fn flush(&self, ctx: &mut dyn SimCtx) {
        let entries = self.mem.lock().drain_sorted();
        if entries.is_empty() {
            return;
        }
        let tables = self.write_tables(ctx, entries.into_iter());
        let mut levels = self.levels.lock();
        for t in tables {
            levels[0].insert(0, t);
        }
    }

    /// Writes a sorted entry stream into SST files of the configured size.
    fn write_tables(
        &self,
        ctx: &mut dyn SimCtx,
        entries: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Vec<Arc<Table>> {
        let mut out = Vec::new();
        let mut w = SstWriter::new();
        let finish = |ctx: &mut dyn SimCtx, w: &mut SstWriter, out: &mut Vec<Arc<Table>>| {
            if w.entries() == 0 {
                return;
            }
            let writer = std::mem::take(w);
            let name = self.next_name();
            let pages = writer.data_pages() + 16;
            let file = self.env.create(ctx, &name, pages);
            let meta = writer.finish(ctx, &file, self.cfg.bloom_bits);
            out.push(Arc::new(Table {
                name,
                reader: SstReader::from_meta(meta, file),
            }));
        };
        for (k, v) in entries {
            w.add(&k, &v);
            if w.data_pages() + 16 >= self.cfg.sst_pages {
                finish(ctx, &mut w, &mut out);
            }
        }
        finish(ctx, &mut w, &mut out);
        out
    }

    /// Max tables allowed at `level` (1-based depth).
    fn level_budget(&self, level: usize) -> usize {
        self.cfg.l0_limit * self.cfg.level_ratio.pow(level as u32 - 1)
    }

    /// Runs compactions until every level is within budget.
    pub fn maybe_compact(&self, ctx: &mut dyn SimCtx) {
        loop {
            let (level, needs) = {
                let levels = self.levels.lock();
                if levels[0].len() > self.cfg.l0_limit {
                    (0, true)
                } else {
                    let mut found = (0, false);
                    for (i, l) in levels.iter().enumerate().skip(1) {
                        if l.len() > self.level_budget(i) {
                            found = (i, true);
                            break;
                        }
                    }
                    found
                }
            };
            if !needs {
                return;
            }
            self.compact_level(ctx, level);
        }
    }

    /// Merges `level` (all of L0, or the first table of a deeper level)
    /// with the overlapping tables of `level + 1`.
    fn compact_level(&self, ctx: &mut dyn SimCtx, level: usize) {
        let inputs = {
            let mut levels = self.levels.lock();
            if levels.len() <= level + 1 {
                levels.push(Vec::new());
            }
            let upper: Vec<Arc<Table>> = if level == 0 {
                std::mem::take(&mut levels[0])
            } else {
                vec![levels[level].remove(0)]
            };
            let lo = upper
                .iter()
                .map(|t| t.reader.meta.smallest.clone())
                .min()
                .unwrap_or_default();
            let hi = upper
                .iter()
                .map(|t| t.reader.meta.largest.clone())
                .max()
                .unwrap_or_default();
            let below = std::mem::take(&mut levels[level + 1]);
            let (overlap, keep): (Vec<_>, Vec<_>) = below
                .into_iter()
                .partition(|t| !(t.reader.meta.largest < lo || t.reader.meta.smallest > hi));
            levels[level + 1] = keep;
            (upper, overlap)
        };
        let (upper, overlap) = inputs;

        // Merge: oldest first so newer versions overwrite. Precedence:
        // level+1 (oldest) < upper level; within L0, older tables first.
        let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for t in overlap.iter().chain(upper.iter().rev()) {
            t.reader.scan_from(ctx, b"", |k, v| {
                merged.insert(k.to_vec(), v.to_vec());
                true
            });
        }
        let new_tables = self.write_tables(ctx, merged.into_iter());

        {
            let mut levels = self.levels.lock();
            let target = &mut levels[level + 1];
            target.extend(new_tables);
            target.sort_by(|a, b| a.reader.meta.smallest.cmp(&b.reader.meta.smallest));
        }
        for t in upper.iter().chain(overlap.iter()) {
            self.env.delete(ctx, &t.name);
        }
    }

    /// Bulk-loads a sorted entry stream directly into L1 (experiment
    /// setup: skips write-path compaction entirely).
    ///
    /// # Panics
    ///
    /// Panics if entries are not sorted by key.
    pub fn bulk_load(
        &self,
        ctx: &mut dyn SimCtx,
        entries: impl Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) {
        let tables = self.write_tables(ctx, entries);
        let mut levels = self.levels.lock();
        while levels.len() < 2 {
            levels.push(Vec::new());
        }
        levels[1].extend(tables);
        levels[1].sort_by(|a, b| a.reader.meta.smallest.cmp(&b.reader.meta.smallest));
        // Verify the non-overlap invariant bulk loading relies on.
        for w in levels[1].windows(2) {
            assert!(
                w[0].reader.meta.largest < w[1].reader.meta.smallest,
                "bulk_load input must be sorted and unique"
            );
        }
    }
}

impl core::fmt::Debug for StoneDb {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "StoneDb {{ env: {:?}, levels: {:?} }}",
            self.env.kind(),
            self.level_sizes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::DirectIoEnv;
    use aquila_devices::{CallDomain, HostPmemAccess, PmemDevice, StorageAccess};
    use aquila_sim::FreeCtx;

    fn small_db() -> StoneDb {
        let pmem = Arc::new(PmemDevice::dram_backed(262_144)); // 1 GiB device.
        let access: Arc<dyn StorageAccess> = Arc::new(HostPmemAccess::new(pmem, CallDomain::User));
        let env: DynEnv = Arc::new(DirectIoEnv::new(access, 2048));
        StoneDb::new(
            env,
            StoneConfig {
                sst_pages: 64,
                memtable_bytes: 64 << 10,
                l0_limit: 2,
                level_ratio: 4,
                bloom_bits: 10,
                mmio_tlb_pressure: true,
            },
        )
    }

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i:08}").into_bytes(),
            format!("value-{i:04}-{}", "x".repeat(100)).into_bytes(),
        )
    }

    #[test]
    fn put_get_small() {
        let db = small_db();
        let mut ctx = FreeCtx::new(1);
        for i in 0..100 {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v);
        }
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&mut ctx, &k), Some(v), "key {i}");
        }
        assert_eq!(db.get(&mut ctx, b"nope"), None);
    }

    #[test]
    fn flush_and_compaction_preserve_data() {
        let db = small_db();
        let mut ctx = FreeCtx::new(1);
        // Enough data to force several flushes and compactions.
        for i in 0..3000u64 {
            let (k, v) = kv(i % 1500); // Overwrites in second half.
            db.put(&mut ctx, &k, &v);
        }
        db.flush(&mut ctx);
        db.maybe_compact(&mut ctx);
        let sizes = db.level_sizes();
        assert!(sizes.len() > 1, "compaction created levels: {sizes:?}");
        assert!(sizes[0] <= 2, "L0 within budget: {sizes:?}");
        for i in 0..1500u64 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&mut ctx, &k), Some(v), "key {i} after compaction");
        }
    }

    #[test]
    fn newest_version_wins() {
        let db = small_db();
        let mut ctx = FreeCtx::new(1);
        let (k, _) = kv(1);
        db.put(&mut ctx, &k, b"old");
        // Push the old version into an SST.
        for i in 100..1100u64 {
            let (k2, v2) = kv(i);
            db.put(&mut ctx, &k2, &v2);
        }
        db.flush(&mut ctx);
        db.put(&mut ctx, &k, b"new");
        assert_eq!(db.get(&mut ctx, &k), Some(b"new".to_vec()));
        db.flush(&mut ctx);
        db.maybe_compact(&mut ctx);
        assert_eq!(db.get(&mut ctx, &k), Some(b"new".to_vec()));
    }

    #[test]
    fn scan_returns_sorted_window() {
        let db = small_db();
        let mut ctx = FreeCtx::new(1);
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v);
        }
        db.flush(&mut ctx);
        let n = db.scan(&mut ctx, b"key00000100", 50);
        assert_eq!(n, 50);
    }

    #[test]
    fn bulk_load_then_read() {
        let db = small_db();
        let mut ctx = FreeCtx::new(1);
        db.bulk_load(&mut ctx, (0..2000u64).map(kv));
        assert_eq!(db.table_entries(), 2000);
        assert!(db.level_sizes()[1] > 1, "multiple L1 tables");
        for i in [0u64, 777, 1999] {
            let (k, v) = kv(i);
            assert_eq!(db.get(&mut ctx, &k), Some(v), "key {i}");
        }
    }

    #[test]
    fn get_cost_includes_base() {
        let db = small_db();
        let mut ctx = FreeCtx::new(1);
        db.bulk_load(&mut ctx, (0..100u64).map(kv));
        let t0 = ctx.now();
        db.get(&mut ctx, b"key00000050").unwrap();
        assert!((ctx.now() - t0).get() >= GET_BASE.get());
    }
}
