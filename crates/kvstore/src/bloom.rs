//! Bloom filters for SST files (RocksDB uses ~10 bits/key by default).

/// A standard Bloom filter with double hashing.
#[derive(Debug, Clone)]
pub struct Bloom {
    bits: Vec<u64>,
    nbits: u64,
    k: u32,
}

impl Bloom {
    /// Builds a filter sized for `n` keys at `bits_per_key` bits each.
    pub fn new(n: usize, bits_per_key: usize) -> Bloom {
        let nbits = ((n.max(1) * bits_per_key) as u64).max(64);
        // Optimal k = ln2 * bits/key, clamped to a sane range.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        Bloom {
            bits: vec![0; nbits.div_ceil(64) as usize],
            nbits,
            k,
        }
    }

    fn hash2(key: &[u8]) -> (u64, u64) {
        let mut h1 = 0xCBF29CE484222325u64;
        for &b in key {
            h1 ^= b as u64;
            h1 = h1.wrapping_mul(0x100000001B3);
        }
        let h2 = h1.rotate_left(31).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (h1, h2)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash2(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Whether the key may be present (false positives possible, false
    /// negatives not).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash2(key);
        for i in 0..self.k as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.nbits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serializes to bytes (for the SST filter block).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.bits.len() * 8);
        out.extend_from_slice(&self.nbits.to_le_bytes());
        out.extend_from_slice(&self.k.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Bloom::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> Option<Bloom> {
        if buf.len() < 12 {
            return None;
        }
        let nbits = u64::from_le_bytes(buf[0..8].try_into().ok()?);
        let k = u32::from_le_bytes(buf[8..12].try_into().ok()?);
        let words = nbits.div_ceil(64) as usize;
        if buf.len() < 12 + words * 8 || k == 0 || nbits == 0 {
            return None;
        }
        let bits = buf[12..12 + words * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Some(Bloom { bits, nbits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = Bloom::new(1000, 10);
        for i in 0..1000u64 {
            b.insert(&i.to_le_bytes());
        }
        for i in 0..1000u64 {
            assert!(b.may_contain(&i.to_le_bytes()), "false negative for {i}");
        }
    }

    #[test]
    fn low_false_positive_rate() {
        let mut b = Bloom::new(1000, 10);
        for i in 0..1000u64 {
            b.insert(&i.to_le_bytes());
        }
        let fps = (10_000u64..20_000)
            .filter(|i| b.may_contain(&i.to_le_bytes()))
            .count();
        // 10 bits/key targets ~1%; allow generous slack.
        assert!(fps < 300, "false positive rate too high: {fps}/10000");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut b = Bloom::new(100, 10);
        for i in 0..100u64 {
            b.insert(&i.to_le_bytes());
        }
        let bytes = b.to_bytes();
        let b2 = Bloom::from_bytes(&bytes).unwrap();
        for i in 0..100u64 {
            assert!(b2.may_contain(&i.to_le_bytes()));
        }
        assert!(Bloom::from_bytes(&bytes[..4]).is_none());
    }

    #[test]
    fn empty_filter_rejects() {
        let b = Bloom::new(10, 10);
        let hits = (0..1000u64)
            .filter(|i| b.may_contain(&i.to_le_bytes()))
            .count();
        assert_eq!(hits, 0);
    }
}
