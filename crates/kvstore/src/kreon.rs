//! Krill: the Kreon-style mmio-native key-value store.
//!
//! Kreon (SoCC '18) is an LSM variant built *for* memory-mapped I/O: all
//! keys and values go to an append-only log, and each level keeps only a
//! B-tree index from key to log offset. This trades sequential device
//! access for far less I/O amplification and fewer CPU cycles — random
//! reads are exactly what fast NVMe/pmem handles well, which is the
//! premise of the paper's Figure 9.
//!
//! Krill runs over any [`MemRegion`]: Kreon's `kmmap` kernel path or
//! Aquila mmio — the two sides of Figure 9 — or plain DRAM for testing.
//! Its single region plays the role of Kreon's single file/device with a
//! custom allocator: `[superblock | value log | index area]`.

use std::collections::BTreeMap;
use std::sync::Arc;

use aquila_sync::Mutex;

use aquila_sim::{CostCat, Cycles, MemRegion, SimCtx};

/// In-memory L0 probe cost.
const L0_PROBE: Cycles = Cycles(400);
/// Per-run fence search cost.
const FENCE_SEARCH: Cycles = Cycles(400);
/// Index-page binary search cost.
const PAGE_SEARCH: Cycles = Cycles(800);
/// Per-get fixed cost (Kreon's get path is much leaner than RocksDB's).
const GET_BASE: Cycles = Cycles(1500);
/// Log-append bookkeeping cost.
const APPEND_COST: Cycles = Cycles(600);

const PAGE: u64 = 4096;
/// First log page (after the superblock area).
const LOG_START: u64 = 16 * PAGE;
/// Commit-record magic ("KRILLCMT") at offset 0 of the superblock.
const COMMIT_MAGIC: u64 = 0x4b52_494c_4c43_4d54;

/// Krill tuning.
#[derive(Debug, Clone)]
pub struct KrillConfig {
    /// L0 (in-memory index) entry count that triggers a spill.
    pub l0_entries: usize,
    /// Runs per device level before they merge into the next level.
    pub max_runs: usize,
    /// Fraction of the region used for the value log (the rest holds
    /// index runs).
    pub log_frac: f64,
}

impl Default for KrillConfig {
    fn default() -> Self {
        KrillConfig {
            l0_entries: 4096,
            max_runs: 4,
            log_frac: 0.7,
        }
    }
}

/// One sorted index run on the device.
struct Run {
    base: u64,
    pages: u64,
    #[allow(dead_code)] // Diagnostics; read by future iterators.
    entries: u64,
    /// First key of each page (kept in memory, like Kreon's cached upper
    /// B-tree levels).
    fences: Vec<Vec<u8>>,
    smallest: Vec<u8>,
    largest: Vec<u8>,
}

struct State {
    l0: BTreeMap<Vec<u8>, (u64, u32)>, // key -> (log offset, value len)
    levels: Vec<Vec<Arc<Run>>>,        // newest run first within a level
    log_head: u64,
    index_head: u64,
}

/// The Krill store.
pub struct Krill {
    region: Arc<dyn MemRegion>,
    cfg: KrillConfig,
    state: Mutex<State>,
    log_end: u64,
}

/// Errors from Krill operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KrillError {
    /// The value log is full.
    LogFull,
    /// The index area is full.
    IndexFull,
    /// Key or value too large for the record encoding.
    TooLarge,
    /// Reopen found no valid commit record in the superblock.
    NoCommitRecord,
    /// Reopen found a commit record pointing at a log that does not
    /// parse up to the committed head.
    CorruptLog,
}

impl Krill {
    /// Creates a store over `region`.
    pub fn new(region: Arc<dyn MemRegion>, cfg: KrillConfig) -> Krill {
        let log_end = LOG_START + ((region.len() as f64 * cfg.log_frac) as u64 / PAGE) * PAGE;
        assert!(
            log_end > LOG_START && log_end < region.len(),
            "region too small"
        );
        Krill {
            state: Mutex::new(State {
                l0: BTreeMap::new(),
                levels: Vec::new(),
                log_head: LOG_START,
                index_head: log_end,
            }),
            region,
            cfg,
            log_end,
        }
    }

    /// Makes every key acknowledged so far crash-durable: syncs the
    /// value log, then writes + syncs a superblock commit record naming
    /// the durable log head. Data goes down before the metadata that
    /// points at it, so a crash between the two syncs leaves the
    /// previous commit record valid (the new tail is simply garbage
    /// beyond the old committed head).
    pub fn commit(&self, ctx: &mut dyn SimCtx) {
        let log_head = self.state.lock().log_head;
        if log_head > LOG_START {
            self.region.sync(ctx, LOG_START, log_head - LOG_START);
        }
        let mut rec = [0u8; 24];
        rec[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        rec[8..16].copy_from_slice(&log_head.to_le_bytes());
        rec[16..24].copy_from_slice(&(COMMIT_MAGIC ^ log_head).to_le_bytes());
        self.region.write(ctx, 0, &rec);
        self.region.sync(ctx, 0, PAGE);
    }

    /// Reopens a committed store after a crash: validates the superblock
    /// commit record and replays the value log up to the committed head,
    /// rebuilding the key index in memory. Index runs are *not* restored
    /// — like Kreon, they are a rebuildable cache of the log, so the
    /// replayed index starts in L0 and spills again as the store runs.
    /// Every key acknowledged by [`Krill::commit`] is served; anything
    /// appended after the last commit is ignored.
    pub fn reopen(
        ctx: &mut dyn SimCtx,
        region: Arc<dyn MemRegion>,
        cfg: KrillConfig,
    ) -> Result<Krill, KrillError> {
        let mut rec = [0u8; 24];
        region.read(ctx, 0, &mut rec);
        let magic = u64::from_le_bytes(rec[0..8].try_into().expect("8-byte slice"));
        let head = u64::from_le_bytes(rec[8..16].try_into().expect("8-byte slice"));
        let check = u64::from_le_bytes(rec[16..24].try_into().expect("8-byte slice"));
        if magic != COMMIT_MAGIC || check != COMMIT_MAGIC ^ head {
            return Err(KrillError::NoCommitRecord);
        }
        let db = Krill::new(region, cfg);
        if head < LOG_START || head > db.log_end {
            return Err(KrillError::CorruptLog);
        }
        let mut l0: BTreeMap<Vec<u8>, (u64, u32)> = BTreeMap::new();
        let mut off = LOG_START;
        while off < head {
            ctx.charge(CostCat::App, APPEND_COST);
            let mut hdr = [0u8; 4];
            db.region.read(ctx, off, &mut hdr);
            let klen = u16::from_le_bytes([hdr[0], hdr[1]]) as u64;
            let vlen = u16::from_le_bytes([hdr[2], hdr[3]]) as u64;
            if klen == 0 || off + 4 + klen + vlen > head {
                return Err(KrillError::CorruptLog);
            }
            let mut key = vec![0u8; klen as usize];
            db.region.read(ctx, off + 4, &mut key);
            l0.insert(key, (off, vlen as u32));
            off += 4 + klen + vlen;
        }
        {
            let mut st = db.state.lock();
            st.l0 = l0;
            st.log_head = head;
        }
        Ok(db)
    }

    /// Bytes of log space used.
    pub fn log_bytes(&self) -> u64 {
        self.state.lock().log_head - LOG_START
    }

    /// Run counts per device level.
    pub fn level_runs(&self) -> Vec<usize> {
        self.state.lock().levels.iter().map(|l| l.len()).collect()
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, ctx: &mut dyn SimCtx, key: &[u8], value: &[u8]) -> Result<(), KrillError> {
        if key.len() > u16::MAX as usize || value.len() > u16::MAX as usize {
            return Err(KrillError::TooLarge);
        }
        ctx.charge(CostCat::App, APPEND_COST);
        // Append the record to the value log through mmio.
        let rec_len = 4 + key.len() + value.len();
        let off = {
            let mut st = self.state.lock();
            if st.log_head + rec_len as u64 > self.log_end {
                return Err(KrillError::LogFull);
            }
            let off = st.log_head;
            st.log_head += rec_len as u64;
            off
        };
        let mut rec = Vec::with_capacity(rec_len);
        rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
        rec.extend_from_slice(&(value.len() as u16).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(value);
        self.region.write(ctx, off, &rec);
        // Index it in L0.
        let spill = {
            let mut st = self.state.lock();
            st.l0.insert(key.to_vec(), (off, value.len() as u32));
            st.l0.len() >= self.cfg.l0_entries
        };
        if spill {
            self.spill(ctx)?;
            self.maybe_merge(ctx)?;
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, ctx: &mut dyn SimCtx, key: &[u8]) -> Option<Vec<u8>> {
        ctx.charge(CostCat::App, GET_BASE + L0_PROBE);
        let loc = {
            let st = self.state.lock();
            st.l0.get(key).copied()
        };
        if let Some((off, vlen)) = loc {
            return Some(self.read_value(ctx, off, vlen));
        }
        let runs: Vec<Arc<Run>> = {
            let st = self.state.lock();
            st.levels.iter().flatten().cloned().collect()
        };
        for run in runs {
            if key < run.smallest.as_slice() || key > run.largest.as_slice() {
                continue;
            }
            ctx.charge(CostCat::App, FENCE_SEARCH);
            if let Some((off, vlen)) = self.search_run(ctx, &run, key) {
                return Some(self.read_value(ctx, off, vlen));
            }
        }
        None
    }

    fn read_value(&self, ctx: &mut dyn SimCtx, off: u64, vlen: u32) -> Vec<u8> {
        let mut hdr = [0u8; 4];
        self.region.read(ctx, off, &mut hdr);
        let klen = u16::from_le_bytes([hdr[0], hdr[1]]) as u64;
        let mut v = vec![0u8; vlen as usize];
        self.region.read(ctx, off + 4 + klen, &mut v);
        v
    }

    /// Binary search within a run: fences pick the page, one mmio page
    /// read, then in-page binary search.
    fn search_run(&self, ctx: &mut dyn SimCtx, run: &Run, key: &[u8]) -> Option<(u64, u32)> {
        let idx = run.fences.partition_point(|f| f.as_slice() <= key);
        if idx == 0 {
            return None;
        }
        let page_no = (idx - 1) as u64;
        let mut page = vec![0u8; PAGE as usize];
        self.region.read(ctx, run.base + page_no * PAGE, &mut page);
        ctx.charge(CostCat::App, PAGE_SEARCH);
        // Page format: u16 count, then (u16 klen, key, u64 off, u32 vlen)*.
        let count = u16::from_le_bytes([page[0], page[1]]) as usize;
        let mut pos = 2usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let klen = u16::from_le_bytes([page[pos], page[pos + 1]]) as usize;
            pos += 2;
            let k = &page[pos..pos + klen];
            pos += klen;
            let off = u64::from_le_bytes(page[pos..pos + 8].try_into().ok()?);
            pos += 8;
            let vlen = u32::from_le_bytes(page[pos..pos + 4].try_into().ok()?);
            pos += 4;
            entries.push((k, off, vlen));
        }
        entries
            .binary_search_by(|(k, _, _)| (*k).cmp(key))
            .ok()
            .map(|i| (entries[i].1, entries[i].2))
    }

    /// Spills L0 into a new run of the first device level and syncs it
    /// (Kreon's COW-timestamp msync: one pass over the spilled range).
    fn spill(&self, ctx: &mut dyn SimCtx) -> Result<(), KrillError> {
        let entries: Vec<(Vec<u8>, (u64, u32))> = {
            let mut st = self.state.lock();
            std::mem::take(&mut st.l0).into_iter().collect()
        };
        if entries.is_empty() {
            return Ok(());
        }
        let run = self.write_run(ctx, &entries)?;
        let mut st = self.state.lock();
        if st.levels.is_empty() {
            st.levels.push(Vec::new());
        }
        st.levels[0].insert(0, Arc::new(run));
        Ok(())
    }

    fn write_run(
        &self,
        ctx: &mut dyn SimCtx,
        entries: &[(Vec<u8>, (u64, u32))],
    ) -> Result<Run, KrillError> {
        let mut pages: Vec<Vec<u8>> = Vec::new();
        let mut fences: Vec<Vec<u8>> = Vec::new();
        let mut cur = vec![0u8; 2];
        let mut count = 0u16;
        let flush = |cur: &mut Vec<u8>, count: &mut u16, pages: &mut Vec<Vec<u8>>| {
            if *count == 0 {
                return;
            }
            cur[0..2].copy_from_slice(&count.to_le_bytes());
            cur.resize(PAGE as usize, 0);
            pages.push(std::mem::replace(cur, vec![0u8; 2]));
            *count = 0;
        };
        for (k, (off, vlen)) in entries {
            let need = 2 + k.len() + 8 + 4;
            if cur.len() + need > PAGE as usize {
                flush(&mut cur, &mut count, &mut pages);
            }
            if count == 0 {
                fences.push(k.clone());
            }
            cur.extend_from_slice(&(k.len() as u16).to_le_bytes());
            cur.extend_from_slice(k);
            cur.extend_from_slice(&off.to_le_bytes());
            cur.extend_from_slice(&vlen.to_le_bytes());
            count += 1;
        }
        flush(&mut cur, &mut count, &mut pages);

        let bytes = pages.len() as u64 * PAGE;
        let base = {
            let mut st = self.state.lock();
            if st.index_head + bytes > self.region.len() {
                return Err(KrillError::IndexFull);
            }
            let b = st.index_head;
            st.index_head += bytes;
            b
        };
        for (i, p) in pages.iter().enumerate() {
            self.region.write(ctx, base + i as u64 * PAGE, p);
        }
        // Custom msync over exactly the spilled range plus the log tail.
        self.region.sync(ctx, base, bytes);
        Ok(Run {
            base,
            pages: pages.len() as u64,
            entries: entries.len() as u64,
            fences,
            smallest: entries.first().map(|(k, _)| k.clone()).unwrap_or_default(),
            largest: entries.last().map(|(k, _)| k.clone()).unwrap_or_default(),
        })
    }

    /// Merges levels whose run count exceeds the budget.
    fn maybe_merge(&self, ctx: &mut dyn SimCtx) -> Result<(), KrillError> {
        loop {
            let level = {
                let st = self.state.lock();
                st.levels.iter().position(|l| l.len() > self.cfg.max_runs)
            };
            let Some(level) = level else { return Ok(()) };
            let runs: Vec<Arc<Run>> = {
                let mut st = self.state.lock();
                std::mem::take(&mut st.levels[level])
            };
            // Merge runs oldest-first so newer versions win.
            let mut merged: BTreeMap<Vec<u8>, (u64, u32)> = BTreeMap::new();
            for run in runs.iter().rev() {
                self.scan_run(ctx, run, |k, off, vlen| {
                    merged.insert(k, (off, vlen));
                });
            }
            let entries: Vec<(Vec<u8>, (u64, u32))> = merged.into_iter().collect();
            let new_run = self.write_run(ctx, &entries)?;
            let mut st = self.state.lock();
            while st.levels.len() <= level + 1 {
                st.levels.push(Vec::new());
            }
            st.levels[level + 1].insert(0, Arc::new(new_run));
        }
    }

    fn scan_run(&self, ctx: &mut dyn SimCtx, run: &Run, mut f: impl FnMut(Vec<u8>, u64, u32)) {
        let mut page = vec![0u8; PAGE as usize];
        for p in 0..run.pages {
            self.region.read(ctx, run.base + p * PAGE, &mut page);
            let count = u16::from_le_bytes([page[0], page[1]]) as usize;
            let mut pos = 2usize;
            for _ in 0..count {
                let klen = u16::from_le_bytes([page[pos], page[pos + 1]]) as usize;
                pos += 2;
                let k = page[pos..pos + klen].to_vec();
                pos += klen;
                let off = u64::from_le_bytes(page[pos..pos + 8].try_into().expect("8"));
                pos += 8;
                let vlen = u32::from_le_bytes(page[pos..pos + 4].try_into().expect("4"));
                pos += 4;
                f(k, off, vlen);
            }
        }
    }

    /// Range scan: visits up to `n` keys `>= start`; returns the count.
    pub fn scan(&self, ctx: &mut dyn SimCtx, start: &[u8], n: usize) -> usize {
        let mut merged: BTreeMap<Vec<u8>, (u64, u32)> = BTreeMap::new();
        let runs: Vec<Arc<Run>> = {
            let st = self.state.lock();
            st.levels.iter().flatten().cloned().collect()
        };
        for run in runs.iter().rev() {
            if run.largest.as_slice() < start {
                continue;
            }
            self.scan_run(ctx, run, |k, off, vlen| {
                if k.as_slice() >= start {
                    merged.insert(k, (off, vlen));
                }
            });
        }
        {
            let st = self.state.lock();
            for (k, loc) in st.l0.range(start.to_vec()..).take(n) {
                merged.insert(k.clone(), *loc);
            }
        }
        // Fetch the first n values through the log (random reads — the
        // Kreon trade-off).
        let mut visited = 0;
        for (_, (off, vlen)) in merged.into_iter().take(n) {
            let _ = self.read_value(ctx, off, vlen);
            visited += 1;
        }
        visited
    }
}

impl core::fmt::Debug for Krill {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Krill {{ log: {} B, levels: {:?} }}",
            self.log_bytes(),
            self.level_runs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::{DramRegion, FreeCtx};

    fn store(l0: usize) -> Krill {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(64 << 20));
        Krill::new(
            region,
            KrillConfig {
                l0_entries: l0,
                max_runs: 2,
                log_frac: 0.6,
            },
        )
    }

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i:08}").into_bytes(),
            format!("val-{i}-{}", "y".repeat(64)).into_bytes(),
        )
    }

    #[test]
    fn put_get_in_l0() {
        let db = store(1000);
        let mut ctx = FreeCtx::new(1);
        for i in 0..100 {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v).unwrap();
        }
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&mut ctx, &k), Some(v));
        }
        assert_eq!(db.get(&mut ctx, b"absent"), None);
        assert!(db.log_bytes() > 0);
    }

    #[test]
    fn spill_and_merge_preserve_data() {
        let db = store(64);
        let mut ctx = FreeCtx::new(1);
        for i in 0..1000u64 {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v).unwrap();
        }
        let runs = db.level_runs();
        assert!(!runs.is_empty(), "spills happened: {runs:?}");
        assert!(runs[0] <= 2, "level 0 merged: {runs:?}");
        for i in 0..1000u64 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&mut ctx, &k), Some(v), "key {i}");
        }
    }

    #[test]
    fn overwrites_newest_wins_across_spills() {
        let db = store(64);
        let mut ctx = FreeCtx::new(1);
        let (k, _) = kv(7);
        db.put(&mut ctx, &k, b"v1").unwrap();
        for i in 100..300u64 {
            let (k2, v2) = kv(i);
            db.put(&mut ctx, &k2, &v2).unwrap();
        }
        db.put(&mut ctx, &k, b"v2").unwrap();
        for i in 300..500u64 {
            let (k2, v2) = kv(i);
            db.put(&mut ctx, &k2, &v2).unwrap();
        }
        assert_eq!(db.get(&mut ctx, &k), Some(b"v2".to_vec()));
    }

    #[test]
    fn scan_counts_window() {
        let db = store(64);
        let mut ctx = FreeCtx::new(1);
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v).unwrap();
        }
        assert_eq!(db.scan(&mut ctx, b"key00000100", 50), 50);
        assert_eq!(db.scan(&mut ctx, b"key00000490", 50), 10);
    }

    #[test]
    fn log_full_is_reported() {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(LOG_START + 64 * 4096));
        let db = Krill::new(
            region,
            KrillConfig {
                l0_entries: 1_000_000,
                max_runs: 2,
                log_frac: 0.3,
            },
        );
        let mut ctx = FreeCtx::new(1);
        let big = vec![0u8; 4000];
        let mut err = None;
        for i in 0..200u64 {
            if let Err(e) = db.put(&mut ctx, format!("k{i}").as_bytes(), &big) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(KrillError::LogFull));
    }

    #[test]
    fn commit_then_reopen_serves_every_acknowledged_key() {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(64 << 20));
        let db = Krill::new(
            Arc::clone(&region),
            KrillConfig {
                l0_entries: 64,
                max_runs: 2,
                log_frac: 0.6,
            },
        );
        let mut ctx = FreeCtx::new(9);
        for i in 0..500u64 {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v).unwrap();
        }
        db.commit(&mut ctx);
        // Uncommitted tail: appended after the commit, allowed to vanish.
        db.put(&mut ctx, b"tail-key", b"tail-val").unwrap();
        drop(db);

        let db2 = Krill::reopen(
            &mut ctx,
            region,
            KrillConfig {
                l0_entries: 64,
                max_runs: 2,
                log_frac: 0.6,
            },
        )
        .unwrap();
        for i in 0..500u64 {
            let (k, v) = kv(i);
            assert_eq!(db2.get(&mut ctx, &k), Some(v), "key {i}");
        }
        assert_eq!(db2.get(&mut ctx, b"tail-key"), None, "uncommitted tail");
    }

    #[test]
    fn reopen_replays_overwrites_newest_wins() {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(64 << 20));
        let db = Krill::new(Arc::clone(&region), KrillConfig::default());
        let mut ctx = FreeCtx::new(9);
        db.put(&mut ctx, b"k", b"old").unwrap();
        db.put(&mut ctx, b"k", b"new").unwrap();
        db.commit(&mut ctx);
        let db2 = Krill::reopen(&mut ctx, region, KrillConfig::default()).unwrap();
        assert_eq!(db2.get(&mut ctx, b"k"), Some(b"new".to_vec()));
    }

    #[test]
    fn reopen_without_commit_is_typed_error() {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(64 << 20));
        let db = Krill::new(Arc::clone(&region), KrillConfig::default());
        let mut ctx = FreeCtx::new(9);
        db.put(&mut ctx, b"k", b"v").unwrap();
        drop(db); // Never committed.
        assert_eq!(
            Krill::reopen(&mut ctx, region, KrillConfig::default()).err(),
            Some(KrillError::NoCommitRecord)
        );
    }

    #[test]
    fn reopen_rejects_commit_record_past_log_end() {
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(LOG_START + 256 * 4096));
        let mut ctx = FreeCtx::new(9);
        let bogus_head = u64::MAX / 2;
        let mut rec = [0u8; 24];
        rec[0..8].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
        rec[8..16].copy_from_slice(&bogus_head.to_le_bytes());
        rec[16..24].copy_from_slice(&(COMMIT_MAGIC ^ bogus_head).to_le_bytes());
        region.write(&mut ctx, 0, &rec);
        assert_eq!(
            Krill::reopen(&mut ctx, region, KrillConfig::default()).err(),
            Some(KrillError::CorruptLog)
        );
    }

    #[test]
    fn oversized_value_rejected() {
        let db = store(64);
        let mut ctx = FreeCtx::new(1);
        let huge = vec![0u8; 70_000];
        assert_eq!(db.put(&mut ctx, b"k", &huge), Err(KrillError::TooLarge));
    }
}
