//! Static sorted tables (SSTs): RocksDB's on-disk file format, scaled.
//!
//! Layout (page granular):
//!
//! ```text
//! [data block 0] [data block 1] ... [data block N-1]
//! [index pages: fence keys]  [filter pages: bloom]  [footer page]
//! ```
//!
//! The index and filter are read once at open and kept in memory
//! (RocksDB's table cache does the same); data blocks go through the
//! [`Env`](crate::env::Env)'s measured read path on every access.

use std::sync::Arc;

use aquila_sim::{CostCat, Cycles, SimCtx};

use crate::block::{BlockBuilder, BlockReader, BLOCK_SIZE};
use crate::bloom::Bloom;
use crate::env::EnvFile;

/// Cycles to verify a 4 KiB block checksum (CRC32c class).
pub const BLOCK_CRC: Cycles = Cycles(3000);
/// Cycles to parse a block and binary-search it (entry decode + compares).
pub const BLOCK_SEARCH: Cycles = Cycles(1500);
/// Cycles for a bloom-filter probe.
pub const BLOOM_PROBE: Cycles = Cycles(250);
/// Cycles for the in-memory fence-key binary search.
pub const INDEX_SEARCH: Cycles = Cycles(600);

const FOOTER_MAGIC: u64 = 0x5354_4F4E_4553_5354; // "STONESST"

/// Builds an SST from a sorted entry stream, entirely in memory, then
/// flushes it to an env file in large writes.
pub struct SstWriter {
    data_pages: Vec<[u8; BLOCK_SIZE]>,
    fences: Vec<Vec<u8>>,
    bloom_keys: Vec<Vec<u8>>,
    builder: BlockBuilder,
    smallest: Option<Vec<u8>>,
    largest: Option<Vec<u8>>,
    entries: u64,
}

impl Default for SstWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SstWriter {
    /// Creates an empty writer.
    pub fn new() -> SstWriter {
        SstWriter {
            data_pages: Vec::new(),
            fences: Vec::new(),
            bloom_keys: Vec::new(),
            builder: BlockBuilder::new(),
            smallest: None,
            largest: None,
            entries: 0,
        }
    }

    /// Appends an entry (keys must arrive sorted).
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        if !self.builder.fits(key, value) {
            self.cut_block();
        }
        if self.builder.is_empty() {
            self.fences.push(key.to_vec());
        }
        self.builder.add(key, value);
        self.bloom_keys.push(key.to_vec());
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest = Some(key.to_vec());
        self.entries += 1;
    }

    fn cut_block(&mut self) {
        if !self.builder.is_empty() {
            self.data_pages.push(self.builder.finish());
        }
    }

    /// Entries appended so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Data pages the file currently needs (not counting metadata).
    pub fn data_pages(&self) -> u64 {
        self.data_pages.len() as u64 + if self.builder.is_empty() { 0 } else { 1 }
    }

    /// Serializes index + filter + footer and writes everything to
    /// `file`, returning the reader metadata.
    ///
    /// # Panics
    ///
    /// Panics if the file is too small.
    pub fn finish(
        mut self,
        ctx: &mut dyn SimCtx,
        file: &Arc<dyn EnvFile>,
        bloom_bits_per_key: usize,
    ) -> SstMeta {
        self.cut_block();
        let n_blocks = self.data_pages.len() as u64;

        // Index: count + (klen, key)*.
        let mut index = Vec::new();
        index.extend_from_slice(&(self.fences.len() as u32).to_le_bytes());
        for f in &self.fences {
            index.extend_from_slice(&(f.len() as u16).to_le_bytes());
            index.extend_from_slice(f);
        }
        // Filter.
        let mut bloom = Bloom::new(self.bloom_keys.len(), bloom_bits_per_key);
        for k in &self.bloom_keys {
            bloom.insert(k);
        }
        let filter = bloom.to_bytes();

        let index_pages = (index.len() as u64).div_ceil(BLOCK_SIZE as u64).max(1);
        let filter_pages = (filter.len() as u64).div_ceil(BLOCK_SIZE as u64).max(1);
        let total = n_blocks + index_pages + filter_pages + 1;
        assert!(
            total <= file.len_pages(),
            "SST needs {total} pages, file has {}",
            file.len_pages()
        );

        // Footer.
        let smallest = self.smallest.clone().unwrap_or_default();
        let largest = self.largest.clone().unwrap_or_default();
        let mut footer = Vec::new();
        footer.extend_from_slice(&FOOTER_MAGIC.to_le_bytes());
        footer.extend_from_slice(&n_blocks.to_le_bytes());
        footer.extend_from_slice(&index_pages.to_le_bytes());
        footer.extend_from_slice(&filter_pages.to_le_bytes());
        footer.extend_from_slice(&self.entries.to_le_bytes());
        footer.extend_from_slice(&(smallest.len() as u16).to_le_bytes());
        footer.extend_from_slice(&smallest);
        footer.extend_from_slice(&(largest.len() as u16).to_le_bytes());
        footer.extend_from_slice(&largest);

        // Flush: data in large chunks (compaction-style 256 KiB writes),
        // then metadata.
        const CHUNK_PAGES: usize = 64;
        let mut page_no = 0u64;
        for chunk in self.data_pages.chunks(CHUNK_PAGES) {
            let mut buf = Vec::with_capacity(chunk.len() * BLOCK_SIZE);
            for p in chunk {
                buf.extend_from_slice(p);
            }
            file.write_pages(ctx, page_no, &buf);
            page_no += chunk.len() as u64;
        }
        let mut meta_buf = vec![0u8; ((index_pages + filter_pages) * BLOCK_SIZE as u64) as usize];
        meta_buf[..index.len()].copy_from_slice(&index);
        let f_off = (index_pages * BLOCK_SIZE as u64) as usize;
        meta_buf[f_off..f_off + filter.len()].copy_from_slice(&filter);
        file.write_pages(ctx, n_blocks, &meta_buf);
        // The footer lives at the file's last page so readers can find it
        // without any prior metadata.
        let mut foot_page = vec![0u8; BLOCK_SIZE];
        foot_page[..footer.len()].copy_from_slice(&footer);
        file.write_pages(ctx, file.len_pages() - 1, &foot_page);

        SstMeta {
            n_blocks,
            entries: self.entries,
            fences: self.fences,
            bloom,
            smallest,
            largest,
        }
    }
}

/// In-memory SST metadata (index + filter), as RocksDB's table cache
/// keeps after open.
#[derive(Debug, Clone)]
pub struct SstMeta {
    /// Number of data blocks.
    pub n_blocks: u64,
    /// Total entries.
    pub entries: u64,
    /// First key of each data block.
    pub fences: Vec<Vec<u8>>,
    /// The bloom filter.
    pub bloom: Bloom,
    /// Smallest key in the file.
    pub smallest: Vec<u8>,
    /// Largest key in the file.
    pub largest: Vec<u8>,
}

/// An open SST: metadata plus the env file handle for data-block reads.
pub struct SstReader {
    /// Table metadata.
    pub meta: SstMeta,
    file: Arc<dyn EnvFile>,
}

impl SstReader {
    /// Wraps writer output (create-then-read path; no device I/O).
    pub fn from_meta(meta: SstMeta, file: Arc<dyn EnvFile>) -> SstReader {
        SstReader { meta, file }
    }

    /// Opens an SST by reading its footer, index, and filter (recovery
    /// path; charged device reads).
    pub fn open(ctx: &mut dyn SimCtx, file: Arc<dyn EnvFile>) -> Option<SstReader> {
        // The footer lives at the last page of the file.
        let mut page = vec![0u8; BLOCK_SIZE];
        let len = file.len_pages();
        file.read_page(ctx, len - 1, &mut page);
        if page[0..8] != FOOTER_MAGIC.to_le_bytes() {
            return None;
        }
        let mut pos = 8usize;
        let rd_u64 = |page: &[u8], pos: &mut usize| {
            let v = u64::from_le_bytes(page[*pos..*pos + 8].try_into().ok().unwrap_or_default());
            *pos += 8;
            v
        };
        let n_blocks = rd_u64(&page, &mut pos);
        let index_pages = rd_u64(&page, &mut pos);
        let filter_pages = rd_u64(&page, &mut pos);
        let entries = rd_u64(&page, &mut pos);
        let klen = u16::from_le_bytes(page[pos..pos + 2].try_into().ok()?) as usize;
        pos += 2;
        let smallest = page[pos..pos + klen].to_vec();
        pos += klen;
        let klen = u16::from_le_bytes(page[pos..pos + 2].try_into().ok()?) as usize;
        pos += 2;
        let largest = page[pos..pos + klen].to_vec();

        // Index pages.
        let mut index = vec![0u8; (index_pages * BLOCK_SIZE as u64) as usize];
        for i in 0..index_pages {
            file.read_page(
                ctx,
                n_blocks + i,
                &mut index
                    [(i * BLOCK_SIZE as u64) as usize..((i + 1) * BLOCK_SIZE as u64) as usize],
            );
        }
        let nf = u32::from_le_bytes(index[0..4].try_into().ok()?) as usize;
        let mut fences = Vec::with_capacity(nf);
        let mut ip = 4usize;
        for _ in 0..nf {
            let kl = u16::from_le_bytes(index[ip..ip + 2].try_into().ok()?) as usize;
            ip += 2;
            fences.push(index[ip..ip + kl].to_vec());
            ip += kl;
        }
        // Filter pages.
        let mut filter = vec![0u8; (filter_pages * BLOCK_SIZE as u64) as usize];
        for i in 0..filter_pages {
            file.read_page(
                ctx,
                n_blocks + index_pages + i,
                &mut filter
                    [(i * BLOCK_SIZE as u64) as usize..((i + 1) * BLOCK_SIZE as u64) as usize],
            );
        }
        let bloom = Bloom::from_bytes(&filter)?;
        Some(SstReader {
            meta: SstMeta {
                n_blocks,
                entries,
                fences,
                bloom,
                smallest,
                largest,
            },
            file,
        })
    }

    /// Whether `key` is within this table's key range.
    pub fn in_range(&self, key: &[u8]) -> bool {
        key >= self.meta.smallest.as_slice() && key <= self.meta.largest.as_slice()
    }

    /// Point lookup: bloom -> fence search -> one data-block read.
    pub fn get(&self, ctx: &mut dyn SimCtx, key: &[u8]) -> Option<Vec<u8>> {
        ctx.charge(CostCat::App, BLOOM_PROBE);
        if !self.meta.bloom.may_contain(key) {
            return None;
        }
        ctx.charge(CostCat::App, INDEX_SEARCH);
        let block = self.block_of(key)?;
        let mut page = vec![0u8; BLOCK_SIZE];
        self.file.read_page(ctx, block, &mut page);
        ctx.charge(CostCat::App, BLOCK_CRC + BLOCK_SEARCH);
        let reader = BlockReader::new(&page).ok()?;
        reader.get(key).map(|v| v.to_vec())
    }

    fn block_of(&self, key: &[u8]) -> Option<u64> {
        if self.meta.fences.is_empty() {
            return None;
        }
        // Last fence <= key.
        let idx = self.meta.fences.partition_point(|f| f.as_slice() <= key);
        if idx == 0 {
            return None;
        }
        Some((idx - 1) as u64)
    }

    /// Sequentially scans entries with keys `>= from`, calling `f` until
    /// it returns `false`. Used by range scans and compaction.
    pub fn scan_from(
        &self,
        ctx: &mut dyn SimCtx,
        from: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> bool,
    ) {
        let start_block = if self.meta.fences.is_empty() {
            return;
        } else {
            self.meta
                .fences
                .partition_point(|fk| fk.as_slice() <= from)
                .saturating_sub(1) as u64
        };
        let mut page = vec![0u8; BLOCK_SIZE];
        for b in start_block..self.meta.n_blocks {
            self.file.read_page(ctx, b, &mut page);
            ctx.charge(CostCat::App, BLOCK_CRC);
            let reader = match BlockReader::new(&page) {
                Ok(r) => r,
                Err(_) => return,
            };
            for (k, v) in reader.iter_from(from) {
                if !f(k, v) {
                    return;
                }
            }
        }
    }
}

impl core::fmt::Debug for SstReader {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SstReader {{ blocks: {}, entries: {} }}",
            self.meta.n_blocks, self.meta.entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{DirectIoEnv, Env};
    use aquila_devices::{CallDomain, HostPmemAccess, PmemDevice, StorageAccess};
    use aquila_sim::FreeCtx;

    fn env() -> DirectIoEnv {
        let pmem = Arc::new(PmemDevice::dram_backed(65536));
        let access: Arc<dyn StorageAccess> = Arc::new(HostPmemAccess::new(pmem, CallDomain::User));
        DirectIoEnv::new(access, 4096)
    }

    fn build_table(
        ctx: &mut FreeCtx,
        env: &DirectIoEnv,
        n: u64,
        name: &str,
    ) -> (SstReader, Arc<dyn EnvFile>) {
        let mut w = SstWriter::new();
        for i in 0..n {
            let k = format!("key{i:08}");
            let v = format!("value-{i}");
            w.add(k.as_bytes(), v.as_bytes());
        }
        let pages = w.data_pages() + 16;
        let file = env.create(ctx, name, pages);
        let meta = w.finish(ctx, &file, 10);
        (SstReader::from_meta(meta, Arc::clone(&file)), file)
    }

    #[test]
    fn write_then_get() {
        let mut ctx = FreeCtx::new(1);
        let env = env();
        let (r, _) = build_table(&mut ctx, &env, 1000, "a.sst");
        assert_eq!(r.meta.entries, 1000);
        assert!(r.meta.n_blocks > 1);
        for i in [0u64, 1, 499, 998, 999] {
            let k = format!("key{i:08}");
            assert_eq!(
                r.get(&mut ctx, k.as_bytes()),
                Some(format!("value-{i}").into_bytes()),
                "key {i}"
            );
        }
        assert_eq!(r.get(&mut ctx, b"key99999999"), None);
        assert_eq!(r.get(&mut ctx, b"aaa"), None);
    }

    #[test]
    fn range_check() {
        let mut ctx = FreeCtx::new(1);
        let env = env();
        let (r, _) = build_table(&mut ctx, &env, 100, "b.sst");
        assert!(r.in_range(b"key00000050"));
        assert!(!r.in_range(b"zzz"));
        assert!(!r.in_range(b"aaa"));
    }

    #[test]
    fn reopen_from_device() {
        let mut ctx = FreeCtx::new(1);
        let env = env();
        let (_, file) = build_table(&mut ctx, &env, 500, "c.sst");
        let r2 = SstReader::open(&mut ctx, file).expect("recover SST");
        assert_eq!(r2.meta.entries, 500);
        let k = format!("key{:08}", 123);
        assert_eq!(r2.get(&mut ctx, k.as_bytes()), Some(b"value-123".to_vec()));
    }

    #[test]
    fn scan_visits_in_order() {
        let mut ctx = FreeCtx::new(1);
        let env = env();
        let (r, _) = build_table(&mut ctx, &env, 300, "d.sst");
        let mut seen = Vec::new();
        r.scan_from(&mut ctx, b"key00000100", |k, _| {
            seen.push(k.to_vec());
            seen.len() < 20
        });
        assert_eq!(seen.len(), 20);
        assert_eq!(seen[0], b"key00000100".to_vec());
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bloom_skips_absent_keys_without_io() {
        let mut ctx = FreeCtx::new(1);
        let env = env();
        let (r, _) = build_table(&mut ctx, &env, 1000, "e.sst");
        let reads_before = ctx.stats.device_reads + {
            let (h, m) = env.cache().stats();
            h + m
        };
        let mut blocked = 0;
        for i in 5000..5100u64 {
            let k = format!("key{i:08}");
            if r.get(&mut ctx, k.as_bytes()).is_none() {
                blocked += 1;
            }
        }
        assert_eq!(blocked, 100);
        let reads_after = ctx.stats.device_reads + {
            let (h, m) = env.cache().stats();
            h + m
        };
        // Nearly all misses were answered by the bloom filter alone.
        assert!(
            reads_after - reads_before < 10,
            "bloom should avoid block reads: {} extra",
            reads_after - reads_before
        );
    }

    #[test]
    fn get_charges_crc_and_search() {
        let mut ctx = FreeCtx::new(1);
        let env = env();
        let (r, _) = build_table(&mut ctx, &env, 100, "f.sst");
        let app0 = ctx.breakdown.get(CostCat::App);
        r.get(&mut ctx, b"key00000050").unwrap();
        let app = ctx.breakdown.get(CostCat::App) - app0;
        assert!(app >= BLOOM_PROBE + INDEX_SEARCH + BLOCK_CRC + BLOCK_SEARCH);
    }
}
