//! Krill crash recovery over the full Aquila stack.
//!
//! The store runs over an `AquilaRegion` on the SPDK-NVMe path; a
//! deterministic power cut (`nvme.write:crash=S@op=K`) lands inside one
//! of several commit write-backs. A fresh stack recovers from the
//! captured device image and `Krill::reopen` replays the committed log.
//! The contract under test: commits are atomic and ordered — the
//! recovered store serves exactly the keys of some prefix of the commit
//! history, each with its exact value, and always at least every commit
//! that fully preceded the cut.

use std::sync::Arc;

use aquila::{AquilaRegion, AquilaRuntime, DeviceKind, MmioPolicy};
use aquila_kvstore::{Krill, KrillConfig};
use aquila_sim::fault::FaultPlan;
use aquila_sim::{CoreDebts, FreeCtx};

const DB_PAGES: u64 = 2048;
const BASE_KEYS: u64 = 300;
const ROUNDS: u64 = 6;
const KEYS_PER_ROUND: u64 = 50;

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    (
        format!("key{i:08}").into_bytes(),
        format!("value-{i}-{}", "z".repeat(80)).into_bytes(),
    )
}

/// Runs the workload with a cut armed after the base commit; returns the
/// captured crash image, if the cut fired.
fn run_with_cut(seed: u64, cut_op: u64, sectors: usize) -> Option<Vec<u8>> {
    let mut ctx = FreeCtx::new(seed);
    let debts = Arc::new(CoreDebts::new(1));
    let rt = AquilaRuntime::build(&mut ctx, DeviceKind::NvmeSpdk, 65536, 512, 1, debts);
    rt.aquila.thread_enter(&mut ctx);
    let f = rt.open("/krill/db", DB_PAGES).unwrap();
    rt.store.sync_md(&mut ctx).unwrap();
    let region: Arc<dyn aquila_sim::MemRegion> =
        Arc::new(AquilaRegion::map(&mut ctx, Arc::clone(&rt.aquila), f, DB_PAGES).unwrap());
    let db = Krill::new(Arc::clone(&region), KrillConfig::default());

    // Base batch: committed with no fault plan installed — these keys
    // are unconditionally durable.
    for i in 0..BASE_KEYS {
        let (k, v) = kv(i);
        db.put(&mut ctx, &k, &v).unwrap();
    }
    db.commit(&mut ctx);

    // Arm the cut, then run several put+commit rounds under it.
    let plan =
        Arc::new(FaultPlan::parse(&format!("nvme.write:crash={sectors}@op={cut_op}")).unwrap());
    rt.access
        .nvme_device()
        .expect("spdk path has an nvme device")
        .set_fault_plan(Arc::clone(&plan));
    for round in 0..ROUNDS {
        let lo = BASE_KEYS + round * KEYS_PER_ROUND;
        for i in lo..lo + KEYS_PER_ROUND {
            let (k, v) = kv(i);
            db.put(&mut ctx, &k, &v).unwrap();
        }
        db.commit(&mut ctx);
    }

    plan.crash_image().map(|c| c.image)
}

#[test]
fn reopen_after_power_cut_serves_every_committed_key() {
    let mut fired = 0u32;
    for k in 1..=12u64 {
        let sectors = ((k * 3) % 9) as usize;
        let Some(image) = run_with_cut(0xD0_0000 + k, k, sectors) else {
            continue;
        };
        fired += 1;

        let mut ctx = FreeCtx::new(0xAF7E0 + k);
        let debts = Arc::new(CoreDebts::new(1));
        let rt = AquilaRuntime::recover_from_image(
            &mut ctx,
            &image,
            512,
            1,
            debts,
            MmioPolicy::default(),
        )
        .unwrap();
        rt.aquila.thread_enter(&mut ctx);
        let f = rt.open("/krill/db", DB_PAGES).unwrap();
        let region: Arc<dyn aquila_sim::MemRegion> =
            Arc::new(AquilaRegion::map(&mut ctx, Arc::clone(&rt.aquila), f, DB_PAGES).unwrap());
        let db = Krill::reopen(&mut ctx, region, KrillConfig::default())
            .unwrap_or_else(|e| panic!("cut_op={k}: reopen failed: {e:?}"));

        // The base commit fully preceded the cut: every key must be
        // served with its exact value.
        for i in 0..BASE_KEYS {
            let (key, val) = kv(i);
            assert_eq!(
                db.get(&mut ctx, &key),
                Some(val),
                "cut_op={k}: committed key {i} lost"
            );
        }
        // The armed rounds must recover as an atomic, ordered prefix of
        // the commit history: round r visible => all earlier rounds
        // fully visible, and no round partially visible.
        let mut prefix_ended = false;
        for round in 0..ROUNDS {
            let lo = BASE_KEYS + round * KEYS_PER_ROUND;
            let present = (lo..lo + KEYS_PER_ROUND)
                .filter(|&i| {
                    let (key, val) = kv(i);
                    match db.get(&mut ctx, &key) {
                        Some(got) => {
                            assert_eq!(got, val, "cut_op={k}: key {i} served a torn value");
                            true
                        }
                        None => false,
                    }
                })
                .count() as u64;
            assert!(
                present == 0 || present == KEYS_PER_ROUND,
                "cut_op={k}: commit round {round} was not atomic \
                 ({present}/{KEYS_PER_ROUND} keys visible)"
            );
            if present == 0 {
                prefix_ended = true;
            } else {
                assert!(
                    !prefix_ended,
                    "cut_op={k}: round {round} visible after a missing earlier round"
                );
            }
        }
    }
    assert!(fired >= 8, "only {fired} cut points fired in the sweep");
}
