//! The Aquila DRAM I/O cache: frames, index, replacement, dirty tracking.
//!
//! This ties the pieces of section 3.2 together:
//!
//! - a concurrent hash table indexes cached pages (no global tree lock);
//! - a two-level freelist hands out frames with per-core locality;
//! - CLOCK approximates LRU, updated on page faults;
//! - per-core dirty trees keep writeback ordered by device offset;
//! - eviction is batched (512 pages) so unmapping, TLB shootdown, and
//!   writeback amortize.
//!
//! The cache is policy-mechanism split: it *selects* victims and manages
//! frames, while the mmio engine (the `aquila` crate) owns the page table
//! and performs unmapping, shootdowns, and device writeback — mirroring
//! the paper's layering where applications can customize either side.

use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};

use aquila_mmu::{FrameId, PhysMem, HUGE_PAGE_PAGES, PAGE_SIZE};
use aquila_sim::{race, CostCat, SimCtx};
use aquila_sync::Mutex;
use aquila_vmx::Gpa;

use crate::dirty::{DirtyPage, DirtyTrees};
use crate::freelist::{AllocOutcome, Freelist, FreelistConfig, NumaTopology};
use crate::hashtable::{InsertOutcome, LockFreeMap};
use crate::key::PageKey;
use crate::lru::ClockLru;

/// Cache construction parameters.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum frames the cache may ever hold (sizes the frame pool).
    pub max_frames: usize,
    /// Frames initially available (dynamic resizing can grow to
    /// `max_frames`).
    pub initial_frames: usize,
    /// Pages evicted per synchronous eviction round (paper: 512).
    pub evict_batch: usize,
    /// Free-frame count below which the asynchronous write-behind
    /// pipeline starts evicting (0 disables watermark-driven eviction;
    /// faulting vcores then evict synchronously as before).
    pub low_watermark: usize,
    /// Free-frame count the pipeline refills to once triggered. Must be
    /// `>= low_watermark`; 0 disables watermark-driven eviction.
    pub high_watermark: usize,
    /// NUMA shape for the freelist.
    pub topology: NumaTopology,
    /// Freelist batching parameters.
    pub freelist: FreelistConfig,
    /// Guest-physical base address of the frame pool.
    pub gpa_base: u64,
    /// Number of 2 MiB slab runs backing huge-page promotion (0 disables
    /// the slab window). Each run is 512 physically contiguous frames
    /// appended beyond `max_frames`, outside the ordinary freelist.
    pub slab_runs: usize,
    /// Guest-physical base of the slab window (2 MiB-aligned, disjoint
    /// from the ordinary window).
    pub slab_gpa_base: u64,
}

impl CacheConfig {
    /// A cache of `frames` frames on a flat `cores`-core machine.
    ///
    /// The freelist spill threshold scales with the per-core share of the
    /// cache so eviction-freed frames flow back to the shared NUMA queue
    /// promptly (the paper's absolute numbers assume multi-GB caches).
    pub fn flat(frames: usize, cores: usize) -> CacheConfig {
        let spill = (frames / cores.max(1) / 2).clamp(32, 8192);
        CacheConfig {
            max_frames: frames,
            initial_frames: frames,
            evict_batch: 512,
            low_watermark: 0,
            high_watermark: 0,
            topology: NumaTopology::flat(cores),
            freelist: FreelistConfig {
                core_spill_threshold: spill,
                level_batch: (spill / 2).max(16),
                steal_batch: 0,
            },
            gpa_base: 0x1_0000_0000,
            slab_runs: 0,
            slab_gpa_base: 0x8_0000_0000,
        }
    }
}

// Race-detector identities (`aquila_sim::race`). The hash table is
// deliberately lock-free on the read side, so lookups are annotated as
// Acquire-reads of the per-key slot — paired with the Release-publish
// writes that mutations perform under the per-bucket lock — instead of
// lockset-checked plain accesses. The CLOCK bits are Relaxed atomics
// carrying no cross-thread data flow and stay unannotated. Declared
// nesting order (see [`DramCache::new`]): a bucket lock may be held while
// taking an owner slot (commit_insert); dirty trees and the freelist are
// leaves.
const L_BUCKET: &str = "pcache.map.bucket";
const V_SLOT: &str = "pcache.map.key";
const L_OWNER: &str = "pcache.owner";
const V_OWNER: &str = "pcache.owner.slot";
const L_DIRTY: &str = "pcache.dirty";
const V_DIRTY: &str = "pcache.dirty.trees";
const L_FREELIST: &str = "pcache.freelist";
const V_FREELIST: &str = "pcache.freelist.queues";
/// NUMA node queues are lock-free (SegQueue); their push/pop traffic is
/// annotated as release-publishes and acquire-reads per node instead of
/// lockset-checked accesses.
const V_FREELIST_NODE: &str = "pcache.freelist.node_queue";
const L_SLAB: &str = "pcache.slab";
const V_SLAB: &str = "pcache.slab.runs";

/// Upper bound on distinct tenants a cache tracks (DESIGN.md §15). Ids
/// at or beyond the cap alias into the default tenant.
pub const MAX_TENANTS: usize = 64;

/// Files a cache can attribute to non-default tenants. File ids are
/// allocated densely from zero, so a fixed window covers every real
/// workload; ids beyond it fall back to the default tenant.
const FILE_TENANT_CAP: usize = 1024;

/// Per-tenant residency accounting and quota state.
///
/// Tenancy is attributed per *file*: [`DramCache::bind_file_tenant`]
/// maps a file id to a tenant, and every cached page of that file
/// charges the tenant's resident count at index-insert time (debited
/// when the page leaves the index on eviction). Tenant 0 is the default
/// tenant; unbound files land there. Everything here is plain atomics —
/// the hot-path accounting is a single array-indexed counter update and
/// the file→tenant lookup one array read, so tenancy adds no lock to
/// the pcache nesting order.
struct TenantTable {
    file_tenant: Vec<AtomicU16>,
    resident: Vec<AtomicUsize>,
    /// Frame quota per tenant; 0 means unlimited.
    quota: Vec<AtomicUsize>,
    /// Fair-share weight per tenant (default 1); the evictor divides a
    /// tenant's overage by its weight when apportioning a fairness round.
    weight: Vec<AtomicUsize>,
}

impl TenantTable {
    fn new() -> TenantTable {
        TenantTable {
            file_tenant: (0..FILE_TENANT_CAP).map(|_| AtomicU16::new(0)).collect(),
            resident: (0..MAX_TENANTS).map(|_| AtomicUsize::new(0)).collect(),
            quota: (0..MAX_TENANTS).map(|_| AtomicUsize::new(0)).collect(),
            weight: (0..MAX_TENANTS).map(|_| AtomicUsize::new(1)).collect(),
        }
    }

    fn tenant_of(&self, file: u32) -> u16 {
        self.file_tenant
            .get(file as usize)
            .map(|t| t.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    fn slot(&self, tenant: u16) -> usize {
        (tenant as usize) % MAX_TENANTS
    }

    fn credit(&self, file: u32) {
        let t = self.slot(self.tenant_of(file));
        self.resident[t].fetch_add(1, Ordering::Relaxed);
    }

    fn debit(&self, file: u32) {
        let t = self.slot(self.tenant_of(file));
        // Saturating: a file rebound mid-run could otherwise underflow.
        let _ = self.resident[t].fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }
}

/// An evicted page the mmio engine must now unmap and possibly write back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The page that was cached.
    pub key: PageKey,
    /// Its frame (still holding the data until released).
    pub frame: FrameId,
    /// Whether the frame holds unwritten modifications.
    pub dirty: bool,
}

/// The DRAM I/O cache.
pub struct DramCache {
    mem: PhysMem,
    map: LockFreeMap,
    freelist: Freelist,
    clock: ClockLru,
    dirty: DirtyTrees,
    /// Reverse mapping frame -> key for eviction (slot locked per frame).
    owners: Vec<Mutex<Option<PageKey>>>,
    cfg: CacheConfig,
    active_frames: Mutex<usize>,
    /// Free slab runs, sorted descending so `pop` yields the lowest id
    /// (deterministic allocation order).
    slab_free: Mutex<Vec<usize>>,
    /// Resident pages per slab run; a run returns to `slab_free` when its
    /// occupancy drains back to zero.
    slab_occupancy: Vec<Mutex<u16>>,
    /// Per-tenant residency/quota accounting (DESIGN.md §15).
    tenants: TenantTable,
}

impl DramCache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if `initial_frames > max_frames` or the pool is empty.
    pub fn new(cfg: CacheConfig) -> DramCache {
        assert!(cfg.max_frames > 0, "cache needs at least one frame");
        assert!(
            cfg.initial_frames <= cfg.max_frames,
            "initial frames exceed pool"
        );
        race::declare_order("pcache", &[L_BUCKET, L_OWNER, L_DIRTY, L_FREELIST, L_SLAB]);
        let slab_frames = cfg.slab_runs * HUGE_PAGE_PAGES as usize;
        let total_frames = cfg.max_frames + slab_frames;
        let mem = PhysMem::with_slab(
            Gpa(cfg.gpa_base),
            cfg.max_frames,
            Gpa(cfg.slab_gpa_base),
            slab_frames,
        );
        let freelist = Freelist::new(
            cfg.topology,
            cfg.freelist,
            (0..cfg.initial_frames as u32).map(FrameId),
        );
        DramCache {
            map: LockFreeMap::new(total_frames),
            clock: ClockLru::new(total_frames),
            dirty: DirtyTrees::new(cfg.topology.cores()),
            owners: (0..total_frames).map(|_| Mutex::new(None)).collect(),
            freelist,
            mem,
            active_frames: Mutex::new(cfg.initial_frames),
            slab_free: Mutex::new((0..cfg.slab_runs).rev().collect()),
            slab_occupancy: (0..cfg.slab_runs).map(|_| Mutex::new(0)).collect(),
            tenants: TenantTable::new(),
            cfg,
        }
    }

    // ---------------------------------------------------------------
    // Tenancy (DESIGN.md §15): per-tenant residency, quotas, weights.
    // ---------------------------------------------------------------

    /// Attributes `file`'s cached pages to `tenant` (call before the
    /// file's pages enter the cache; tenant 0 is the default tenant).
    pub fn bind_file_tenant(&self, file: u32, tenant: u16) {
        if let Some(slot) = self.tenants.file_tenant.get(file as usize) {
            slot.store(tenant, Ordering::Relaxed);
        }
    }

    /// The tenant `file` is bound to (0 when unbound).
    pub fn tenant_of_file(&self, file: u32) -> u16 {
        self.tenants.tenant_of(file)
    }

    /// Sets `tenant`'s frame quota (0 = unlimited).
    pub fn set_tenant_quota(&self, tenant: u16, frames: usize) {
        self.tenants.quota[self.tenants.slot(tenant)].store(frames, Ordering::Relaxed);
    }

    /// Sets `tenant`'s fair-share weight (clamped to at least 1).
    pub fn set_tenant_weight(&self, tenant: u16, weight: usize) {
        self.tenants.weight[self.tenants.slot(tenant)].store(weight.max(1), Ordering::Relaxed);
    }

    /// Frames `tenant`'s files currently hold in the cache.
    pub fn tenant_resident(&self, tenant: u16) -> usize {
        self.tenants.resident[self.tenants.slot(tenant)].load(Ordering::Relaxed)
    }

    /// `tenant`'s configured quota (0 = unlimited).
    pub fn tenant_quota(&self, tenant: u16) -> usize {
        self.tenants.quota[self.tenants.slot(tenant)].load(Ordering::Relaxed)
    }

    /// `tenant`'s fair-share weight.
    pub fn tenant_weight(&self, tenant: u16) -> usize {
        self.tenants.weight[self.tenants.slot(tenant)].load(Ordering::Relaxed)
    }

    /// How many frames `tenant` holds *beyond* its quota (0 with no
    /// quota, or while under it). The fairness round evicts in
    /// proportion to `overage / weight`.
    pub fn tenant_overage(&self, tenant: u16) -> usize {
        let quota = self.tenant_quota(tenant);
        if quota == 0 {
            return 0;
        }
        self.tenant_resident(tenant).saturating_sub(quota)
    }

    /// Whether `tenant` has a quota and currently exceeds it.
    pub fn tenant_over_quota(&self, tenant: u16) -> bool {
        self.tenant_overage(tenant) > 0
    }

    /// The frame pool (for reading/filling page data).
    pub fn mem(&self) -> &PhysMem {
        &self.mem
    }

    /// Configured eviction batch size.
    pub fn evict_batch(&self) -> usize {
        self.cfg.evict_batch
    }

    /// Cached (resident) page count.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// Dirty page count.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Frames currently usable by the cache (dynamic resizing changes
    /// this).
    pub fn active_frames(&self) -> usize {
        *self.active_frames.lock()
    }

    /// Looks up a cached page, updating the LRU approximation.
    pub fn lookup(&self, ctx: &mut dyn SimCtx, key: PageKey) -> Option<FrameId> {
        let c = ctx.cost().hash_lookup;
        ctx.charge(CostCat::CacheMgmt, c);
        race::read_acquire(ctx, (V_SLOT, key.pack()));
        let frame = self.map.get(key).map(|v| FrameId(v as u32));
        if let Some(f) = frame {
            self.clock.touch(f);
        }
        frame
    }

    /// Allocates a free frame without evicting; `None` means the caller
    /// must run an eviction round.
    ///
    /// Freelist ownership is per-vcore: the caller's core queue is its
    /// own race-detector instance, node-queue refills are annotated as
    /// acquire-reads of the (lock-free) node queue, and a sibling steal
    /// briefly takes the victim core's instance so the cross-core queue
    /// traffic stays lockset-consistent. No shared lock on this path.
    pub fn try_alloc(&self, ctx: &mut dyn SimCtx) -> Option<FrameId> {
        let c = ctx.cost().freelist_op;
        ctx.charge(CostCat::CacheMgmt, c);
        let k = ctx.core() as u64;
        race::acquire(ctx, (L_FREELIST, k));
        let got = self.freelist.alloc_traced(ctx.core());
        match got {
            Some((_, AllocOutcome::LocalHit)) | None => {}
            Some((_, AllocOutcome::NodeRefill(node))) => {
                aquila_sim::metrics::add(ctx, "pcache.freelist.refills", 1);
                race::read_acquire(ctx, (V_FREELIST_NODE, node as u64));
            }
            Some((_, AllocOutcome::RemoteNode(node))) => {
                aquila_sim::metrics::add(ctx, "pcache.freelist.refills", 1);
                aquila_sim::metrics::add(ctx, "pcache.freelist.remote_refills", 1);
                race::read_acquire(ctx, (V_FREELIST_NODE, node as u64));
            }
            Some((_, AllocOutcome::Steal { victim, rebalanced })) => {
                aquila_sim::metrics::add(ctx, "pcache.freelist.steals", 1);
                aquila_sim::metrics::add(
                    ctx,
                    "pcache.freelist.stolen_frames",
                    1 + rebalanced as u64,
                );
                race::acquire(ctx, (L_FREELIST, victim as u64));
                race::write(ctx, (V_FREELIST, victim as u64));
                race::release(ctx, (L_FREELIST, victim as u64));
            }
        }
        race::write(ctx, (V_FREELIST, k));
        race::release(ctx, (L_FREELIST, k));
        got.map(|(f, _)| f)
    }

    /// Number of 2 MiB slab runs configured (0 = promotion disabled).
    pub fn slab_runs(&self) -> usize {
        self.cfg.slab_runs
    }

    /// Free (unallocated) slab runs.
    pub fn free_slab_runs(&self) -> usize {
        self.slab_free.lock().len()
    }

    /// Frames the CLOCK sweep currently considers resident (diagnostics).
    pub fn clock_resident(&self) -> usize {
        self.clock.resident_count()
    }

    /// Cached pages occupying slab run `run` (diagnostics).
    pub fn slab_occupancy_of(&self, run: usize) -> usize {
        usize::from(*self.slab_occupancy[run].lock())
    }

    /// First frame id of slab run `run`.
    pub fn slab_run_frame(&self, run: usize, page: usize) -> FrameId {
        debug_assert!(run < self.cfg.slab_runs && page < HUGE_PAGE_PAGES as usize);
        FrameId((self.mem.slab_start() + run * HUGE_PAGE_PAGES as usize + page) as u32)
    }

    /// Guest-physical base address of slab run `run` (2 MiB-aligned).
    pub fn slab_run_gpa(&self, run: usize) -> Gpa {
        self.mem.gpa_of(self.slab_run_frame(run, 0))
    }

    /// The slab run containing `frame`, or `None` for ordinary frames.
    pub fn slab_run_of(&self, frame: FrameId) -> Option<usize> {
        let idx = frame.0 as usize;
        if idx >= self.mem.slab_start() && idx < self.mem.frame_count() {
            Some((idx - self.mem.slab_start()) / HUGE_PAGE_PAGES as usize)
        } else {
            None
        }
    }

    /// Allocates the lowest-numbered free slab run for a promotion.
    pub fn try_alloc_slab_run(&self, ctx: &mut dyn SimCtx) -> Option<usize> {
        let c = ctx.cost().freelist_op;
        ctx.charge(CostCat::CacheMgmt, c);
        race::acquire(ctx, (L_SLAB, 0));
        let run = self.slab_free.lock().pop();
        race::write(ctx, (V_SLAB, 0));
        race::release(ctx, (L_SLAB, 0));
        run
    }

    /// Returns an *empty* slab run allocated with
    /// [`DramCache::try_alloc_slab_run`] whose promotion was abandoned
    /// before any page migrated into it.
    ///
    /// # Panics
    ///
    /// Panics if pages have already migrated into the run (those drain
    /// back through [`DramCache::release_frame`] instead).
    pub fn release_slab_run(&self, ctx: &mut dyn SimCtx, run: usize) {
        race::acquire(ctx, (L_SLAB, 0));
        assert_eq!(
            *self.slab_occupancy[run].lock(),
            0,
            "released slab run still holds pages"
        );
        let mut free = self.slab_free.lock();
        free.push(run);
        free.sort_unstable_by(|a, b| b.cmp(a));
        drop(free);
        race::write(ctx, (V_SLAB, 0));
        race::release(ctx, (L_SLAB, 0));
    }

    /// Migrates a cached page from `old` (an ordinary frame) into `new`
    /// (a slab frame) during huge-page collapse: copies the bytes,
    /// repoints the index, owner slots, and dirty tree, and charges the
    /// run's occupancy. Returns whether the page was dirty.
    ///
    /// The caller still owns `old`: it must unmap any virtual mappings,
    /// shoot down TLBs, and then call [`DramCache::release_frame`] on it.
    /// The slab frame is left *pinned* (invisible to CLOCK) until
    /// [`DramCache::unpin_slab_run`] makes the run's pages evictable
    /// again at demotion.
    pub fn migrate_frame(
        &self,
        ctx: &mut dyn SimCtx,
        key: PageKey,
        old: FrameId,
        new: FrameId,
    ) -> bool {
        let run = self
            .slab_run_of(new)
            .expect("migration target must be a slab frame");
        let c = ctx.cost().memcpy_4k_avx2 + ctx.cost().hash_update;
        ctx.charge(CostCat::CacheMgmt, c);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        self.mem.read(old, 0, &mut buf);
        self.mem.write(new, 0, &buf);
        let bucket = self.map.bucket_index(key);
        race::acquire(ctx, (L_BUCKET, bucket));
        let repointed = self.map.update(key, new.0 as u64);
        race::write_release(ctx, (V_SLOT, key.pack()));
        race::release(ctx, (L_BUCKET, bucket));
        assert!(
            repointed,
            "page vanished during promotion; candidacy is checked under the fault lock"
        );
        race::acquire(ctx, (L_OWNER, old.0 as u64));
        *self.owners[old.0 as usize].lock() = None;
        race::write(ctx, (V_OWNER, old.0 as u64));
        race::release(ctx, (L_OWNER, old.0 as u64));
        race::acquire(ctx, (L_OWNER, new.0 as u64));
        *self.owners[new.0 as usize].lock() = Some(key);
        race::write(ctx, (V_OWNER, new.0 as u64));
        race::release(ctx, (L_OWNER, new.0 as u64));
        race::acquire(ctx, (L_DIRTY, 0));
        let dirty = match self.dirty.remove_anywhere(key) {
            Some((core, _)) => {
                self.dirty.insert(core, key, new);
                true
            }
            None => false,
        };
        race::write(ctx, (V_DIRTY, 0));
        race::release(ctx, (L_DIRTY, 0));
        race::acquire(ctx, (L_SLAB, 0));
        *self.slab_occupancy[run].lock() += 1;
        race::write(ctx, (V_SLAB, 0));
        race::release(ctx, (L_SLAB, 0));
        dirty
    }

    /// Publishes `key -> frame` for a slab frame the promoter filled
    /// directly from the device (a page of the run that was not yet
    /// resident). Like [`DramCache::commit_insert`] but the frame stays
    /// pinned (invisible to CLOCK) and the run's occupancy is charged.
    pub fn insert_pinned(
        &self,
        ctx: &mut dyn SimCtx,
        key: PageKey,
        frame: FrameId,
    ) -> Result<(), FrameId> {
        let run = self
            .slab_run_of(frame)
            .expect("pinned inserts target slab frames");
        let c = ctx.cost().hash_update;
        ctx.charge(CostCat::CacheMgmt, c);
        let bucket = self.map.bucket_index(key);
        race::acquire(ctx, (L_BUCKET, bucket));
        let result = match self.map.insert(key, frame.0 as u64) {
            InsertOutcome::Inserted => {
                race::acquire(ctx, (L_OWNER, frame.0 as u64));
                *self.owners[frame.0 as usize].lock() = Some(key);
                race::write(ctx, (V_OWNER, frame.0 as u64));
                race::release(ctx, (L_OWNER, frame.0 as u64));
                Ok(())
            }
            InsertOutcome::AlreadyPresent(v) => Err(FrameId(v as u32)),
        };
        race::write_release(ctx, (V_SLOT, key.pack()));
        race::release(ctx, (L_BUCKET, bucket));
        if result.is_ok() {
            self.tenants.credit(key.file);
            race::acquire(ctx, (L_SLAB, 0));
            *self.slab_occupancy[run].lock() += 1;
            race::write(ctx, (V_SLAB, 0));
            race::release(ctx, (L_SLAB, 0));
        }
        result
    }

    /// Makes a demoted run's pages visible to CLOCK again (they remain
    /// resident in their slab frames as ordinary 4 KiB pages and drain
    /// out through normal eviction).
    pub fn unpin_slab_run(&self, run: usize) {
        for page in 0..HUGE_PAGE_PAGES as usize {
            let frame = self.slab_run_frame(run, page);
            if self.owners[frame.0 as usize].lock().is_some() {
                self.clock.mark_resident(frame);
            }
        }
    }

    /// Whether `key` is currently marked dirty (uniform clean/dirty
    /// candidacy check for promotion).
    pub fn page_dirty(&self, ctx: &mut dyn SimCtx, key: PageKey) -> bool {
        let c = ctx.cost().rbtree_op;
        ctx.charge(CostCat::CacheMgmt, c);
        race::acquire(ctx, (L_DIRTY, 0));
        let dirty = self.dirty.contains(key);
        race::read(ctx, (V_DIRTY, 0));
        race::release(ctx, (L_DIRTY, 0));
        dirty
    }

    /// Selects and detaches an eviction batch.
    ///
    /// Victims are removed from the index and the dirty trees atomically
    /// with respect to lookups (a concurrent fault on a victim page simply
    /// misses and refetches). The caller must unmap the pages, perform one
    /// batched TLB shootdown, write back the dirty victims (see
    /// [`crate::dirty::coalesce_runs`]), and then return the frames with
    /// [`DramCache::release_frame`].
    pub fn evict_candidates(&self, ctx: &mut dyn SimCtx) -> Vec<Victim> {
        self.evict_candidates_n(ctx, self.cfg.evict_batch)
    }

    /// [`DramCache::evict_candidates`] with an explicit batch size (the
    /// asynchronous evictor sizes batches by the watermark deficit rather
    /// than the synchronous `evict_batch`).
    pub fn evict_candidates_n(&self, ctx: &mut dyn SimCtx, batch: usize) -> Vec<Victim> {
        let frames = self.clock.collect_victims(batch);
        self.detach_frames(ctx, frames)
    }

    /// [`DramCache::evict_candidates_n`] restricted to one tenant's
    /// frames: the CLOCK sweep only considers frames whose owner key
    /// belongs to a file bound to `tenant`, leaving every other tenant's
    /// reference bits untouched (the fairness round of DESIGN.md §15).
    pub fn evict_candidates_from(
        &self,
        ctx: &mut dyn SimCtx,
        batch: usize,
        tenant: u16,
    ) -> Vec<Victim> {
        let frames = self.clock.collect_victims_where(batch, |frame| {
            // An unannotated peek at the owner slot: the detach below
            // re-takes it authoritatively, so a racing release at worst
            // wastes one candidate slot.
            self.owners[frame.0 as usize]
                .lock()
                .map(|key| self.tenants.tenant_of(key.file) == tenant)
                .unwrap_or(false)
        });
        self.detach_frames(ctx, frames)
    }

    /// Detaches the given frames from the index/dirty trees, producing
    /// the victim batch the engine must unmap and retire.
    fn detach_frames(&self, ctx: &mut dyn SimCtx, frames: Vec<FrameId>) -> Vec<Victim> {
        let sp = aquila_sim::span::begin(ctx, "pcache.select_victims", CostCat::Eviction);
        let mut victims = Vec::with_capacity(frames.len());
        let mut charge = aquila_sim::Cycles::ZERO;
        for frame in frames {
            race::acquire(ctx, (L_OWNER, frame.0 as u64));
            let key = self.owners[frame.0 as usize].lock().take();
            race::write(ctx, (V_OWNER, frame.0 as u64));
            race::release(ctx, (L_OWNER, frame.0 as u64));
            let Some(key) = key else {
                continue; // Raced with a concurrent release.
            };
            charge += ctx.cost().hash_update + ctx.cost().lru_update;
            let bucket = self.map.bucket_index(key);
            race::acquire(ctx, (L_BUCKET, bucket));
            let removed = self.map.remove(key);
            race::write_release(ctx, (V_SLOT, key.pack()));
            race::release(ctx, (L_BUCKET, bucket));
            if removed.is_none() {
                continue;
            }
            self.tenants.debit(key.file);
            race::acquire(ctx, (L_DIRTY, 0));
            let dirty = self.dirty.remove_anywhere(key).is_some();
            race::write(ctx, (V_DIRTY, 0));
            race::release(ctx, (L_DIRTY, 0));
            if dirty {
                charge += ctx.cost().rbtree_op;
            }
            self.clock.mark_free(frame);
            victims.push(Victim { key, frame, dirty });
            ctx.counters().evictions += 1;
        }
        ctx.charge(CostCat::Eviction, charge);
        aquila_sim::metrics::add(ctx, "pcache.evict.victims", victims.len() as u64);
        aquila_sim::metrics::add(
            ctx,
            "pcache.evict.dirty",
            victims.iter().filter(|v| v.dirty).count() as u64,
        );
        aquila_sim::span::end(ctx, sp);
        victims
    }

    /// Publishes `key -> frame` in the index.
    ///
    /// On a fault race the insert loses and the existing frame is
    /// returned; the caller should map that frame instead and release its
    /// own with [`DramCache::release_frame`].
    pub fn commit_insert(
        &self,
        ctx: &mut dyn SimCtx,
        key: PageKey,
        frame: FrameId,
    ) -> Result<(), FrameId> {
        let sp = aquila_sim::span::begin(ctx, "pcache.insert", CostCat::CacheMgmt);
        let c = ctx.cost().hash_update + ctx.cost().lru_update;
        ctx.charge(CostCat::CacheMgmt, c);
        let bucket = self.map.bucket_index(key);
        race::acquire(ctx, (L_BUCKET, bucket));
        let result = match self.map.insert(key, frame.0 as u64) {
            InsertOutcome::Inserted => {
                race::acquire(ctx, (L_OWNER, frame.0 as u64));
                *self.owners[frame.0 as usize].lock() = Some(key);
                race::write(ctx, (V_OWNER, frame.0 as u64));
                race::release(ctx, (L_OWNER, frame.0 as u64));
                self.clock.mark_resident(frame);
                self.tenants.credit(key.file);
                Ok(())
            }
            InsertOutcome::AlreadyPresent(v) => Err(FrameId(v as u32)),
        };
        race::write_release(ctx, (V_SLOT, key.pack()));
        race::release(ctx, (L_BUCKET, bucket));
        aquila_sim::span::end(ctx, sp);
        result
    }

    /// Returns a frame to its pool (after eviction writeback, or when an
    /// insert lost a race). Ordinary frames go back to the freelist; slab
    /// frames drain their run's occupancy, and the run returns to the
    /// slab pool once empty — slab frames never enter the freelist.
    pub fn release_frame(&self, ctx: &mut dyn SimCtx, frame: FrameId) {
        let c = ctx.cost().freelist_op;
        ctx.charge(CostCat::CacheMgmt, c);
        self.clock.mark_free(frame);
        race::acquire(ctx, (L_OWNER, frame.0 as u64));
        *self.owners[frame.0 as usize].lock() = None;
        race::write(ctx, (V_OWNER, frame.0 as u64));
        race::release(ctx, (L_OWNER, frame.0 as u64));
        if let Some(run) = self.slab_run_of(frame) {
            self.mem.zero(frame);
            race::acquire(ctx, (L_SLAB, 0));
            let mut occ = self.slab_occupancy[run].lock();
            *occ -= 1;
            if *occ == 0 {
                let mut free = self.slab_free.lock();
                free.push(run);
                free.sort_unstable_by(|a, b| b.cmp(a));
                aquila_sim::trace::instant(ctx, "pcache.slab.run_freed", CostCat::CacheMgmt);
            }
            drop(occ);
            race::write(ctx, (V_SLAB, 0));
            race::release(ctx, (L_SLAB, 0));
            return;
        }
        let k = ctx.core() as u64;
        race::acquire(ctx, (L_FREELIST, k));
        if self.freelist.free(ctx.core(), frame) {
            aquila_sim::metrics::add(ctx, "pcache.freelist.spills", 1);
            aquila_sim::trace::instant(ctx, "pcache.freelist.spill", CostCat::CacheMgmt);
            let node = self.cfg.topology.node_of(ctx.core()) as u64;
            race::write_release(ctx, (V_FREELIST_NODE, node));
        }
        race::write(ctx, (V_FREELIST, k));
        race::release(ctx, (L_FREELIST, k));
    }

    /// Marks a cached page dirty (write-fault path). Returns true if the
    /// page transitioned clean -> dirty.
    pub fn mark_dirty(&self, ctx: &mut dyn SimCtx, key: PageKey, frame: FrameId) -> bool {
        let c = ctx.cost().rbtree_op;
        ctx.charge(CostCat::CacheMgmt, c);
        race::acquire(ctx, (L_DIRTY, 0));
        let fresh = self.dirty.insert(ctx.core(), key, frame);
        race::write(ctx, (V_DIRTY, 0));
        race::release(ctx, (L_DIRTY, 0));
        fresh
    }

    /// Drains the dirty pages of `file` in `[start, end)` page range for
    /// writeback (`msync` / background cleaning), sorted by device offset.
    pub fn drain_dirty_range(
        &self,
        ctx: &mut dyn SimCtx,
        file: u32,
        start: u64,
        end: u64,
    ) -> Vec<DirtyPage> {
        race::acquire(ctx, (L_DIRTY, 0));
        let pages = self.dirty.drain_file_range(file, start, end);
        race::write(ctx, (V_DIRTY, 0));
        race::release(ctx, (L_DIRTY, 0));
        let c = ctx.cost().rbtree_op * pages.len().max(1) as u64;
        ctx.charge(CostCat::CacheMgmt, c);
        pages
    }

    /// Drains every dirty page (shutdown or full sync).
    pub fn drain_dirty_all(&self, ctx: &mut dyn SimCtx) -> Vec<DirtyPage> {
        race::acquire(ctx, (L_DIRTY, 0));
        let pages = self.dirty.drain_all();
        race::write(ctx, (V_DIRTY, 0));
        race::release(ctx, (L_DIRTY, 0));
        let c = ctx.cost().rbtree_op * pages.len().max(1) as u64;
        ctx.charge(CostCat::CacheMgmt, c);
        pages
    }

    /// Grows the active frame pool by `extra` frames (dynamic cache
    /// resizing, backed by new EPT mappings in the engine). Returns the
    /// number actually added (bounded by `max_frames`).
    pub fn grow(&self, extra: usize) -> usize {
        let mut active = self.active_frames.lock();
        let room = self.cfg.max_frames - *active;
        let add = extra.min(room);
        let start = *active as u32;
        self.freelist
            .grow(0, (start..start + add as u32).map(FrameId));
        *active += add;
        add
    }

    /// Shrinks the active pool by reclaiming up to `n` *free* frames;
    /// returns how many were reclaimed. (Resident frames must be evicted
    /// first by the engine.)
    pub fn shrink(&self, n: usize) -> usize {
        let mut active = self.active_frames.lock();
        let mut got = 0;
        for _ in 0..n {
            // Reclaim from any core's perspective; core 0 is fine because
            // the freelist falls through to the node queues.
            match self.freelist.alloc(0) {
                Some(_) => got += 1,
                None => break,
            }
        }
        *active -= got;
        got
    }

    /// Free-frame count (diagnostics).
    pub fn free_frames(&self) -> usize {
        self.freelist.free_count()
    }

    /// Configured low watermark (0 = watermark eviction disabled).
    pub fn low_watermark(&self) -> usize {
        self.cfg.low_watermark
    }

    /// Configured high watermark (0 = watermark eviction disabled).
    pub fn high_watermark(&self) -> usize {
        self.cfg.high_watermark
    }

    /// True when watermark eviction is enabled and the free pool has
    /// dropped below the low watermark (the evictor's wake condition).
    pub fn below_low_watermark(&self) -> bool {
        self.cfg.low_watermark > 0 && self.freelist.free_count() < self.cfg.low_watermark
    }

    /// How many frames the free pool currently sits *below* the low
    /// watermark (0 at/above it, or with watermarks disabled). The
    /// engine's stall-deadline degradation samples this: a deficit that
    /// never clears means the write-behind evictor is not keeping up.
    pub fn watermark_deficit(&self) -> usize {
        if self.cfg.low_watermark == 0 {
            return 0;
        }
        self.cfg
            .low_watermark
            .saturating_sub(self.freelist.free_count())
    }

    /// How many frames the evictor should reclaim right now to bring the
    /// free pool back up to the high watermark (0 when already there or
    /// watermarks are disabled).
    pub fn refill_target(&self) -> usize {
        if self.cfg.high_watermark == 0 {
            return 0;
        }
        self.cfg
            .high_watermark
            .saturating_sub(self.freelist.free_count())
    }
}

impl core::fmt::Debug for DramCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DramCache {{ resident: {}, free: {}, dirty: {}, active: {} }}",
            self.resident(),
            self.free_frames(),
            self.dirty_count(),
            self.active_frames()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    fn small_cache(frames: usize) -> DramCache {
        let mut cfg = CacheConfig::flat(frames, 2);
        cfg.evict_batch = 4;
        DramCache::new(cfg)
    }

    #[test]
    fn fill_lookup_roundtrip() {
        let cache = small_cache(8);
        let mut ctx = FreeCtx::new(1);
        let key = PageKey::new(1, 42);
        assert!(cache.lookup(&mut ctx, key).is_none());
        let frame = cache.try_alloc(&mut ctx).unwrap();
        cache.mem().write(frame, 0, b"cached!");
        cache.commit_insert(&mut ctx, key, frame).unwrap();
        let hit = cache.lookup(&mut ctx, key).unwrap();
        assert_eq!(hit, frame);
        let mut buf = [0u8; 7];
        cache.mem().read(hit, 0, &mut buf);
        assert_eq!(&buf, b"cached!");
        assert_eq!(cache.resident(), 1);
    }

    #[test]
    fn insert_race_returns_existing_frame() {
        let cache = small_cache(8);
        let mut ctx = FreeCtx::new(1);
        let key = PageKey::new(1, 5);
        let f1 = cache.try_alloc(&mut ctx).unwrap();
        let f2 = cache.try_alloc(&mut ctx).unwrap();
        cache.commit_insert(&mut ctx, key, f1).unwrap();
        let existing = cache.commit_insert(&mut ctx, key, f2).unwrap_err();
        assert_eq!(existing, f1);
        cache.release_frame(&mut ctx, f2);
        assert_eq!(cache.resident(), 1);
    }

    #[test]
    fn eviction_detaches_batch() {
        let cache = small_cache(8);
        let mut ctx = FreeCtx::new(1);
        // Fill all 8 frames.
        for p in 0..8u64 {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(0, p), f)
                .unwrap();
        }
        assert!(cache.try_alloc(&mut ctx).is_none(), "cache is full");
        let victims = cache.evict_candidates(&mut ctx);
        assert_eq!(victims.len(), 4, "configured batch size");
        for v in &victims {
            assert!(!v.dirty);
            assert!(cache.lookup(&mut ctx, v.key).is_none(), "victim unindexed");
            cache.release_frame(&mut ctx, v.frame);
        }
        assert!(cache.try_alloc(&mut ctx).is_some());
        assert_eq!(ctx.stats.evictions, 4);
    }

    #[test]
    fn dirty_victims_flagged_and_drained() {
        let cache = small_cache(4);
        let mut ctx = FreeCtx::new(1);
        for p in 0..4u64 {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(2, p), f)
                .unwrap();
            if p % 2 == 0 {
                assert!(cache.mark_dirty(&mut ctx, PageKey::new(2, p), f));
            }
        }
        assert_eq!(cache.dirty_count(), 2);
        let victims = cache.evict_candidates(&mut ctx);
        let dirty_victims = victims.iter().filter(|v| v.dirty).count();
        assert_eq!(dirty_victims, 2);
        assert_eq!(cache.dirty_count(), 0, "eviction drained dirty state");
    }

    #[test]
    fn msync_drain_is_sorted_and_scoped() {
        let cache = small_cache(8);
        let mut ctx = FreeCtx::new(1);
        for p in [7u64, 1, 5, 3] {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(1, p), f)
                .unwrap();
            cache.mark_dirty(&mut ctx, PageKey::new(1, p), f);
        }
        let drained = cache.drain_dirty_range(&mut ctx, 1, 0, 6);
        let pages: Vec<u64> = drained.iter().map(|d| d.key.page).collect();
        assert_eq!(pages, vec![1, 3, 5]);
        assert_eq!(cache.dirty_count(), 1, "page 7 remains dirty");
    }

    #[test]
    fn grow_and_shrink_change_capacity() {
        let mut cfg = CacheConfig::flat(16, 2);
        cfg.initial_frames = 4;
        let cache = DramCache::new(cfg);
        assert_eq!(cache.active_frames(), 4);
        assert_eq!(cache.free_frames(), 4);
        assert_eq!(cache.grow(8), 8);
        assert_eq!(cache.active_frames(), 12);
        assert_eq!(cache.grow(100), 4, "bounded by max_frames");
        let reclaimed = cache.shrink(6);
        assert_eq!(reclaimed, 6);
        assert_eq!(cache.active_frames(), 10);
    }

    #[test]
    fn watermarks_drive_refill_target() {
        let mut cfg = CacheConfig::flat(16, 1);
        cfg.low_watermark = 4;
        cfg.high_watermark = 8;
        let cache = DramCache::new(cfg);
        let mut ctx = FreeCtx::new(1);
        assert!(!cache.below_low_watermark(), "full pool is above the mark");
        assert_eq!(cache.refill_target(), 0);
        let mut held = Vec::new();
        while cache.free_frames() > 3 {
            held.push(cache.try_alloc(&mut ctx).unwrap());
        }
        assert!(cache.below_low_watermark());
        assert_eq!(cache.refill_target(), 5, "refill to the high mark");
        assert_eq!(
            cache.watermark_deficit(),
            1,
            "one frame short of the low mark"
        );
        cache.release_frame(&mut ctx, held.pop().unwrap());
        assert!(
            !cache.below_low_watermark(),
            "4 free == low mark, not below"
        );
        assert_eq!(cache.refill_target(), 4);
        assert_eq!(cache.watermark_deficit(), 0);
    }

    #[test]
    fn watermarks_disabled_by_default() {
        let cache = small_cache(4);
        let mut ctx = FreeCtx::new(1);
        while cache.try_alloc(&mut ctx).is_some() {}
        assert!(!cache.below_low_watermark());
        assert_eq!(cache.refill_target(), 0);
        assert_eq!(cache.low_watermark(), 0);
        assert_eq!(cache.high_watermark(), 0);
    }

    fn slab_cache(frames: usize, runs: usize) -> DramCache {
        let mut cfg = CacheConfig::flat(frames, 2);
        cfg.evict_batch = 4;
        cfg.slab_runs = runs;
        DramCache::new(cfg)
    }

    #[test]
    fn slab_runs_allocate_lowest_first_and_recycle() {
        let cache = slab_cache(8, 2);
        let mut ctx = FreeCtx::new(1);
        assert_eq!(cache.slab_runs(), 2);
        assert_eq!(cache.free_slab_runs(), 2);
        assert_eq!(cache.try_alloc_slab_run(&mut ctx), Some(0));
        assert_eq!(cache.try_alloc_slab_run(&mut ctx), Some(1));
        assert_eq!(cache.try_alloc_slab_run(&mut ctx), None);
        cache.release_slab_run(&mut ctx, 1);
        cache.release_slab_run(&mut ctx, 0);
        assert_eq!(
            cache.try_alloc_slab_run(&mut ctx),
            Some(0),
            "lowest id first"
        );
    }

    #[test]
    fn slab_run_geometry() {
        let cache = slab_cache(8, 2);
        // Slab frames start right after the 8 ordinary frames.
        assert_eq!(cache.slab_run_frame(0, 0), FrameId(8));
        assert_eq!(cache.slab_run_frame(0, 511), FrameId(8 + 511));
        assert_eq!(cache.slab_run_frame(1, 0), FrameId(8 + 512));
        assert_eq!(cache.slab_run_gpa(0), Gpa(0x8_0000_0000));
        assert_eq!(cache.slab_run_gpa(1), Gpa(0x8_0020_0000));
        assert_eq!(cache.slab_run_of(FrameId(7)), None);
        assert_eq!(cache.slab_run_of(FrameId(8)), Some(0));
        assert_eq!(cache.slab_run_of(FrameId(8 + 513)), Some(1));
    }

    #[test]
    fn migrate_repoints_index_dirty_and_owner() {
        let cache = slab_cache(8, 1);
        let mut ctx = FreeCtx::new(1);
        let run = cache.try_alloc_slab_run(&mut ctx).unwrap();
        let clean = PageKey::new(1, 0);
        let dirty = PageKey::new(1, 1);
        let f0 = cache.try_alloc(&mut ctx).unwrap();
        let f1 = cache.try_alloc(&mut ctx).unwrap();
        cache.mem().write(f0, 0, b"clean");
        cache.mem().write(f1, 0, b"dirty");
        cache.commit_insert(&mut ctx, clean, f0).unwrap();
        cache.commit_insert(&mut ctx, dirty, f1).unwrap();
        cache.mark_dirty(&mut ctx, dirty, f1);
        assert!(!cache.page_dirty(&mut ctx, clean));
        assert!(cache.page_dirty(&mut ctx, dirty));

        let s0 = cache.slab_run_frame(run, 0);
        let s1 = cache.slab_run_frame(run, 1);
        assert!(!cache.migrate_frame(&mut ctx, clean, f0, s0));
        assert!(cache.migrate_frame(&mut ctx, dirty, f1, s1));
        // Index now points at the slab frames, bytes travelled along.
        assert_eq!(cache.lookup(&mut ctx, clean), Some(s0));
        assert_eq!(cache.lookup(&mut ctx, dirty), Some(s1));
        let mut buf = [0u8; 5];
        cache.mem().read(s1, 0, &mut buf);
        assert_eq!(&buf, b"dirty");
        // The dirty tree tracks the new frame.
        let drained = cache.drain_dirty_range(&mut ctx, 1, 0, 2);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].frame, s1);
        // Old frames release back to the ordinary freelist.
        let free_before = cache.free_frames();
        cache.release_frame(&mut ctx, f0);
        cache.release_frame(&mut ctx, f1);
        assert_eq!(cache.free_frames(), free_before + 2);
    }

    #[test]
    fn pinned_slab_frames_are_invisible_to_clock_until_unpinned() {
        let cache = slab_cache(8, 1);
        let mut ctx = FreeCtx::new(1);
        let run = cache.try_alloc_slab_run(&mut ctx).unwrap();
        for p in 0..4u64 {
            let key = PageKey::new(3, p);
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache.commit_insert(&mut ctx, key, f).unwrap();
            cache.migrate_frame(&mut ctx, key, f, cache.slab_run_frame(run, p as usize));
            cache.release_frame(&mut ctx, f);
        }
        // Two sweeps can never pick the pinned slab frames.
        assert!(cache.evict_candidates(&mut ctx).is_empty());
        assert!(cache.evict_candidates(&mut ctx).is_empty());
        cache.unpin_slab_run(run);
        let victims = cache.evict_candidates(&mut ctx);
        assert_eq!(victims.len(), 4, "unpinned slab pages become victims");
        assert_eq!(cache.free_slab_runs(), 0, "run still occupied");
        for v in victims {
            cache.release_frame(&mut ctx, v.frame);
        }
        assert_eq!(
            cache.free_slab_runs(),
            1,
            "drained run returned to the pool"
        );
    }

    #[test]
    fn empty_slab_run_release_requires_zero_occupancy() {
        let cache = slab_cache(8, 1);
        let mut ctx = FreeCtx::new(1);
        let run = cache.try_alloc_slab_run(&mut ctx).unwrap();
        let key = PageKey::new(0, 0);
        let f = cache.try_alloc(&mut ctx).unwrap();
        cache.commit_insert(&mut ctx, key, f).unwrap();
        cache.migrate_frame(&mut ctx, key, f, cache.slab_run_frame(run, 0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = FreeCtx::new(1);
            cache.release_slab_run(&mut ctx, run);
        }));
        assert!(result.is_err(), "occupied run must not be force-released");
    }

    #[test]
    fn tenant_accounting_tracks_insert_and_evict() {
        let cache = small_cache(8);
        let mut ctx = FreeCtx::new(1);
        cache.bind_file_tenant(1, 1);
        cache.bind_file_tenant(2, 2);
        for p in 0..3u64 {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(1, p), f)
                .unwrap();
        }
        for p in 0..2u64 {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(2, p), f)
                .unwrap();
        }
        assert_eq!(cache.tenant_resident(1), 3);
        assert_eq!(cache.tenant_resident(2), 2);
        assert_eq!(cache.tenant_resident(0), 0, "unbound default tenant idle");
        // Quota/overage bookkeeping.
        cache.set_tenant_quota(1, 2);
        assert!(cache.tenant_over_quota(1));
        assert_eq!(cache.tenant_overage(1), 1);
        assert!(!cache.tenant_over_quota(2), "no quota means never over");
        // Eviction debits the owning tenant.
        let victims = cache.evict_candidates(&mut ctx);
        assert_eq!(victims.len(), 4);
        for v in &victims {
            cache.release_frame(&mut ctx, v.frame);
        }
        assert_eq!(cache.tenant_resident(1) + cache.tenant_resident(2), 1);
    }

    #[test]
    fn scoped_eviction_only_detaches_the_tenant() {
        let cache = small_cache(8);
        let mut ctx = FreeCtx::new(1);
        cache.bind_file_tenant(1, 1);
        cache.bind_file_tenant(2, 2);
        for p in 0..4u64 {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(1, p), f)
                .unwrap();
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(2, p), f)
                .unwrap();
        }
        let victims = cache.evict_candidates_from(&mut ctx, 3, 2);
        assert_eq!(victims.len(), 3);
        assert!(victims.iter().all(|v| v.key.file == 2));
        assert_eq!(cache.tenant_resident(2), 1);
        assert_eq!(cache.tenant_resident(1), 4, "tenant 1 untouched");
        for v in &victims {
            cache.release_frame(&mut ctx, v.frame);
        }
    }

    /// Shard rebalance composes with tenant quotas (DESIGN.md §15+§17):
    /// a quota-pressured tenant's frames are reclaimed onto the evicting
    /// vcore's freelist shard, and another tenant allocating from a
    /// different vcore steals them across shards — with the batch
    /// rebalance making the follow-on allocs local — while per-tenant
    /// residency accounting stays exact throughout.
    #[test]
    fn steal_under_quota_pressure_composes_with_tenant_accounting() {
        let mut cfg = CacheConfig::flat(16, 2);
        cfg.evict_batch = 4;
        cfg.freelist.steal_batch = 8;
        let cache = DramCache::new(cfg);
        cache.bind_file_tenant(1, 1);
        cache.bind_file_tenant(2, 2);
        // Tenant 1 fills the whole cache from vcore 0...
        let mut ctx0 = FreeCtx::new(1).with_core(0, 2);
        for p in 0..16u64 {
            let f = cache.try_alloc(&mut ctx0).unwrap();
            cache
                .commit_insert(&mut ctx0, PageKey::new(1, p), f)
                .unwrap();
        }
        // ...and is then put under quota pressure.
        cache.set_tenant_quota(1, 4);
        assert_eq!(cache.tenant_overage(1), 12);
        // The quota reclaim runs on vcore 0, so every reclaimed frame
        // lands in vcore 0's freelist shard.
        let victims = cache.evict_candidates_from(&mut ctx0, 6, 1);
        assert_eq!(victims.len(), 6);
        for v in &victims {
            cache.release_frame(&mut ctx0, v.frame);
        }
        assert_eq!(cache.tenant_resident(1), 10);
        assert!(cache.tenant_over_quota(1), "still above quota");
        // Vcore 1 allocates for tenant 2: its own shard and the node
        // queue are empty, so the first alloc crosses shards (a steal)
        // and the rebalance batch makes the rest local.
        let mut ctx1 = FreeCtx::new(2).with_core(1, 2);
        let f = cache.try_alloc(&mut ctx1).unwrap();
        cache
            .commit_insert(&mut ctx1, PageKey::new(2, 0), f)
            .unwrap();
        assert_eq!(cache.tenant_resident(2), 1, "steal charges the stealer");
        assert_eq!(cache.tenant_resident(1), 10, "victim tenant untouched");
        let held: Vec<FrameId> = (0..5)
            .map(|_| {
                cache
                    .try_alloc(&mut ctx1)
                    .expect("rebalanced frames satisfy follow-on allocs")
            })
            .collect();
        assert!(
            cache.try_alloc(&mut ctx1).is_none(),
            "exactly the reclaimed frames were available"
        );
        for f in held {
            cache.release_frame(&mut ctx1, f);
        }
    }

    /// A cross-shard steal racing a concurrent eviction round never
    /// loses or duplicates frames: one thread reclaims onto vcore 0's
    /// shard while another steals from vcore 1, and the pool stays
    /// conserved.
    #[test]
    fn steal_races_eviction_without_losing_frames() {
        use std::sync::Arc;
        let mut cfg = CacheConfig::flat(32, 2);
        cfg.evict_batch = 4;
        cfg.freelist.steal_batch = 4;
        let cache = Arc::new(DramCache::new(cfg));
        let mut ctx = FreeCtx::new(1);
        for p in 0..32u64 {
            let f = cache.try_alloc(&mut ctx).unwrap();
            cache
                .commit_insert(&mut ctx, PageKey::new(0, p), f)
                .unwrap();
        }
        let evictor = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut ctx = FreeCtx::new(2).with_core(0, 2);
                let mut freed = 0;
                while freed < 24 {
                    for v in cache.evict_candidates(&mut ctx) {
                        cache.release_frame(&mut ctx, v.frame);
                        freed += 1;
                    }
                }
            })
        };
        let stealer = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut ctx = FreeCtx::new(3).with_core(1, 2);
                let mut got = 0u32;
                while got < 24 {
                    match cache.try_alloc(&mut ctx) {
                        Some(f) => {
                            got += 1;
                            cache.release_frame(&mut ctx, f);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        };
        evictor.join().unwrap();
        stealer.join().unwrap();
        assert_eq!(cache.resident(), 8);
        assert_eq!(cache.free_frames(), 24, "frames conserved across the race");
    }

    #[test]
    fn charges_land_in_cache_mgmt() {
        let cache = small_cache(4);
        let mut ctx = FreeCtx::new(1);
        let key = PageKey::new(0, 0);
        cache.lookup(&mut ctx, key);
        let f = cache.try_alloc(&mut ctx).unwrap();
        cache.commit_insert(&mut ctx, key, f).unwrap();
        assert!(ctx.breakdown.get(CostCat::CacheMgmt).get() > 0);
    }
}
