//! The Aquila DRAM I/O cache (paper section 3.2).
//!
//! A scalable page cache purpose-built for mmio, replacing the Linux
//! kernel buffer cache that FastMap showed does not scale:
//!
//! - [`hashtable::LockFreeMap`] — the cached-page index with no global
//!   contention point (lock-free reads, per-bucket-locked writes);
//! - [`freelist::Freelist`] — the hierarchical two-level (per-core +
//!   per-NUMA-node) frame allocator with batched level movement;
//! - [`lru::ClockLru`] — the LRU approximation updated on page faults;
//! - [`dirty::DirtyTrees`] — per-core device-offset-sorted dirty trees
//!   enabling merged writeback I/Os and fast `msync`;
//! - [`cache::DramCache`] — the assembled cache with batched (512-page)
//!   eviction, dynamic grow/shrink, and a policy/mechanism split that
//!   leaves page tables and shootdowns to the mmio engine.

pub mod cache;
pub mod dirty;
pub mod freelist;
pub mod hashtable;
pub mod key;
pub mod lru;

pub use cache::{CacheConfig, DramCache, Victim, MAX_TENANTS};
pub use dirty::{coalesce_runs, DirtyPage, DirtyTrees};
pub use freelist::{AllocOutcome, Freelist, FreelistConfig, NumaTopology};
pub use hashtable::{InsertOutcome, LockFreeMap};
pub use key::PageKey;
pub use lru::ClockLru;
