//! Per-core dirty-page trees, sorted by device offset.
//!
//! Paper section 3.2: dirty pages live in a structure *separate* from the
//! page hash table (FastMap's key insight) so writeback and `msync` never
//! contend with lookups; and to avoid one contended lock, there is one
//! sorted tree *per core*. Keeping the trees sorted by device offset makes
//! merging dirty pages into large sequential write I/Os cheap — writeback
//! merges the per-core trees like sorted runs.
//!
//! Rust's `BTreeMap` stands in for the paper's red-black trees: both are
//! ordered maps with logarithmic operations; only the constant differs,
//! and the cost model charges the paper-calibrated `rbtree_op` per
//! operation regardless.

use std::collections::BTreeMap;

use aquila_sync::Mutex;

use aquila_mmu::FrameId;

use crate::key::PageKey;

/// A dirty page entry queued for writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirtyPage {
    /// The file page that is dirty.
    pub key: PageKey,
    /// The cache frame holding the dirty data.
    pub frame: FrameId,
}

/// The per-core dirty trees.
pub struct DirtyTrees {
    trees: Vec<Mutex<BTreeMap<(u32, u64), FrameId>>>,
}

impl DirtyTrees {
    /// Creates trees for `cores` cores.
    pub fn new(cores: usize) -> DirtyTrees {
        DirtyTrees {
            trees: (0..cores.max(1))
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// Number of per-core trees.
    pub fn cores(&self) -> usize {
        self.trees.len()
    }

    /// Marks a page dirty from `core`. Returns false if it was already
    /// marked in this core's tree.
    pub fn insert(&self, core: usize, key: PageKey, frame: FrameId) -> bool {
        self.trees[core % self.trees.len()]
            .lock()
            .insert((key.file, key.page), frame)
            .is_none()
    }

    /// Removes a specific page from `core`'s tree (page cleaned or
    /// evicted). Returns the frame if it was present.
    pub fn remove(&self, core: usize, key: PageKey) -> Option<FrameId> {
        self.trees[core % self.trees.len()]
            .lock()
            .remove(&(key.file, key.page))
    }

    /// Removes a page from whichever tree holds it (used when the cleaner
    /// does not know the dirtying core).
    pub fn remove_anywhere(&self, key: PageKey) -> Option<(usize, FrameId)> {
        for (core, tree) in self.trees.iter().enumerate() {
            if let Some(f) = tree.lock().remove(&(key.file, key.page)) {
                return Some((core, f));
            }
        }
        None
    }

    /// Whether `key` is marked dirty in any core's tree.
    pub fn contains(&self, key: PageKey) -> bool {
        self.trees
            .iter()
            .any(|t| t.lock().contains_key(&(key.file, key.page)))
    }

    /// Total dirty pages across all trees.
    pub fn len(&self) -> usize {
        self.trees.iter().map(|t| t.lock().len()).sum()
    }

    /// Whether no pages are dirty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains all dirty pages of `file` whose page index lies in
    /// `[start, end)`, merged across cores in device-offset order (the
    /// `msync` and writeback path).
    pub fn drain_file_range(&self, file: u32, start: u64, end: u64) -> Vec<DirtyPage> {
        let mut merged: Vec<DirtyPage> = Vec::new();
        for tree in &self.trees {
            let mut tree = tree.lock();
            let keys: Vec<(u32, u64)> = tree
                .range((file, start)..(file, end))
                .map(|(&k, _)| k)
                .collect();
            for k in keys {
                let frame = tree.remove(&k).expect("key just observed");
                merged.push(DirtyPage {
                    key: PageKey::new(k.0, k.1),
                    frame,
                });
            }
        }
        // Per-core trees are sorted runs; a final sort merges them.
        merged.sort_by_key(|d| (d.key.file, d.key.page));
        merged
    }

    /// Drains every dirty page (shutdown / full sync), sorted by device
    /// offset.
    pub fn drain_all(&self) -> Vec<DirtyPage> {
        let mut merged: Vec<DirtyPage> = Vec::new();
        for tree in &self.trees {
            let mut tree = tree.lock();
            while let Some((&k, &frame)) = tree.iter().next() {
                tree.remove(&k);
                merged.push(DirtyPage {
                    key: PageKey::new(k.0, k.1),
                    frame,
                });
            }
        }
        merged.sort_by_key(|d| (d.key.file, d.key.page));
        merged
    }
}

impl core::fmt::Debug for DirtyTrees {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DirtyTrees {{ cores: {}, dirty: {} }}",
            self.cores(),
            self.len()
        )
    }
}

/// Coalesces device-offset-sorted dirty pages into contiguous runs, the
/// unit of large writeback I/Os (paper: "multiple sorted red-black trees
/// simplify merging of pages in larger I/Os").
///
/// Input must be sorted by `(file, page)`; each output run is a maximal
/// sequence of consecutive pages of one file.
pub fn coalesce_runs(pages: &[DirtyPage]) -> Vec<Vec<DirtyPage>> {
    let mut runs: Vec<Vec<DirtyPage>> = Vec::new();
    for &p in pages {
        match runs.last_mut() {
            Some(run) => {
                let last = run.last().expect("runs are non-empty");
                if last.key.file == p.key.file && last.key.page + 1 == p.key.page {
                    run.push(p);
                } else {
                    runs.push(vec![p]);
                }
            }
            None => runs.push(vec![p]),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(file: u32, page: u64, frame: u32) -> DirtyPage {
        DirtyPage {
            key: PageKey::new(file, page),
            frame: FrameId(frame),
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let t = DirtyTrees::new(4);
        assert!(t.insert(1, PageKey::new(0, 5), FrameId(9)));
        assert!(!t.insert(1, PageKey::new(0, 5), FrameId(9)), "re-mark");
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(1, PageKey::new(0, 5)), Some(FrameId(9)));
        assert!(t.is_empty());
    }

    #[test]
    fn remove_anywhere_searches_all_cores() {
        let t = DirtyTrees::new(4);
        t.insert(3, PageKey::new(1, 2), FrameId(7));
        assert_eq!(t.remove(0, PageKey::new(1, 2)), None);
        assert_eq!(t.remove_anywhere(PageKey::new(1, 2)), Some((3, FrameId(7))));
        assert_eq!(t.remove_anywhere(PageKey::new(1, 2)), None);
    }

    #[test]
    fn drain_file_range_is_sorted_and_scoped() {
        let t = DirtyTrees::new(4);
        // Spread pages of file 1 across cores, plus noise in file 2.
        t.insert(0, PageKey::new(1, 30), FrameId(0));
        t.insert(1, PageKey::new(1, 10), FrameId(1));
        t.insert(2, PageKey::new(1, 20), FrameId(2));
        t.insert(3, PageKey::new(2, 15), FrameId(3));
        t.insert(0, PageKey::new(1, 99), FrameId(4));
        let drained = t.drain_file_range(1, 0, 50);
        let pages: Vec<u64> = drained.iter().map(|d| d.key.page).collect();
        assert_eq!(pages, vec![10, 20, 30], "sorted by device offset");
        // Out-of-range and other-file pages remain.
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn drain_all_empties_everything() {
        let t = DirtyTrees::new(2);
        for i in 0..10 {
            t.insert(i as usize % 2, PageKey::new(0, 9 - i), FrameId(i as u32));
        }
        let all = t.drain_all();
        assert_eq!(all.len(), 10);
        assert!(all.windows(2).all(|w| w[0].key.page < w[1].key.page));
        assert!(t.is_empty());
    }

    #[test]
    fn coalesce_merges_contiguous_pages() {
        let pages = vec![
            dp(0, 1, 0),
            dp(0, 2, 1),
            dp(0, 3, 2),
            dp(0, 7, 3),
            dp(1, 8, 4),
            dp(1, 9, 5),
        ];
        let runs = coalesce_runs(&pages);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].len(), 3, "pages 1-3 of file 0");
        assert_eq!(runs[1].len(), 1, "page 7 of file 0");
        assert_eq!(runs[2].len(), 2, "file boundary splits runs");
    }

    #[test]
    fn coalesce_empty_input() {
        assert!(coalesce_runs(&[]).is_empty());
    }
}
