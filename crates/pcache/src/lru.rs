//! CLOCK-based LRU approximation for eviction victim selection.
//!
//! The paper evicts "via an approximation of LRU", updated on page faults
//! (section 3.2). CLOCK is the canonical such approximation: each frame
//! carries a reference bit set when the frame is (re)faulted; the clock
//! hand sweeps frames, clearing reference bits and collecting unreferenced
//! resident frames as victims. Selection is batched (512 frames per
//! eviction round in the paper) so the TLB shootdown and writeback costs
//! amortize.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use aquila_mmu::FrameId;

/// CLOCK state over a fixed frame pool.
pub struct ClockLru {
    referenced: Vec<AtomicBool>,
    resident: Vec<AtomicBool>,
    hand: AtomicUsize,
}

impl ClockLru {
    /// Creates CLOCK state for `frames` frames, all non-resident.
    pub fn new(frames: usize) -> ClockLru {
        ClockLru {
            referenced: (0..frames).map(|_| AtomicBool::new(false)).collect(),
            resident: (0..frames).map(|_| AtomicBool::new(false)).collect(),
            hand: AtomicUsize::new(0),
        }
    }

    /// Number of tracked frames.
    pub fn frames(&self) -> usize {
        self.referenced.len()
    }

    /// Marks a frame recently used (called from the fault path).
    #[inline]
    pub fn touch(&self, frame: FrameId) {
        self.referenced[frame.0 as usize].store(true, Ordering::Relaxed);
    }

    /// Marks a frame resident (it now holds a cached page).
    pub fn mark_resident(&self, frame: FrameId) {
        self.resident[frame.0 as usize].store(true, Ordering::Relaxed);
        self.referenced[frame.0 as usize].store(true, Ordering::Relaxed);
    }

    /// Marks a frame free (evicted or never filled).
    pub fn mark_free(&self, frame: FrameId) {
        self.resident[frame.0 as usize].store(false, Ordering::Relaxed);
        self.referenced[frame.0 as usize].store(false, Ordering::Relaxed);
    }

    /// Resident frame count (linear scan; diagnostics only).
    pub fn resident_count(&self) -> usize {
        self.resident
            .iter()
            .filter(|r| r.load(Ordering::Relaxed))
            .count()
    }

    /// Sweeps the clock hand and collects up to `batch` victims.
    ///
    /// Referenced frames get a second chance (bit cleared, skipped).
    /// Returns fewer than `batch` victims — possibly none — if the pool
    /// has too few unreferenced resident frames after two full sweeps.
    pub fn collect_victims(&self, batch: usize) -> Vec<FrameId> {
        self.collect_victims_where(batch, |_| true)
    }

    /// [`ClockLru::collect_victims`] restricted to frames `pred` accepts
    /// (the tenant-fair evictor sweeps one tenant's frames at a time).
    ///
    /// Frames `pred` rejects are passed over *without* touching their
    /// reference bits, so a scoped sweep never ages another tenant's
    /// recency state.
    pub fn collect_victims_where(
        &self,
        batch: usize,
        pred: impl Fn(FrameId) -> bool,
    ) -> Vec<FrameId> {
        let n = self.referenced.len();
        if n == 0 {
            return Vec::new();
        }
        let mut victims = Vec::with_capacity(batch);
        let mut steps = 0usize;
        // Two full sweeps guarantee every matching resident frame either
        // gets its reference bit cleared (sweep 1) or becomes a victim
        // (sweep 2).
        while victims.len() < batch && steps < 2 * n {
            let i = self.hand.fetch_add(1, Ordering::Relaxed) % n;
            steps += 1;
            if !self.resident[i].load(Ordering::Relaxed) {
                continue;
            }
            if !pred(FrameId(i as u32)) {
                continue;
            }
            if self.referenced[i].swap(false, Ordering::Relaxed) {
                continue; // Second chance.
            }
            victims.push(FrameId(i as u32));
        }
        victims
    }
}

impl core::fmt::Debug for ClockLru {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ClockLru {{ frames: {}, resident: {} }}",
            self.frames(),
            self.resident_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn victims_come_from_resident_unreferenced() {
        let c = ClockLru::new(8);
        for i in 0..4 {
            c.mark_resident(FrameId(i));
        }
        // All recently touched: first sweep clears bits, second collects.
        let v = c.collect_victims(2);
        assert_eq!(v.len(), 2);
        for f in &v {
            assert!(f.0 < 4, "victim must be resident");
        }
    }

    #[test]
    fn touched_frames_survive_one_round() {
        let c = ClockLru::new(4);
        c.mark_resident(FrameId(0));
        c.mark_resident(FrameId(1));
        // Clear both reference bits via a collection round.
        let _ = c.collect_victims(2);
        c.mark_resident(FrameId(2));
        c.mark_resident(FrameId(3));
        c.touch(FrameId(0));
        // Frame 0 is referenced; frame 1 is not: 1 must be evicted first.
        let v = c.collect_victims(1);
        assert_eq!(v, vec![FrameId(1)]);
    }

    #[test]
    fn empty_pool_yields_nothing() {
        let c = ClockLru::new(0);
        assert!(c.collect_victims(10).is_empty());
        let c = ClockLru::new(4);
        assert!(c.collect_victims(10).is_empty(), "nothing resident");
    }

    #[test]
    fn mark_free_removes_from_consideration() {
        let c = ClockLru::new(4);
        c.mark_resident(FrameId(0));
        c.mark_free(FrameId(0));
        assert!(c.collect_victims(4).is_empty());
        assert_eq!(c.resident_count(), 0);
    }

    #[test]
    fn batch_bounded_by_request() {
        let c = ClockLru::new(64);
        for i in 0..64 {
            c.mark_resident(FrameId(i));
        }
        let v = c.collect_victims(10);
        assert_eq!(v.len(), 10);
        // Victims are distinct.
        let mut ids: Vec<u32> = v.iter().map(|f| f.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn scoped_sweep_skips_rejected_frames_without_aging_them() {
        let c = ClockLru::new(8);
        for i in 0..8 {
            c.mark_resident(FrameId(i));
        }
        // A sweep restricted to even frames never yields odd ones.
        let evens = c.collect_victims_where(8, |f| f.0 % 2 == 0);
        assert_eq!(evens.len(), 4);
        assert!(evens.iter().all(|f| f.0 % 2 == 0));
        // The odd frames' reference bits were left alone: an unrestricted
        // single-victim sweep must still give them their second chance
        // (i.e. the first collected victim is one whose bit was already
        // cleared by the scoped sweep — an even frame).
        let next = c.collect_victims(1);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].0 % 2, 0, "odd frames kept their reference bits");
    }

    #[test]
    fn fault_order_approximates_lru() {
        // Frames faulted long ago (and never touched again) are evicted
        // before recently touched ones.
        let c = ClockLru::new(16);
        for i in 0..16 {
            c.mark_resident(FrameId(i));
        }
        let _ = c.collect_victims(0); // No-op, hand at 0, bits set.
                                      // Clear all bits with one sweep.
        let cleared = c.collect_victims(16);
        assert_eq!(cleared.len(), 16, "second sweep collects everything");
    }
}
