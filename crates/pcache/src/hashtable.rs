//! The concurrent cached-page hash table.
//!
//! This is the structure that replaces Linux's single-lock page-cache
//! radix tree (the contention point Figure 10 exposes). Page-fault
//! handlers look up the faulting page here; because lookups are lock-free
//! and mutations take only a *per-bucket* spinlock, concurrent faults on a
//! shared file scale with cores instead of serializing on one tree lock
//! (paper sections 3.2 and 6.5).
//!
//! Design: closed hashing with 8-slot buckets. Each slot is a pair of
//! atomics; writers hold the bucket's spinlock and publish in two phases
//! (value first, then key with release ordering), so readers never observe
//! a key without its value. Bucket overflow — rare at the 2x sizing used
//! here — falls back to a locked side map, flagged per bucket so the
//! common read path never touches it.
//!
//! The paper uses a fully lock-free table (David et al.); per-bucket
//! locking is the documented substitution: it has no shared contention
//! point (the property the evaluation depends on), while remaining
//! correct under deletion-heavy eviction churn, where lock-free open
//! addressing is notoriously subtle.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use aquila_sync::{DetMap, Mutex};

use crate::key::PageKey;

/// Slot sentinel: never a valid packed key (packed keys set bit 63).
const EMPTY: u64 = 0;
/// Slot sentinel for removed entries.
const TOMBSTONE: u64 = u64::MAX;
/// Slots per bucket (one cache line of keys).
const BUCKET_SLOTS: usize = 8;

struct Slot {
    key: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            key: AtomicU64::new(EMPTY),
            value: AtomicU64::new(0),
        }
    }
}

struct Bucket {
    lock: AtomicBool,
    /// Set once the bucket has ever spilled into the overflow map.
    overflowed: AtomicBool,
    slots: [Slot; BUCKET_SLOTS],
}

impl Bucket {
    fn new() -> Bucket {
        Bucket {
            lock: AtomicBool::new(false),
            overflowed: AtomicBool::new(false),
            slots: [
                Slot::new(),
                Slot::new(),
                Slot::new(),
                Slot::new(),
                Slot::new(),
                Slot::new(),
                Slot::new(),
                Slot::new(),
            ],
        }
    }

    fn acquire(&self) -> BucketGuard<'_> {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        BucketGuard { bucket: self }
    }
}

struct BucketGuard<'a> {
    bucket: &'a Bucket,
}

impl Drop for BucketGuard<'_> {
    fn drop(&mut self) {
        self.bucket.lock.store(false, Ordering::Release);
    }
}

/// Result of an insert attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was inserted with the given value.
    Inserted,
    /// The key was already present; its value is returned, the map is
    /// unchanged.
    AlreadyPresent(u64),
}

/// A concurrent hash map from [`PageKey`] to a `u64` value (the cache
/// stores frame ids). Lock-free reads, per-bucket-locked writes, no
/// global contention point.
pub struct LockFreeMap {
    buckets: Vec<Bucket>,
    mask: u64,
    len: AtomicU64,
    overflow: Mutex<DetMap<u64, u64>>,
}

impl LockFreeMap {
    /// Creates a map sized for at least `capacity` entries (2x slots,
    /// power-of-two buckets).
    pub fn new(capacity: usize) -> LockFreeMap {
        let buckets = (capacity * 2 / BUCKET_SLOTS).max(2).next_power_of_two();
        LockFreeMap {
            buckets: (0..buckets).map(|_| Bucket::new()).collect(),
            mask: (buckets - 1) as u64,
            len: AtomicU64::new(0),
            overflow: Mutex::new(DetMap::new()),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity (excluding overflow).
    pub fn capacity(&self) -> usize {
        self.buckets.len() * BUCKET_SLOTS
    }

    #[inline]
    fn bucket_of(&self, key: PageKey) -> &Bucket {
        &self.buckets[(key.hash() & self.mask) as usize]
    }

    /// The bucket index `key` hashes to. Exposed so callers can name the
    /// per-bucket lock in race-detector annotations.
    #[inline]
    pub fn bucket_index(&self, key: PageKey) -> u64 {
        key.hash() & self.mask
    }

    /// Looks up a key (lock-free in the common, non-overflowed case).
    pub fn get(&self, key: PageKey) -> Option<u64> {
        let packed = key.pack();
        let bucket = self.bucket_of(key);
        for slot in &bucket.slots {
            // Acquire pairs with the writer's release publish: a visible
            // key implies a visible value.
            if slot.key.load(Ordering::Acquire) == packed {
                return Some(slot.value.load(Ordering::Acquire));
            }
        }
        if bucket.overflowed.load(Ordering::Acquire) {
            return self.overflow.lock().get(&packed).copied();
        }
        None
    }

    /// Inserts `key -> value` if absent.
    ///
    /// This resolves the fault-handler race of section 3.2: two threads
    /// faulting on the same page both try to insert; exactly one wins and
    /// the loser observes the winner's frame and discards its own.
    pub fn insert(&self, key: PageKey, value: u64) -> InsertOutcome {
        let packed = key.pack();
        let bucket = self.bucket_of(key);
        let _guard = bucket.acquire();
        let mut free: Option<usize> = None;
        for (i, slot) in bucket.slots.iter().enumerate() {
            let k = slot.key.load(Ordering::Acquire);
            if k == packed {
                return InsertOutcome::AlreadyPresent(slot.value.load(Ordering::Acquire));
            }
            if (k == EMPTY || k == TOMBSTONE) && free.is_none() {
                free = Some(i);
            }
        }
        if bucket.overflowed.load(Ordering::Acquire) {
            if let Some(&v) = self.overflow.lock().get(&packed) {
                return InsertOutcome::AlreadyPresent(v);
            }
        }
        match free {
            Some(i) => {
                let slot = &bucket.slots[i];
                // Two-phase publish: value first, key last with release,
                // so lock-free readers never see a key without its value.
                slot.value.store(value, Ordering::Release);
                slot.key.store(packed, Ordering::Release);
            }
            None => {
                bucket.overflowed.store(true, Ordering::Release);
                self.overflow.lock().insert(packed, value);
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        InsertOutcome::Inserted
    }

    /// Removes a key; returns its value if it was present.
    pub fn remove(&self, key: PageKey) -> Option<u64> {
        let packed = key.pack();
        let bucket = self.bucket_of(key);
        let _guard = bucket.acquire();
        for slot in &bucket.slots {
            if slot.key.load(Ordering::Acquire) == packed {
                let v = slot.value.load(Ordering::Acquire);
                slot.key.store(TOMBSTONE, Ordering::Release);
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(v);
            }
        }
        if bucket.overflowed.load(Ordering::Acquire) {
            if let Some(v) = self.overflow.lock().remove(&packed) {
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(v);
            }
        }
        None
    }

    /// Updates the value of an existing key; returns false if absent.
    pub fn update(&self, key: PageKey, value: u64) -> bool {
        let packed = key.pack();
        let bucket = self.bucket_of(key);
        let _guard = bucket.acquire();
        for slot in &bucket.slots {
            if slot.key.load(Ordering::Acquire) == packed {
                slot.value.store(value, Ordering::Release);
                return true;
            }
        }
        if bucket.overflowed.load(Ordering::Acquire) {
            if let Some(v) = self.overflow.lock().get_mut(&packed) {
                *v = value;
                return true;
            }
        }
        false
    }

    /// Visits all live entries. Not atomic with respect to concurrent
    /// mutation; intended for stats and shutdown paths.
    pub fn for_each(&self, mut f: impl FnMut(PageKey, u64)) {
        for bucket in &self.buckets {
            for slot in &bucket.slots {
                let k = slot.key.load(Ordering::Acquire);
                if k != EMPTY && k != TOMBSTONE {
                    f(PageKey::unpack(k), slot.value.load(Ordering::Acquire));
                }
            }
        }
        for (&k, &v) in self.overflow.lock().iter() {
            f(PageKey::unpack(k), v);
        }
    }

    /// Entries currently living in the overflow side map (diagnostics).
    pub fn overflow_len(&self) -> usize {
        self.overflow.lock().len()
    }
}

impl core::fmt::Debug for LockFreeMap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "LockFreeMap {{ len: {}, capacity: {}, overflow: {} }}",
            self.len(),
            self.capacity(),
            self.overflow_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let m = LockFreeMap::new(64);
        let k = PageKey::new(1, 7);
        assert_eq!(m.get(k), None);
        assert_eq!(m.insert(k, 99), InsertOutcome::Inserted);
        assert_eq!(m.get(k), Some(99));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(k), Some(99));
        assert_eq!(m.get(k), None);
        assert_eq!(m.remove(k), None);
        assert!(m.is_empty());
    }

    #[test]
    fn duplicate_insert_reports_existing() {
        let m = LockFreeMap::new(64);
        let k = PageKey::new(2, 3);
        m.insert(k, 5);
        assert_eq!(m.insert(k, 6), InsertOutcome::AlreadyPresent(5));
        assert_eq!(m.get(k), Some(5));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tombstones_are_reused() {
        let m = LockFreeMap::new(64);
        let keys: Vec<PageKey> = (0..10).map(|i| PageKey::new(1, i)).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as u64);
        }
        m.remove(keys[4]);
        for (i, &k) in keys.iter().enumerate() {
            if i != 4 {
                assert_eq!(m.get(k), Some(i as u64), "key {i} lost after removal");
            }
        }
        m.insert(keys[4], 44);
        assert_eq!(m.get(keys[4]), Some(44));
    }

    #[test]
    fn update_only_touches_existing() {
        let m = LockFreeMap::new(16);
        let k = PageKey::new(3, 9);
        assert!(!m.update(k, 1));
        m.insert(k, 1);
        assert!(m.update(k, 2));
        assert_eq!(m.get(k), Some(2));
    }

    #[test]
    fn bucket_overflow_spills_and_recovers() {
        // A tiny map forced into overflow: all operations stay correct.
        let m = LockFreeMap::new(8);
        let n = m.capacity() as u64 + 32;
        for i in 0..n {
            assert_eq!(m.insert(PageKey::new(1, i), i), InsertOutcome::Inserted);
        }
        assert_eq!(m.len(), n as usize);
        assert!(m.overflow_len() > 0, "forced overflow did not happen");
        for i in 0..n {
            assert_eq!(m.get(PageKey::new(1, i)), Some(i), "key {i}");
        }
        for i in 0..n {
            assert_eq!(m.remove(PageKey::new(1, i)), Some(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn overflow_duplicate_and_update() {
        let m = LockFreeMap::new(8);
        let n = m.capacity() as u64 + 8;
        for i in 0..n {
            m.insert(PageKey::new(1, i), i);
        }
        // Keys in overflow respect duplicate/update semantics too.
        let last = PageKey::new(1, n - 1);
        assert!(matches!(
            m.insert(last, 0),
            InsertOutcome::AlreadyPresent(_)
        ));
        assert!(m.update(last, 777));
        assert_eq!(m.get(last), Some(777));
    }

    #[test]
    fn for_each_sees_live_entries() {
        let m = LockFreeMap::new(64);
        for i in 0..20 {
            m.insert(PageKey::new(1, i), i);
        }
        m.remove(PageKey::new(1, 10));
        let mut seen = Vec::new();
        m.for_each(|k, v| seen.push((k.page, v)));
        seen.sort();
        assert_eq!(seen.len(), 19);
        assert!(!seen.iter().any(|&(p, _)| p == 10));
    }

    #[test]
    fn concurrent_insert_race_single_winner() {
        use std::sync::Arc;
        let m = Arc::new(LockFreeMap::new(1024));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut wins = 0;
                for i in 0..256u64 {
                    if m.insert(PageKey::new(7, i), t) == InsertOutcome::Inserted {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 256, "each key must have exactly one winner");
        assert_eq!(m.len(), 256);
        m.for_each(|_, v| assert!(v < 4));
    }

    #[test]
    fn concurrent_churn_is_consistent() {
        // Insert/remove churn across threads on disjoint key ranges.
        use std::sync::Arc;
        let m = Arc::new(LockFreeMap::new(512));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for round in 0..50u64 {
                    for i in 0..64u64 {
                        let k = PageKey::new(t as u32, i);
                        m.insert(k, round * 1000 + i);
                    }
                    for i in 0..64u64 {
                        let k = PageKey::new(t as u32, i);
                        assert!(m.remove(k).is_some());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(m.is_empty());
    }

    #[test]
    fn many_files_do_not_collide() {
        let m = LockFreeMap::new(4096);
        for f in 0..32u32 {
            for p in 0..32u64 {
                m.insert(PageKey::new(f, p), ((f as u64) << 32) | p);
            }
        }
        for f in 0..32u32 {
            for p in 0..32u64 {
                assert_eq!(m.get(PageKey::new(f, p)), Some(((f as u64) << 32) | p));
            }
        }
    }
}
