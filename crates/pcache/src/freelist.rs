//! The hierarchical two-level freelist for DRAM cache frames.
//!
//! Paper section 3.2: the first level is a queue per NUMA node, the second
//! a queue per core. Allocation checks, in order, the local core queue,
//! the local NUMA queue, then remote NUMA queues. Freed (evicted) pages go
//! to the local core queue and spill to the NUMA queue in batches when a
//! threshold is exceeded; all movement between levels is batched (4096
//! pages in the paper's evaluation). Lock-free queues plus batching keep
//! allocator contention negligible.

use aquila_sync::SegQueue;

use aquila_mmu::FrameId;

/// Machine NUMA shape.
#[derive(Debug, Clone, Copy)]
pub struct NumaTopology {
    /// Number of NUMA nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
}

impl NumaTopology {
    /// The paper's testbed: 2 sockets x 16 hyperthreads.
    pub fn paper_testbed() -> NumaTopology {
        NumaTopology {
            nodes: 2,
            cores_per_node: 16,
        }
    }

    /// A single-node machine with `cores` cores.
    pub fn flat(cores: usize) -> NumaTopology {
        NumaTopology {
            nodes: 1,
            cores_per_node: cores.max(1),
        }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// NUMA node of a core.
    pub fn node_of(&self, core: usize) -> usize {
        (core / self.cores_per_node) % self.nodes
    }
}

/// Tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct FreelistConfig {
    /// Core-queue occupancy above which frames spill to the NUMA queue.
    pub core_spill_threshold: usize,
    /// Batch size for movement between levels (paper: 4096).
    pub level_batch: usize,
}

impl Default for FreelistConfig {
    fn default() -> Self {
        FreelistConfig {
            core_spill_threshold: 8192,
            level_batch: 4096,
        }
    }
}

/// The two-level frame freelist.
pub struct Freelist {
    topo: NumaTopology,
    cfg: FreelistConfig,
    core_queues: Vec<SegQueue<FrameId>>,
    node_queues: Vec<SegQueue<FrameId>>,
}

impl Freelist {
    /// Creates a freelist for the given topology, initially populated with
    /// `frames` distributed round-robin across NUMA node queues.
    pub fn new(
        topo: NumaTopology,
        cfg: FreelistConfig,
        frames: impl Iterator<Item = FrameId>,
    ) -> Freelist {
        let fl = Freelist {
            core_queues: (0..topo.cores()).map(|_| SegQueue::new()).collect(),
            node_queues: (0..topo.nodes).map(|_| SegQueue::new()).collect(),
            topo,
            cfg,
        };
        for (i, frame) in frames.enumerate() {
            fl.node_queues[i % fl.topo.nodes].push(frame);
        }
        fl
    }

    /// The topology this freelist was built for.
    pub fn topology(&self) -> NumaTopology {
        self.topo
    }

    /// Allocates a frame for `core`: local core queue, then local NUMA
    /// queue (refilling the core queue with a batch), then remote nodes,
    /// then — as a last resort — stealing from sibling core queues, so
    /// frames freed by another core's eviction round are never stranded
    /// below the spill threshold. Returns `None` when the cache is fully
    /// occupied — the caller must evict.
    pub fn alloc(&self, core: usize) -> Option<FrameId> {
        let core = core % self.core_queues.len();
        if let Some(f) = self.core_queues[core].pop() {
            return Some(f);
        }
        let local = self.topo.node_of(core);
        if let Some(f) = self.refill_from_node(core, local) {
            return Some(f);
        }
        for n in 0..self.topo.nodes {
            if n == local {
                continue;
            }
            if let Some(f) = self.refill_from_node(core, n) {
                return Some(f);
            }
        }
        for other in 0..self.core_queues.len() {
            if other != core {
                if let Some(f) = self.core_queues[other].pop() {
                    return Some(f);
                }
            }
        }
        None
    }

    /// Pulls up to a level batch from a node queue into the core queue,
    /// returning the first frame directly.
    fn refill_from_node(&self, core: usize, node: usize) -> Option<FrameId> {
        let nq = &self.node_queues[node];
        let first = nq.pop()?;
        let cq = &self.core_queues[core];
        for _ in 1..self.cfg.level_batch.min(64) {
            match nq.pop() {
                Some(f) => cq.push(f),
                None => break,
            }
        }
        Some(first)
    }

    /// Frees a frame from `core` (eviction places recycled pages here);
    /// spills a batch to the NUMA queue if the core queue grew beyond its
    /// threshold. Returns `true` when a spill happened, so callers with a
    /// simulation context can record the (rare) slow path.
    pub fn free(&self, core: usize, frame: FrameId) -> bool {
        let core = core % self.core_queues.len();
        let cq = &self.core_queues[core];
        cq.push(frame);
        if cq.len() > self.cfg.core_spill_threshold {
            let node = &self.node_queues[self.topo.node_of(core)];
            for _ in 0..self.cfg.level_batch {
                match cq.pop() {
                    Some(f) => node.push(f),
                    None => break,
                }
            }
            return true;
        }
        false
    }

    /// Total free frames across all queues (approximate under concurrency).
    pub fn free_count(&self) -> usize {
        self.core_queues.iter().map(|q| q.len()).sum::<usize>()
            + self.node_queues.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Adds new frames (dynamic cache growth) to a node queue.
    pub fn grow(&self, node: usize, frames: impl Iterator<Item = FrameId>) {
        let node = node % self.topo.nodes;
        for f in frames {
            self.node_queues[node].push(f);
        }
    }
}

impl core::fmt::Debug for Freelist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Freelist {{ free: {}, nodes: {}, cores: {} }}",
            self.free_count(),
            self.topo.nodes,
            self.topo.cores()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: u32) -> impl Iterator<Item = FrameId> {
        (0..n).map(FrameId)
    }

    #[test]
    fn alloc_until_empty_then_none() {
        let fl = Freelist::new(NumaTopology::flat(2), FreelistConfig::default(), frames(10));
        let mut got = Vec::new();
        while let Some(f) = fl.alloc(0) {
            got.push(f.0);
        }
        got.sort();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(fl.alloc(0).is_none());
        assert_eq!(fl.free_count(), 0);
    }

    #[test]
    fn free_then_alloc_recycles() {
        let fl = Freelist::new(NumaTopology::flat(1), FreelistConfig::default(), frames(1));
        let f = fl.alloc(0).unwrap();
        assert!(fl.alloc(0).is_none());
        fl.free(0, f);
        assert_eq!(fl.alloc(0), Some(f));
    }

    #[test]
    fn core_queue_hit_after_refill() {
        let fl = Freelist::new(
            NumaTopology::flat(4),
            FreelistConfig::default(),
            frames(100),
        );
        // First alloc pulls a batch into core 1's queue.
        fl.alloc(1).unwrap();
        // Subsequent allocs on core 1 hit the core queue (node queues
        // untouched beyond the first refill batch).
        let before: usize = fl.free_count();
        fl.alloc(1).unwrap();
        assert_eq!(fl.free_count(), before - 1);
    }

    #[test]
    fn remote_node_steal_when_local_empty() {
        // Node 0 exhausted; core 0 (node 0) must steal from node 1.
        let topo = NumaTopology {
            nodes: 2,
            cores_per_node: 1,
        };
        let fl = Freelist::new(topo, FreelistConfig::default(), frames(2));
        // Frames round-robin: frame 0 -> node 0, frame 1 -> node 1.
        let a = fl.alloc(0).unwrap();
        let b = fl.alloc(0).unwrap();
        let mut got = [a.0, b.0];
        got.sort();
        assert_eq!(got, [0, 1]);
    }

    #[test]
    fn spill_moves_batch_to_node_queue() {
        let cfg = FreelistConfig {
            core_spill_threshold: 10,
            level_batch: 8,
        };
        let fl = Freelist::new(NumaTopology::flat(2), cfg, frames(0));
        let mut spilled = false;
        for i in 0..12 {
            spilled |= fl.free(0, FrameId(i));
        }
        assert!(spilled, "crossing the threshold must report a spill");
        // After crossing the threshold a batch moved to the node queue;
        // core 1 (same node) can now allocate.
        assert!(fl.alloc(1).is_some());
        assert_eq!(fl.free_count(), 11);
    }

    #[test]
    fn grow_adds_frames() {
        let fl = Freelist::new(
            NumaTopology::paper_testbed(),
            FreelistConfig::default(),
            frames(0),
        );
        assert!(fl.alloc(0).is_none());
        fl.grow(0, (100..110).map(FrameId));
        assert_eq!(fl.free_count(), 10);
        assert!(fl.alloc(5).is_some());
    }

    #[test]
    fn topology_node_mapping() {
        let t = NumaTopology::paper_testbed();
        assert_eq!(t.cores(), 32);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(15), 0);
        assert_eq!(t.node_of(16), 1);
        assert_eq!(t.node_of(31), 1);
    }

    #[test]
    fn concurrent_alloc_free_conserves_frames() {
        use std::sync::Arc;
        let fl = Arc::new(Freelist::new(
            NumaTopology::flat(4),
            FreelistConfig::default(),
            frames(256),
        ));
        let mut handles = Vec::new();
        for core in 0..4 {
            let fl = Arc::clone(&fl);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    if let Some(f) = fl.alloc(core) {
                        fl.free(core, f);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fl.free_count(), 256, "frames must be conserved");
    }
}
