//! The hierarchical two-level freelist for DRAM cache frames.
//!
//! Paper section 3.2: the first level is a queue per NUMA node, the second
//! a queue per core. Allocation checks, in order, the local core queue,
//! the local NUMA queue, then remote NUMA queues. Freed (evicted) pages go
//! to the local core queue and spill to the NUMA queue in batches when a
//! threshold is exceeded; all movement between levels is batched (4096
//! pages in the paper's evaluation). Lock-free queues plus batching keep
//! allocator contention negligible.

use aquila_sync::SegQueue;

use aquila_mmu::FrameId;

/// Machine NUMA shape.
#[derive(Debug, Clone, Copy)]
pub struct NumaTopology {
    /// Number of NUMA nodes.
    pub nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
}

impl NumaTopology {
    /// The paper's testbed: 2 sockets x 16 hyperthreads.
    pub fn paper_testbed() -> NumaTopology {
        NumaTopology {
            nodes: 2,
            cores_per_node: 16,
        }
    }

    /// A single-node machine with `cores` cores.
    pub fn flat(cores: usize) -> NumaTopology {
        NumaTopology {
            nodes: 1,
            cores_per_node: cores.max(1),
        }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// NUMA node of a core.
    pub fn node_of(&self, core: usize) -> usize {
        (core / self.cores_per_node) % self.nodes
    }
}

/// Tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct FreelistConfig {
    /// Core-queue occupancy above which frames spill to the NUMA queue.
    pub core_spill_threshold: usize,
    /// Batch size for movement between levels (paper: 4096).
    pub level_batch: usize,
    /// Extra frames a sibling steal migrates into the stealing core's
    /// queue (work-stealing rebalance). 0 keeps the legacy behavior of
    /// stealing exactly the one frame being allocated.
    pub steal_batch: usize,
}

impl Default for FreelistConfig {
    fn default() -> Self {
        FreelistConfig {
            core_spill_threshold: 8192,
            level_batch: 4096,
            steal_batch: 0,
        }
    }
}

/// Where [`Freelist::alloc_traced`] found its frame. Callers with a
/// simulation context use this to meter refills and steals and to
/// annotate the cross-core queue traffic for the race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocOutcome {
    /// Popped from the caller's own core queue.
    LocalHit,
    /// Refilled the core queue from this NUMA node's queue.
    NodeRefill(usize),
    /// Refilled from a remote NUMA node's queue.
    RemoteNode(usize),
    /// Stole from a sibling core's queue.
    Steal {
        /// The core stolen from.
        victim: usize,
        /// Extra frames migrated to the stealer's queue beyond the one
        /// returned (the `steal_batch` rebalance).
        rebalanced: usize,
    },
}

/// The two-level frame freelist.
pub struct Freelist {
    topo: NumaTopology,
    cfg: FreelistConfig,
    core_queues: Vec<SegQueue<FrameId>>,
    node_queues: Vec<SegQueue<FrameId>>,
}

impl Freelist {
    /// Creates a freelist for the given topology, initially populated with
    /// `frames` distributed round-robin across NUMA node queues.
    pub fn new(
        topo: NumaTopology,
        cfg: FreelistConfig,
        frames: impl Iterator<Item = FrameId>,
    ) -> Freelist {
        let fl = Freelist {
            core_queues: (0..topo.cores()).map(|_| SegQueue::new()).collect(),
            node_queues: (0..topo.nodes).map(|_| SegQueue::new()).collect(),
            topo,
            cfg,
        };
        for (i, frame) in frames.enumerate() {
            fl.node_queues[i % fl.topo.nodes].push(frame);
        }
        fl
    }

    /// The topology this freelist was built for.
    pub fn topology(&self) -> NumaTopology {
        self.topo
    }

    /// Allocates a frame for `core`: local core queue, then local NUMA
    /// queue (refilling the core queue with a batch), then remote nodes,
    /// then — as a last resort — stealing from sibling core queues, so
    /// frames freed by another core's eviction round are never stranded
    /// below the spill threshold. Returns `None` when the cache is fully
    /// occupied — the caller must evict.
    pub fn alloc(&self, core: usize) -> Option<FrameId> {
        self.alloc_traced(core).map(|(f, _)| f)
    }

    /// Like [`Freelist::alloc`], but reports where the frame came from.
    /// A sibling steal additionally migrates up to `steal_batch` extra
    /// frames from the victim's queue into the stealer's (deterministic
    /// ascending victim scan), so one steal rebalances a run of them.
    pub fn alloc_traced(&self, core: usize) -> Option<(FrameId, AllocOutcome)> {
        let core = core % self.core_queues.len();
        if let Some(f) = self.core_queues[core].pop() {
            return Some((f, AllocOutcome::LocalHit));
        }
        let local = self.topo.node_of(core);
        if let Some(f) = self.refill_from_node(core, local) {
            return Some((f, AllocOutcome::NodeRefill(local)));
        }
        for n in 0..self.topo.nodes {
            if n == local {
                continue;
            }
            if let Some(f) = self.refill_from_node(core, n) {
                return Some((f, AllocOutcome::RemoteNode(n)));
            }
        }
        for other in 0..self.core_queues.len() {
            if other != core {
                if let Some(f) = self.core_queues[other].pop() {
                    let cq = &self.core_queues[core];
                    let mut rebalanced = 0;
                    while rebalanced < self.cfg.steal_batch {
                        match self.core_queues[other].pop() {
                            Some(extra) => {
                                cq.push(extra);
                                rebalanced += 1;
                            }
                            None => break,
                        }
                    }
                    return Some((
                        f,
                        AllocOutcome::Steal {
                            victim: other,
                            rebalanced,
                        },
                    ));
                }
            }
        }
        None
    }

    /// Pulls up to a level batch from a node queue into the core queue,
    /// returning the first frame directly.
    fn refill_from_node(&self, core: usize, node: usize) -> Option<FrameId> {
        let nq = &self.node_queues[node];
        let first = nq.pop()?;
        let cq = &self.core_queues[core];
        for _ in 1..self.cfg.level_batch.min(64) {
            match nq.pop() {
                Some(f) => cq.push(f),
                None => break,
            }
        }
        Some(first)
    }

    /// Frees a frame from `core` (eviction places recycled pages here);
    /// spills a batch to the NUMA queue if the core queue grew beyond its
    /// threshold. Returns `true` when a spill happened, so callers with a
    /// simulation context can record the (rare) slow path.
    pub fn free(&self, core: usize, frame: FrameId) -> bool {
        let core = core % self.core_queues.len();
        let cq = &self.core_queues[core];
        cq.push(frame);
        if cq.len() > self.cfg.core_spill_threshold {
            let node = &self.node_queues[self.topo.node_of(core)];
            for _ in 0..self.cfg.level_batch {
                match cq.pop() {
                    Some(f) => node.push(f),
                    None => break,
                }
            }
            return true;
        }
        false
    }

    /// Total free frames across all queues (approximate under concurrency).
    pub fn free_count(&self) -> usize {
        self.core_queues.iter().map(|q| q.len()).sum::<usize>()
            + self.node_queues.iter().map(|q| q.len()).sum::<usize>()
    }

    /// Adds new frames (dynamic cache growth) to a node queue.
    pub fn grow(&self, node: usize, frames: impl Iterator<Item = FrameId>) {
        let node = node % self.topo.nodes;
        for f in frames {
            self.node_queues[node].push(f);
        }
    }
}

impl core::fmt::Debug for Freelist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Freelist {{ free: {}, nodes: {}, cores: {} }}",
            self.free_count(),
            self.topo.nodes,
            self.topo.cores()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: u32) -> impl Iterator<Item = FrameId> {
        (0..n).map(FrameId)
    }

    #[test]
    fn alloc_until_empty_then_none() {
        let fl = Freelist::new(NumaTopology::flat(2), FreelistConfig::default(), frames(10));
        let mut got = Vec::new();
        while let Some(f) = fl.alloc(0) {
            got.push(f.0);
        }
        got.sort();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(fl.alloc(0).is_none());
        assert_eq!(fl.free_count(), 0);
    }

    #[test]
    fn free_then_alloc_recycles() {
        let fl = Freelist::new(NumaTopology::flat(1), FreelistConfig::default(), frames(1));
        let f = fl.alloc(0).unwrap();
        assert!(fl.alloc(0).is_none());
        fl.free(0, f);
        assert_eq!(fl.alloc(0), Some(f));
    }

    #[test]
    fn core_queue_hit_after_refill() {
        let fl = Freelist::new(
            NumaTopology::flat(4),
            FreelistConfig::default(),
            frames(100),
        );
        // First alloc pulls a batch into core 1's queue.
        fl.alloc(1).unwrap();
        // Subsequent allocs on core 1 hit the core queue (node queues
        // untouched beyond the first refill batch).
        let before: usize = fl.free_count();
        fl.alloc(1).unwrap();
        assert_eq!(fl.free_count(), before - 1);
    }

    #[test]
    fn remote_node_steal_when_local_empty() {
        // Node 0 exhausted; core 0 (node 0) must steal from node 1.
        let topo = NumaTopology {
            nodes: 2,
            cores_per_node: 1,
        };
        let fl = Freelist::new(topo, FreelistConfig::default(), frames(2));
        // Frames round-robin: frame 0 -> node 0, frame 1 -> node 1.
        let a = fl.alloc(0).unwrap();
        let b = fl.alloc(0).unwrap();
        let mut got = [a.0, b.0];
        got.sort();
        assert_eq!(got, [0, 1]);
    }

    #[test]
    fn spill_moves_batch_to_node_queue() {
        let cfg = FreelistConfig {
            core_spill_threshold: 10,
            level_batch: 8,
            steal_batch: 0,
        };
        let fl = Freelist::new(NumaTopology::flat(2), cfg, frames(0));
        let mut spilled = false;
        for i in 0..12 {
            spilled |= fl.free(0, FrameId(i));
        }
        assert!(spilled, "crossing the threshold must report a spill");
        // After crossing the threshold a batch moved to the node queue;
        // core 1 (same node) can now allocate.
        assert!(fl.alloc(1).is_some());
        assert_eq!(fl.free_count(), 11);
    }

    #[test]
    fn grow_adds_frames() {
        let fl = Freelist::new(
            NumaTopology::paper_testbed(),
            FreelistConfig::default(),
            frames(0),
        );
        assert!(fl.alloc(0).is_none());
        fl.grow(0, (100..110).map(FrameId));
        assert_eq!(fl.free_count(), 10);
        assert!(fl.alloc(5).is_some());
    }

    #[test]
    fn topology_node_mapping() {
        let t = NumaTopology::paper_testbed();
        assert_eq!(t.cores(), 32);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(15), 0);
        assert_eq!(t.node_of(16), 1);
        assert_eq!(t.node_of(31), 1);
    }

    #[test]
    fn batched_steal_reports_and_rebalances() {
        let cfg = FreelistConfig {
            core_spill_threshold: 1000,
            level_batch: 4,
            steal_batch: 4,
        };
        let fl = Freelist::new(NumaTopology::flat(2), cfg, frames(0));
        // Core 1 holds every free frame (eviction freed them there).
        for i in 0..6 {
            fl.free(1, FrameId(i));
        }
        // Core 0's alloc steals the head and migrates a batch behind it.
        let (f, o) = fl.alloc_traced(0).unwrap();
        assert_eq!(f, FrameId(0));
        assert_eq!(
            o,
            AllocOutcome::Steal {
                victim: 1,
                rebalanced: 4
            }
        );
        // The migrated frames now satisfy local hits, in victim order.
        for i in 1..5 {
            let (f, o) = fl.alloc_traced(0).unwrap();
            assert_eq!((f, o), (FrameId(i), AllocOutcome::LocalHit));
        }
        // The victim keeps what was not migrated.
        let (f, o) = fl.alloc_traced(1).unwrap();
        assert_eq!((f, o), (FrameId(5), AllocOutcome::LocalHit));
        assert!(fl.alloc(0).is_none());
    }

    #[test]
    fn steal_batch_larger_than_victim_queue_takes_what_exists() {
        let cfg = FreelistConfig {
            core_spill_threshold: 1000,
            level_batch: 4,
            steal_batch: 64,
        };
        let fl = Freelist::new(NumaTopology::flat(2), cfg, frames(0));
        for i in 0..3 {
            fl.free(1, FrameId(i));
        }
        let (f, o) = fl.alloc_traced(0).unwrap();
        assert_eq!(f, FrameId(0));
        assert_eq!(
            o,
            AllocOutcome::Steal {
                victim: 1,
                rebalanced: 2
            },
            "a short victim queue bounds the rebalance"
        );
        assert_eq!(fl.free_count(), 2);
    }

    /// Steal batching is pure prefetch: the *sequence of frames* each
    /// alloc returns is byte-identical to the `steal_batch = 0` legacy
    /// behavior — batching only changes which queue they wait in.
    #[test]
    fn steal_batch_is_invisible_to_the_alloc_sequence() {
        let seq = |batch: usize| -> Vec<u32> {
            let cfg = FreelistConfig {
                core_spill_threshold: 1000,
                level_batch: 4,
                steal_batch: batch,
            };
            let fl = Freelist::new(NumaTopology::flat(4), cfg, frames(0));
            for i in 0..32 {
                fl.free(0, FrameId(i));
            }
            (0..32).map(|_| fl.alloc(2).unwrap().0).collect()
        };
        let legacy = seq(0);
        assert_eq!(legacy, seq(3));
        assert_eq!(legacy, seq(64));
    }

    /// The degenerate single-core topology can never steal (there is no
    /// sibling), whatever the batch knob says.
    #[test]
    fn single_core_topology_never_steals() {
        let cfg = FreelistConfig {
            steal_batch: 8,
            ..FreelistConfig::default()
        };
        let fl = Freelist::new(NumaTopology::flat(1), cfg, frames(16));
        for _ in 0..16 {
            let (_, o) = fl.alloc_traced(0).unwrap();
            assert!(
                matches!(o, AllocOutcome::LocalHit | AllocOutcome::NodeRefill(0)),
                "unexpected outcome {o:?} on a single-core machine"
            );
        }
        assert!(fl.alloc(0).is_none());
    }

    #[test]
    fn concurrent_alloc_free_conserves_frames() {
        use std::sync::Arc;
        let fl = Arc::new(Freelist::new(
            NumaTopology::flat(4),
            FreelistConfig::default(),
            frames(256),
        ));
        let mut handles = Vec::new();
        for core in 0..4 {
            let fl = Arc::clone(&fl);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    if let Some(f) = fl.alloc(core) {
                        fl.free(core, f);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fl.free_count(), 256, "frames must be conserved");
    }
}
