//! Cache keys: which file page a cached frame holds.

/// Identifies one 4 KiB page of one memory-mapped file (or device
/// partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageKey {
    /// File (blob) identifier.
    pub file: u32,
    /// Page index within the file.
    pub page: u64,
}

impl PageKey {
    /// Creates a key.
    pub const fn new(file: u32, page: u64) -> PageKey {
        PageKey { file, page }
    }

    /// Packs the key into a non-zero `u64` for the lock-free hash table.
    ///
    /// Layout: bit 63 set, bit 62 clear, `file` in bits 41..62, `page` in
    /// bits 0..41. Bit 63 keeps packed keys distinct from the table's
    /// EMPTY (0) sentinel; the always-clear bit 62 keeps them distinct
    /// from TOMBSTONE (`u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the file id exceeds 21 bits or the page index 41
    /// bits — ample for this workspace (2 M files, 8 PiB files).
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.file < (1 << 21), "file id too large to pack");
        debug_assert!(self.page < (1 << 41), "page index too large to pack");
        (1u64 << 63) | ((self.file as u64) << 41) | self.page
    }

    /// Reverses [`PageKey::pack`].
    #[inline]
    pub fn unpack(raw: u64) -> PageKey {
        PageKey {
            file: ((raw >> 41) & ((1 << 21) - 1)) as u32,
            page: raw & ((1 << 41) - 1),
        }
    }

    /// 64-bit mix hash of the packed key (splitmix-style finalizer).
    #[inline]
    pub fn hash(self) -> u64 {
        let mut z = self.pack();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for key in [
            PageKey::new(0, 0),
            PageKey::new(1, 12345),
            PageKey::new((1 << 21) - 1, (1 << 41) - 1),
            PageKey::new(42, 1 << 40),
        ] {
            assert_eq!(PageKey::unpack(key.pack()), key);
            assert_ne!(key.pack(), 0, "packed key must not equal EMPTY");
            assert_ne!(key.pack(), u64::MAX, "packed key must not equal TOMBSTONE");
        }
    }

    #[test]
    fn hash_spreads_sequential_pages() {
        // Sequential pages of one file should not collide in low bits.
        let mut low_bits = aquila_sync::DetSet::new();
        for page in 0..1024u64 {
            low_bits.insert(PageKey::new(1, page).hash() & 0x3FF);
        }
        assert!(
            low_bits.len() > 600,
            "got {} distinct buckets",
            low_bits.len()
        );
    }
}
