//! The Extended Page Table (EPT): guest-physical to host-physical
//! translation, owned by the hypervisor.
//!
//! Aquila (section 3.5) uses one EPT per *process* (a deliberate change
//! from Dune's per-thread EPTs) and maps the DRAM cache with 1 GiB pages so
//! that dynamic cache resizing causes very few EPT faults. This module
//! implements a four-level EPT radix tree supporting 4 KiB, 2 MiB, and
//! 1 GiB mappings, with leaf-level permissions.

use std::collections::BTreeMap;

use crate::addr::{Gpa, Hpa, PAGE_1G, PAGE_2M, PAGE_4K};

/// EPT mapping permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptPerms {
    /// Guest may read through the mapping.
    pub read: bool,
    /// Guest may write through the mapping.
    pub write: bool,
    /// Guest may execute through the mapping.
    pub exec: bool,
}

impl EptPerms {
    /// Read-write-execute (the common data mapping in Aquila).
    pub const RWX: EptPerms = EptPerms {
        read: true,
        write: true,
        exec: true,
    };

    /// Read-write, no execute.
    pub const RW: EptPerms = EptPerms {
        read: true,
        write: true,
        exec: false,
    };

    /// Read-only.
    pub const R: EptPerms = EptPerms {
        read: true,
        write: false,
        exec: false,
    };
}

/// Leaf page size of an EPT mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EptPageSize {
    /// 4 KiB leaf.
    Size4K,
    /// 2 MiB leaf.
    Size2M,
    /// 1 GiB leaf.
    Size1G,
}

impl EptPageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            EptPageSize::Size4K => PAGE_4K,
            EptPageSize::Size2M => PAGE_2M,
            EptPageSize::Size1G => PAGE_1G,
        }
    }
}

/// The access kind that caused an EPT violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptAccess {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// An EPT violation: the hypervisor must handle it (on real hardware this
/// is a vmexit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EptViolation {
    /// The faulting guest-physical address.
    pub gpa: Gpa,
    /// The access that faulted.
    pub access: EptAccess,
    /// Whether a mapping existed but with insufficient permissions.
    pub permission_fault: bool,
}

#[derive(Debug, Clone, Copy)]
struct EptEntry {
    hpa: Hpa,
    size: EptPageSize,
    perms: EptPerms,
}

/// A per-process extended page table.
///
/// Internally a sorted map keyed by the leaf's base GPA; lookups find the
/// greatest mapped base at or below the query address and check
/// containment. This models the four-level radix walk functionally while
/// keeping the structure compact; the *cost* of walks and violations is
/// charged by the vcpu layer, not here.
#[derive(Debug, Default)]
pub struct Ept {
    entries: BTreeMap<u64, EptEntry>,
    mapped_bytes: u64,
}

/// Errors from EPT manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptError {
    /// The GPA or HPA is not aligned to the requested page size.
    Misaligned,
    /// The new mapping overlaps an existing one.
    Overlap,
    /// No mapping exists at the given GPA.
    NotMapped,
}

impl Ept {
    /// Creates an empty EPT.
    pub fn new() -> Ept {
        Ept::default()
    }

    /// Maps `gpa -> hpa` with the given leaf size and permissions.
    pub fn map(
        &mut self,
        gpa: Gpa,
        hpa: Hpa,
        size: EptPageSize,
        perms: EptPerms,
    ) -> Result<(), EptError> {
        let bytes = size.bytes();
        if !gpa.is_aligned(bytes) || !hpa.is_aligned(bytes) {
            return Err(EptError::Misaligned);
        }
        if self.overlaps(gpa.get(), bytes) {
            return Err(EptError::Overlap);
        }
        self.entries
            .insert(gpa.get(), EptEntry { hpa, size, perms });
        self.mapped_bytes += bytes;
        Ok(())
    }

    /// Removes the mapping whose leaf contains `gpa`.
    ///
    /// Returns the base GPA and size of the removed leaf.
    pub fn unmap(&mut self, gpa: Gpa) -> Result<(Gpa, EptPageSize), EptError> {
        let (base, entry) = self.leaf_containing(gpa).ok_or(EptError::NotMapped)?;
        let size = entry.size;
        self.entries.remove(&base);
        self.mapped_bytes -= size.bytes();
        Ok((Gpa(base), size))
    }

    /// Translates a GPA for the given access, or reports a violation.
    pub fn translate(&self, gpa: Gpa, access: EptAccess) -> Result<Hpa, EptViolation> {
        match self.leaf_containing(gpa) {
            None => Err(EptViolation {
                gpa,
                access,
                permission_fault: false,
            }),
            Some((base, entry)) => {
                let allowed = match access {
                    EptAccess::Read => entry.perms.read,
                    EptAccess::Write => entry.perms.write,
                    EptAccess::Exec => entry.perms.exec,
                };
                if !allowed {
                    return Err(EptViolation {
                        gpa,
                        access,
                        permission_fault: true,
                    });
                }
                Ok(entry.hpa.add(gpa.get() - base))
            }
        }
    }

    /// Whether any leaf covers `gpa`.
    pub fn is_mapped(&self, gpa: Gpa) -> bool {
        self.leaf_containing(gpa).is_some()
    }

    /// Base and size of the leaf covering `gpa`, if any. Lets the engine
    /// assert which granule class (1 GiB cache backing vs 2 MiB promotion
    /// slab) serves a guest-physical range.
    pub fn leaf_at(&self, gpa: Gpa) -> Option<(Gpa, EptPageSize)> {
        self.leaf_containing(gpa)
            .map(|(base, entry)| (Gpa(base), entry.size))
    }

    /// Total bytes currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// Number of leaf mappings.
    pub fn leaf_count(&self) -> usize {
        self.entries.len()
    }

    fn leaf_containing(&self, gpa: Gpa) -> Option<(u64, EptEntry)> {
        let (base, entry) = self.entries.range(..=gpa.get()).next_back()?;
        if gpa.get() < base + entry.size.bytes() {
            Some((*base, *entry))
        } else {
            None
        }
    }

    fn overlaps(&self, base: u64, bytes: u64) -> bool {
        // A mapping overlapping [base, base+bytes) either contains `base`
        // or starts inside the range.
        if self.leaf_containing(Gpa(base)).is_some() {
            return true;
        }
        self.entries.range(base..base + bytes).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_roundtrip() {
        let mut ept = Ept::new();
        ept.map(Gpa(0x1000), Hpa(0x8000), EptPageSize::Size4K, EptPerms::RWX)
            .unwrap();
        let hpa = ept.translate(Gpa(0x1abc), EptAccess::Read).unwrap();
        assert_eq!(hpa, Hpa(0x8abc));
    }

    #[test]
    fn unmapped_access_is_violation() {
        let ept = Ept::new();
        let v = ept.translate(Gpa(0x5000), EptAccess::Write).unwrap_err();
        assert_eq!(v.gpa, Gpa(0x5000));
        assert!(!v.permission_fault);
        assert_eq!(v.access, EptAccess::Write);
    }

    #[test]
    fn permission_fault_on_write_to_readonly() {
        let mut ept = Ept::new();
        ept.map(Gpa(0), Hpa(0), EptPageSize::Size4K, EptPerms::R)
            .unwrap();
        assert!(ept.translate(Gpa(0x10), EptAccess::Read).is_ok());
        let v = ept.translate(Gpa(0x10), EptAccess::Write).unwrap_err();
        assert!(v.permission_fault);
        let v = ept.translate(Gpa(0x10), EptAccess::Exec).unwrap_err();
        assert!(v.permission_fault);
    }

    #[test]
    fn huge_pages_cover_their_range() {
        let mut ept = Ept::new();
        ept.map(
            Gpa(PAGE_1G),
            Hpa(4 * PAGE_1G),
            EptPageSize::Size1G,
            EptPerms::RW,
        )
        .unwrap();
        // Last byte of the 1 GiB leaf translates.
        let hpa = ept
            .translate(Gpa(2 * PAGE_1G - 1), EptAccess::Read)
            .unwrap();
        assert_eq!(hpa, Hpa(5 * PAGE_1G - 1));
        // One byte past does not.
        assert!(ept.translate(Gpa(2 * PAGE_1G), EptAccess::Read).is_err());
        assert_eq!(ept.mapped_bytes(), PAGE_1G);
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut ept = Ept::new();
        assert_eq!(
            ept.map(Gpa(0x800), Hpa(0), EptPageSize::Size4K, EptPerms::RWX),
            Err(EptError::Misaligned)
        );
        assert_eq!(
            ept.map(Gpa(0), Hpa(0x1000), EptPageSize::Size2M, EptPerms::RWX),
            Err(EptError::Misaligned)
        );
    }

    #[test]
    fn overlap_rejected_both_directions() {
        let mut ept = Ept::new();
        ept.map(Gpa(PAGE_2M), Hpa(0), EptPageSize::Size2M, EptPerms::RWX)
            .unwrap();
        // A 4K page inside the 2M leaf.
        assert_eq!(
            ept.map(
                Gpa(PAGE_2M + PAGE_4K),
                Hpa(PAGE_1G),
                EptPageSize::Size4K,
                EptPerms::RWX
            ),
            Err(EptError::Overlap)
        );
        // A 1G page containing the 2M leaf.
        assert_eq!(
            ept.map(Gpa(0), Hpa(PAGE_1G), EptPageSize::Size1G, EptPerms::RWX),
            Err(EptError::Overlap)
        );
    }

    #[test]
    fn unmap_removes_leaf() {
        let mut ept = Ept::new();
        ept.map(Gpa(0x3000), Hpa(0x9000), EptPageSize::Size4K, EptPerms::RWX)
            .unwrap();
        let (base, size) = ept.unmap(Gpa(0x3abc)).unwrap();
        assert_eq!(base, Gpa(0x3000));
        assert_eq!(size, EptPageSize::Size4K);
        assert!(!ept.is_mapped(Gpa(0x3000)));
        assert_eq!(ept.unmap(Gpa(0x3000)), Err(EptError::NotMapped));
        assert_eq!(ept.mapped_bytes(), 0);
    }

    #[test]
    fn mixed_1g_cache_and_2m_slab_granules_coexist() {
        // The engine's layout: 1 GiB granules backing the ordinary cache
        // window, 2 MiB granules backing the promotion slab window far
        // above it. Both resolve, and leaf_at reports the right class.
        let mut ept = Ept::new();
        ept.map(
            Gpa(4 * PAGE_1G),
            Hpa(PAGE_1G),
            EptPageSize::Size1G,
            EptPerms::RWX,
        )
        .unwrap();
        let slab = 32 * PAGE_1G;
        for run in 0..4u64 {
            ept.map(
                Gpa(slab + run * PAGE_2M),
                Hpa(64 * PAGE_1G + run * PAGE_2M),
                EptPageSize::Size2M,
                EptPerms::RW,
            )
            .unwrap();
        }
        assert_eq!(
            ept.leaf_at(Gpa(4 * PAGE_1G + 0x1234)),
            Some((Gpa(4 * PAGE_1G), EptPageSize::Size1G))
        );
        assert_eq!(
            ept.leaf_at(Gpa(slab + 3 * PAGE_2M + 0x5678)),
            Some((Gpa(slab + 3 * PAGE_2M), EptPageSize::Size2M))
        );
        assert_eq!(ept.leaf_at(Gpa(slab + 4 * PAGE_2M)), None);
        let hpa = ept
            .translate(Gpa(slab + PAGE_2M + 0xABC), EptAccess::Write)
            .unwrap();
        assert_eq!(hpa, Hpa(64 * PAGE_1G + PAGE_2M + 0xABC));
        assert_eq!(ept.mapped_bytes(), PAGE_1G + 4 * PAGE_2M);
        assert_eq!(ept.leaf_count(), 5);
    }

    #[test]
    fn adjacent_mappings_do_not_overlap() {
        let mut ept = Ept::new();
        ept.map(Gpa(0), Hpa(0), EptPageSize::Size4K, EptPerms::RWX)
            .unwrap();
        ept.map(
            Gpa(PAGE_4K),
            Hpa(PAGE_4K),
            EptPageSize::Size4K,
            EptPerms::RWX,
        )
        .unwrap();
        assert_eq!(ept.leaf_count(), 2);
    }
}
