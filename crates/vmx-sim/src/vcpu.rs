//! Virtual CPU state: VMX modes, protection rings, VMCS, and the cost of
//! mode transitions.
//!
//! The performance argument of the paper is entirely about *which
//! transition* each mmio operation pays:
//!
//! - a Linux page fault pays a ring-3 -> ring-0 trap (1287 cycles);
//! - an Aquila page fault stays in non-root ring 0 and pays only exception
//!   delivery (552 cycles);
//! - uncommon operations (mapping management, cache resize) pay a
//!   vmcall/vmexit (~750-1500 cycles), which is fine because they are rare.
//!
//! [`Vcpu`] makes those charges explicit and countable.

use aquila_sim::{CostCat, Counters, Cycles, SimCtx};

use crate::ept::EptViolation;

/// VMX operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuMode {
    /// VMX root: the hypervisor / host OS.
    VmxRoot,
    /// VMX non-root: guest execution (where Aquila runs applications).
    VmxNonRoot,
}

/// x86 protection ring. Rings 1 and 2 are modelled but unused, as in
/// modern OSes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ring {
    /// Most privileged.
    Ring0,
    /// Unused.
    Ring1,
    /// Unused.
    Ring2,
    /// User mode.
    Ring3,
}

/// Why a vmexit happened (a subset of the Intel SDM exit reasons that the
/// simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// Explicit hypercall from the guest.
    Vmcall {
        /// Hypercall number.
        nr: u64,
    },
    /// EPT violation (guest-physical access with no/insufficient mapping).
    EptViolation(EptViolation),
    /// Guest wrote a model-specific register the hypervisor intercepts
    /// (Aquila's rate-limited IPI send path).
    MsrWrite {
        /// MSR index.
        msr: u32,
    },
    /// External interrupt arrived while in guest mode.
    ExternalInterrupt,
}

/// Per-vcpu VM control structure (the simulation keeps only the fields the
/// experiments observe).
#[derive(Debug, Default)]
pub struct Vmcs {
    /// vmexits taken, by coarse reason.
    pub exits_vmcall: u64,
    /// EPT-violation exits.
    pub exits_ept: u64,
    /// Intercepted-MSR exits.
    pub exits_msr: u64,
    /// External-interrupt exits.
    pub exits_interrupt: u64,
    /// vmentries executed.
    pub entries: u64,
}

impl Vmcs {
    /// Total vmexits across reasons.
    pub fn total_exits(&self) -> u64 {
        self.exits_vmcall + self.exits_ept + self.exits_msr + self.exits_interrupt
    }
}

/// Model-specific registers the simulation knows about.
pub mod msr {
    /// Syscall entry point (`MSR_LSTAR`); Aquila installs its own handler
    /// here to intercept system calls in non-root ring 0 (section 4.4).
    pub const LSTAR: u32 = 0xC000_0082;
    /// Interrupt command register as an x2APIC MSR; writes are intercepted
    /// so the hypervisor can rate-limit IPI floods (section 4.1).
    pub const X2APIC_ICR: u32 = 0x830;
}

/// A virtual CPU.
///
/// Tracks mode and ring, charges transition costs through the [`SimCtx`],
/// and counts events in the VMCS. One `Vcpu` corresponds to one simulated
/// core running one (Aquila or Linux) thread.
#[derive(Debug)]
pub struct Vcpu {
    mode: CpuMode,
    ring: Ring,
    /// The VM control structure for this vcpu.
    pub vmcs: Vmcs,
    msrs: aquila_sync::DetMap<u32, u64>,
    ist: IstStacks,
}

impl Vcpu {
    /// Creates a vcpu in VMX root, ring 0 (hypervisor context).
    pub fn new() -> Vcpu {
        Vcpu {
            mode: CpuMode::VmxRoot,
            ring: Ring::Ring0,
            vmcs: Vmcs::default(),
            msrs: aquila_sync::DetMap::new(),
            ist: IstStacks::new(),
        }
    }

    /// Current VMX mode.
    pub fn mode(&self) -> CpuMode {
        self.mode
    }

    /// Current protection ring.
    pub fn ring(&self) -> Ring {
        self.ring
    }

    /// Enters the guest (vmlaunch/vmresume): VMX root -> non-root ring 0.
    ///
    /// This is how Aquila places the application in a privileged domain.
    /// The entry half of the transition cost is folded into the round-trip
    /// constants charged at exit points, so entry itself charges nothing.
    pub fn vmentry(&mut self) {
        self.mode = CpuMode::VmxNonRoot;
        self.ring = Ring::Ring0;
        self.vmcs.entries += 1;
    }

    /// Drops the guest to ring 3 (a conventional Linux process).
    pub fn enter_user(&mut self) {
        self.ring = Ring::Ring3;
    }

    /// Takes a vmexit for `reason`, charging the round-trip cost, and
    /// returns to non-root mode.
    ///
    /// The guest resumes immediately after handling: the simulation charges
    /// exit+entry as one round trip (~750 cycles, per Dune).
    pub fn vmexit_roundtrip(&mut self, ctx: &mut dyn SimCtx, reason: ExitReason) {
        debug_assert_eq!(self.mode, CpuMode::VmxNonRoot, "vmexit requires guest mode");
        match reason {
            ExitReason::Vmcall { .. } => self.vmcs.exits_vmcall += 1,
            ExitReason::EptViolation(_) => self.vmcs.exits_ept += 1,
            ExitReason::MsrWrite { .. } => self.vmcs.exits_msr += 1,
            ExitReason::ExternalInterrupt => self.vmcs.exits_interrupt += 1,
        }
        ctx.counters().vmexits += 1;
        let c = ctx.cost().vmexit_roundtrip;
        ctx.charge(CostCat::Vmexit, c);
    }

    /// Executes a `vmcall` hypercall: a deliberate vmexit with hypervisor
    /// dispatch (used by Aquila's uncommon-path operations).
    pub fn vmcall(&mut self, ctx: &mut dyn SimCtx, _nr: u64) {
        debug_assert_eq!(self.mode, CpuMode::VmxNonRoot, "vmcall requires guest mode");
        self.vmcs.exits_vmcall += 1;
        ctx.counters().vmexits += 1;
        let c = ctx.cost().vmcall;
        ctx.charge(CostCat::Vmexit, c);
    }

    /// Delivers an exception (e.g. a page fault) and returns from it,
    /// charging the protection-domain-switch cost appropriate to the
    /// current ring.
    ///
    /// Ring 3 pays the full trap (stack switch, kernel entry, `iret`);
    /// non-root ring 0 pays only exception delivery on the alternate stack
    /// (Aquila, section 4.2).
    pub fn deliver_exception(&mut self, ctx: &mut dyn SimCtx) {
        let c = match self.ring {
            Ring::Ring3 => ctx.cost().trap_ring3,
            _ => ctx.cost().trap_nonroot_ring0,
        };
        self.ist.enter();
        ctx.charge(CostCat::Trap, c);
        self.ist.leave();
    }

    /// Writes an MSR from guest context.
    ///
    /// Intercepted MSRs (the x2APIC ICR) take a vmexit so the hypervisor
    /// can rate-limit; others are charged as a cheap `wrmsr`.
    pub fn write_msr(&mut self, ctx: &mut dyn SimCtx, index: u32, value: u64) {
        if index == msr::X2APIC_ICR && self.mode == CpuMode::VmxNonRoot {
            self.vmexit_roundtrip(ctx, ExitReason::MsrWrite { msr: index });
        } else {
            ctx.charge(CostCat::Other, Cycles(100));
        }
        self.msrs.insert(index, value);
    }

    /// Reads an MSR (zero when never written).
    pub fn read_msr(&self, index: u32) -> u64 {
        self.msrs.get(&index).copied().unwrap_or(0)
    }

    /// Exposes the exception-stack table for configuration.
    pub fn ist_mut(&mut self) -> &mut IstStacks {
        &mut self.ist
    }

    /// Merges this vcpu's exit counters into simulation counters (used by
    /// report code).
    pub fn export_counters(&self, c: &mut Counters) {
        c.vmexits += self.vmcs.total_exits();
        c.ept_faults += self.vmcs.exits_ept;
    }
}

impl Default for Vcpu {
    fn default() -> Self {
        Vcpu::new()
    }
}

/// The interrupt-stack-table model: up to seven alternative exception
/// stacks, as provided by x86-64.
///
/// Aquila (section 4.2) runs its two handlers (page fault, IPI) on
/// dedicated alternative stacks so the handler cannot clobber the
/// application's red zone, without recompiling the world with
/// `-mno-red-zone`. The model tracks nesting depth so tests can assert the
/// red-zone discipline is respected.
#[derive(Debug)]
pub struct IstStacks {
    /// Number of configured alternative stacks (Aquila uses 2).
    configured: usize,
    depth: usize,
    max_depth: usize,
}

/// x86-64 allows at most seven IST entries.
pub const MAX_IST_STACKS: usize = 7;

impl IstStacks {
    /// Creates a table with Aquila's two stacks (page fault + IPI)
    /// configured.
    pub fn new() -> IstStacks {
        IstStacks {
            configured: 2,
            depth: 0,
            max_depth: 0,
        }
    }

    /// Configures the number of alternative stacks.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the architectural limit of seven.
    pub fn configure(&mut self, n: usize) {
        assert!(n <= MAX_IST_STACKS, "x86-64 allows at most 7 IST stacks");
        self.configured = n;
    }

    /// Number of configured stacks.
    pub fn configured(&self) -> usize {
        self.configured
    }

    fn enter(&mut self) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Deepest nesting observed (a double fault would be depth 2).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

impl Default for IstStacks {
    fn default() -> Self {
        IstStacks::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn vmentry_reaches_nonroot_ring0() {
        let mut v = Vcpu::new();
        assert_eq!(v.mode(), CpuMode::VmxRoot);
        v.vmentry();
        assert_eq!(v.mode(), CpuMode::VmxNonRoot);
        assert_eq!(v.ring(), Ring::Ring0);
        assert_eq!(v.vmcs.entries, 1);
    }

    #[test]
    fn ring3_trap_costs_1287() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.enter_user();
        v.deliver_exception(&mut ctx);
        assert_eq!(ctx.breakdown.get(CostCat::Trap), Cycles(1287));
    }

    #[test]
    fn nonroot_ring0_trap_costs_552() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.deliver_exception(&mut ctx);
        assert_eq!(ctx.breakdown.get(CostCat::Trap), Cycles(552));
    }

    #[test]
    fn vmcall_charges_and_counts() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.vmcall(&mut ctx, 7);
        assert_eq!(v.vmcs.exits_vmcall, 1);
        assert_eq!(ctx.stats.vmexits, 1);
        assert!(ctx.breakdown.get(CostCat::Vmexit) > Cycles::ZERO);
    }

    #[test]
    fn icr_write_in_guest_takes_vmexit() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.write_msr(&mut ctx, msr::X2APIC_ICR, 0xdead);
        assert_eq!(v.vmcs.exits_msr, 1);
        assert_eq!(v.read_msr(msr::X2APIC_ICR), 0xdead);
    }

    #[test]
    fn lstar_write_is_cheap() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.write_msr(&mut ctx, msr::LSTAR, 0x4000);
        assert_eq!(v.vmcs.exits_msr, 0);
        assert_eq!(v.read_msr(msr::LSTAR), 0x4000);
        assert_eq!(v.read_msr(0x999), 0);
    }

    #[test]
    fn exception_uses_alternative_stack_once() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.deliver_exception(&mut ctx);
        v.deliver_exception(&mut ctx);
        assert_eq!(v.ist_mut().max_depth(), 1);
    }

    #[test]
    #[should_panic(expected = "at most 7")]
    fn too_many_ist_stacks_panics() {
        let mut ist = IstStacks::new();
        ist.configure(8);
    }

    #[test]
    fn export_counters_sums_exits() {
        let mut v = Vcpu::new();
        let mut ctx = FreeCtx::new(1);
        v.vmentry();
        v.vmcall(&mut ctx, 1);
        v.vmexit_roundtrip(
            &mut ctx,
            ExitReason::EptViolation(crate::ept::EptViolation {
                gpa: crate::addr::Gpa(0),
                access: crate::ept::EptAccess::Read,
                permission_fault: false,
            }),
        );
        let mut c = Counters::new();
        v.export_counters(&mut c);
        assert_eq!(c.vmexits, 2);
        assert_eq!(c.ept_faults, 1);
    }
}
