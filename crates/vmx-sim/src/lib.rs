//! Intel VT-x hardware model for the Aquila reproduction.
//!
//! Models the virtualization features Aquila builds on (via Dune):
//!
//! - [`vcpu::Vcpu`] — VMX root/non-root modes, protection rings,
//!   vmentry/vmexit/vmcall with the paper's measured transition costs, MSR
//!   interception, and alternative exception stacks;
//! - [`ept::Ept`] — per-process extended page tables with 4 KiB / 2 MiB /
//!   1 GiB leaves and EPT violations (the mechanism behind Aquila's
//!   dynamic cache resizing);
//! - [`apic::ApicFabric`] — posted-interrupt IPIs with the vmexit-mediated,
//!   rate-limited send path used for batched TLB shootdowns.
//!
//! The *functional* state (modes, mappings, counters) is real; the *cost*
//! of each hardware event is charged through `aquila_sim`'s calibrated
//! cost model, which is what lets a container with no `/dev/kvm` reproduce
//! the paper's transition-cost arguments.

pub mod addr;
pub mod apic;
pub mod ept;
pub mod vcpu;

pub use addr::{Gpa, Hpa, PAGE_1G, PAGE_2M, PAGE_4K};
pub use apic::{ApicFabric, IpiRateLimiter, IpiSendPath};
pub use ept::{Ept, EptAccess, EptError, EptPageSize, EptPerms, EptViolation};
pub use vcpu::{msr, CpuMode, ExitReason, IstStacks, Ring, Vcpu, Vmcs, MAX_IST_STACKS};
