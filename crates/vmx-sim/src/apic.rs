//! Posted-interrupt APIC model and the rate-limited IPI send path.
//!
//! Aquila's batched TLB shootdowns (section 4.1) send inter-processor
//! interrupts using posted interrupts, with a twist: the *send* side
//! deliberately goes through an intercepted MSR write (a vmexit) so the
//! hypervisor can rate-limit a malicious guest flooding a core with IPIs,
//! raising the send cost from 298 to 2081 cycles; the *receive* side stays
//! vmexit-less (Shinjuku's mechanism). Batching amortizes the send cost
//! over many invalidated pages.

use aquila_sim::{CoreDebts, CostCat, Cycles, SimCtx};

/// How the IPI send side is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiSendPath {
    /// Direct posted-interrupt send from the guest: 298 cycles, but a
    /// malicious guest could flood cores (no hypervisor mediation).
    Posted,
    /// MSR write intercepted by the hypervisor: 2081 cycles, rate-limited.
    /// This is Aquila's default.
    VmexitMediated,
}

/// Hypervisor-side token-bucket rate limiter for mediated IPI sends.
///
/// Refills `rate_per_sec` tokens per simulated second up to `burst`; a send
/// that finds the bucket empty is delayed until the next token accrues.
/// This is the denial-of-service defence of section 4.1.
#[derive(Debug)]
pub struct IpiRateLimiter {
    tokens: f64,
    burst: f64,
    rate_per_cycle: f64,
    last: Cycles,
    /// Sends delayed by the limiter.
    pub throttled: u64,
}

impl IpiRateLimiter {
    /// Creates a limiter allowing `rate_per_sec` sends/s with the given
    /// burst size.
    pub fn new(rate_per_sec: u64, burst: u64) -> IpiRateLimiter {
        IpiRateLimiter {
            tokens: burst as f64,
            burst: burst as f64,
            rate_per_cycle: rate_per_sec as f64 / aquila_sim::CPU_HZ as f64,
            last: Cycles::ZERO,
            throttled: 0,
        }
    }

    /// Admits one send at `now`; returns the extra delay imposed.
    pub fn admit(&mut self, now: Cycles) -> Cycles {
        if now > self.last {
            self.tokens = (self.tokens + (now - self.last).get() as f64 * self.rate_per_cycle)
                .min(self.burst);
            self.last = now;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Cycles::ZERO
        } else {
            let deficit = 1.0 - self.tokens;
            self.tokens = 0.0;
            self.throttled += 1;
            Cycles((deficit / self.rate_per_cycle) as u64)
        }
    }
}

/// The per-machine APIC fabric: delivers IPIs between simulated cores.
///
/// Receive-side handler cost is deposited as core debt (drained by the
/// engine the next time the target core runs), modelling asynchronous
/// interruption without cross-thread synchronization.
#[derive(Debug)]
pub struct ApicFabric {
    limiter: aquila_sync::Mutex<IpiRateLimiter>,
    /// IPIs sent (per broadcast, not per target).
    pub sends: u64,
}

impl ApicFabric {
    /// Creates a fabric with a generous default rate limit (1 M sends/s,
    /// burst 1024) — enough for any honest workload, throttling floods.
    pub fn new() -> ApicFabric {
        ApicFabric {
            limiter: aquila_sync::Mutex::new(IpiRateLimiter::new(1_000_000, 1024)),
            sends: 0,
        }
    }

    /// Creates a fabric with an explicit rate limit.
    pub fn with_rate(rate_per_sec: u64, burst: u64) -> ApicFabric {
        ApicFabric {
            limiter: aquila_sync::Mutex::new(IpiRateLimiter::new(rate_per_sec, burst)),
            sends: 0,
        }
    }

    /// Sends an IPI from the calling core to every other core.
    ///
    /// Charges the sender according to `path` (plus any rate-limit delay on
    /// the mediated path) and deposits the receive-handler cost on all
    /// other cores. Returns the number of target cores.
    pub fn broadcast(
        &mut self,
        ctx: &mut dyn SimCtx,
        debts: &CoreDebts,
        path: IpiSendPath,
        handler_cost: Cycles,
    ) -> usize {
        let send_cost = match path {
            IpiSendPath::Posted => ctx.cost().ipi_send_posted,
            IpiSendPath::VmexitMediated => {
                let delay = self.limiter.lock().admit(ctx.now());
                if delay > Cycles::ZERO {
                    ctx.charge(CostCat::Tlb, delay);
                }
                ctx.cost().ipi_send_vmexit
            }
        };
        ctx.charge(CostCat::Tlb, send_cost);
        let receive = ctx.cost().ipi_receive + handler_cost;
        debts.broadcast_except(ctx.core(), receive);
        self.sends += 1;
        ctx.num_cores().saturating_sub(1)
    }

    /// Number of sends throttled by the hypervisor limiter.
    pub fn throttled(&self) -> u64 {
        self.limiter.lock().throttled
    }
}

impl Default for ApicFabric {
    fn default() -> Self {
        ApicFabric::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn posted_send_costs_298() {
        let mut fabric = ApicFabric::new();
        let debts = CoreDebts::new(4);
        let mut ctx = FreeCtx::new(1).with_core(0, 4);
        let targets = fabric.broadcast(&mut ctx, &debts, IpiSendPath::Posted, Cycles(50));
        assert_eq!(targets, 3);
        assert_eq!(ctx.breakdown.get(CostCat::Tlb), Cycles(298));
    }

    #[test]
    fn mediated_send_costs_2081() {
        let mut fabric = ApicFabric::new();
        let debts = CoreDebts::new(2);
        let mut ctx = FreeCtx::new(1).with_core(0, 2);
        fabric.broadcast(&mut ctx, &debts, IpiSendPath::VmexitMediated, Cycles(0));
        assert_eq!(ctx.breakdown.get(CostCat::Tlb), Cycles(2081));
    }

    #[test]
    fn receive_cost_lands_on_other_cores() {
        let mut fabric = ApicFabric::new();
        let debts = CoreDebts::new(3);
        let mut ctx = FreeCtx::new(1).with_core(1, 3);
        fabric.broadcast(&mut ctx, &debts, IpiSendPath::Posted, Cycles(100));
        // ipi_receive (300) + handler (100) deposited on cores 0 and 2.
        assert_eq!(debts.drain(0), Cycles(400));
        assert_eq!(debts.drain(2), Cycles(400));
        assert_eq!(debts.drain(1), Cycles::ZERO);
    }

    #[test]
    fn rate_limiter_throttles_floods() {
        // 1000 sends/s, burst 2: the third immediate send is delayed.
        let mut l = IpiRateLimiter::new(1000, 2);
        assert_eq!(l.admit(Cycles(0)), Cycles::ZERO);
        assert_eq!(l.admit(Cycles(0)), Cycles::ZERO);
        let d = l.admit(Cycles(0));
        assert!(d > Cycles::ZERO);
        assert_eq!(l.throttled, 1);
        // After a long quiet period, tokens refill.
        assert_eq!(l.admit(Cycles(aquila_sim::CPU_HZ)), Cycles::ZERO);
    }

    #[test]
    fn limiter_respects_burst_cap() {
        let mut l = IpiRateLimiter::new(1000, 4);
        // A very long gap must not accumulate more than `burst` tokens.
        let _ = l.admit(Cycles(aquila_sim::CPU_HZ * 100));
        for _ in 0..3 {
            assert_eq!(l.admit(Cycles(aquila_sim::CPU_HZ * 100)), Cycles::ZERO);
        }
        assert!(l.admit(Cycles(aquila_sim::CPU_HZ * 100)) > Cycles::ZERO);
    }

    #[test]
    fn flood_through_fabric_is_throttled() {
        let mut fabric = ApicFabric::with_rate(1000, 1);
        let debts = CoreDebts::new(2);
        let mut ctx = FreeCtx::new(1).with_core(0, 2);
        for _ in 0..10 {
            fabric.broadcast(&mut ctx, &debts, IpiSendPath::VmexitMediated, Cycles(0));
        }
        // Every other send pays a full token-refill delay: the flood is
        // paced down to the configured rate.
        assert!(fabric.throttled() >= 4, "flood must be rate-limited");
        assert_eq!(fabric.sends, 10);
        // The imposed delays dominate the send costs by orders of
        // magnitude (2.4 M cycles per refill vs 2081 per send).
        assert!(ctx.breakdown.get(CostCat::Tlb).get() > 4 * 2_000_000);
    }

    #[test]
    fn single_core_broadcast_has_no_targets() {
        let mut fabric = ApicFabric::new();
        let debts = CoreDebts::new(1);
        let mut ctx = FreeCtx::new(1).with_core(0, 1);
        let targets = fabric.broadcast(&mut ctx, &debts, IpiSendPath::Posted, Cycles(10));
        assert_eq!(targets, 0);
    }
}
