//! Guest-physical and host-physical address types.
//!
//! Intel VT-x translates in two stages: guest virtual -> guest physical
//! (regular page tables, owned by the guest — see the `aquila-mmu` crate)
//! and guest physical -> host physical (the EPT, owned by the hypervisor).
//! Distinct newtypes keep the two address spaces from being mixed up.

use core::fmt;

/// Size of a 4 KiB page.
pub const PAGE_4K: u64 = 4 << 10;
/// Size of a 2 MiB huge page.
pub const PAGE_2M: u64 = 2 << 20;
/// Size of a 1 GiB huge page.
pub const PAGE_1G: u64 = 1 << 30;

/// A guest-physical address (GPA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpa(pub u64);

/// A host-physical address (HPA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hpa(pub u64);

macro_rules! addr_impl {
    ($t:ident) => {
        impl $t {
            /// Returns the raw address.
            #[inline]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Rounds down to the given power-of-two alignment.
            #[inline]
            pub const fn align_down(self, align: u64) -> $t {
                $t(self.0 & !(align - 1))
            }

            /// Offset within a region of the given power-of-two size.
            #[inline]
            pub const fn offset_in(self, align: u64) -> u64 {
                self.0 & (align - 1)
            }

            /// Whether the address is aligned to `align`.
            #[inline]
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }

            /// Adds a byte offset.
            #[inline]
            pub const fn add(self, off: u64) -> $t {
                $t(self.0 + off)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({:#x})", stringify!($t), self.0)
            }
        }
    };
}

addr_impl!(Gpa);
addr_impl!(Hpa);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        let a = Gpa(0x1234_5678);
        assert_eq!(a.align_down(PAGE_4K), Gpa(0x1234_5000));
        assert_eq!(a.offset_in(PAGE_4K), 0x678);
        assert!(!a.is_aligned(PAGE_4K));
        assert!(Gpa(0x4000_0000).is_aligned(PAGE_1G));
        assert_eq!(Hpa(0x1000).add(0x10), Hpa(0x1010));
    }

    #[test]
    fn page_size_constants() {
        assert_eq!(PAGE_4K, 4096);
        assert_eq!(PAGE_2M, 2 * 1024 * 1024);
        assert_eq!(PAGE_1G, 1024 * 1024 * 1024);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Gpa(0xff)), "Gpa(0xff)");
        assert_eq!(format!("{}", Hpa(0x10)), "Hpa(0x10)");
    }
}
