//! The user-space block cache + direct I/O baseline (Figure 1(b)).
//!
//! This is what RocksDB's recommended configuration does: O_DIRECT
//! `pread` with an application-level sharded LRU block cache. It avoids
//! kernel page-cache overheads but pays a software lookup on *every*
//! access — including hits — which is precisely the cost mmio eliminates
//! (the paper cites one-third to one-half of total CPU cycles going to
//! cache management in such designs).

use std::sync::Arc;

use aquila_sync::{DetMap, Mutex};

use aquila_devices::{StorageAccess, STORE_PAGE};
use aquila_sim::{race, CostCat, Cycles, SimCtx, SimMutex};

/// Cycles a shard lock is held per operation.
const SHARD_HOLD: Cycles = Cycles(200);

/// Cache key: (file id, page number).
type BlockKey = (u32, u64);

// Race-detector lock/variable names, instanced by shard index. Order
// (declared in [`UserCache::new`]): a shard's `map` may be held while
// taking its `lru`, never the other way round.
const L_MAP: &str = "ucache.map";
const L_LRU: &str = "ucache.lru";
const V_MAP: &str = "ucache.map.shard";
const V_LRU: &str = "ucache.lru.shard";

struct Shard {
    map: Mutex<DetMap<BlockKey, Box<[u8]>>>,
    lru: Mutex<Vec<BlockKey>>, // Approximate LRU: move-to-back vector.
    lock_model: SimMutex,
}

/// A sharded user-space LRU cache over 4 KiB blocks with direct I/O
/// misses.
pub struct UserCache {
    shards: Vec<Shard>,
    capacity_per_shard: usize,
    access: Arc<dyn StorageAccess>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl UserCache {
    /// Creates a cache of `capacity_blocks` 4 KiB blocks with `shards`
    /// shards over a direct-I/O access path.
    pub fn new(capacity_blocks: usize, shards: usize, access: Arc<dyn StorageAccess>) -> UserCache {
        let shards = shards.max(1);
        race::declare_order("ucache", &[L_MAP, L_LRU]);
        UserCache {
            shards: (0..shards)
                .map(|_| Shard {
                    map: Mutex::new(DetMap::new()),
                    lru: Mutex::new(Vec::new()),
                    lock_model: SimMutex::new(),
                })
                .collect(),
            capacity_per_shard: (capacity_blocks / shards).max(1),
            access,
            hits: Mutex::new(0),
            misses: Mutex::new(0),
        }
    }

    fn shard_of(&self, key: BlockKey) -> usize {
        let h = aquila_sim::rng::fnv1a_64(((key.0 as u64) << 40) ^ key.1);
        (h % self.shards.len() as u64) as usize
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }

    /// Cached block count.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.map.lock().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the 4 KiB block `(file, page)` (at device page
    /// `dev_page`) into `buf`, through the cache.
    ///
    /// Every call — hit or miss — pays the lookup cost; misses addi-
    /// tionally pay the direct-I/O `pread` and possibly an eviction.
    pub fn get(&self, ctx: &mut dyn SimCtx, key: BlockKey, dev_page: u64, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), STORE_PAGE);
        let lookup = ctx.cost().ucache_lookup;
        ctx.charge(CostCat::CacheMgmt, lookup);
        let si = self.shard_of(key);
        let shard = &self.shards[si];
        let r = shard.lock_model.acquire(ctx.now(), SHARD_HOLD);
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::CacheMgmt);

        race::acquire(ctx, (L_MAP, si as u64));
        let map = shard.map.lock();
        if let Some(block) = map.get(&key) {
            buf.copy_from_slice(block);
            race::read(ctx, (V_MAP, si as u64));
            race::acquire(ctx, (L_LRU, si as u64));
            let mut lru = shard.lru.lock();
            if let Some(pos) = lru.iter().position(|&k| k == key) {
                lru.remove(pos);
            }
            lru.push(key);
            drop(lru);
            race::write(ctx, (V_LRU, si as u64));
            race::release(ctx, (L_LRU, si as u64));
            drop(map);
            race::release(ctx, (L_MAP, si as u64));
            *self.hits.lock() += 1;
            return;
        }
        drop(map);
        race::read(ctx, (V_MAP, si as u64));
        race::release(ctx, (L_MAP, si as u64));
        *self.misses.lock() += 1;

        // Miss: direct-I/O pread (syscall + kernel path + device).
        self.access
            .read_pages(ctx, dev_page, buf)
            .expect("user-cache fill within device bounds");

        // Insert, evicting LRU if the shard is full (another lock round).
        let r = shard.lock_model.acquire(ctx.now(), SHARD_HOLD);
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::CacheMgmt);
        race::acquire(ctx, (L_MAP, si as u64));
        let mut map = shard.map.lock();
        race::acquire(ctx, (L_LRU, si as u64));
        let mut lru = shard.lru.lock();
        if map.len() >= self.capacity_per_shard {
            let evict = ctx.cost().ucache_evict;
            ctx.charge(CostCat::CacheMgmt, evict);
            if !lru.is_empty() {
                let victim = lru.remove(0);
                map.remove(&victim);
                ctx.counters().evictions += 1;
            }
        }
        map.insert(key, buf.to_vec().into_boxed_slice());
        lru.push(key);
        drop(lru);
        drop(map);
        race::write(ctx, (V_MAP, si as u64));
        race::write(ctx, (V_LRU, si as u64));
        race::release(ctx, (L_LRU, si as u64));
        race::release(ctx, (L_MAP, si as u64));
    }

    /// Writes a block through the cache (write-through with direct I/O,
    /// the mode RocksDB uses for SST creation).
    pub fn put_through(&self, ctx: &mut dyn SimCtx, key: BlockKey, dev_page: u64, buf: &[u8]) {
        debug_assert_eq!(buf.len(), STORE_PAGE);
        self.access
            .write_pages(ctx, dev_page, buf)
            .expect("user-cache write-through within device bounds");
        let si = self.shard_of(key);
        let shard = &self.shards[si];
        let r = shard.lock_model.acquire(ctx.now(), SHARD_HOLD);
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::CacheMgmt);
        race::acquire(ctx, (L_MAP, si as u64));
        let mut map = shard.map.lock();
        if map.contains_key(&key) {
            map.insert(key, buf.to_vec().into_boxed_slice());
        }
        drop(map);
        race::write(ctx, (V_MAP, si as u64));
        race::release(ctx, (L_MAP, si as u64));
    }

    /// Resets shard-lock timing models (between experiment phases).
    pub fn reset_timing(&self) {
        for s in &self.shards {
            s.lock_model.reset();
        }
    }

    /// Drops every cached block (e.g. after compaction invalidation).
    pub fn clear(&self) {
        for s in &self.shards {
            s.map.lock().clear();
            s.lru.lock().clear();
        }
    }
}

impl core::fmt::Debug for UserCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (h, m) = self.stats();
        write!(
            f,
            "UserCache {{ blocks: {}, hits: {h}, misses: {m} }}",
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_devices::{CallDomain, HostPmemAccess, PmemDevice};
    use aquila_sim::FreeCtx;

    fn cache(blocks: usize) -> (FreeCtx, UserCache, Arc<dyn StorageAccess>) {
        let ctx = FreeCtx::new(5);
        let dev = Arc::new(PmemDevice::dram_backed(1024));
        let access: Arc<dyn StorageAccess> = Arc::new(HostPmemAccess::new(dev, CallDomain::User));
        let uc = UserCache::new(blocks, 4, Arc::clone(&access));
        (ctx, uc, access)
    }

    #[test]
    fn miss_then_hit() {
        let (mut ctx, uc, access) = cache(16);
        let data = vec![0x42u8; STORE_PAGE];
        access.write_pages(&mut ctx, 7, &data).unwrap();
        let mut buf = vec![0u8; STORE_PAGE];
        uc.get(&mut ctx, (0, 7), 7, &mut buf);
        assert_eq!(buf, data);
        assert_eq!(uc.stats(), (0, 1));
        let syscalls_after_miss = ctx.stats.syscalls;
        uc.get(&mut ctx, (0, 7), 7, &mut buf);
        assert_eq!(uc.stats(), (1, 1));
        assert_eq!(
            ctx.stats.syscalls, syscalls_after_miss,
            "hits avoid syscalls"
        );
    }

    #[test]
    fn hits_still_cost_cycles() {
        // The paper's core claim: user-space cache hits are NOT free.
        let (mut ctx, uc, _) = cache(16);
        let mut buf = vec![0u8; STORE_PAGE];
        uc.get(&mut ctx, (0, 1), 1, &mut buf);
        let t0 = ctx.now();
        uc.get(&mut ctx, (0, 1), 1, &mut buf);
        let hit_cost = (ctx.now() - t0).get();
        assert!(hit_cost >= 450, "hit cost {hit_cost} must include lookup");
    }

    #[test]
    fn eviction_on_capacity() {
        let (mut ctx, uc, _) = cache(4); // 1 block per shard.
        let mut buf = vec![0u8; STORE_PAGE];
        for p in 0..16u64 {
            uc.get(&mut ctx, (0, p), p, &mut buf);
        }
        assert!(uc.len() <= 4);
        assert!(ctx.stats.evictions > 0);
    }

    #[test]
    fn put_through_updates_cached_copy() {
        let (mut ctx, uc, _) = cache(16);
        let mut buf = vec![0u8; STORE_PAGE];
        uc.get(&mut ctx, (0, 3), 3, &mut buf); // Cache the block.
        let newdata = vec![0x77u8; STORE_PAGE];
        uc.put_through(&mut ctx, (0, 3), 3, &newdata);
        uc.get(&mut ctx, (0, 3), 3, &mut buf);
        assert_eq!(buf, newdata);
    }

    #[test]
    fn clear_empties() {
        let (mut ctx, uc, _) = cache(16);
        let mut buf = vec![0u8; STORE_PAGE];
        uc.get(&mut ctx, (0, 1), 1, &mut buf);
        assert!(!uc.is_empty());
        uc.clear();
        assert!(uc.is_empty());
    }
}
