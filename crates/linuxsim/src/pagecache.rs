//! The Linux kernel page cache model: one radix tree, one lock.
//!
//! The paper's profiling (section 6.5) finds that "in Linux, a single lock
//! protects the radix tree of cached pages, and, as a result, is highly
//! contended"; marking a page dirty needs the *same* lock. This module
//! reproduces that structure: a functional index plus a [`SimMutex`]
//! reservation that models the tree lock's serialization, so Figure 10's
//! collapse emerges from the model rather than being hard-coded.

use aquila_sync::{DetMap, Mutex, RwLock};

use aquila_sim::{race, CostCat, Cycles, SimCtx, SimMutex};

/// A (file, page) key in the page cache.
pub type Key = (u32, u64);

/// Cycles the tree lock is held for a lookup/insert/delete.
pub const TREE_HOLD: Cycles = Cycles(350);

// Race-detector identities. The host-side `inner` mutex protects the
// whole index (tree/owner/dirty/lru/free move together); `tree_locks` is
// the registry of per-file virtual tree locks. Order declared in
// [`KernelPageCache::new`]; the registry lock is never held across
// `inner`.
const LOCK_TREE_LOCKS: race::LockKey = ("linux.pagecache.tree_locks", 0);
const LOCK_INNER: race::LockKey = ("linux.pagecache.inner", 0);
const VAR_TREE_LOCKS: race::VarKey = ("linux.pagecache.tree_locks.map", 0);
const VAR_INNER: race::VarKey = ("linux.pagecache.index", 0);

/// Exact LRU over frame ids (an intrusive doubly-linked list).
struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    /// Sentinel index = frames.len(): head.next is the LRU victim,
    /// head.prev the most recently used.
    sentinel: u32,
    linked: Vec<bool>,
}

impl LruList {
    fn new(frames: usize) -> LruList {
        let s = frames as u32;
        let mut l = LruList {
            prev: vec![0; frames + 1],
            next: vec![0; frames + 1],
            sentinel: s,
            linked: vec![false; frames],
        };
        l.prev[s as usize] = s;
        l.next[s as usize] = s;
        l
    }

    fn unlink(&mut self, f: u32) {
        if !self.linked[f as usize] {
            return;
        }
        let (p, n) = (self.prev[f as usize], self.next[f as usize]);
        self.next[p as usize] = n;
        self.prev[n as usize] = p;
        self.linked[f as usize] = false;
    }

    /// Moves `f` to the MRU position.
    fn touch(&mut self, f: u32) {
        self.unlink(f);
        let s = self.sentinel;
        let tail = self.prev[s as usize];
        self.next[tail as usize] = f;
        self.prev[f as usize] = tail;
        self.next[f as usize] = s;
        self.prev[s as usize] = f;
        self.linked[f as usize] = true;
    }

    /// Pops the LRU frame, if any.
    fn pop_lru(&mut self) -> Option<u32> {
        let s = self.sentinel;
        let head = self.next[s as usize];
        if head == s {
            return None;
        }
        self.unlink(head);
        Some(head)
    }
}

struct Inner {
    tree: DetMap<Key, u32>,
    owner: Vec<Option<Key>>,
    dirty: DetMap<Key, ()>,
    lru: LruList,
    free: Vec<u32>,
}

/// An evicted kernel-cache page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KVictim {
    /// The page that was evicted.
    pub key: Key,
    /// Its frame (data still present until reused).
    pub frame: u32,
    /// Whether it must be written back.
    pub dirty: bool,
}

/// The kernel page cache.
pub struct KernelPageCache {
    frames: Vec<RwLock<Box<[u8]>>>,
    inner: Mutex<Inner>,
    /// Per-file (per-inode address_space) tree locks. All threads reading
    /// one shared file contend on one of these — the Figure 10 shared-file
    /// collapse — while separate files use separate locks.
    tree_locks: Mutex<DetMap<u32, std::sync::Arc<SimMutex>>>,
    /// The LRU/zone lock taken by reclaim.
    lru_lock: SimMutex,
    contended: std::sync::atomic::AtomicU64,
}

impl KernelPageCache {
    /// Creates a cache of `frames` 4 KiB frames.
    pub fn new(frames: usize) -> KernelPageCache {
        race::declare_order(
            "linux.pagecache",
            &["linux.pagecache.tree_locks", "linux.pagecache.inner"],
        );
        KernelPageCache {
            frames: (0..frames)
                .map(|_| RwLock::new(vec![0u8; 4096].into_boxed_slice()))
                .collect(),
            inner: Mutex::new(Inner {
                tree: DetMap::new(),
                owner: vec![None; frames],
                dirty: DetMap::new(),
                lru: LruList::new(frames),
                free: (0..frames as u32).rev().collect(),
            }),
            tree_locks: Mutex::new(DetMap::new()),
            lru_lock: SimMutex::new(),
            contended: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Total frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Cached page count.
    pub fn resident(&self) -> usize {
        self.inner.lock().tree.len()
    }

    /// Dirty page count.
    pub fn dirty_count(&self) -> usize {
        self.inner.lock().dirty.len()
    }

    /// Contended tree-lock acquisitions across files (diagnostics).
    pub fn tree_lock_contended(&self) -> u64 {
        self.contended.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resets lock timing models (between experiment phases).
    pub fn reset_timing(&self) {
        for l in self.tree_locks.lock().values() {
            l.reset();
        }
        self.lru_lock.reset();
    }

    fn take_tree_lock(&self, ctx: &mut dyn SimCtx, file: u32, hold: Cycles) {
        race::acquire(ctx, LOCK_TREE_LOCKS);
        let lock = std::sync::Arc::clone(
            self.tree_locks
                .lock()
                .entry(file)
                .or_insert_with(|| std::sync::Arc::new(SimMutex::new())),
        );
        race::write(ctx, VAR_TREE_LOCKS);
        race::release(ctx, LOCK_TREE_LOCKS);
        let t_lock = ctx.now();
        // The tree lock is a *non-scalable* spinlock: every waiter spins
        // on the lock word, so each hand-off pays one cache-line transfer
        // per spinner (Boyd-Wickizer et al., "Non-scalable locks are
        // dangerous"). Model the effective hold as growing with the
        // queued backlog — this is what makes Linux's shared-file fault
        // throughput collapse, rather than merely plateau, as core
        // counts rise (the paper's Figures 6/10).
        let spinners = (lock.backlog(ctx.now()).get() / TREE_HOLD.get()).min(64);
        let hold = hold + Cycles(ctx.cost().lock_contended_extra.get() * spinners);
        let r = lock.acquire(ctx.now(), hold);
        if r.wait > Cycles::ZERO {
            self.contended
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            aquila_sim::metrics::add(ctx, "linux.tree_lock.contended", 1);
        }
        ctx.wait_until(r.start, CostCat::LockWait);
        if r.wait > Cycles::ZERO {
            aquila_sim::trace::span(ctx, "linux.tree_lock.wait", CostCat::LockWait, t_lock);
        }
        ctx.wait_until(r.end, CostCat::CacheMgmt);
    }

    /// Looks up a page under its file's tree lock, touching the LRU.
    pub fn lookup(&self, ctx: &mut dyn SimCtx, key: Key) -> Option<u32> {
        self.take_tree_lock(ctx, key.0, TREE_HOLD);
        race::acquire(ctx, LOCK_INNER);
        let mut inner = self.inner.lock();
        let frame = inner.tree.get(&key).copied();
        if let Some(f) = frame {
            inner.lru.touch(f);
        }
        drop(inner);
        race::write(ctx, VAR_INNER);
        race::release(ctx, LOCK_INNER);
        frame
    }

    /// Allocates a frame for `key`, evicting the LRU page when full.
    ///
    /// Returns `(frame, victim, was_present)`: when `was_present` the key
    /// was already cached (possibly dirty) and the caller must NOT
    /// overwrite the frame with device data.
    pub fn insert(&self, ctx: &mut dyn SimCtx, key: Key) -> (u32, Option<KVictim>, bool) {
        self.take_tree_lock(ctx, key.0, TREE_HOLD);
        race::acquire(ctx, LOCK_INNER);
        let mut inner = self.inner.lock();
        let result = if let Some(&f) = inner.tree.get(&key) {
            // Already cached (or raced with another fill).
            (f, None, true)
        } else {
            let (frame, victim) = match inner.free.pop() {
                Some(f) => (f, None),
                None => {
                    let f = inner
                        .lru
                        .pop_lru()
                        .expect("no free and no LRU: empty cache?");
                    let old = inner.owner[f as usize]
                        .take()
                        .expect("LRU frames have owners");
                    inner.tree.remove(&old);
                    let dirty = inner.dirty.remove(&old).is_some();
                    ctx.counters().evictions += 1;
                    (
                        f,
                        Some(KVictim {
                            key: old,
                            frame: f,
                            dirty,
                        }),
                    )
                }
            };
            inner.tree.insert(key, frame);
            inner.owner[frame as usize] = Some(key);
            inner.lru.touch(frame);
            (frame, victim, false)
        };
        drop(inner);
        race::write(ctx, VAR_INNER);
        race::release(ctx, LOCK_INNER);
        result
    }

    /// Marks a page dirty — under the same tree lock (the Linux
    /// behaviour the paper calls out).
    pub fn mark_dirty(&self, ctx: &mut dyn SimCtx, key: Key) {
        self.take_tree_lock(ctx, key.0, TREE_HOLD);
        race::acquire(ctx, LOCK_INNER);
        self.inner.lock().dirty.insert(key, ());
        race::write(ctx, VAR_INNER);
        race::release(ctx, LOCK_INNER);
    }

    /// Clears the dirty mark after writeback.
    pub fn clear_dirty(&self, ctx: &mut dyn SimCtx, key: Key) {
        self.take_tree_lock(ctx, key.0, TREE_HOLD);
        race::acquire(ctx, LOCK_INNER);
        self.inner.lock().dirty.remove(&key);
        race::write(ctx, VAR_INNER);
        race::release(ctx, LOCK_INNER);
    }

    /// Snapshot of the dirty pages of `file` within `[start, end)` page
    /// range, sorted by offset.
    pub fn dirty_range(
        &self,
        ctx: &mut dyn SimCtx,
        file: u32,
        start: u64,
        end: u64,
    ) -> Vec<(Key, u32)> {
        self.take_tree_lock(ctx, file, TREE_HOLD * 4);
        race::acquire(ctx, LOCK_INNER);
        let inner = self.inner.lock();
        let mut v: Vec<(Key, u32)> = inner
            .dirty
            .keys()
            .filter(|&&(f, p)| f == file && (start..end).contains(&p))
            .map(|&k| (k, inner.tree[&k]))
            .collect();
        drop(inner);
        race::read(ctx, VAR_INNER);
        race::release(ctx, LOCK_INNER);
        v.sort();
        v
    }

    /// Free frames remaining.
    pub fn free_count(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// Reclaims up to `n` LRU pages under the LRU/zone lock (kswapd-style
    /// batched reclaim). The caller unmaps the victims, performs one
    /// batched shootdown, and writes dirty ones back.
    pub fn reclaim(&self, ctx: &mut dyn SimCtx, n: usize) -> Vec<KVictim> {
        let r = self
            .lru_lock
            .acquire(ctx.now(), Cycles(150 * n.max(1) as u64));
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::Eviction);
        race::acquire(ctx, LOCK_INNER);
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        for _ in 0..n {
            let Some(f) = inner.lru.pop_lru() else { break };
            let old = inner.owner[f as usize]
                .take()
                .expect("LRU frames have owners");
            inner.tree.remove(&old);
            let dirty = inner.dirty.remove(&old).is_some();
            inner.free.push(f);
            ctx.counters().evictions += 1;
            out.push(KVictim {
                key: old,
                frame: f,
                dirty,
            });
        }
        drop(inner);
        race::write(ctx, VAR_INNER);
        race::release(ctx, LOCK_INNER);
        out
    }

    /// Reads bytes out of a frame.
    pub fn read_frame(&self, frame: u32, offset: usize, buf: &mut [u8]) {
        let data = self.frames[frame as usize].read();
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
    }

    /// Writes bytes into a frame.
    pub fn write_frame(&self, frame: u32, offset: usize, buf: &[u8]) {
        let mut data = self.frames[frame as usize].write();
        data[offset..offset + buf.len()].copy_from_slice(buf);
    }
}

impl core::fmt::Debug for KernelPageCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "KernelPageCache {{ resident: {}/{}, dirty: {} }}",
            self.resident(),
            self.capacity(),
            self.dirty_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn insert_lookup_roundtrip() {
        let c = KernelPageCache::new(4);
        let mut ctx = FreeCtx::new(1);
        let (f, v, present) = c.insert(&mut ctx, (0, 7));
        assert!(v.is_none());
        assert!(!present);
        c.write_frame(f, 0, b"kernel");
        let got = c.lookup(&mut ctx, (0, 7)).unwrap();
        assert_eq!(got, f);
        let mut buf = [0u8; 6];
        c.read_frame(got, 0, &mut buf);
        assert_eq!(&buf, b"kernel");
    }

    #[test]
    fn lru_eviction_order() {
        let c = KernelPageCache::new(2);
        let mut ctx = FreeCtx::new(1);
        c.insert(&mut ctx, (0, 1));
        c.insert(&mut ctx, (0, 2));
        // Touch page 1 so page 2 becomes LRU.
        c.lookup(&mut ctx, (0, 1));
        let (_, victim, _) = c.insert(&mut ctx, (0, 3));
        assert_eq!(victim.unwrap().key, (0, 2));
        assert!(c.lookup(&mut ctx, (0, 1)).is_some());
        assert!(c.lookup(&mut ctx, (0, 2)).is_none());
    }

    #[test]
    fn dirty_tracking_and_victims() {
        let c = KernelPageCache::new(1);
        let mut ctx = FreeCtx::new(1);
        c.insert(&mut ctx, (0, 1));
        c.mark_dirty(&mut ctx, (0, 1));
        assert_eq!(c.dirty_count(), 1);
        let (_, victim, _) = c.insert(&mut ctx, (0, 2));
        let v = victim.unwrap();
        assert!(v.dirty, "dirty victim flagged for writeback");
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn dirty_range_sorted_and_scoped() {
        let c = KernelPageCache::new(8);
        let mut ctx = FreeCtx::new(1);
        for p in [5u64, 1, 3] {
            c.insert(&mut ctx, (1, p));
            c.mark_dirty(&mut ctx, (1, p));
        }
        c.insert(&mut ctx, (2, 9));
        c.mark_dirty(&mut ctx, (2, 9));
        let d = c.dirty_range(&mut ctx, 1, 0, 4);
        let pages: Vec<u64> = d.iter().map(|&((_, p), _)| p).collect();
        assert_eq!(pages, vec![1, 3]);
        c.clear_dirty(&mut ctx, (1, 1));
        assert_eq!(c.dirty_count(), 3);
    }

    #[test]
    fn tree_lock_serializes_in_virtual_time() {
        let c = KernelPageCache::new(64);
        // Two contexts at the same virtual time: the second waits.
        let mut a = FreeCtx::new(1);
        let mut b = FreeCtx::new(2);
        c.lookup(&mut a, (0, 1));
        c.lookup(&mut b, (0, 1));
        assert_eq!(a.breakdown.get(CostCat::LockWait), Cycles::ZERO);
        assert_eq!(b.breakdown.get(CostCat::LockWait), TREE_HOLD);
        assert_eq!(c.tree_lock_contended(), 1);
    }

    #[test]
    fn insert_race_returns_existing() {
        let c = KernelPageCache::new(4);
        let mut ctx = FreeCtx::new(1);
        let (f1, _, p1) = c.insert(&mut ctx, (0, 1));
        let (f2, v, p2) = c.insert(&mut ctx, (0, 1));
        assert_eq!(f1, f2);
        assert!(v.is_none());
        assert!(!p1);
        assert!(p2, "second insert sees the cached page");
        assert_eq!(c.resident(), 1);
    }
}
