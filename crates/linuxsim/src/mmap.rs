//! The Linux `mmap` baseline (and Kreon's `kmmap` variant).
//!
//! Reproduces the documented behaviours the paper measures against:
//!
//! - page faults trap from ring 3 to ring 0 (1287 cycles);
//! - `mmap_sem` is taken for reading on every fault;
//! - the page-cache radix tree has a single lock, also needed to mark
//!   pages dirty (see [`crate::pagecache`]);
//! - file faults read ahead 128 KiB (32 pages) even for 1 KiB requests —
//!   the pathology behind Figure 5(b);
//! - shared file mappings track dirtying via write-protect faults
//!   (`page_mkwrite`);
//! - eviction is page-at-a-time with a per-page TLB shootdown that waits
//!   for acknowledgements.
//!
//! With [`LinuxConfig::kmmap`] the engine becomes Kreon's custom kernel
//! path: no forced readahead, lazy coalesced writeback, and a batched
//! custom `msync` — but still kernel traps and the shared cache locks
//! (kmmap "does not address scalability issues with the number of user
//! threads", section 7.2).

use std::sync::Arc;

use aquila_sync::{DetMap, Mutex};

use aquila_sim::{race, CoreDebts, CostCat, Cycles, SimCtx, SimRwLock};

use crate::device::KernelDevice;
use crate::pagecache::{KVictim, KernelPageCache, Key};

/// Native TLB shootdown: IPI broadcast plus waiting for acknowledgements.
const SHOOTDOWN_BASE: Cycles = Cycles(2000);
/// Additional sender-side wait per remote core.
const SHOOTDOWN_PER_CORE: Cycles = Cycles(300);
/// Remote handler work deposited per shootdown.
const SHOOTDOWN_REMOTE: Cycles = Cycles(600);
/// `mmap_sem` read-side hold time on the fault path.
const RWSEM_HOLD: Cycles = Cycles(80);

// Race-detector identities (`aquila_sim::race`). Canonical acquisition
// order within the engine: files -> vmas -> pt -> rmap (declared in
// [`LinuxMmap::new`], checked statically by AQ004 and dynamically by the
// detector's rank table). `next_vpn`/`next_dev_page` are leaf counters
// never held across another lock, so they carry no rank. Setup-phase
// mutations without a `SimCtx` (`open_file`) are outside the detector's
// view.
const LOCK_FILES: race::LockKey = ("linuxsim.files", 0);
const LOCK_VMAS: race::LockKey = ("linuxsim.vmas", 0);
const LOCK_PT: race::LockKey = ("linuxsim.pt", 0);
const LOCK_RMAP: race::LockKey = ("linuxsim.rmap", 0);
const VAR_FILES: race::VarKey = ("linuxsim.files.table", 0);
const VAR_VMAS: race::VarKey = ("linuxsim.vmas.list", 0);
const VAR_PT: race::VarKey = ("linuxsim.pt.map", 0);
const VAR_RMAP: race::VarKey = ("linuxsim.rmap.map", 0);

/// Errors from the Linux baseline engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinuxError {
    /// Access to an unmapped address.
    Segfault(u64),
    /// Write to a read-only mapping.
    Protection(u64),
    /// Unknown file.
    BadFile,
    /// Device exhausted.
    NoSpace,
}

/// A file on the simulated device (linear allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinuxFileId(pub u32);

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct LinuxConfig {
    /// Simulated cores.
    pub cores: usize,
    /// Kernel page-cache frames.
    pub cache_frames: usize,
    /// Fault readahead window in pages (Linux default: 32 = 128 KiB).
    pub readahead_pages: usize,
    /// Kreon `kmmap` mode: no forced readahead, lazy coalesced writeback,
    /// custom batched `msync`.
    pub kmmap: bool,
    /// kmmap: dirty fraction that triggers a synchronous lazy-writeback
    /// flush on the faulting thread.
    pub kmmap_flush_ratio: f64,
}

impl LinuxConfig {
    /// Vanilla Linux mmap.
    pub fn linux(cores: usize, cache_frames: usize) -> LinuxConfig {
        LinuxConfig {
            cores,
            cache_frames,
            readahead_pages: 32,
            kmmap: false,
            kmmap_flush_ratio: 0.5,
        }
    }

    /// Kreon's kmmap. The flush ratio follows the kernel's dirty
    /// thresholds (10-20% of memory): when that much of the cache is
    /// dirty, a synchronous flush lands on the faulting thread — the
    /// writeback burstiness the paper measures as kmmap's tail latency.
    pub fn kmmap(cores: usize, cache_frames: usize) -> LinuxConfig {
        LinuxConfig {
            cores,
            cache_frames,
            readahead_pages: 0,
            kmmap: true,
            kmmap_flush_ratio: 0.10,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pte {
    frame: u32,
    writable: bool,
}

#[derive(Debug, Clone, Copy)]
struct Vma {
    start: u64,
    pages: u64,
    file: u32,
    file_page: u64,
    writable: bool,
}

#[derive(Debug, Clone, Copy)]
struct FileDesc {
    base_page: u64,
    pages: u64,
}

/// The Linux mmio baseline engine.
pub struct LinuxMmap {
    cfg: LinuxConfig,
    cache: KernelPageCache,
    dev: KernelDevice,
    mmap_sem: SimRwLock,
    vmas: Mutex<Vec<Vma>>,
    pt: Mutex<DetMap<u64, Pte>>,
    /// Reverse map: cached page -> virtual pages mapping it.
    rmap: Mutex<DetMap<Key, Vec<u64>>>,
    files: Mutex<Vec<FileDesc>>,
    next_vpn: Mutex<u64>,
    next_dev_page: Mutex<u64>,
    debts: Arc<CoreDebts>,
}

impl LinuxMmap {
    /// Creates the baseline over a kernel device.
    pub fn new(cfg: LinuxConfig, dev: KernelDevice, debts: Arc<CoreDebts>) -> LinuxMmap {
        race::declare_order(
            "linuxsim",
            &[
                "linuxsim.files",
                "linuxsim.vmas",
                "linuxsim.pt",
                "linuxsim.rmap",
            ],
        );
        LinuxMmap {
            cache: KernelPageCache::new(cfg.cache_frames),
            mmap_sem: SimRwLock::new(),
            vmas: Mutex::new(Vec::new()),
            pt: Mutex::new(DetMap::new()),
            rmap: Mutex::new(DetMap::new()),
            files: Mutex::new(Vec::new()),
            next_vpn: Mutex::new(0x10_0000),
            next_dev_page: Mutex::new(0),
            cfg,
            dev,
            debts,
        }
    }

    /// The kernel page cache (diagnostics).
    pub fn cache(&self) -> &KernelPageCache {
        &self.cache
    }

    /// Resets lock timing models (between experiment phases).
    pub fn reset_timing(&self) {
        self.mmap_sem.reset();
        self.cache.reset_timing();
    }

    /// Allocates a file of `pages` pages on the device.
    pub fn open_file(&self, pages: u64) -> Result<LinuxFileId, LinuxError> {
        let mut next = self.next_dev_page.lock();
        if *next + pages > self.dev.capacity_pages() {
            return Err(LinuxError::NoSpace);
        }
        let mut files = self.files.lock();
        let id = LinuxFileId(files.len() as u32);
        files.push(FileDesc {
            base_page: *next,
            pages,
        });
        *next += pages;
        Ok(id)
    }

    /// Maps `pages` pages of `file` starting at `offset_page`; returns the
    /// base virtual page number. Takes `mmap_sem` for writing.
    pub fn mmap(
        &self,
        ctx: &mut dyn SimCtx,
        file: LinuxFileId,
        offset_page: u64,
        pages: u64,
        writable: bool,
    ) -> Result<u64, LinuxError> {
        race::acquire(ctx, LOCK_FILES);
        let flen = self.files.lock().get(file.0 as usize).map(|f| f.pages);
        race::read(ctx, VAR_FILES);
        race::release(ctx, LOCK_FILES);
        let flen = flen.ok_or(LinuxError::BadFile)?;
        if offset_page + pages > flen {
            return Err(LinuxError::BadFile);
        }
        let c = ctx.cost().syscall_entry_exit;
        ctx.charge(CostCat::Syscall, c);
        ctx.counters().syscalls += 1;
        let r = self.mmap_sem.acquire_write(ctx.now(), Cycles(1200));
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::Syscall);
        let start = {
            let mut nv = self.next_vpn.lock();
            let s = *nv;
            *nv += pages + 16;
            s
        };
        race::acquire(ctx, LOCK_VMAS);
        self.vmas.lock().push(Vma {
            start,
            pages,
            file: file.0,
            file_page: offset_page,
            writable,
        });
        race::write(ctx, VAR_VMAS);
        race::release(ctx, LOCK_VMAS);
        Ok(start)
    }

    /// Unmaps a range, writing nothing back (cached pages persist).
    pub fn munmap(&self, ctx: &mut dyn SimCtx, start_vpn: u64, pages: u64) {
        let c = ctx.cost().syscall_entry_exit;
        ctx.charge(CostCat::Syscall, c);
        ctx.counters().syscalls += 1;
        let r = self.mmap_sem.acquire_write(ctx.now(), Cycles(1500));
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::Syscall);
        race::acquire(ctx, LOCK_VMAS);
        self.vmas
            .lock()
            .retain(|v| !(v.start == start_vpn && v.pages == pages));
        race::write(ctx, VAR_VMAS);
        race::release(ctx, LOCK_VMAS);
        let mut flushed = 0;
        {
            race::acquire(ctx, LOCK_PT);
            race::acquire(ctx, LOCK_RMAP);
            let mut pt = self.pt.lock();
            let mut rmap = self.rmap.lock();
            for i in 0..pages {
                let vpn = start_vpn + i;
                if pt.remove(&vpn).is_some() {
                    for list in rmap.values_mut() {
                        list.retain(|&p| p != vpn);
                    }
                    flushed += 1;
                }
            }
            race::write(ctx, VAR_PT);
            race::write(ctx, VAR_RMAP);
            drop(rmap);
            drop(pt);
            race::release(ctx, LOCK_RMAP);
            race::release(ctx, LOCK_PT);
        }
        if flushed > 0 {
            // One flush for the whole unmap (Linux batches range unmaps).
            self.shootdown(ctx, 1);
        }
    }

    fn shootdown(&self, ctx: &mut dyn SimCtx, rounds: u64) {
        let others = self.cfg.cores.saturating_sub(1) as u64;
        let c = (SHOOTDOWN_BASE + SHOOTDOWN_PER_CORE * others) * rounds;
        ctx.charge(CostCat::Tlb, c);
        ctx.counters().tlb_shootdowns += rounds;
        self.debts
            .broadcast_except(ctx.core(), SHOOTDOWN_REMOTE * rounds);
    }

    /// Reads through the mapping, faulting as needed.
    pub fn read(&self, ctx: &mut dyn SimCtx, addr: u64, buf: &mut [u8]) -> Result<(), LinuxError> {
        self.access(
            ctx,
            addr,
            buf.len(),
            false,
            |cache, frame, off, chunk, done, b: &mut [u8]| {
                cache.read_frame(frame, off, &mut b[done..done + chunk]);
            },
            buf,
        )
    }

    /// Writes through the mapping, faulting (and dirty-tracking) as
    /// needed.
    pub fn write(&self, ctx: &mut dyn SimCtx, addr: u64, buf: &[u8]) -> Result<(), LinuxError> {
        let mut scratch = buf.to_vec();
        self.access(
            ctx,
            addr,
            buf.len(),
            true,
            |cache, frame, off, chunk, done, b: &mut [u8]| {
                cache.write_frame(frame, off, &b[done..done + chunk]);
            },
            &mut scratch,
        )
    }

    fn access<F>(
        &self,
        ctx: &mut dyn SimCtx,
        addr: u64,
        len: usize,
        write: bool,
        mut op: F,
        buf: &mut [u8],
    ) -> Result<(), LinuxError>
    where
        F: FnMut(&KernelPageCache, u32, usize, usize, usize, &mut [u8]),
    {
        let mut done = 0usize;
        while done < len {
            let a = addr + done as u64;
            let vpn = a >> 12;
            let off = (a & 0xFFF) as usize;
            let chunk = (4096 - off).min(len - done);
            let frame = self.translate(ctx, vpn, write)?;
            op(&self.cache, frame, off, chunk, done, buf);
            done += chunk;
        }
        Ok(())
    }

    fn translate(&self, ctx: &mut dyn SimCtx, vpn: u64, write: bool) -> Result<u32, LinuxError> {
        for _ in 0..4 {
            race::acquire(ctx, LOCK_PT);
            let hit = self.pt.lock().get(&vpn).copied();
            race::read(ctx, VAR_PT);
            race::release(ctx, LOCK_PT);
            if let Some(pte) = hit {
                if !write || pte.writable {
                    return Ok(pte.frame);
                }
            }
            self.fault(ctx, vpn, write)?;
        }
        Err(LinuxError::Segfault(vpn << 12))
    }

    fn fault(&self, ctx: &mut dyn SimCtx, vpn: u64, write: bool) -> Result<(), LinuxError> {
        ctx.counters().page_faults += 1;
        let t_fault = ctx.now();
        let sp = aquila_sim::span::begin(ctx, "linux.fault", CostCat::FaultHandler);
        let res = self.fault_service(ctx, vpn, write);
        // Span and histogram cover the identical [t_fault, now] window so
        // folded span totals cross-check against the histogram sum exactly.
        aquila_sim::metrics::record_latency(ctx, "linux.fault.cycles", ctx.now() - t_fault);
        aquila_sim::span::end(ctx, sp);
        res
    }

    fn fault_service(&self, ctx: &mut dyn SimCtx, vpn: u64, write: bool) -> Result<(), LinuxError> {
        // Ring-3 -> ring-0 protection domain switch.
        let trap = ctx.cost().trap_ring3;
        ctx.charge(CostCat::Trap, trap);
        // mmap_sem read side.
        let r = self.mmap_sem.acquire_read(ctx.now(), RWSEM_HOLD);
        ctx.wait_until(r.start, CostCat::LockWait);
        ctx.wait_until(r.end, CostCat::FaultHandler);
        // VMA lookup on the rb-tree.
        ctx.charge(CostCat::FaultHandler, Cycles(150));
        race::acquire(ctx, LOCK_VMAS);
        let vma = {
            let vmas = self.vmas.lock();
            vmas.iter()
                .find(|v| (v.start..v.start + v.pages).contains(&vpn))
                .copied()
        };
        race::read(ctx, VAR_VMAS);
        race::release(ctx, LOCK_VMAS);
        let vma = vma.ok_or(LinuxError::Segfault(vpn << 12))?;
        if write && !vma.writable {
            return Err(LinuxError::Protection(vpn << 12));
        }
        let body = ctx.cost().linux_fault_body;
        ctx.charge(CostCat::FaultHandler, body);

        let file_page = vma.file_page + (vpn - vma.start);
        let key: Key = (vma.file, file_page);

        // Write-protect fault on an already-present page: `page_mkwrite`.
        let mkwrite = {
            race::acquire(ctx, LOCK_PT);
            let mut pt = self.pt.lock();
            let state = pt.get_mut(&vpn).map(|pte| {
                let upgrade = write && !pte.writable;
                if upgrade {
                    pte.writable = true;
                }
                upgrade
            });
            race::write(ctx, VAR_PT);
            drop(pt);
            race::release(ctx, LOCK_PT);
            state
        };
        if let Some(upgraded) = mkwrite {
            if upgraded {
                self.cache.mark_dirty(ctx, key);
            }
            ctx.counters().minor_faults += 1;
            return Ok(());
        }

        // Page-cache lookup (tree lock).
        if let Some(frame) = self.cache.lookup(ctx, key) {
            ctx.counters().minor_faults += 1;
            self.install(ctx, vpn, key, frame, write);
            return Ok(());
        }

        ctx.counters().major_faults += 1;
        // Fault fill with Linux's forced readahead window.
        let ra = self.cfg.readahead_pages.max(1) as u64;
        let end = (vma.file_page + vma.pages).min(file_page + ra);
        let count = (end - file_page).max(1) as usize;
        // Memory pressure: batched kswapd-style reclaim (32 pages, one
        // shootdown round) before filling.
        if self.cache.free_count() < count {
            let victims = self.cache.reclaim(ctx, count.max(32));
            self.finish_victims(ctx, &victims)?;
        }
        let base_dev = self.file_dev_page(vma.file, file_page)?;
        let mut data = vec![0u8; count * 4096];
        self.dev.read_pages(ctx, base_dev, &mut data);
        if count > 1 {
            ctx.counters().readahead_pages += (count - 1) as u64;
        }
        let mut my_frame = None;
        for (i, chunk) in data.chunks(4096).enumerate() {
            let k: Key = (vma.file, file_page + i as u64);
            let (frame, victim, was_present) = self.cache.insert(ctx, k);
            if let Some(v) = victim {
                self.evict_victim(ctx, v)?;
            }
            // Never clobber an already-cached page: it may hold dirty data
            // newer than the device copy.
            if !was_present {
                self.cache.write_frame(frame, 0, chunk);
            }
            if i == 0 {
                my_frame = Some(frame);
            }
        }
        let frame = my_frame.expect("count >= 1");
        self.install(ctx, vpn, key, frame, write);
        // kmmap's lazy writeback: flush a chunk when dirty pages pile up.
        if self.cfg.kmmap {
            self.kmmap_lazy_flush(ctx)?;
        }
        Ok(())
    }

    fn install(&self, ctx: &mut dyn SimCtx, vpn: u64, key: Key, frame: u32, write: bool) {
        race::acquire(ctx, LOCK_PT);
        self.pt.lock().insert(
            vpn,
            Pte {
                frame,
                writable: write,
            },
        );
        race::write(ctx, VAR_PT);
        race::release(ctx, LOCK_PT);
        race::acquire(ctx, LOCK_RMAP);
        self.rmap.lock().entry(key).or_default().push(vpn);
        race::write(ctx, VAR_RMAP);
        race::release(ctx, LOCK_RMAP);
        if write {
            self.cache.mark_dirty(ctx, key);
        }
    }

    fn evict_victim(&self, ctx: &mut dyn SimCtx, v: KVictim) -> Result<(), LinuxError> {
        self.finish_victims(ctx, std::slice::from_ref(&v))
    }

    /// Unmaps reclaimed pages (one shootdown round per batch, as the
    /// kernel's TLB-flush batching does) and writes dirty ones back
    /// page-at-a-time.
    fn finish_victims(&self, ctx: &mut dyn SimCtx, victims: &[KVictim]) -> Result<(), LinuxError> {
        let mut any_unmapped = false;
        {
            race::acquire(ctx, LOCK_PT);
            race::acquire(ctx, LOCK_RMAP);
            let mut pt = self.pt.lock();
            let mut rmap = self.rmap.lock();
            for v in victims {
                for vpn in rmap.remove(&v.key).unwrap_or_default() {
                    pt.remove(&vpn);
                    any_unmapped = true;
                }
            }
            race::write(ctx, VAR_PT);
            race::write(ctx, VAR_RMAP);
            drop(rmap);
            drop(pt);
            race::release(ctx, LOCK_RMAP);
            race::release(ctx, LOCK_PT);
        }
        if any_unmapped {
            self.shootdown(ctx, 1);
        }
        for v in victims {
            if v.dirty {
                let mut data = vec![0u8; 4096];
                self.cache.read_frame(v.frame, 0, &mut data);
                let dev_page = self.file_dev_page(v.key.0, v.key.1)?;
                self.dev.write_pages(ctx, dev_page, &data);
                ctx.counters().writebacks += 1;
            }
        }
        Ok(())
    }

    fn kmmap_lazy_flush(&self, ctx: &mut dyn SimCtx) -> Result<(), LinuxError> {
        let threshold = (self.cfg.cache_frames as f64 * self.cfg.kmmap_flush_ratio) as usize;
        if self.cache.dirty_count() <= threshold {
            return Ok(());
        }
        // Flush all dirty pages; this lands on the unlucky faulting
        // thread (the writeback burstiness the paper reports). Scattered
        // dirty pages coalesce poorly, so runs are whatever the dirty set
        // offers.
        race::acquire(ctx, LOCK_FILES);
        let files: usize = self.files.lock().len();
        race::read(ctx, VAR_FILES);
        race::release(ctx, LOCK_FILES);
        for f in 0..files as u32 {
            self.msync_file(ctx, f, 0, u64::MAX, true)?;
        }
        Ok(())
    }

    /// `msync` over a virtual range.
    pub fn msync(
        &self,
        ctx: &mut dyn SimCtx,
        start_vpn: u64,
        pages: u64,
    ) -> Result<(), LinuxError> {
        let c = ctx.cost().syscall_entry_exit;
        ctx.charge(CostCat::Syscall, c);
        ctx.counters().syscalls += 1;
        race::acquire(ctx, LOCK_VMAS);
        let vma = {
            let vmas = self.vmas.lock();
            vmas.iter()
                .find(|v| (v.start..v.start + v.pages).contains(&start_vpn))
                .copied()
        };
        race::read(ctx, VAR_VMAS);
        race::release(ctx, LOCK_VMAS);
        let vma = vma.ok_or(LinuxError::Segfault(start_vpn << 12))?;
        let fp0 = vma.file_page + (start_vpn - vma.start);
        self.msync_file(ctx, vma.file, fp0, fp0 + pages, self.cfg.kmmap)?;
        // Downgrade written-back mappings so future writes re-fault.
        race::acquire(ctx, LOCK_PT);
        let mut pt = self.pt.lock();
        for i in 0..pages {
            if let Some(pte) = pt.get_mut(&(start_vpn + i)) {
                pte.writable = false;
            }
        }
        drop(pt);
        race::write(ctx, VAR_PT);
        race::release(ctx, LOCK_PT);
        self.shootdown(ctx, 1);
        Ok(())
    }

    fn msync_file(
        &self,
        ctx: &mut dyn SimCtx,
        file: u32,
        start: u64,
        end: u64,
        coalesce: bool,
    ) -> Result<(), LinuxError> {
        let dirty = self.cache.dirty_range(ctx, file, start, end);
        if coalesce {
            // kmmap: merge contiguous pages into large I/Os.
            let mut i = 0usize;
            while i < dirty.len() {
                let mut run = 1usize;
                while i + run < dirty.len() && dirty[i + run].0 .1 == dirty[i].0 .1 + run as u64 {
                    run += 1;
                }
                let mut data = vec![0u8; run * 4096];
                for (j, &(_, frame)) in dirty[i..i + run].iter().enumerate() {
                    self.cache
                        .read_frame(frame, 0, &mut data[j * 4096..(j + 1) * 4096]);
                }
                let dev_page = self.file_dev_page(file, dirty[i].0 .1)?;
                self.dev.write_pages(ctx, dev_page, &data);
                for &(k, _) in &dirty[i..i + run] {
                    self.cache.clear_dirty(ctx, k);
                    ctx.counters().writebacks += 1;
                }
                i += run;
            }
        } else {
            // Vanilla: page-at-a-time writeback.
            for &(k, frame) in &dirty {
                let mut data = vec![0u8; 4096];
                self.cache.read_frame(frame, 0, &mut data);
                let dev_page = self.file_dev_page(file, k.1)?;
                self.dev.write_pages(ctx, dev_page, &data);
                self.cache.clear_dirty(ctx, k);
                ctx.counters().writebacks += 1;
            }
        }
        Ok(())
    }

    /// Direct-I/O positional write (`pwrite` with O_DIRECT): one syscall
    /// for the whole buffer, bypassing the page cache. Used by LSM stores
    /// for SST creation.
    pub fn pwrite_direct(
        &self,
        ctx: &mut dyn SimCtx,
        file: LinuxFileId,
        page: u64,
        buf: &[u8],
    ) -> Result<(), LinuxError> {
        let c = ctx.cost().syscall_entry_exit + ctx.cost().host_directio_sw;
        ctx.charge(CostCat::Syscall, c);
        ctx.counters().syscalls += 1;
        let dev_page = self.file_dev_page(file.0, page)?;
        self.dev.write_pages(ctx, dev_page, buf);
        Ok(())
    }

    /// Direct-I/O positional read (`pread` with O_DIRECT).
    pub fn pread_direct(
        &self,
        ctx: &mut dyn SimCtx,
        file: LinuxFileId,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), LinuxError> {
        let c = ctx.cost().syscall_entry_exit + ctx.cost().host_directio_sw;
        ctx.charge(CostCat::Syscall, c);
        ctx.counters().syscalls += 1;
        let dev_page = self.file_dev_page(file.0, page)?;
        self.dev.read_pages(ctx, dev_page, buf);
        Ok(())
    }

    fn file_dev_page(&self, file: u32, page: u64) -> Result<u64, LinuxError> {
        let files = self.files.lock();
        let fd = files.get(file as usize).ok_or(LinuxError::BadFile)?;
        if page >= fd.pages {
            return Err(LinuxError::BadFile);
        }
        Ok(fd.base_page + page)
    }
}

impl core::fmt::Debug for LinuxMmap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "LinuxMmap {{ kmmap: {}, cache: {:?} }}",
            self.cfg.kmmap, self.cache
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_devices::PmemDevice;
    use aquila_sim::FreeCtx;

    fn engine(frames: usize) -> (FreeCtx, LinuxMmap) {
        let ctx = FreeCtx::new(3);
        let dev = KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(4096)));
        let debts = Arc::new(CoreDebts::new(2));
        let lm = LinuxMmap::new(LinuxConfig::linux(2, frames), dev, debts);
        (ctx, lm)
    }

    #[test]
    fn mmap_read_write_roundtrip() {
        let (mut ctx, lm) = engine(256);
        let f = lm.open_file(128).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 128, true).unwrap();
        lm.write(&mut ctx, vpn << 12, b"linux data").unwrap();
        let mut back = [0u8; 10];
        lm.read(&mut ctx, vpn << 12, &mut back).unwrap();
        assert_eq!(&back, b"linux data");
    }

    #[test]
    fn fault_pays_ring3_trap() {
        let (mut ctx, lm) = engine(64);
        let f = lm.open_file(64).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 64, true).unwrap();
        let mut b = [0u8; 1];
        lm.read(&mut ctx, vpn << 12, &mut b).unwrap();
        assert_eq!(
            ctx.breakdown.get(CostCat::Trap),
            Cycles(1287 * ctx.stats.page_faults)
        );
    }

    #[test]
    fn forced_readahead_fetches_32_pages() {
        let (mut ctx, lm) = engine(256);
        let f = lm.open_file(128).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 128, false).unwrap();
        let mut b = [0u8; 1];
        lm.read(&mut ctx, vpn << 12, &mut b).unwrap();
        assert_eq!(ctx.stats.readahead_pages, 31, "128 KiB window");
        assert!(ctx.stats.bytes_read >= 32 * 4096);
        // The next 31 pages fault minor (already cached).
        let major = ctx.stats.major_faults;
        lm.read(&mut ctx, (vpn + 5) << 12, &mut b).unwrap();
        assert_eq!(ctx.stats.major_faults, major);
    }

    #[test]
    fn kmmap_disables_readahead() {
        let mut ctx = FreeCtx::new(3);
        let dev = KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(4096)));
        let debts = Arc::new(CoreDebts::new(2));
        let lm = LinuxMmap::new(LinuxConfig::kmmap(2, 64), dev, debts);
        let f = lm.open_file(64).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 64, false).unwrap();
        let mut b = [0u8; 1];
        lm.read(&mut ctx, vpn << 12, &mut b).unwrap();
        assert_eq!(ctx.stats.readahead_pages, 0);
    }

    #[test]
    fn write_tracking_via_page_mkwrite() {
        let (mut ctx, lm) = engine(64);
        let f = lm.open_file(8).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 8, true).unwrap();
        let mut b = [0u8; 1];
        lm.read(&mut ctx, vpn << 12, &mut b).unwrap();
        assert_eq!(lm.cache().dirty_count(), 0);
        let faults = ctx.stats.page_faults;
        lm.write(&mut ctx, vpn << 12, &[9]).unwrap();
        assert!(ctx.stats.page_faults > faults, "page_mkwrite fault");
        assert_eq!(lm.cache().dirty_count(), 1);
    }

    #[test]
    fn eviction_writes_back_and_preserves_data() {
        let (mut ctx, lm) = engine(40); // Smaller than the working set.
        let f = lm.open_file(128).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 128, true).unwrap();
        for p in 0..128u64 {
            lm.write(&mut ctx, (vpn + p) << 12, &[p as u8]).unwrap();
        }
        assert!(ctx.stats.evictions > 0);
        for p in 0..128u64 {
            let mut b = [0u8; 1];
            lm.read(&mut ctx, (vpn + p) << 12, &mut b).unwrap();
            assert_eq!(b[0], p as u8, "page {p}");
        }
    }

    #[test]
    fn msync_flushes_and_retracks() {
        let (mut ctx, lm) = engine(64);
        let f = lm.open_file(16).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 16, true).unwrap();
        lm.write(&mut ctx, vpn << 12, &[1]).unwrap();
        assert!(lm.cache().dirty_count() >= 1);
        lm.msync(&mut ctx, vpn, 16).unwrap();
        assert_eq!(lm.cache().dirty_count(), 0);
        assert!(ctx.stats.writebacks >= 1);
        // Next write re-faults.
        let faults = ctx.stats.page_faults;
        lm.write(&mut ctx, vpn << 12, &[2]).unwrap();
        assert!(ctx.stats.page_faults > faults);
    }

    #[test]
    fn segfault_and_protection_errors() {
        let (mut ctx, lm) = engine(64);
        let mut b = [0u8; 1];
        assert!(matches!(
            lm.read(&mut ctx, 0xdead000, &mut b),
            Err(LinuxError::Segfault(_))
        ));
        let f = lm.open_file(8).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 8, false).unwrap();
        assert!(matches!(
            lm.write(&mut ctx, vpn << 12, &[1]),
            Err(LinuxError::Protection(_))
        ));
    }

    #[test]
    fn munmap_keeps_cache_hot() {
        let (mut ctx, lm) = engine(64);
        let f = lm.open_file(8).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 8, false).unwrap();
        let mut b = [0u8; 1];
        lm.read(&mut ctx, vpn << 12, &mut b).unwrap();
        let major = ctx.stats.major_faults;
        lm.munmap(&mut ctx, vpn, 8);
        let vpn2 = lm.mmap(&mut ctx, f, 0, 8, false).unwrap();
        lm.read(&mut ctx, vpn2 << 12, &mut b).unwrap();
        assert_eq!(ctx.stats.major_faults, major, "page cache survived munmap");
    }

    #[test]
    fn kmmap_lazy_flush_triggers_under_dirty_pressure() {
        let mut ctx = FreeCtx::new(3);
        let dev = KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(4096)));
        let debts = Arc::new(CoreDebts::new(1));
        let mut cfg = LinuxConfig::kmmap(1, 64);
        cfg.kmmap_flush_ratio = 0.25;
        let lm = LinuxMmap::new(cfg, dev, debts);
        let f = lm.open_file(64).unwrap();
        let vpn = lm.mmap(&mut ctx, f, 0, 64, true).unwrap();
        for p in 0..40u64 {
            lm.write(&mut ctx, (vpn + p) << 12, &[p as u8]).unwrap();
        }
        assert!(ctx.stats.writebacks > 0, "lazy flush fired");
        assert!(lm.cache().dirty_count() < 40);
    }
}
