//! [`MemRegion`] implementation over Linux `mmap` / kmmap.

use std::sync::Arc;

use aquila_sim::{MemRegion, SimCtx};

use crate::mmap::{LinuxError, LinuxFileId, LinuxMmap};

/// A mapped file region over the Linux (or kmmap) baseline.
pub struct LinuxRegion {
    lm: Arc<LinuxMmap>,
    base_vpn: u64,
    len: u64,
}

impl LinuxRegion {
    /// Maps `pages` pages of `file` and wraps the mapping.
    pub fn map(
        ctx: &mut dyn SimCtx,
        lm: Arc<LinuxMmap>,
        file: LinuxFileId,
        pages: u64,
    ) -> Result<LinuxRegion, LinuxError> {
        let base_vpn = lm.mmap(ctx, file, 0, pages, true)?;
        Ok(LinuxRegion {
            lm,
            base_vpn,
            len: pages * 4096,
        })
    }

    /// The engine backing this region.
    pub fn linux(&self) -> &Arc<LinuxMmap> {
        &self.lm
    }
}

impl MemRegion for LinuxRegion {
    fn len(&self) -> u64 {
        self.len
    }

    fn read(&self, ctx: &mut dyn SimCtx, off: u64, buf: &mut [u8]) {
        assert!(
            off + buf.len() as u64 <= self.len,
            "region read out of range"
        );
        self.lm
            .read(ctx, (self.base_vpn << 12) + off, buf)
            .expect("region access within mapping");
    }

    fn write(&self, ctx: &mut dyn SimCtx, off: u64, buf: &[u8]) {
        assert!(
            off + buf.len() as u64 <= self.len,
            "region write out of range"
        );
        self.lm
            .write(ctx, (self.base_vpn << 12) + off, buf)
            .expect("region access within mapping");
    }

    fn sync(&self, ctx: &mut dyn SimCtx, off: u64, len: u64) {
        let first = off / 4096;
        let pages = (off + len).div_ceil(4096) - first;
        self.lm
            .msync(ctx, self.base_vpn + first, pages)
            .expect("sync within mapping");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::KernelDevice;
    use crate::mmap::LinuxConfig;
    use aquila_devices::PmemDevice;
    use aquila_sim::{CoreDebts, FreeCtx};

    #[test]
    fn region_over_linux_roundtrip() {
        let mut ctx = FreeCtx::new(1);
        let dev = KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(2048)));
        let debts = Arc::new(CoreDebts::new(1));
        let lm = Arc::new(LinuxMmap::new(LinuxConfig::linux(1, 128), dev, debts));
        let f = lm.open_file(512).unwrap();
        let region = LinuxRegion::map(&mut ctx, Arc::clone(&lm), f, 512).unwrap();
        region.write(&mut ctx, 99_999, b"linux heap");
        let mut back = [0u8; 10];
        region.read(&mut ctx, 99_999, &mut back);
        assert_eq!(&back, b"linux heap");
        region.sync(&mut ctx, 0, region.len());
        assert!(ctx.stats.page_faults > 0);
        assert!(ctx.stats.writebacks > 0);
    }
}
