//! In-kernel device fill paths for the Linux baselines.
//!
//! A Linux page-cache fill happens *inside* the fault handler: no extra
//! syscall is paid, but the kernel cannot use SIMD copies (section 3.3)
//! and NVMe goes through the interrupt-driven block layer.

use std::sync::Arc;

use aquila_devices::{BufRef, NvmeDevice, NvmeOp, PmemDevice, STORE_PAGE};
use aquila_sim::{CostCat, SimCtx};

/// A device as seen from the host kernel.
#[derive(Clone)]
pub enum KernelDevice {
    /// A pmem block device: fills are scalar memcpys.
    Pmem(Arc<PmemDevice>),
    /// An NVMe SSD through the kernel block layer.
    Nvme(Arc<NvmeDevice>),
}

impl KernelDevice {
    /// Resets the device timing model (between experiment phases).
    pub fn reset_timing(&self) {
        match self {
            KernelDevice::Pmem(d) => d.reset_timing(),
            KernelDevice::Nvme(d) => d.reset_timing(),
        }
    }

    /// Device capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        match self {
            KernelDevice::Pmem(d) => d.capacity_pages(),
            KernelDevice::Nvme(d) => d.capacity_pages(),
        }
    }

    /// Reads pages from within the kernel (fault fill / readahead).
    pub fn read_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &mut [u8]) {
        match self {
            KernelDevice::Pmem(d) => {
                // Kernel pmem driver: scalar copy, small block-glue cost.
                ctx.charge(CostCat::DeviceIo, aquila_sim::Cycles(240));
                d.dax_read(ctx, page * STORE_PAGE as u64, buf, false)
                    .expect("kernel fill within device bounds");
            }
            KernelDevice::Nvme(d) => {
                let c = ctx.cost().nvme_submit_kernel;
                ctx.charge(CostCat::DeviceIo, c);
                let pages = buf.len() / STORE_PAGE;
                let qp = d.create_qpair();
                qp.submit(ctx.now(), NvmeOp::Read, page, pages, BufRef::Mut(buf))
                    .expect("kernel fill within device bounds");
                // Interrupt-driven completion: CPU idles.
                qp.drain(ctx, CostCat::Idle);
                ctx.counters().device_reads += 1;
                ctx.counters().bytes_read += buf.len() as u64;
            }
        }
    }

    /// Writes pages from within the kernel (writeback).
    pub fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) {
        match self {
            KernelDevice::Pmem(d) => {
                ctx.charge(CostCat::DeviceIo, aquila_sim::Cycles(240));
                d.dax_write(ctx, page * STORE_PAGE as u64, buf, false)
                    .expect("kernel writeback within device bounds");
            }
            KernelDevice::Nvme(d) => {
                let c = ctx.cost().nvme_submit_kernel;
                ctx.charge(CostCat::DeviceIo, c);
                let pages = buf.len() / STORE_PAGE;
                let qp = d.create_qpair();
                qp.submit(ctx.now(), NvmeOp::Write, page, pages, BufRef::Shared(buf))
                    .expect("kernel writeback within device bounds");
                qp.drain(ctx, CostCat::Idle);
                ctx.counters().device_writes += 1;
                ctx.counters().bytes_written += buf.len() as u64;
            }
        }
    }
}

impl core::fmt::Debug for KernelDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KernelDevice::Pmem(_) => write!(f, "KernelDevice::Pmem"),
            KernelDevice::Nvme(_) => write!(f, "KernelDevice::Nvme"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn pmem_fill_costs_scalar_memcpy() {
        let dev = KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(16)));
        let mut ctx = FreeCtx::new(1);
        let mut buf = vec![0u8; STORE_PAGE];
        dev.read_pages(&mut ctx, 0, &mut buf);
        // Scalar 4K copy (~2430) + glue (~240): the paper's ~2.6K-cycle
        // device component of a Linux pmem fault (Figure 8(a)).
        let total = ctx.now().get();
        assert!((2200..3600).contains(&total), "pmem fill cost {total}");
    }

    #[test]
    fn nvme_fill_waits_idle() {
        let dev = KernelDevice::Nvme(Arc::new(NvmeDevice::optane(16)));
        let mut ctx = FreeCtx::new(1);
        let mut buf = vec![0u8; STORE_PAGE];
        dev.read_pages(&mut ctx, 0, &mut buf);
        assert!(ctx.breakdown.get(CostCat::Idle) >= aquila_sim::Cycles::from_micros(9));
    }

    #[test]
    fn kernel_write_roundtrip() {
        for dev in [
            KernelDevice::Pmem(Arc::new(PmemDevice::dram_backed(16))),
            KernelDevice::Nvme(Arc::new(NvmeDevice::optane(16))),
        ] {
            let mut ctx = FreeCtx::new(1);
            let data = vec![0x3Cu8; STORE_PAGE];
            dev.write_pages(&mut ctx, 3, &data);
            let mut back = vec![0u8; STORE_PAGE];
            dev.read_pages(&mut ctx, 3, &mut back);
            assert_eq!(back, data, "{dev:?}");
        }
    }
}
