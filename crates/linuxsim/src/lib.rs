//! Baseline I/O stacks the paper compares Aquila against.
//!
//! - [`mmap::LinuxMmap`] — Linux mmio: ring-3 fault traps, the
//!   single-lock kernel page cache, 128 KiB forced readahead, per-page
//!   reclaim shootdowns; with [`mmap::LinuxConfig::kmmap`] it becomes
//!   Kreon's custom kernel path (lazy coalesced writeback, no forced
//!   readahead, batched `msync`);
//! - [`ucache::UserCache`] — the user-space block cache + O_DIRECT
//!   `pread` configuration RocksDB recommends (Figure 1(b));
//! - [`pagecache::KernelPageCache`] — the shared kernel page cache and
//!   its contended tree lock;
//! - [`device::KernelDevice`] — in-kernel fill paths (scalar-copy pmem,
//!   interrupt-driven NVMe).

pub mod device;
pub mod mmap;
pub mod pagecache;
pub mod region;
pub mod ucache;

pub use device::KernelDevice;
pub use mmap::{LinuxConfig, LinuxError, LinuxFileId, LinuxMmap};
pub use pagecache::{KVictim, KernelPageCache};
pub use region::LinuxRegion;
pub use ucache::UserCache;
