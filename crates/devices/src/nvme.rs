//! NVMe device model with queue pairs.
//!
//! Models an Intel Optane P4800X-class PCIe SSD, the paper's testbed
//! device: ~10 us access latency, >500 K random IOPS, ~2.4 GB/s of
//! bandwidth, with deep internal parallelism. Submission and completion
//! follow the NVMe queue-pair discipline: commands are submitted to a
//! queue pair, complete at their service time, and are harvested by
//! polling the completion queue — exactly how SPDK drives the device
//! without kernel involvement.

use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use aquila_sync::Mutex;

use aquila_sim::fault::{CrashImage, FaultOutcome, FaultPlan, FaultTarget, SECTOR_SIZE};
use aquila_sim::{Cycles, ServiceCenter, SimCtx};

use crate::error::DeviceError;
use crate::store::{PageStore, STORE_PAGE};

/// Sectors per 4 KiB device page.
pub const SECTORS_PER_PAGE: u64 = (STORE_PAGE / SECTOR_SIZE) as u64;

/// An NVMe command opcode (the two the simulation needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeOp {
    /// Read `pages` pages starting at `lba_page`.
    Read,
    /// Write `pages` pages starting at `lba_page`.
    Write,
}

/// A completed command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmeCompletion {
    /// The command identifier returned by submit.
    pub cid: u64,
    /// Virtual time the command finished on the device.
    pub finished_at: Cycles,
}

#[derive(Debug)]
struct Inflight {
    cid: u64,
    finish: Cycles,
}

/// Performance profile of an NVMe device.
#[derive(Debug, Clone)]
pub struct NvmeProfile {
    /// Base access latency per command.
    pub latency: Cycles,
    /// Internal parallelism (number of concurrently served commands).
    pub channels: usize,
    /// Aggregate IOPS cap (0 = unlimited).
    pub max_iops: u64,
    /// Aggregate bandwidth cap in bytes/s (0 = unlimited).
    pub max_bw: u64,
}

impl NvmeProfile {
    /// An Intel Optane DC P4800X-class profile (the paper's device).
    pub fn optane_p4800x() -> NvmeProfile {
        NvmeProfile {
            latency: Cycles::from_micros(10),
            channels: 128,
            max_iops: 550_000,
            max_bw: 2_400_000_000,
        }
    }
}

/// The NVMe device: real page contents plus a timing model.
pub struct NvmeDevice {
    store: PageStore,
    service: ServiceCenter,
    profile: NvmeProfile,
    fault: OnceLock<Arc<FaultPlan>>,
    /// Ground truth for integrity accounting: sectors whose *stored*
    /// bytes differ from what the last writer supplied (a `corrupt`
    /// fault flipped bits as the data landed). Any overwrite heals.
    poisoned: Mutex<BTreeSet<u64>>,
    /// Latent sector errors: persistently unreadable until rewritten.
    latent: Mutex<BTreeSet<u64>>,
    /// Pages of corrupt data the device has silently returned to
    /// readers (stored-poisoned sectors plus in-flight read flips).
    /// The integrity layer's `detected` count is audited against this.
    tainted: AtomicU64,
}

impl NvmeDevice {
    /// Creates a device with `pages` 4 KiB pages and the given profile.
    pub fn new(pages: u64, profile: NvmeProfile) -> NvmeDevice {
        NvmeDevice {
            store: PageStore::new(pages),
            service: ServiceCenter::new(profile.channels, profile.max_iops, profile.max_bw),
            profile,
            fault: OnceLock::new(),
            poisoned: Mutex::new(BTreeSet::new()),
            latent: Mutex::new(BTreeSet::new()),
            tainted: AtomicU64::new(0),
        }
    }

    /// Restores a device from a flat byte image (a crash-consistency
    /// recovery boot). The image length is rounded up to whole pages.
    pub fn from_image(image: &[u8], profile: NvmeProfile) -> NvmeDevice {
        let pages = (image.len() as u64).div_ceil(STORE_PAGE as u64);
        let dev = NvmeDevice::new(pages, profile);
        match dev.store.write_range(0, image) {
            Ok(()) => dev,
            Err(_) => unreachable!("device is sized to hold the image"),
        }
    }

    /// Attaches a fault plan; commands submitted through any queue pair
    /// consult it. First attach wins (like the global plan install).
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) {
        let _ = self.fault.set(plan);
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.get()
    }

    /// Creates an Optane-profile device.
    pub fn optane(pages: u64) -> NvmeDevice {
        NvmeDevice::new(pages, NvmeProfile::optane_p4800x())
    }

    /// Device capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.store.page_count()
    }

    /// Direct access to the underlying store (for formatting by
    /// blobstores and filesystems).
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The device profile.
    pub fn profile(&self) -> &NvmeProfile {
        &self.profile
    }

    /// Total I/O operations served.
    pub fn ops_served(&self) -> u64 {
        self.service.ops()
    }

    /// Commands still being served by the device at virtual time `now`
    /// (instantaneous queue occupancy across all queue pairs).
    pub fn inflight_at(&self, now: Cycles) -> usize {
        self.service.busy_channels(now)
    }

    /// Resets the timing model (between experiment phases; contents are
    /// untouched).
    pub fn reset_timing(&self) {
        self.service.reset();
    }

    /// Pages of corrupt data the device has silently returned to
    /// readers so far (ground truth for the *undetected* invariant:
    /// every one of these must be caught by a checksum before it is
    /// acked to a session).
    pub fn tainted_reads(&self) -> u64 {
        self.tainted.load(Ordering::SeqCst)
    }

    /// Sectors currently storing silently corrupted data.
    pub fn poisoned_sectors(&self) -> u64 {
        self.poisoned.lock().len() as u64
    }

    /// Sectors currently latent (unreadable until rewritten).
    pub fn latent_sectors(&self) -> u64 {
        self.latent.lock().len() as u64
    }

    /// A rewrite heals both silent poison and latent errors on the
    /// covered sectors (fresh data, fresh cells).
    fn heal_sectors(&self, first_sector: u64, sectors: u64) {
        let range = first_sector..first_sector + sectors;
        let mut poi = self.poisoned.lock();
        let healed: Vec<u64> = poi.range(range.clone()).copied().collect();
        for s in healed {
            poi.remove(&s);
        }
        drop(poi);
        let mut lat = self.latent.lock();
        let healed: Vec<u64> = lat.range(range).copied().collect();
        for s in healed {
            lat.remove(&s);
        }
    }

    /// Deterministic position of the `k`-th injected bit flip within a
    /// `len`-byte payload (8191 is prime to the power-of-two bit count,
    /// so small flip budgets land on distinct bits).
    fn flip_bit(k: u64, len: usize) -> usize {
        ((k as usize) * 8191 + 7) % (len * 8)
    }

    /// Reserves device time for a `pages`-page transfer at `now`,
    /// returning when it completes.
    fn reserve(&self, now: Cycles, pages: usize) -> Cycles {
        let bytes = (pages * STORE_PAGE) as u64;
        // Service time: base latency plus on-device transfer time at the
        // device's internal stream rate (large I/Os take longer).
        let transfer = Cycles(bytes / 2); // ~4.8 GB/s internal streaming
        let r = self
            .service
            .submit(now, self.profile.latency + transfer, bytes);
        r.end
    }

    /// Creates an unbounded queue pair.
    pub fn create_qpair(&self) -> QueuePair<'_> {
        self.create_qpair_depth(usize::MAX)
    }

    /// Creates a queue pair that accepts at most `depth` in-flight
    /// commands; [`QueuePair::submit`] returns
    /// [`DeviceError::QueueFull`] past that, the backpressure signal the
    /// write-behind evictor paces itself with.
    pub fn create_qpair_depth(&self, depth: usize) -> QueuePair<'_> {
        QueuePair {
            dev: self,
            depth,
            inflight: Mutex::new(VecDeque::new()),
            next_cid: Mutex::new(0),
        }
    }
}

impl core::fmt::Debug for NvmeDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "NvmeDevice {{ pages: {}, profile: {:?} }}",
            self.capacity_pages(),
            self.profile
        )
    }
}

/// An NVMe submission/completion queue pair.
///
/// Commands move data immediately (the store is coherent) but *complete*
/// at their reserved device time; `poll` harvests completions that have
/// finished by the caller's current virtual time, mirroring SPDK's
/// `spdk_nvme_qpair_process_completions`.
pub struct QueuePair<'d> {
    dev: &'d NvmeDevice,
    depth: usize,
    inflight: Mutex<VecDeque<Inflight>>,
    next_cid: Mutex<u64>,
}

impl<'d> QueuePair<'d> {
    /// Submits a command; returns its command id.
    ///
    /// The submission itself costs nothing here — the *access path*
    /// (SPDK polled vs host kernel) charges its own per-command CPU cost.
    ///
    /// Fails if the range exceeds the device capacity, the buffer size
    /// does not match the page count, or a bounded queue is full.
    pub fn submit(
        &self,
        now: Cycles,
        op: NvmeOp,
        lba_page: u64,
        pages: usize,
        buf: BufRef<'_>,
    ) -> Result<u64, DeviceError> {
        if lba_page + pages as u64 > self.dev.capacity_pages() {
            return Err(DeviceError::OutOfRange {
                page: lba_page,
                pages,
                capacity: self.dev.capacity_pages(),
            });
        }
        if self.inflight.lock().len() >= self.depth {
            return Err(DeviceError::QueueFull { depth: self.depth });
        }
        // Injected faults draw after the organic checks, so an operation
        // number always names a command the queue actually admitted.
        let injected = self
            .dev
            .fault
            .get()
            .filter(|p| !p.is_empty())
            .and_then(|plan| {
                let target = match op {
                    NvmeOp::Read => FaultTarget::NvmeRead,
                    NvmeOp::Write => FaultTarget::NvmeWrite,
                };
                plan.draw(target, now)
            });
        match injected {
            Some(FaultOutcome::MediaError) => {
                return Err(DeviceError::MediaError { page: lba_page })
            }
            Some(FaultOutcome::Timeout) => return Err(DeviceError::Timeout),
            Some(FaultOutcome::QueueFull) => {
                return Err(DeviceError::QueueFull { depth: self.depth })
            }
            Some(FaultOutcome::DeviceReset) => return Err(DeviceError::DeviceReset),
            Some(
                FaultOutcome::Torn { .. }
                | FaultOutcome::Crash { .. }
                | FaultOutcome::Corrupt { .. }
                | FaultOutcome::Latent { .. },
            )
            | None => {}
        }
        let first_sector = lba_page * SECTORS_PER_PAGE;
        let nsectors = pages as u64 * SECTORS_PER_PAGE;
        match (op, buf) {
            (NvmeOp::Read, BufRef::Mut(b)) => {
                if b.len() != pages * STORE_PAGE {
                    return Err(DeviceError::BufferSize {
                        expected: pages * STORE_PAGE,
                        got: b.len(),
                    });
                }
                // A latent fault drawn on a read marks the leading
                // sectors of the range bad *now*; the read below then
                // trips over them like any later read would.
                if let Some(FaultOutcome::Latent { sectors }) = injected {
                    let mut lat = self.dev.latent.lock();
                    for s in first_sector..first_sector + sectors.min(nsectors) {
                        lat.insert(s);
                    }
                }
                // Latent sectors fail the whole command loudly (the
                // drive cannot return the data), naming the bad page.
                {
                    let lat = self.dev.latent.lock();
                    if let Some(&s) = lat.range(first_sector..first_sector + nsectors).next() {
                        return Err(DeviceError::MediaError {
                            page: s / SECTORS_PER_PAGE,
                        });
                    }
                }
                self.dev.store.read_range(lba_page * STORE_PAGE as u64, b)?;
                // Silent corruption: flip bits in the *returned* buffer
                // (the medium is fine; the transfer lied). Stored poison
                // rides along for free since the store holds the
                // flipped bytes. Both count toward `tainted`.
                let mut bad_page = vec![false; pages];
                if let Some(FaultOutcome::Corrupt { bits }) = injected {
                    for k in 0..bits {
                        let bit = NvmeDevice::flip_bit(k, b.len());
                        b[bit / 8] ^= 1 << (bit % 8);
                        bad_page[bit / 8 / STORE_PAGE] = true;
                    }
                }
                {
                    let poi = self.dev.poisoned.lock();
                    for &s in poi.range(first_sector..first_sector + nsectors) {
                        bad_page[((s - first_sector) / SECTORS_PER_PAGE) as usize] = true;
                    }
                }
                let tainted = bad_page.iter().filter(|&&t| t).count() as u64;
                if tainted > 0 {
                    self.dev.tainted.fetch_add(tainted, Ordering::SeqCst);
                }
            }
            (NvmeOp::Write, BufRef::Shared(b)) => {
                if b.len() != pages * STORE_PAGE {
                    return Err(DeviceError::BufferSize {
                        expected: pages * STORE_PAGE,
                        got: b.len(),
                    });
                }
                let pos = lba_page * STORE_PAGE as u64;
                match injected {
                    Some(FaultOutcome::Torn { sectors }) => {
                        // The command dies mid-transfer: whole sectors up
                        // to the cut persist, the rest never land.
                        let keep = (sectors as usize * SECTOR_SIZE).min(b.len());
                        self.dev.store.write_range(pos, &b[..keep])?;
                        // The persisted prefix is fresh data.
                        self.dev
                            .heal_sectors(first_sector, (keep / SECTOR_SIZE) as u64);
                        return Err(DeviceError::MediaError { page: lba_page });
                    }
                    Some(FaultOutcome::Corrupt { bits }) => {
                        // Silent write corruption: bits flip as the data
                        // lands, the command still reports success. The
                        // flipped sectors become poisoned ground truth.
                        let mut data = b.to_vec();
                        let mut bad = BTreeSet::new();
                        for k in 0..bits {
                            let bit = NvmeDevice::flip_bit(k, data.len());
                            data[bit / 8] ^= 1 << (bit % 8);
                            bad.insert(first_sector + (bit / 8 / SECTOR_SIZE) as u64);
                        }
                        self.dev.store.write_range(pos, &data)?;
                        self.dev.heal_sectors(first_sector, nsectors);
                        let mut poi = self.dev.poisoned.lock();
                        for s in bad {
                            poi.insert(s);
                        }
                    }
                    Some(FaultOutcome::Latent { sectors }) => {
                        // The write lands, then the cells degrade: the
                        // leading sectors become unreadable until the
                        // next rewrite.
                        self.dev.store.write_range(pos, b)?;
                        self.dev.heal_sectors(first_sector, nsectors);
                        let mut lat = self.dev.latent.lock();
                        for s in first_sector..first_sector + sectors.min(nsectors) {
                            lat.insert(s);
                        }
                    }
                    Some(FaultOutcome::Crash { sectors }) => {
                        // Power cut: capture the image as the medium
                        // stands, with a sector-granular prefix of the
                        // in-flight write applied, then let the live run
                        // proceed so the workload can finish. The
                        // crash-consistency harness recovers from the
                        // captured image.
                        if let Some(plan) = self.dev.fault.get() {
                            let mut image = self.dev.store.snapshot();
                            let keep = (sectors as usize * SECTOR_SIZE).min(b.len());
                            let end = (pos as usize + keep).min(image.len());
                            if (pos as usize) < end {
                                image[pos as usize..end].copy_from_slice(&b[..end - pos as usize]);
                            }
                            plan.record_crash(CrashImage { at: now, image });
                        }
                        self.dev.store.write_range(pos, b)?;
                        self.dev.heal_sectors(first_sector, nsectors);
                    }
                    _ => {
                        self.dev.store.write_range(pos, b)?;
                        self.dev.heal_sectors(first_sector, nsectors);
                    }
                }
            }
            _ => return Err(DeviceError::BufferDirection),
        }
        let finish = self.dev.reserve(now, pages);
        let mut cid_guard = self.next_cid.lock();
        let cid = *cid_guard;
        *cid_guard += 1;
        drop(cid_guard);
        self.inflight.lock().push_back(Inflight { cid, finish });
        Ok(cid)
    }

    /// Harvests completions finished by `now`.
    pub fn poll(&self, now: Cycles) -> Vec<NvmeCompletion> {
        let mut inflight = self.inflight.lock();
        let mut out = Vec::new();
        // Completions can finish out of order across channels; scan all.
        let mut i = 0;
        while i < inflight.len() {
            if inflight[i].finish <= now {
                if let Some(c) = inflight.remove(i) {
                    out.push(NvmeCompletion {
                        cid: c.cid,
                        finished_at: c.finish,
                    });
                }
            } else {
                i += 1;
            }
        }
        out
    }

    /// Number of commands still in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.lock().len()
    }

    /// The queue depth (`usize::MAX` for unbounded pairs).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Virtual time the earliest in-flight command finishes, if any.
    ///
    /// The write-behind evictor waits until exactly this instant before
    /// polling again, so it harvests completions as they land instead of
    /// stalling for the whole batch the way [`Self::drain`] does.
    pub fn earliest_finish(&self) -> Option<Cycles> {
        self.inflight.lock().iter().map(|c| c.finish).min()
    }

    /// Spins (advancing the caller's clock) until all in-flight commands
    /// complete; charges the wait to `cat`.
    pub fn drain(&self, ctx: &mut dyn SimCtx, cat: aquila_sim::CostCat) -> Vec<NvmeCompletion> {
        let latest = self
            .inflight
            .lock()
            .iter()
            .map(|c| c.finish)
            .max()
            .unwrap_or(Cycles::ZERO);
        ctx.wait_until(latest, cat);
        self.poll(ctx.now())
    }
}

/// A read or write buffer handed to [`QueuePair::submit`].
pub enum BufRef<'a> {
    /// Source data for writes.
    Shared(&'a [u8]),
    /// Destination for reads.
    Mut(&'a mut [u8]),
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::{CostCat, FreeCtx};

    #[test]
    fn write_then_read_roundtrip() {
        let dev = NvmeDevice::optane(64);
        let qp = dev.create_qpair();
        let data = vec![0xABu8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Write, 5, 1, BufRef::Shared(&data))
            .unwrap();
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 5, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn completion_arrives_after_latency() {
        let dev = NvmeDevice::optane(16);
        let qp = dev.create_qpair();
        let mut buf = vec![0u8; STORE_PAGE];
        let cid = qp
            .submit(Cycles(0), NvmeOp::Read, 0, 1, BufRef::Mut(&mut buf))
            .unwrap();
        // Nothing completes before the 10 us latency.
        assert!(qp.poll(Cycles(1000)).is_empty());
        assert_eq!(qp.inflight(), 1);
        let done = qp.poll(Cycles::from_micros(12));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].cid, cid);
        assert_eq!(qp.inflight(), 0);
    }

    #[test]
    fn drain_advances_clock_to_completion() {
        let dev = NvmeDevice::optane(16);
        let qp = dev.create_qpair();
        let mut buf = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 0, 1, BufRef::Mut(&mut buf))
            .unwrap();
        let mut ctx = FreeCtx::new(1);
        let done = qp.drain(&mut ctx, CostCat::DeviceIo);
        assert_eq!(done.len(), 1);
        assert!(ctx.now() >= Cycles::from_micros(10));
    }

    #[test]
    fn iops_cap_paces_submissions() {
        // 550 K IOPS => ~4363 cycles between admissions.
        let dev = NvmeDevice::optane(1024);
        let qp = dev.create_qpair();
        let mut buf = vec![0u8; STORE_PAGE];
        for i in 0..100 {
            qp.submit(Cycles(0), NvmeOp::Read, i, 1, BufRef::Mut(&mut buf))
                .unwrap();
        }
        let mut ctx = FreeCtx::new(1);
        qp.drain(&mut ctx, CostCat::DeviceIo);
        // 100 admissions paced at the IOPS gate: at least 99 * 4363 cycles
        // before the last admission, plus 10 us service.
        assert!(
            ctx.now().get() > 99 * 4300,
            "IOPS gate must pace: {}",
            ctx.now()
        );
        assert_eq!(dev.ops_served(), 100);
    }

    #[test]
    fn multi_page_io_roundtrip() {
        let dev = NvmeDevice::optane(64);
        let qp = dev.create_qpair();
        let data: Vec<u8> = (0..8 * STORE_PAGE).map(|i| (i % 253) as u8).collect();
        qp.submit(Cycles(0), NvmeOp::Write, 16, 8, BufRef::Shared(&data))
            .unwrap();
        let mut back = vec![0u8; 8 * STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 16, 8, BufRef::Mut(&mut back))
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn io_beyond_capacity_is_error() {
        let dev = NvmeDevice::optane(4);
        let qp = dev.create_qpair();
        let err = qp
            .submit(
                Cycles(0),
                NvmeOp::Read,
                3,
                2,
                BufRef::Mut(&mut vec![0u8; 2 * STORE_PAGE]),
            )
            .unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfRange {
                page: 3,
                pages: 2,
                capacity: 4
            }
        );
    }

    #[test]
    fn bounded_qpair_reports_full_and_mismatches() {
        let dev = NvmeDevice::optane(64);
        let qp = dev.create_qpair_depth(2);
        let mut buf = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 0, 1, BufRef::Mut(&mut buf))
            .unwrap();
        qp.submit(Cycles(0), NvmeOp::Read, 1, 1, BufRef::Mut(&mut buf))
            .unwrap();
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Read, 2, 1, BufRef::Mut(&mut buf)),
            Err(DeviceError::QueueFull { depth: 2 })
        );
        // Harvesting frees a slot.
        assert!(qp.earliest_finish().is_some());
        qp.poll(Cycles::from_micros(20));
        qp.submit(Cycles(0), NvmeOp::Read, 2, 1, BufRef::Mut(&mut buf))
            .unwrap();
        // Direction and size mismatches are reportable too.
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Write, 0, 1, BufRef::Mut(&mut buf)),
            Err(DeviceError::BufferDirection)
        );
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Read, 0, 2, BufRef::Mut(&mut buf)),
            Err(DeviceError::BufferSize {
                expected: 2 * STORE_PAGE,
                got: STORE_PAGE
            })
        );
    }

    #[test]
    fn injected_media_error_fires_once_then_heals() {
        let dev = NvmeDevice::optane(64);
        dev.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:media_error@op=2").unwrap(),
        ));
        let qp = dev.create_qpair();
        let data = vec![7u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Write, 0, 1, BufRef::Shared(&data))
            .unwrap();
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Write, 1, 1, BufRef::Shared(&data)),
            Err(DeviceError::MediaError { page: 1 })
        );
        // The failed write never reached the medium.
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 1, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert!(back.iter().all(|&b| b == 0));
        // The retry (op 3) succeeds.
        qp.submit(Cycles(0), NvmeOp::Write, 1, 1, BufRef::Shared(&data))
            .unwrap();
    }

    #[test]
    fn torn_write_persists_sector_prefix_only() {
        let dev = NvmeDevice::optane(8);
        dev.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:torn=3@op=1").unwrap(),
        ));
        let qp = dev.create_qpair();
        let data = vec![0xAAu8; STORE_PAGE];
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Write, 2, 1, BufRef::Shared(&data)),
            Err(DeviceError::MediaError { page: 2 })
        );
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 2, 1, BufRef::Mut(&mut back))
            .unwrap();
        let cut = 3 * SECTOR_SIZE;
        assert!(back[..cut].iter().all(|&b| b == 0xAA), "prefix persisted");
        assert!(back[cut..].iter().all(|&b| b == 0), "tail never landed");
    }

    #[test]
    fn crash_point_captures_torn_image_and_run_continues() {
        let dev = NvmeDevice::optane(8);
        let plan = Arc::new(FaultPlan::parse("nvme.write:crash=2@op=2").unwrap());
        dev.set_fault_plan(Arc::clone(&plan));
        let qp = dev.create_qpair();
        let old = vec![0x11u8; STORE_PAGE];
        let new = vec![0x22u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Write, 3, 1, BufRef::Shared(&old))
            .unwrap();
        // Op 2 overwrites page 3; the cut lands mid-transfer.
        qp.submit(Cycles(99), NvmeOp::Write, 3, 1, BufRef::Shared(&new))
            .unwrap();
        let img = plan.crash_image().expect("crash captured");
        assert_eq!(img.at, Cycles(99));
        let page3 = &img.image[3 * STORE_PAGE..4 * STORE_PAGE];
        let cut = 2 * SECTOR_SIZE;
        assert!(page3[..cut].iter().all(|&b| b == 0x22), "new prefix");
        assert!(page3[cut..].iter().all(|&b| b == 0x11), "old tail");
        // The live device saw the whole write (the run continues).
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(100), NvmeOp::Read, 3, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_eq!(back, new);
        // A recovered device boots from the captured image.
        let rec = NvmeDevice::from_image(&img.image, NvmeProfile::optane_p4800x());
        assert_eq!(rec.capacity_pages(), 8);
        let mut rback = vec![0u8; STORE_PAGE];
        rec.create_qpair()
            .submit(Cycles(0), NvmeOp::Read, 3, 1, BufRef::Mut(&mut rback))
            .unwrap();
        assert_eq!(&rback[..], page3);
    }

    #[test]
    fn corrupt_write_silently_poisons_and_rewrite_heals() {
        let dev = NvmeDevice::optane(8);
        dev.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:corrupt=4@op=1").unwrap(),
        ));
        let qp = dev.create_qpair();
        let data = vec![0x5Au8; STORE_PAGE];
        // The corrupted write reports success (that is the whole point).
        qp.submit(Cycles(0), NvmeOp::Write, 2, 1, BufRef::Shared(&data))
            .unwrap();
        assert!(dev.poisoned_sectors() > 0, "flips recorded as poison");
        assert_eq!(dev.tainted_reads(), 0, "nothing returned yet");
        // The read also reports success but returns flipped bytes.
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 2, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_ne!(back, data, "corruption is silent, not absent");
        let flipped: u32 = back
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 4, "exactly the budgeted bits flipped");
        assert_eq!(dev.tainted_reads(), 1, "one tainted page returned");
        // A clean rewrite heals the poison.
        qp.submit(Cycles(0), NvmeOp::Write, 2, 1, BufRef::Shared(&data))
            .unwrap();
        assert_eq!(dev.poisoned_sectors(), 0);
        qp.submit(Cycles(0), NvmeOp::Read, 2, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(dev.tainted_reads(), 1, "healed read is clean");
    }

    #[test]
    fn corrupt_read_flips_in_flight_only() {
        let dev = NvmeDevice::optane(8);
        dev.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.read:corrupt=2@op=1").unwrap(),
        ));
        let qp = dev.create_qpair();
        let data = vec![0x11u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Write, 1, 1, BufRef::Shared(&data))
            .unwrap();
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 1, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_ne!(back, data, "in-flight flip corrupted the transfer");
        assert_eq!(dev.tainted_reads(), 1);
        assert_eq!(dev.poisoned_sectors(), 0, "the medium itself is fine");
        // The next read (no fault drawn) is clean: one-shot clause.
        qp.submit(Cycles(0), NvmeOp::Read, 1, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_eq!(back, data);
        assert_eq!(dev.tainted_reads(), 1);
    }

    #[test]
    fn latent_sectors_fail_reads_until_rewritten() {
        let dev = NvmeDevice::optane(8);
        dev.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.read:latent=2@op=2").unwrap(),
        ));
        let qp = dev.create_qpair();
        let data = vec![0x33u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Write, 4, 1, BufRef::Shared(&data))
            .unwrap();
        let mut back = vec![0u8; STORE_PAGE];
        qp.submit(Cycles(0), NvmeOp::Read, 4, 1, BufRef::Mut(&mut back))
            .unwrap();
        // Op 2 trips the latent clause: the read fails and keeps failing.
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Read, 4, 1, BufRef::Mut(&mut back)),
            Err(DeviceError::MediaError { page: 4 })
        );
        assert_eq!(dev.latent_sectors(), 2);
        assert_eq!(
            qp.submit(Cycles(0), NvmeOp::Read, 4, 1, BufRef::Mut(&mut back)),
            Err(DeviceError::MediaError { page: 4 }),
            "latent errors persist"
        );
        // A rewrite heals the cells; reads work again.
        qp.submit(Cycles(0), NvmeOp::Write, 4, 1, BufRef::Shared(&data))
            .unwrap();
        assert_eq!(dev.latent_sectors(), 0);
        qp.submit(Cycles(0), NvmeOp::Read, 4, 1, BufRef::Mut(&mut back))
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let dev = NvmeDevice::optane(8);
        dev.set_fault_plan(Arc::new(FaultPlan::empty()));
        let qp = dev.create_qpair();
        let data = vec![1u8; STORE_PAGE];
        for i in 0..4 {
            qp.submit(Cycles(0), NvmeOp::Write, i, 1, BufRef::Shared(&data))
                .unwrap();
        }
        assert_eq!(dev.fault_plan().unwrap().injected(), 0);
    }

    #[test]
    fn parallel_channels_overlap_service() {
        let dev = NvmeDevice::optane(1024);
        let qp = dev.create_qpair();
        let mut buf = vec![0u8; STORE_PAGE];
        // Two commands at t=0 on a 128-channel device finish at nearly the
        // same time (only the IOPS gate separates them).
        qp.submit(Cycles(0), NvmeOp::Read, 0, 1, BufRef::Mut(&mut buf))
            .unwrap();
        qp.submit(Cycles(0), NvmeOp::Read, 1, 1, BufRef::Mut(&mut buf))
            .unwrap();
        let done = qp.poll(Cycles::from_micros(15));
        assert_eq!(done.len(), 2);
        let spread = done[1].finished_at.get() as i64 - done[0].finished_at.get() as i64;
        assert!(spread.unsigned_abs() < 10_000, "channels overlap: {spread}");
    }
}
