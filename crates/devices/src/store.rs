//! Raw page storage backing simulated devices.
//!
//! Device contents are real bytes: writes persist, reads return what was
//! written, so the KV stores and graph workloads above verify actual data
//! integrity through the whole mmio path. Per-page locks keep the store
//! sound under real threads without serializing unrelated pages.

use aquila_sync::RwLock;

use crate::error::DeviceError;

/// Page size of the store (4 KiB).
pub const STORE_PAGE: usize = 4096;

/// A page-granular byte store.
pub struct PageStore {
    pages: Vec<RwLock<Option<Box<[u8]>>>>,
}

impl PageStore {
    /// Creates a store of `pages` logically-zero pages.
    ///
    /// Pages are materialized lazily on first write, so a mostly-empty
    /// multi-GB device costs almost no host memory.
    pub fn new(pages: u64) -> PageStore {
        PageStore {
            pages: (0..pages).map(|_| RwLock::new(None)).collect(),
        }
    }

    /// Number of pages in the store.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Pages currently materialized (allocated in host memory).
    pub fn resident_pages(&self) -> u64 {
        self.pages.iter().filter(|p| p.read().is_some()).count() as u64
    }

    fn slot(&self, page: u64) -> Result<&RwLock<Option<Box<[u8]>>>, DeviceError> {
        self.pages
            .get(page as usize)
            .ok_or(DeviceError::OutOfRange {
                page,
                pages: 1,
                capacity: self.page_count(),
            })
    }

    /// Reads `buf.len()` bytes from `page` starting at `offset`.
    ///
    /// Fails if the range crosses the page boundary or the page index is
    /// out of bounds.
    pub fn read_at(&self, page: u64, offset: usize, buf: &mut [u8]) -> Result<(), DeviceError> {
        if offset + buf.len() > STORE_PAGE {
            return Err(DeviceError::CrossesPage {
                offset,
                len: buf.len(),
            });
        }
        match &*self.slot(page)?.read() {
            Some(data) => buf.copy_from_slice(&data[offset..offset + buf.len()]),
            None => buf.fill(0),
        }
        Ok(())
    }

    /// Writes `buf` into `page` starting at `offset`.
    ///
    /// Fails if the range crosses the page boundary or the page index is
    /// out of bounds.
    pub fn write_at(&self, page: u64, offset: usize, buf: &[u8]) -> Result<(), DeviceError> {
        if offset + buf.len() > STORE_PAGE {
            return Err(DeviceError::CrossesPage {
                offset,
                len: buf.len(),
            });
        }
        let mut slot = self.slot(page)?.write();
        let data = slot.get_or_insert_with(|| vec![0u8; STORE_PAGE].into_boxed_slice());
        data[offset..offset + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Reads a possibly multi-page byte range starting at absolute byte
    /// offset `pos`.
    pub fn read_range(&self, pos: u64, buf: &mut [u8]) -> Result<(), DeviceError> {
        let mut done = 0usize;
        while done < buf.len() {
            let abs = pos + done as u64;
            let page = abs / STORE_PAGE as u64;
            let off = (abs % STORE_PAGE as u64) as usize;
            let n = (STORE_PAGE - off).min(buf.len() - done);
            self.read_at(page, off, &mut buf[done..done + n])?;
            done += n;
        }
        Ok(())
    }

    /// Writes a possibly multi-page byte range starting at absolute byte
    /// offset `pos`.
    pub fn write_range(&self, pos: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let mut done = 0usize;
        while done < buf.len() {
            let abs = pos + done as u64;
            let page = abs / STORE_PAGE as u64;
            let off = (abs % STORE_PAGE as u64) as usize;
            let n = (STORE_PAGE - off).min(buf.len() - done);
            self.write_at(page, off, &buf[done..done + n])?;
            done += n;
        }
        Ok(())
    }

    /// Drops a page's contents back to logical zero (TRIM/deallocate).
    pub fn discard(&self, page: u64) -> Result<(), DeviceError> {
        *self.slot(page)?.write() = None;
        Ok(())
    }

    /// Flattens the whole store into one byte image (never-written pages
    /// read as zero). The crash-consistency harness captures this at a
    /// simulated power cut and recovers a fresh device from it.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut image = vec![0u8; self.pages.len() * STORE_PAGE];
        for (i, slot) in self.pages.iter().enumerate() {
            if let Some(data) = &*slot.read() {
                image[i * STORE_PAGE..(i + 1) * STORE_PAGE].copy_from_slice(data);
            }
        }
        image
    }
}

impl core::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "PageStore {{ pages: {}, resident: {} }}",
            self.page_count(),
            self.resident_pages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_pages_read_zero() {
        let s = PageStore::new(4);
        let mut buf = [0xFFu8; 16];
        s.read_at(2, 100, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let s = PageStore::new(4);
        s.write_at(1, 10, b"payload").unwrap();
        let mut buf = [0u8; 7];
        s.read_at(1, 10, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn range_io_crosses_pages() {
        let s = PageStore::new(3);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        s.write_range(100, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        s.read_range(100, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.resident_pages(), 3);
    }

    #[test]
    fn discard_returns_page_to_zero() {
        let s = PageStore::new(2);
        s.write_at(0, 0, &[1, 2, 3]).unwrap();
        s.discard(0).unwrap();
        let mut buf = [9u8; 3];
        s.read_at(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [0, 0, 0]);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn cross_boundary_page_io_is_error() {
        let s = PageStore::new(2);
        assert_eq!(
            s.read_at(0, 4090, &mut [0u8; 16]),
            Err(DeviceError::CrossesPage {
                offset: 4090,
                len: 16
            })
        );
    }

    #[test]
    fn snapshot_flattens_with_zero_holes() {
        let s = PageStore::new(3);
        s.write_at(1, 8, b"mid").unwrap();
        let img = s.snapshot();
        assert_eq!(img.len(), 3 * STORE_PAGE);
        assert_eq!(&img[STORE_PAGE + 8..STORE_PAGE + 11], b"mid");
        assert!(img[..STORE_PAGE].iter().all(|&b| b == 0));
        assert!(img[2 * STORE_PAGE..].iter().all(|&b| b == 0));
    }

    #[test]
    fn out_of_bounds_page_is_error() {
        let s = PageStore::new(2);
        assert!(matches!(
            s.write_at(7, 0, &[1]),
            Err(DeviceError::OutOfRange { page: 7, .. })
        ));
        assert!(matches!(
            s.discard(2),
            Err(DeviceError::OutOfRange { page: 2, .. })
        ));
    }
}
