//! Storage access paths: *how* a page moves between the DRAM cache and a
//! device.
//!
//! The paper's Figure 8(c) compares four ways Aquila can reach storage:
//!
//! | Path        | Mechanism                              | Cost structure |
//! |-------------|----------------------------------------|----------------|
//! | `SPDK-NVMe` | polled user-space driver, no kernel    | submit CPU + device time (spinning) |
//! | `HOST-NVMe` | direct-I/O syscall into the host OS    | vmcall/syscall + kernel path + device time (idle) |
//! | `DAX-pmem`  | AVX2 streaming memcpy to mapped NVM    | SIMD copy + bandwidth |
//! | `HOST-pmem` | direct-I/O syscall, kernel scalar copy | vmcall/syscall + kernel path + scalar copy |
//!
//! All four implement [`StorageAccess`], so the page cache and the mmio
//! engines are parameterized over the access method — which is exactly the
//! customization the paper argues for.

use std::sync::Arc;

use aquila_sim::{CostCat, SimCtx};

use crate::error::DeviceError;
use crate::nvme::{BufRef, NvmeDevice, NvmeOp};
use crate::pmem::PmemDevice;
use crate::retry::{CircuitBreaker, RetryPolicy};
use crate::store::STORE_PAGE;

/// Which protection domain the caller sits in, which determines the price
/// of asking the host kernel for I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallDomain {
    /// A conventional ring-3 process: host I/O costs a syscall.
    User,
    /// Aquila in VMX non-root ring 0: host I/O costs a vmcall.
    Guest,
    /// Already in the host kernel (the Linux mmap fault handler): host I/O
    /// costs neither.
    Kernel,
}

impl CallDomain {
    fn charge_entry(self, ctx: &mut dyn SimCtx) {
        match self {
            CallDomain::User => {
                let c = ctx.cost().syscall_entry_exit;
                ctx.charge(CostCat::Syscall, c);
                ctx.counters().syscalls += 1;
            }
            CallDomain::Guest => {
                let c = ctx.cost().vmcall;
                ctx.charge(CostCat::Vmexit, c);
                ctx.counters().vmexits += 1;
            }
            CallDomain::Kernel => {}
        }
    }
}

/// A named access-path kind, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Polled user-space NVMe driver (SPDK).
    SpdkNvme,
    /// Host-kernel direct I/O to NVMe.
    HostNvme,
    /// DAX memcpy to byte-addressable NVM.
    DaxPmem,
    /// Host-kernel direct I/O to the pmem block device.
    HostPmem,
}

impl AccessKind {
    /// Stable display name (matches the paper's Figure 8(c) labels).
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::SpdkNvme => "SPDK-NVMe",
            AccessKind::HostNvme => "HOST-NVMe",
            AccessKind::DaxPmem => "DAX-pmem",
            AccessKind::HostPmem => "HOST-pmem",
        }
    }
}

/// A blocking page-granular storage path.
///
/// `read_pages`/`write_pages` return once the data is usable, having
/// charged all CPU, transition, and device costs to the context.
pub trait StorageAccess: Send + Sync {
    /// The path's kind.
    fn kind(&self) -> AccessKind;
    /// Device capacity in 4 KiB pages.
    fn capacity_pages(&self) -> u64;
    /// Reads `buf.len() / 4096` pages starting at `page`.
    fn read_pages(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), DeviceError>;
    /// Writes `buf.len() / 4096` pages starting at `page`.
    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) -> Result<(), DeviceError>;
    /// Resets the underlying device's timing model (between experiment
    /// phases; contents untouched).
    fn reset_timing(&self);
    /// The raw NVMe device behind this path, when there is one.
    ///
    /// The asynchronous write-behind evictor needs real queue pairs
    /// (depth > 1) rather than the one-command-then-drain discipline the
    /// blocking methods implement; paths without an NVMe device (DAX,
    /// HOST-pmem) return `None` and writeback stays on the blocking path.
    fn nvme_device(&self) -> Option<&Arc<NvmeDevice>> {
        None
    }
    /// The write-path circuit breaker, when the path has one. The engine
    /// watches it to degrade the region once the device stops accepting
    /// writes (DESIGN.md §11).
    fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        None
    }
    /// The retry policy the path applies to transient command failures.
    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::default()
    }
    /// Verifies one device page against its recorded checksums,
    /// repairing it if a clean replica copy exists. Returns whether a
    /// repair happened. Paths without integrity metadata have nothing
    /// to scrub.
    fn scrub_page(&self, _ctx: &mut dyn SimCtx, _page: u64) -> Result<bool, DeviceError> {
        Ok(false)
    }
    /// Integrity counters, when the path verifies checksums (the
    /// mirrored path). `None` elsewhere.
    fn integrity_counters(&self) -> Option<crate::mirror::IntegrityCounters> {
        None
    }
}

/// Records the device's queue occupancy right after a submission: a trace
/// counter track ("nvme.inflight") plus a high-water-mark gauge. No-ops
/// without an installed tracer/registry, and never charges cycles.
fn record_nvme_occupancy(ctx: &dyn SimCtx, dev: &NvmeDevice) {
    if !aquila_sim::trace::enabled() && aquila_sim::metrics::global().is_none() {
        return;
    }
    let depth = dev.inflight_at(ctx.now()) as u64;
    aquila_sim::trace::counter(ctx, "nvme.inflight", depth);
    aquila_sim::metrics::gauge(ctx, "nvme.inflight.max", depth);
}

/// SPDK-style polled user-space NVMe access (no kernel on the I/O path).
pub struct SpdkAccess {
    dev: Arc<NvmeDevice>,
    retry: RetryPolicy,
    breaker: Arc<CircuitBreaker>,
}

impl SpdkAccess {
    /// Wraps a device. Direct access requires the device be dedicated to
    /// this process (the paper's protection argument), which the type
    /// system encodes by taking ownership of the only handle used for I/O.
    pub fn new(dev: Arc<NvmeDevice>) -> SpdkAccess {
        SpdkAccess::with_retry(dev, RetryPolicy::default())
    }

    /// Wraps a device with an explicit retry policy.
    pub fn with_retry(dev: Arc<NvmeDevice>, retry: RetryPolicy) -> SpdkAccess {
        SpdkAccess {
            dev,
            retry,
            breaker: CircuitBreaker::new(retry.breaker_threshold, retry.breaker_cooldown),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<NvmeDevice> {
        &self.dev
    }
}

impl StorageAccess for SpdkAccess {
    fn kind(&self) -> AccessKind {
        AccessKind::SpdkNvme
    }

    fn reset_timing(&self) {
        self.dev.reset_timing();
    }

    fn capacity_pages(&self) -> u64 {
        self.dev.capacity_pages()
    }

    fn read_pages(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), DeviceError> {
        let pages = buf.len() / STORE_PAGE;
        // Reads retry but never consult the breaker: a degraded region
        // must keep serving reads (DESIGN.md §11).
        self.retry.run(ctx, None, |ctx| {
            let submit = ctx.cost().nvme_submit_poll;
            ctx.charge(CostCat::DeviceIo, submit);
            let t0 = ctx.now();
            let sp = aquila_sim::span::begin(ctx, "nvme.read.io", CostCat::DeviceIo);
            let qp = self.dev.create_qpair();
            let submitted = qp.submit(ctx.now(), NvmeOp::Read, page, pages, BufRef::Mut(buf));
            record_nvme_occupancy(ctx, &self.dev);
            if let Err(e) = submitted {
                aquila_sim::span::end(ctx, sp);
                return Err(e);
            }
            // Polled completion: the CPU spins, so the wait is DeviceIo
            // (busy), not Idle.
            qp.drain(ctx, CostCat::DeviceIo);
            let served = ctx.now() - t0;
            self.retry.observe_latency(ctx, served);
            aquila_sim::metrics::record_latency(ctx, "nvme.read.cycles", served);
            aquila_sim::span::end(ctx, sp);
            Ok(())
        })?;
        ctx.counters().device_reads += 1;
        ctx.counters().bytes_read += (pages * STORE_PAGE) as u64;
        Ok(())
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let pages = buf.len() / STORE_PAGE;
        self.retry.run(ctx, Some(&self.breaker), |ctx| {
            let submit = ctx.cost().nvme_submit_poll;
            ctx.charge(CostCat::DeviceIo, submit);
            let t0 = ctx.now();
            let sp = aquila_sim::span::begin(ctx, "nvme.write.io", CostCat::DeviceIo);
            let qp = self.dev.create_qpair();
            let submitted = qp.submit(ctx.now(), NvmeOp::Write, page, pages, BufRef::Shared(buf));
            record_nvme_occupancy(ctx, &self.dev);
            if let Err(e) = submitted {
                aquila_sim::span::end(ctx, sp);
                return Err(e);
            }
            qp.drain(ctx, CostCat::DeviceIo);
            let served = ctx.now() - t0;
            self.retry.observe_latency(ctx, served);
            aquila_sim::metrics::record_latency(ctx, "nvme.write.cycles", served);
            aquila_sim::span::end(ctx, sp);
            Ok(())
        })?;
        ctx.counters().device_writes += 1;
        ctx.counters().bytes_written += (pages * STORE_PAGE) as u64;
        Ok(())
    }

    fn nvme_device(&self) -> Option<&Arc<NvmeDevice>> {
        Some(&self.dev)
    }

    fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        Some(&self.breaker)
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }
}

/// Host-kernel direct I/O to an NVMe device.
pub struct HostNvmeAccess {
    dev: Arc<NvmeDevice>,
    domain: CallDomain,
    retry: RetryPolicy,
    breaker: Arc<CircuitBreaker>,
}

impl HostNvmeAccess {
    /// Creates the path; `domain` selects syscall vs vmcall entry cost.
    pub fn new(dev: Arc<NvmeDevice>, domain: CallDomain) -> HostNvmeAccess {
        HostNvmeAccess::with_retry(dev, domain, RetryPolicy::default())
    }

    /// Creates the path with an explicit retry policy.
    pub fn with_retry(
        dev: Arc<NvmeDevice>,
        domain: CallDomain,
        retry: RetryPolicy,
    ) -> HostNvmeAccess {
        HostNvmeAccess {
            dev,
            domain,
            retry,
            breaker: CircuitBreaker::new(retry.breaker_threshold, retry.breaker_cooldown),
        }
    }
}

impl StorageAccess for HostNvmeAccess {
    fn kind(&self) -> AccessKind {
        AccessKind::HostNvme
    }

    fn reset_timing(&self) {
        self.dev.reset_timing();
    }

    fn capacity_pages(&self) -> u64 {
        self.dev.capacity_pages()
    }

    fn read_pages(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), DeviceError> {
        let pages = buf.len() / STORE_PAGE;
        self.retry.run(ctx, None, |ctx| {
            self.domain.charge_entry(ctx);
            let sw = ctx.cost().host_directio_sw + ctx.cost().nvme_submit_kernel;
            ctx.charge(CostCat::Syscall, sw);
            let t0 = ctx.now();
            let sp = aquila_sim::span::begin(ctx, "nvme.read.io", CostCat::DeviceIo);
            let qp = self.dev.create_qpair();
            let submitted = qp.submit(ctx.now(), NvmeOp::Read, page, pages, BufRef::Mut(buf));
            record_nvme_occupancy(ctx, &self.dev);
            if let Err(e) = submitted {
                aquila_sim::span::end(ctx, sp);
                return Err(e);
            }
            // Interrupt-driven completion: the CPU sleeps.
            qp.drain(ctx, CostCat::Idle);
            let served = ctx.now() - t0;
            self.retry.observe_latency(ctx, served);
            aquila_sim::metrics::record_latency(ctx, "nvme.read.cycles", served);
            aquila_sim::span::end(ctx, sp);
            Ok(())
        })?;
        ctx.counters().device_reads += 1;
        ctx.counters().bytes_read += (pages * STORE_PAGE) as u64;
        Ok(())
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let pages = buf.len() / STORE_PAGE;
        self.retry.run(ctx, Some(&self.breaker), |ctx| {
            self.domain.charge_entry(ctx);
            let sw = ctx.cost().host_directio_sw + ctx.cost().nvme_submit_kernel;
            ctx.charge(CostCat::Syscall, sw);
            let t0 = ctx.now();
            let sp = aquila_sim::span::begin(ctx, "nvme.write.io", CostCat::DeviceIo);
            let qp = self.dev.create_qpair();
            let submitted = qp.submit(ctx.now(), NvmeOp::Write, page, pages, BufRef::Shared(buf));
            record_nvme_occupancy(ctx, &self.dev);
            if let Err(e) = submitted {
                aquila_sim::span::end(ctx, sp);
                return Err(e);
            }
            qp.drain(ctx, CostCat::Idle);
            let served = ctx.now() - t0;
            self.retry.observe_latency(ctx, served);
            aquila_sim::metrics::record_latency(ctx, "nvme.write.cycles", served);
            aquila_sim::span::end(ctx, sp);
            Ok(())
        })?;
        ctx.counters().device_writes += 1;
        ctx.counters().bytes_written += (pages * STORE_PAGE) as u64;
        Ok(())
    }

    fn nvme_device(&self) -> Option<&Arc<NvmeDevice>> {
        Some(&self.dev)
    }

    fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        Some(&self.breaker)
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }
}

/// DAX access to byte-addressable NVM with Aquila's AVX2 streaming copy.
pub struct DaxAccess {
    dev: Arc<PmemDevice>,
    simd: bool,
}

impl DaxAccess {
    /// Creates the path; `simd` enables the AVX2 streaming copy (Aquila's
    /// optimization, on by default in the paper).
    pub fn new(dev: Arc<PmemDevice>, simd: bool) -> DaxAccess {
        DaxAccess { dev, simd }
    }
}

impl StorageAccess for DaxAccess {
    fn kind(&self) -> AccessKind {
        AccessKind::DaxPmem
    }

    fn reset_timing(&self) {
        self.dev.reset_timing();
    }

    fn capacity_pages(&self) -> u64 {
        self.dev.capacity_pages()
    }

    fn read_pages(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), DeviceError> {
        let t0 = ctx.now();
        self.dev
            .dax_read(ctx, page * STORE_PAGE as u64, buf, self.simd)?;
        aquila_sim::metrics::record_latency(ctx, "pmem.read.cycles", ctx.now() - t0);
        Ok(())
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let t0 = ctx.now();
        self.dev
            .dax_write(ctx, page * STORE_PAGE as u64, buf, self.simd)?;
        aquila_sim::metrics::record_latency(ctx, "pmem.write.cycles", ctx.now() - t0);
        Ok(())
    }
}

/// Host-kernel direct I/O to the pmem block device (the kernel uses a
/// scalar copy — it cannot afford SIMD in kernel context, section 3.3).
pub struct HostPmemAccess {
    dev: Arc<PmemDevice>,
    domain: CallDomain,
}

impl HostPmemAccess {
    /// Creates the path; `domain` selects syscall vs vmcall entry cost.
    pub fn new(dev: Arc<PmemDevice>, domain: CallDomain) -> HostPmemAccess {
        HostPmemAccess { dev, domain }
    }
}

impl StorageAccess for HostPmemAccess {
    fn kind(&self) -> AccessKind {
        AccessKind::HostPmem
    }

    fn reset_timing(&self) {
        self.dev.reset_timing();
    }

    fn capacity_pages(&self) -> u64 {
        self.dev.capacity_pages()
    }

    fn read_pages(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), DeviceError> {
        self.domain.charge_entry(ctx);
        let sw = ctx.cost().host_directio_sw;
        ctx.charge(CostCat::Syscall, sw);
        let t0 = ctx.now();
        self.dev
            .dax_read(ctx, page * STORE_PAGE as u64, buf, false)?;
        aquila_sim::metrics::record_latency(ctx, "pmem.read.cycles", ctx.now() - t0);
        Ok(())
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) -> Result<(), DeviceError> {
        self.domain.charge_entry(ctx);
        let sw = ctx.cost().host_directio_sw;
        ctx.charge(CostCat::Syscall, sw);
        let t0 = ctx.now();
        self.dev
            .dax_write(ctx, page * STORE_PAGE as u64, buf, false)?;
        aquila_sim::metrics::record_latency(ctx, "pmem.write.cycles", ctx.now() - t0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::{Cycles, FreeCtx};

    fn page_of(b: u8) -> Vec<u8> {
        vec![b; STORE_PAGE]
    }

    #[test]
    fn all_paths_move_real_data() {
        let nvme = Arc::new(NvmeDevice::optane(64));
        let pmem = Arc::new(PmemDevice::dram_backed(64));
        let paths: Vec<Box<dyn StorageAccess>> = vec![
            Box::new(SpdkAccess::new(Arc::clone(&nvme))),
            Box::new(HostNvmeAccess::new(Arc::clone(&nvme), CallDomain::Guest)),
            Box::new(DaxAccess::new(Arc::clone(&pmem), true)),
            Box::new(HostPmemAccess::new(Arc::clone(&pmem), CallDomain::User)),
        ];
        for (i, p) in paths.iter().enumerate() {
            let mut ctx = FreeCtx::new(i as u64);
            let data = page_of(0x10 + i as u8);
            p.write_pages(&mut ctx, i as u64, &data).unwrap();
            let mut back = page_of(0);
            p.read_pages(&mut ctx, i as u64, &mut back).unwrap();
            assert_eq!(back, data, "path {} corrupted data", p.kind().name());
        }
    }

    #[test]
    fn spdk_is_cheaper_than_host_nvme() {
        // Figure 8(c): bypassing the host OS reduces overhead by ~1.5x.
        let nvme = Arc::new(NvmeDevice::optane(64));
        let spdk = SpdkAccess::new(Arc::clone(&nvme));
        let host = HostNvmeAccess::new(Arc::clone(&nvme), CallDomain::Guest);
        let mut a = FreeCtx::new(1);
        let mut b = FreeCtx::new(1);
        let mut buf = page_of(0);
        spdk.read_pages(&mut a, 0, &mut buf).unwrap();
        host.read_pages(&mut b, 1, &mut buf).unwrap();
        let ratio = b.now().get() as f64 / a.now().get() as f64;
        assert!(
            (1.3..2.2).contains(&ratio),
            "HOST/SPDK ratio {ratio:.2} out of the paper's ballpark"
        );
    }

    #[test]
    fn dax_is_much_cheaper_than_host_pmem() {
        // Figure 8(c): removing the host OS from the pmem path is ~7.8x.
        let pmem = Arc::new(PmemDevice::dram_backed(64));
        let dax = DaxAccess::new(Arc::clone(&pmem), true);
        let host = HostPmemAccess::new(Arc::clone(&pmem), CallDomain::Guest);
        let mut a = FreeCtx::new(1);
        let mut b = FreeCtx::new(1);
        let mut buf = page_of(0);
        dax.read_pages(&mut a, 0, &mut buf).unwrap();
        host.read_pages(&mut b, 1, &mut buf).unwrap();
        let ratio = b.now().get() as f64 / a.now().get() as f64;
        assert!(ratio > 5.0, "HOST-pmem/DAX-pmem ratio {ratio:.2} too small");
    }

    #[test]
    fn guest_entry_counts_vmexit_user_counts_syscall() {
        let pmem = Arc::new(PmemDevice::dram_backed(8));
        let mut buf = page_of(0);

        let guest = HostPmemAccess::new(Arc::clone(&pmem), CallDomain::Guest);
        let mut gctx = FreeCtx::new(1);
        guest.read_pages(&mut gctx, 0, &mut buf).unwrap();
        assert_eq!(gctx.stats.vmexits, 1);
        assert_eq!(gctx.stats.syscalls, 0);

        let user = HostPmemAccess::new(Arc::clone(&pmem), CallDomain::User);
        let mut uctx = FreeCtx::new(1);
        user.read_pages(&mut uctx, 0, &mut buf).unwrap();
        assert_eq!(uctx.stats.syscalls, 1);
        assert_eq!(uctx.stats.vmexits, 0);
    }

    #[test]
    fn host_nvme_wait_is_idle_spdk_wait_is_busy() {
        let nvme = Arc::new(NvmeDevice::optane(64));
        let mut buf = page_of(0);

        let spdk = SpdkAccess::new(Arc::clone(&nvme));
        let mut sctx = FreeCtx::new(1);
        spdk.read_pages(&mut sctx, 0, &mut buf).unwrap();
        assert_eq!(sctx.breakdown.get(CostCat::Idle), Cycles::ZERO);
        assert!(sctx.breakdown.get(CostCat::DeviceIo) >= Cycles::from_micros(10));

        let host = HostNvmeAccess::new(Arc::clone(&nvme), CallDomain::User);
        let mut hctx = FreeCtx::new(1);
        host.read_pages(&mut hctx, 1, &mut buf).unwrap();
        assert!(hctx.breakdown.get(CostCat::Idle) >= Cycles::from_micros(9));
    }

    #[test]
    fn spdk_write_retries_through_injected_fault() {
        use aquila_sim::fault::FaultPlan;
        let nvme = Arc::new(NvmeDevice::optane(64));
        nvme.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:media_error@op=1").unwrap(),
        ));
        let spdk = SpdkAccess::new(Arc::clone(&nvme));
        let mut ctx = FreeCtx::new(1);
        let data = page_of(0x5A);
        // The first submission fails; the retry layer backs off and the
        // second attempt lands the data.
        spdk.write_pages(&mut ctx, 3, &data).unwrap();
        let mut back = page_of(0);
        spdk.read_pages(&mut ctx, 3, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(!spdk.breaker().unwrap().is_open(ctx.now()));
        assert!(
            ctx.now() >= spdk.retry_policy().backoff_for(1),
            "retry charged its backoff"
        );
    }

    #[test]
    fn breaker_opens_under_sustained_write_failure() {
        use aquila_sim::fault::FaultPlan;
        let nvme = Arc::new(NvmeDevice::optane(64));
        // Both write attempts fail, which meets the tightened breaker
        // threshold below mid-retry.
        nvme.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:media_error@op=1; nvme.write:media_error@op=2").unwrap(),
        ));
        let policy = RetryPolicy {
            max_attempts: 2,
            breaker_threshold: 2,
            ..RetryPolicy::default()
        };
        let spdk = SpdkAccess::with_retry(Arc::clone(&nvme), policy);
        let mut ctx = FreeCtx::new(1);
        let data = page_of(1);
        let err = spdk.write_pages(&mut ctx, 0, &data).unwrap_err();
        assert_eq!(err, DeviceError::CircuitOpen);
        assert!(spdk.breaker().unwrap().is_open(ctx.now()));
        // Reads keep working: the breaker guards only the write path.
        let mut back = page_of(0);
        spdk.read_pages(&mut ctx, 1, &mut back).unwrap();
    }

    #[test]
    fn multi_page_reads_work_through_paths() {
        let nvme = Arc::new(NvmeDevice::optane(64));
        let spdk = SpdkAccess::new(Arc::clone(&nvme));
        let mut ctx = FreeCtx::new(1);
        let data: Vec<u8> = (0..32 * STORE_PAGE)
            .map(|i| (i / STORE_PAGE) as u8)
            .collect();
        spdk.write_pages(&mut ctx, 8, &data).unwrap();
        let mut back = vec![0u8; 32 * STORE_PAGE];
        spdk.read_pages(&mut ctx, 8, &mut back).unwrap();
        assert_eq!(back, data);
    }
}
