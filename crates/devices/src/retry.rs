//! Bounded retry with deterministic backoff, plus a circuit breaker.
//!
//! Device commands can now fail transiently (media errors, timeouts,
//! controller resets — see [`DeviceError::is_transient`]). This module
//! gives every access path one policy for surviving them: retry up to a
//! bound with exponential *virtual-cycle* backoff (charged as Idle, so
//! the schedule stays deterministic), track commands that exceeded the
//! per-command deadline, and trip a [`CircuitBreaker`] after enough
//! consecutive failures so a dead device fails fast instead of melting
//! the run in retry loops. The engine watches the breaker to degrade
//! the region (Async -> sync write-through -> read-only, DESIGN.md §11).
//!
//! `QueueFull` is deliberately *not* retried here: it is backpressure,
//! owned by the submission loops that pace themselves with it.

use std::sync::Arc;

use aquila_sync::Mutex;

use aquila_sim::{metrics, CostCat, Cycles, SimCtx};

use crate::error::DeviceError;

/// Retry/backoff tuning for a storage path.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total command attempts, including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Cycles,
    /// Consecutive failures (across commands) that trip the breaker.
    pub breaker_threshold: u32,
    /// Virtual-time cooldown after a trip before the breaker admits one
    /// half-open probe command (see [`CircuitBreaker`]).
    pub breaker_cooldown: Cycles,
    /// Per-command latency deadline; completions past it bump the
    /// `aquila.retry.deadline_misses` counter (observability only — the
    /// simulated device always completes, so there is no abort path).
    pub command_timeout: Cycles,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff: Cycles::from_micros(5),
            breaker_threshold: 16,
            breaker_cooldown: Cycles::from_micros(500),
            command_timeout: Cycles::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Checks the policy for values that would wedge or bypass the
    /// retry machinery (the config builder rejects these at build time,
    /// so every retry site can trust the policy it is handed).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry.max_attempts must be >= 1 (the first attempt counts)".into());
        }
        if self.breaker_threshold == 0 {
            return Err("retry.breaker_threshold must be >= 1".into());
        }
        if self.breaker_cooldown == Cycles::ZERO {
            // A zero cooldown re-probes every command, defeating the breaker.
            return Err("retry.breaker_cooldown must be > 0".into());
        }
        if self.command_timeout == Cycles::ZERO {
            return Err("retry.command_timeout must be > 0".into());
        }
        Ok(())
    }

    /// Backoff before retry number `retry` (1-based), doubling each time
    /// with a cap so the exponent cannot overflow.
    pub fn backoff_for(&self, retry: u32) -> Cycles {
        self.backoff * (1u64 << retry.saturating_sub(1).min(10))
    }

    /// Runs `attempt` until it succeeds, exhausts the attempt budget, or
    /// hits a non-transient error. Transient failures wait the backoff
    /// (as Idle — the CPU would be parked, not spinning) and feed the
    /// breaker when one is supplied; when the breaker is or becomes
    /// open, the call fails fast with [`DeviceError::CircuitOpen`].
    pub fn run(
        &self,
        ctx: &mut dyn SimCtx,
        breaker: Option<&CircuitBreaker>,
        mut attempt: impl FnMut(&mut dyn SimCtx) -> Result<(), DeviceError>,
    ) -> Result<(), DeviceError> {
        if breaker.is_some_and(|b| b.is_open(ctx.now())) {
            return Err(DeviceError::CircuitOpen);
        }
        let mut tries = 0u32;
        loop {
            match attempt(ctx) {
                Ok(()) => {
                    if let Some(b) = breaker {
                        b.record_success();
                    }
                    return Ok(());
                }
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => {
                    metrics::add(ctx, "aquila.fault.injected", 1);
                    if let Some(b) = breaker {
                        if b.record_failure(ctx.now()) {
                            metrics::add(ctx, "aquila.breaker.trips", 1);
                        }
                        if b.is_open(ctx.now()) {
                            return Err(DeviceError::CircuitOpen);
                        }
                    }
                    tries += 1;
                    if tries >= self.max_attempts {
                        return Err(e);
                    }
                    metrics::add(ctx, "aquila.retry.attempts", 1);
                    let park = ctx.now() + self.backoff_for(tries);
                    ctx.wait_until(park, CostCat::Idle);
                }
            }
        }
    }

    /// Records a completed command's observed latency against the
    /// per-command deadline (no-op without a metrics registry).
    pub fn observe_latency(&self, ctx: &dyn SimCtx, latency: Cycles) {
        if latency > self.command_timeout {
            metrics::add(ctx, "aquila.retry.deadline_misses", 1);
        }
    }
}

/// Breaker phase. `Open` remembers when it tripped so the cooldown is
/// measured in deterministic virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerPhase {
    /// Commands flow; consecutive failures are counted.
    Closed,
    /// Commands fail fast until the cooldown elapses.
    Open {
        /// Virtual time of the trip.
        since: Cycles,
    },
    /// The cooldown elapsed and exactly one probe command was admitted;
    /// everyone else still fails fast until the probe resolves.
    HalfOpen,
}

struct BreakerState {
    consecutive: u32,
    phase: BreakerPhase,
}

/// Trips open after N consecutive command failures; a success before
/// the threshold resets the count. An open breaker fails fast until a
/// virtual-time cooldown elapses, then admits exactly one *half-open
/// probe*: if the probe succeeds the breaker closes (the device
/// healed); if it fails the breaker re-opens and the cooldown restarts.
/// All transitions are keyed off the caller's virtual `now`, so the
/// probe schedule is as deterministic as the rest of the DES.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Cycles,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    /// A breaker that trips after `threshold` consecutive failures and
    /// admits a half-open probe `cooldown` cycles after each trip.
    pub fn new(threshold: u32, cooldown: Cycles) -> Arc<CircuitBreaker> {
        Arc::new(CircuitBreaker {
            threshold: threshold.max(1),
            cooldown: cooldown.max(Cycles(1)),
            state: Mutex::new(BreakerState {
                consecutive: 0,
                phase: BreakerPhase::Closed,
            }),
        })
    }

    /// Whether a command issued at virtual time `now` must fail fast.
    ///
    /// Returning `false` from the `Open` phase *admits the caller as the
    /// half-open probe* — the breaker moves to `HalfOpen` and every
    /// other caller keeps failing fast until the probe's success or
    /// failure is recorded.
    pub fn is_open(&self, now: Cycles) -> bool {
        let mut st = self.state.lock();
        match st.phase {
            BreakerPhase::Closed => false,
            BreakerPhase::Open { since } => {
                if now >= since + self.cooldown {
                    st.phase = BreakerPhase::HalfOpen;
                    false
                } else {
                    true
                }
            }
            BreakerPhase::HalfOpen => true,
        }
    }

    /// Records a command success: closes the breaker (the half-open
    /// probe healed it) and resets the consecutive-failure count.
    pub fn record_success(&self) {
        let mut st = self.state.lock();
        st.consecutive = 0;
        st.phase = BreakerPhase::Closed;
    }

    /// Counts a failure at virtual time `now`; returns `true` when this
    /// one trips (or re-trips, for a failed probe) the breaker.
    pub fn record_failure(&self, now: Cycles) -> bool {
        let mut st = self.state.lock();
        st.consecutive += 1;
        match st.phase {
            BreakerPhase::Closed if st.consecutive >= self.threshold => {
                st.phase = BreakerPhase::Open { since: now };
                true
            }
            BreakerPhase::HalfOpen => {
                st.phase = BreakerPhase::Open { since: now };
                true
            }
            _ => false,
        }
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.state.lock().consecutive
    }
}

impl core::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "CircuitBreaker {{ phase: {:?}, consecutive: {}/{} }}",
            st.phase, st.consecutive, self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn success_passes_through() {
        let p = RetryPolicy::default();
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        p.run(&mut ctx, None, |_| {
            calls += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(ctx.now(), Cycles::ZERO, "no backoff on success");
    }

    #[test]
    fn transient_errors_retry_with_backoff() {
        let p = RetryPolicy::default();
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        p.run(&mut ctx, None, |_| {
            calls += 1;
            if calls < 3 {
                Err(DeviceError::Timeout)
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert_eq!(calls, 3);
        // Two retries: backoff 5 us + 10 us.
        assert_eq!(ctx.now(), p.backoff_for(1) + p.backoff_for(2));
    }

    #[test]
    fn attempt_budget_is_bounded() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        let err = p
            .run(&mut ctx, None, |_| {
                calls += 1;
                Err(DeviceError::MediaError { page: 7 })
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert_eq!(err, DeviceError::MediaError { page: 7 });
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        let p = RetryPolicy::default();
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        let err = p
            .run(&mut ctx, None, |_| {
                calls += 1;
                Err(DeviceError::QueueFull { depth: 8 })
            })
            .unwrap_err();
        assert_eq!(calls, 1, "QueueFull is backpressure, not a retry case");
        assert_eq!(err, DeviceError::QueueFull { depth: 8 });
        assert_eq!(ctx.now(), Cycles::ZERO);
    }

    #[test]
    fn breaker_trips_after_threshold_and_fails_fast() {
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let b = CircuitBreaker::new(3, Cycles::from_millis(100));
        let mut ctx = FreeCtx::new(1);
        // Two commands x up-to-2 attempts of pure failure: the third
        // recorded failure trips the breaker mid-retry.
        let e1 = p
            .run(&mut ctx, Some(&b), |_| Err(DeviceError::Timeout))
            .unwrap_err();
        assert_eq!(e1, DeviceError::Timeout);
        let e2 = p
            .run(&mut ctx, Some(&b), |_| Err(DeviceError::Timeout))
            .unwrap_err();
        assert_eq!(e2, DeviceError::CircuitOpen);
        assert!(b.is_open(ctx.now()));
        // Open breaker fails fast without calling the closure.
        let mut calls = 0;
        let e3 = p
            .run(&mut ctx, Some(&b), |_| {
                calls += 1;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(e3, DeviceError::CircuitOpen);
        assert_eq!(calls, 0);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let b = CircuitBreaker::new(2, Cycles(1000));
        assert!(!b.record_failure(Cycles(0)));
        b.record_success();
        assert!(!b.record_failure(Cycles(1)));
        assert!(
            b.record_failure(Cycles(2)),
            "second consecutive failure trips"
        );
        assert!(!b.record_failure(Cycles(3)), "trip reports only once");
    }

    #[test]
    fn breaker_half_open_probe_closes_on_success() {
        let b = CircuitBreaker::new(1, Cycles(1000));
        assert!(b.record_failure(Cycles(100)), "first failure trips at 1");
        // Inside the cooldown: fail fast.
        assert!(b.is_open(Cycles(500)));
        assert!(b.is_open(Cycles(1099)));
        // Cooldown elapsed: exactly one caller is admitted as the probe,
        // everyone else keeps failing fast until it resolves.
        assert!(!b.is_open(Cycles(1100)), "probe admitted after cooldown");
        assert!(b.is_open(Cycles(1100)), "only one probe at a time");
        // Probe succeeds: the breaker closes and stays closed.
        b.record_success();
        assert!(!b.is_open(Cycles(1200)));
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn breaker_half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(2, Cycles(1000));
        assert!(!b.record_failure(Cycles(0)));
        assert!(b.record_failure(Cycles(10)), "trips at threshold");
        assert!(!b.is_open(Cycles(2000)), "probe admitted");
        // Probe fails: re-trip, cooldown restarts from the failure time.
        assert!(b.record_failure(Cycles(2100)), "failed probe re-trips");
        assert!(b.is_open(Cycles(2500)));
        assert!(b.is_open(Cycles(3099)), "cooldown restarted at 2100");
        assert!(!b.is_open(Cycles(3100)), "second probe after re-cooldown");
        b.record_success();
        assert!(!b.is_open(Cycles(9999)));
    }

    #[test]
    fn retry_run_drives_probe_through_the_breaker() {
        // End-to-end trip -> cooldown -> probe -> close through run().
        let p = RetryPolicy {
            max_attempts: 1,
            breaker_threshold: 2,
            breaker_cooldown: Cycles(10_000),
            ..RetryPolicy::default()
        };
        let b = CircuitBreaker::new(p.breaker_threshold, p.breaker_cooldown);
        let mut ctx = FreeCtx::new(1);
        for _ in 0..2 {
            let _ = p
                .run(&mut ctx, Some(&b), |_| {
                    Err(DeviceError::MediaError { page: 3 })
                })
                .unwrap_err();
        }
        assert!(b.is_open(ctx.now()), "tripped");
        assert_eq!(
            p.run(&mut ctx, Some(&b), |_| Ok(())).unwrap_err(),
            DeviceError::CircuitOpen,
            "fails fast inside the cooldown"
        );
        // Park past the cooldown: the next command is the probe and a
        // healed device closes the breaker for everyone.
        let wake = ctx.now() + p.breaker_cooldown;
        ctx.wait_until(wake, CostCat::Idle);
        p.run(&mut ctx, Some(&b), |_| Ok(())).unwrap();
        assert!(!b.is_open(ctx.now()), "probe success re-armed the path");
        p.run(&mut ctx, Some(&b), |_| Ok(())).unwrap();
    }

    #[test]
    fn policy_validation_rejects_degenerate_values() {
        assert!(RetryPolicy::default().validate().is_ok());
        for bad in [
            RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                breaker_threshold: 0,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                breaker_cooldown: Cycles::ZERO,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                command_timeout: Cycles::ZERO,
                ..RetryPolicy::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff: Cycles(100),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Cycles(100));
        assert_eq!(p.backoff_for(2), Cycles(200));
        assert_eq!(p.backoff_for(3), Cycles(400));
        assert_eq!(p.backoff_for(40), Cycles(100 * 1024), "exponent capped");
    }
}
