//! Bounded retry with deterministic backoff, plus a circuit breaker.
//!
//! Device commands can now fail transiently (media errors, timeouts,
//! controller resets — see [`DeviceError::is_transient`]). This module
//! gives every access path one policy for surviving them: retry up to a
//! bound with exponential *virtual-cycle* backoff (charged as Idle, so
//! the schedule stays deterministic), track commands that exceeded the
//! per-command deadline, and trip a [`CircuitBreaker`] after enough
//! consecutive failures so a dead device fails fast instead of melting
//! the run in retry loops. The engine watches the breaker to degrade
//! the region (Async -> sync write-through -> read-only, DESIGN.md §11).
//!
//! `QueueFull` is deliberately *not* retried here: it is backpressure,
//! owned by the submission loops that pace themselves with it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use aquila_sync::Mutex;

use aquila_sim::{metrics, CostCat, Cycles, SimCtx};

use crate::error::DeviceError;

/// Retry/backoff tuning for a storage path.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total command attempts, including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Cycles,
    /// Consecutive failures (across commands) that trip the breaker.
    pub breaker_threshold: u32,
    /// Per-command latency deadline; completions past it bump the
    /// `aquila.retry.deadline_misses` counter (observability only — the
    /// simulated device always completes, so there is no abort path).
    pub command_timeout: Cycles,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff: Cycles::from_micros(5),
            breaker_threshold: 16,
            command_timeout: Cycles::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based), doubling each time
    /// with a cap so the exponent cannot overflow.
    pub fn backoff_for(&self, retry: u32) -> Cycles {
        self.backoff * (1u64 << retry.saturating_sub(1).min(10))
    }

    /// Runs `attempt` until it succeeds, exhausts the attempt budget, or
    /// hits a non-transient error. Transient failures wait the backoff
    /// (as Idle — the CPU would be parked, not spinning) and feed the
    /// breaker when one is supplied; when the breaker is or becomes
    /// open, the call fails fast with [`DeviceError::CircuitOpen`].
    pub fn run(
        &self,
        ctx: &mut dyn SimCtx,
        breaker: Option<&CircuitBreaker>,
        mut attempt: impl FnMut(&mut dyn SimCtx) -> Result<(), DeviceError>,
    ) -> Result<(), DeviceError> {
        if breaker.is_some_and(|b| b.is_open()) {
            return Err(DeviceError::CircuitOpen);
        }
        let mut tries = 0u32;
        loop {
            match attempt(ctx) {
                Ok(()) => {
                    if let Some(b) = breaker {
                        b.record_success();
                    }
                    return Ok(());
                }
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => {
                    metrics::add(ctx, "aquila.fault.injected", 1);
                    if let Some(b) = breaker {
                        if b.record_failure() {
                            metrics::add(ctx, "aquila.breaker.trips", 1);
                        }
                        if b.is_open() {
                            return Err(DeviceError::CircuitOpen);
                        }
                    }
                    tries += 1;
                    if tries >= self.max_attempts {
                        return Err(e);
                    }
                    metrics::add(ctx, "aquila.retry.attempts", 1);
                    let park = ctx.now() + self.backoff_for(tries);
                    ctx.wait_until(park, CostCat::Idle);
                }
            }
        }
    }

    /// Records a completed command's observed latency against the
    /// per-command deadline (no-op without a metrics registry).
    pub fn observe_latency(&self, ctx: &dyn SimCtx, latency: Cycles) {
        if latency > self.command_timeout {
            metrics::add(ctx, "aquila.retry.deadline_misses", 1);
        }
    }
}

/// Trips open after N consecutive command failures; a success before
/// the threshold resets the count. Once open it stays open — the
/// engine's degradation machine, not the breaker, decides what happens
/// next.
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: Mutex<u32>,
    open: AtomicBool,
}

impl CircuitBreaker {
    /// A breaker that trips after `threshold` consecutive failures.
    pub fn new(threshold: u32) -> Arc<CircuitBreaker> {
        Arc::new(CircuitBreaker {
            threshold: threshold.max(1),
            consecutive: Mutex::new(0),
            open: AtomicBool::new(false),
        })
    }

    /// Whether the breaker has tripped.
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    /// Resets the consecutive-failure count (a command succeeded).
    pub fn record_success(&self) {
        *self.consecutive.lock() = 0;
    }

    /// Counts a failure; returns `true` when this one trips the breaker.
    pub fn record_failure(&self) -> bool {
        let mut n = self.consecutive.lock();
        *n += 1;
        if *n >= self.threshold && !self.open.swap(true, Ordering::AcqRel) {
            return true;
        }
        false
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        *self.consecutive.lock()
    }
}

impl core::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "CircuitBreaker {{ open: {}, consecutive: {}/{} }}",
            self.is_open(),
            self.consecutive_failures(),
            self.threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    #[test]
    fn success_passes_through() {
        let p = RetryPolicy::default();
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        p.run(&mut ctx, None, |_| {
            calls += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(ctx.now(), Cycles::ZERO, "no backoff on success");
    }

    #[test]
    fn transient_errors_retry_with_backoff() {
        let p = RetryPolicy::default();
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        p.run(&mut ctx, None, |_| {
            calls += 1;
            if calls < 3 {
                Err(DeviceError::Timeout)
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert_eq!(calls, 3);
        // Two retries: backoff 5 us + 10 us.
        assert_eq!(ctx.now(), p.backoff_for(1) + p.backoff_for(2));
    }

    #[test]
    fn attempt_budget_is_bounded() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        let err = p
            .run(&mut ctx, None, |_| {
                calls += 1;
                Err(DeviceError::MediaError { page: 7 })
            })
            .unwrap_err();
        assert_eq!(calls, 3);
        assert_eq!(err, DeviceError::MediaError { page: 7 });
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        let p = RetryPolicy::default();
        let mut ctx = FreeCtx::new(1);
        let mut calls = 0;
        let err = p
            .run(&mut ctx, None, |_| {
                calls += 1;
                Err(DeviceError::QueueFull { depth: 8 })
            })
            .unwrap_err();
        assert_eq!(calls, 1, "QueueFull is backpressure, not a retry case");
        assert_eq!(err, DeviceError::QueueFull { depth: 8 });
        assert_eq!(ctx.now(), Cycles::ZERO);
    }

    #[test]
    fn breaker_trips_after_threshold_and_fails_fast() {
        let p = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let b = CircuitBreaker::new(3);
        let mut ctx = FreeCtx::new(1);
        // Two commands x up-to-2 attempts of pure failure: the third
        // recorded failure trips the breaker mid-retry.
        let e1 = p
            .run(&mut ctx, Some(&b), |_| Err(DeviceError::Timeout))
            .unwrap_err();
        assert_eq!(e1, DeviceError::Timeout);
        let e2 = p
            .run(&mut ctx, Some(&b), |_| Err(DeviceError::Timeout))
            .unwrap_err();
        assert_eq!(e2, DeviceError::CircuitOpen);
        assert!(b.is_open());
        // Open breaker fails fast without calling the closure.
        let mut calls = 0;
        let e3 = p
            .run(&mut ctx, Some(&b), |_| {
                calls += 1;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(e3, DeviceError::CircuitOpen);
        assert_eq!(calls, 0);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let b = CircuitBreaker::new(2);
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert!(b.record_failure(), "second consecutive failure trips");
        assert!(!b.record_failure(), "trip reports only once");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff: Cycles(100),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), Cycles(100));
        assert_eq!(p.backoff_for(2), Cycles(200));
        assert_eq!(p.backoff_for(3), Cycles(400));
        assert_eq!(p.backoff_for(40), Cycles(100 * 1024), "exponent capped");
    }
}
