//! 2-way mirrored NVMe access with per-sector checksums and read-repair.
//!
//! The paper's durability story assumes the device returns the bytes it
//! was given; real fleets see bit-rot and latent sector errors. This
//! layer closes that gap end to end:
//!
//! - every write lands on *two* devices (primary + replica) and records
//!   a CRC32 per 512-byte sector;
//! - every read verifies the primary against the recorded checksums
//!   before a byte reaches the page cache — a mismatch or an unreadable
//!   (latent) sector triggers *read-repair*: fetch the replica, verify
//!   it, hand the clean copy to the caller, and rewrite the primary;
//! - a background scrubber (driven by the engine) walks LBAs through
//!   [`MirrorAccess::scrub_page`] so cold corruption is found and
//!   repaired before a tenant ever asks for the page;
//! - when *both* copies fail verification the read surfaces
//!   [`DeviceError::Corrupt`] instead of silently serving garbage, and
//!   the engine degrades the region (DESIGN.md §16).
//!
//! Never-written sectors verify against the CRC of an all-zero sector
//! (the store reads zeros for them), so even the first fill of a fresh
//! page is covered.
//!
//! The mirror deliberately reports no raw NVMe device
//! ([`StorageAccess::nvme_device`] returns `None`): the engine's
//! batched deep-queue writeback would bypass the checksum table and the
//! replica, so mirrored configurations stay on the blocking write path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use aquila_sim::fault::SECTOR_SIZE;
use aquila_sim::SimCtx;
use aquila_sync::crc32;

use crate::access::{AccessKind, SpdkAccess, StorageAccess};
use crate::error::DeviceError;
use crate::nvme::{NvmeDevice, SECTORS_PER_PAGE};
use crate::retry::{CircuitBreaker, RetryPolicy};
use crate::store::STORE_PAGE;

/// CRC of a never-written (all-zero) sector.
fn zero_sector_crc() -> u32 {
    static ZERO: OnceLock<u32> = OnceLock::new();
    *ZERO.get_or_init(|| crc32(&[0u8; SECTOR_SIZE]))
}

/// A checksum-table entry: bit 32 marks "recorded", low 32 bits hold
/// the CRC. Zero means the sector was never written through the mirror
/// and verifies against [`zero_sector_crc`].
fn pack(crc: u32) -> u64 {
    (1u64 << 32) | crc as u64
}

/// Integrity counters a mirrored path exposes for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Pages whose primary read failed checksum verification (silent
    /// corruption caught before reaching a caller).
    pub detected: u64,
    /// Pages repaired from the replica (checksum mismatch or latent
    /// primary error).
    pub repaired: u64,
    /// Pages where the replica also failed verification; the read
    /// surfaced [`DeviceError::Corrupt`].
    pub unrepairable: u64,
    /// Repairs that skipped the primary rewrite (a concurrent writer
    /// superseded the page, or the rewrite itself failed; the caller
    /// still got clean data).
    pub repair_skipped: u64,
    /// Ground truth from the primary device: pages of corrupt data it
    /// silently returned. `tainted - detected` is the number of
    /// corruptions that reached a caller unnoticed.
    pub tainted: u64,
}

impl IntegrityCounters {
    /// Corrupt pages the device returned that no checksum caught. The
    /// integrity invariant is that this is zero whenever checksums are
    /// enabled.
    pub fn undetected(&self) -> u64 {
        self.tainted.saturating_sub(self.detected)
    }
}

/// Two-way mirrored SPDK-NVMe access with sector checksums.
pub struct MirrorAccess {
    primary: SpdkAccess,
    replica: SpdkAccess,
    checksums: bool,
    retry: RetryPolicy,
    /// Per-sector packed checksum entries (see [`pack`]).
    sums: Vec<AtomicU64>,
    /// Per-page write version, bumped when a write *begins*. Repair
    /// rechecks it before rewriting the primary so a scrub racing a
    /// writeback never resurrects stale bytes.
    versions: Vec<AtomicU64>,
    detected: AtomicU64,
    repaired: AtomicU64,
    unrepairable: AtomicU64,
    repair_skipped: AtomicU64,
}

impl MirrorAccess {
    /// Mirrors `primary` onto `replica` with checksums enabled and the
    /// default retry policy.
    pub fn new(primary: Arc<NvmeDevice>, replica: Arc<NvmeDevice>) -> MirrorAccess {
        MirrorAccess::with_options(primary, replica, RetryPolicy::default(), true)
    }

    /// Full-control constructor. `checksums: false` is the ablation
    /// that shows why verification matters: corruption then flows
    /// through undetected.
    ///
    /// Content already on the primary (a formatted blobstore, a
    /// recovered crash image) is synced to the replica and its
    /// checksums are recorded, modeling mirrors attached from birth.
    pub fn with_options(
        primary: Arc<NvmeDevice>,
        replica: Arc<NvmeDevice>,
        retry: RetryPolicy,
        checksums: bool,
    ) -> MirrorAccess {
        let pages = primary.capacity_pages().min(replica.capacity_pages());
        let sums = (0..pages * SECTORS_PER_PAGE)
            .map(|_| AtomicU64::new(0))
            .collect();
        let versions = (0..pages).map(|_| AtomicU64::new(0)).collect();
        let m = MirrorAccess {
            primary: SpdkAccess::with_retry(primary, retry),
            replica: SpdkAccess::with_retry(replica, retry),
            checksums,
            retry,
            sums,
            versions,
            detected: AtomicU64::new(0),
            repaired: AtomicU64::new(0),
            unrepairable: AtomicU64::new(0),
            repair_skipped: AtomicU64::new(0),
        };
        m.sync_existing(pages);
        m
    }

    /// Copies pre-existing primary content to the replica and seeds the
    /// checksum table (free of simulated time: the mirror existed
    /// before the run).
    fn sync_existing(&self, pages: u64) {
        let mut buf = [0u8; STORE_PAGE];
        for p in 0..pages {
            if self
                .primary
                .device()
                .store()
                .read_at(p, 0, &mut buf)
                .is_err()
            {
                continue;
            }
            if buf.iter().all(|&b| b == 0) {
                continue;
            }
            let _ = self.replica.device().store().write_at(p, 0, &buf);
            self.record_sums(p, &buf);
        }
    }

    /// The primary device (fault plans attach here).
    pub fn primary_device(&self) -> &Arc<NvmeDevice> {
        self.primary.device()
    }

    /// The replica device.
    pub fn replica_device(&self) -> &Arc<NvmeDevice> {
        self.replica.device()
    }

    fn record_sums(&self, page: u64, data: &[u8]) {
        for s in 0..SECTORS_PER_PAGE as usize {
            let crc = crc32(&data[s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE]);
            self.sums[(page * SECTORS_PER_PAGE) as usize + s].store(pack(crc), Ordering::SeqCst);
        }
    }

    /// Whether every sector of `data` matches its recorded checksum.
    fn verify_page(&self, page: u64, data: &[u8]) -> bool {
        for s in 0..SECTORS_PER_PAGE as usize {
            let entry = self.sums[(page * SECTORS_PER_PAGE) as usize + s].load(Ordering::SeqCst);
            let expected = if entry == 0 {
                zero_sector_crc()
            } else {
                entry as u32
            };
            if crc32(&data[s * SECTOR_SIZE..(s + 1) * SECTOR_SIZE]) != expected {
                return false;
            }
        }
        true
    }

    /// Reads one page with verification and repair. Returns whether a
    /// repair happened.
    fn fetch_page(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        out: &mut [u8],
    ) -> Result<bool, DeviceError> {
        let v0 = self.versions[page as usize].load(Ordering::SeqCst);
        match self.primary.read_pages(ctx, page, out) {
            Ok(()) => {
                if !self.checksums || self.verify_page(page, out) {
                    return Ok(false);
                }
                // Silent corruption caught before it reaches the caller.
                self.detected.fetch_add(1, Ordering::SeqCst);
                aquila_sim::metrics::add(ctx, "aquila.integrity.detected", 1);
                self.repair_page(ctx, page, v0, out)
            }
            // The primary cannot produce the page at all (latent sector,
            // persistent media error): loud, so not "detected", but the
            // replica can still serve and heal it.
            Err(DeviceError::MediaError { .. }) => self.repair_page(ctx, page, v0, out),
            Err(e) => Err(e),
        }
    }

    /// Fetches the replica copy, verifies it, hands it to the caller,
    /// and rewrites the primary (which also heals latent sectors).
    fn repair_page(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        v0: u64,
        out: &mut [u8],
    ) -> Result<bool, DeviceError> {
        let mut rep = vec![0u8; STORE_PAGE];
        if self.replica.read_pages(ctx, page, &mut rep).is_err() {
            self.unrepairable.fetch_add(1, Ordering::SeqCst);
            aquila_sim::metrics::add(ctx, "aquila.integrity.unrepairable", 1);
            return Err(DeviceError::Corrupt { page });
        }
        if self.checksums && !self.verify_page(page, &rep) {
            if self.versions[page as usize].load(Ordering::SeqCst) != v0 {
                // A writer moved the page mid-verification; the error is
                // transient and a retry reads the settled state.
                self.repair_skipped.fetch_add(1, Ordering::SeqCst);
                return Err(DeviceError::Corrupt { page });
            }
            self.unrepairable.fetch_add(1, Ordering::SeqCst);
            aquila_sim::metrics::add(ctx, "aquila.integrity.unrepairable", 1);
            return Err(DeviceError::Corrupt { page });
        }
        out.copy_from_slice(&rep);
        // Rewrite the primary unless a newer write superseded the page
        // (the caller still gets the clean copy either way).
        if self.versions[page as usize].load(Ordering::SeqCst) == v0 {
            if self.primary.write_pages(ctx, page, &rep).is_err() {
                self.repair_skipped.fetch_add(1, Ordering::SeqCst);
            }
        } else {
            self.repair_skipped.fetch_add(1, Ordering::SeqCst);
        }
        self.repaired.fetch_add(1, Ordering::SeqCst);
        aquila_sim::metrics::add(ctx, "aquila.integrity.repaired", 1);
        Ok(true)
    }
}

impl StorageAccess for MirrorAccess {
    fn kind(&self) -> AccessKind {
        AccessKind::SpdkNvme
    }

    fn capacity_pages(&self) -> u64 {
        self.versions.len() as u64
    }

    fn reset_timing(&self) {
        self.primary.reset_timing();
        self.replica.reset_timing();
    }

    fn read_pages(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
    ) -> Result<(), DeviceError> {
        // Page-at-a-time so one bad sector repairs exactly one page;
        // the mirror forfeits multi-page command coalescing.
        for (i, chunk) in buf.chunks_mut(STORE_PAGE).enumerate() {
            let p = page + i as u64;
            // Bounded retry: a one-shot in-flight flip re-reads clean;
            // persistent double corruption exhausts the budget and the
            // engine degrades the region. No breaker — degraded regions
            // must keep serving reads (DESIGN.md §11).
            self.retry
                .run(ctx, None, |ctx| self.fetch_page(ctx, p, chunk).map(|_| ()))?;
        }
        Ok(())
    }

    fn write_pages(&self, ctx: &mut dyn SimCtx, page: u64, buf: &[u8]) -> Result<(), DeviceError> {
        let pages = buf.len() / STORE_PAGE;
        // Bump versions first so an in-flight scrub of the old bytes
        // never rewrites them over this write.
        for i in 0..pages {
            self.versions[(page + i as u64) as usize].fetch_add(1, Ordering::SeqCst);
        }
        if self.checksums {
            for (i, chunk) in buf.chunks(STORE_PAGE).enumerate() {
                self.record_sums(page + i as u64, chunk);
            }
        }
        self.primary.write_pages(ctx, page, buf)?;
        self.replica.write_pages(ctx, page, buf)
    }

    fn nvme_device(&self) -> Option<&Arc<NvmeDevice>> {
        // Deliberately none: deep-queue batched writeback would bypass
        // the checksum table and the replica (module docs).
        None
    }

    fn breaker(&self) -> Option<&Arc<CircuitBreaker>> {
        self.primary.breaker()
    }

    fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn scrub_page(&self, ctx: &mut dyn SimCtx, page: u64) -> Result<bool, DeviceError> {
        if !self.checksums || page >= self.capacity_pages() {
            return Ok(false);
        }
        let mut buf = vec![0u8; STORE_PAGE];
        self.fetch_page(ctx, page, &mut buf)
    }

    fn integrity_counters(&self) -> Option<IntegrityCounters> {
        Some(IntegrityCounters {
            detected: self.detected.load(Ordering::SeqCst),
            repaired: self.repaired.load(Ordering::SeqCst),
            unrepairable: self.unrepairable.load(Ordering::SeqCst),
            repair_skipped: self.repair_skipped.load(Ordering::SeqCst),
            tainted: self.primary.device().tainted_reads(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::{BufRef, NvmeOp};
    use aquila_sim::fault::FaultPlan;
    use aquila_sim::{Cycles, FreeCtx};

    fn mirror_over(plan: Option<&str>) -> MirrorAccess {
        let primary = Arc::new(NvmeDevice::optane(16));
        if let Some(spec) = plan {
            primary.set_fault_plan(Arc::new(FaultPlan::parse(spec).unwrap()));
        }
        MirrorAccess::new(primary, Arc::new(NvmeDevice::optane(16)))
    }

    fn page_of(b: u8) -> Vec<u8> {
        vec![b; STORE_PAGE]
    }

    #[test]
    fn clean_roundtrip_keeps_counters_zero() {
        let m = mirror_over(None);
        let mut ctx = FreeCtx::new(1);
        let data = page_of(0x42);
        m.write_pages(&mut ctx, 3, &data).unwrap();
        let mut back = page_of(0);
        m.read_pages(&mut ctx, 3, &mut back).unwrap();
        assert_eq!(back, data);
        let c = m.integrity_counters().unwrap();
        assert_eq!(c, IntegrityCounters::default());
        // The replica holds the same bytes.
        let mut rep = page_of(0);
        m.replica_device()
            .create_qpair()
            .submit(Cycles(0), NvmeOp::Read, 3, 1, BufRef::Mut(&mut rep))
            .unwrap();
        assert_eq!(rep, data);
    }

    #[test]
    fn silent_write_corruption_is_detected_and_repaired() {
        let m = mirror_over(Some("nvme.write:corrupt=8@op=1"));
        let mut ctx = FreeCtx::new(1);
        let data = page_of(0x5A);
        // The corrupted write lands flipped on the primary, clean on the
        // replica (the plan is attached to the primary only).
        m.write_pages(&mut ctx, 2, &data).unwrap();
        assert!(m.primary_device().poisoned_sectors() > 0);
        // The read catches the mismatch and serves the replica's copy.
        let mut back = page_of(0);
        m.read_pages(&mut ctx, 2, &mut back).unwrap();
        assert_eq!(back, data, "caller saw clean bytes");
        let c = m.integrity_counters().unwrap();
        assert!(c.detected >= 1);
        assert!(c.repaired >= 1);
        assert_eq!(c.unrepairable, 0);
        assert_eq!(c.undetected(), 0, "every taint was caught");
        // Read-repair healed the primary: a raw device read is clean.
        assert_eq!(m.primary_device().poisoned_sectors(), 0);
        let mut raw = page_of(0);
        m.primary_device()
            .create_qpair()
            .submit(Cycles(0), NvmeOp::Read, 2, 1, BufRef::Mut(&mut raw))
            .unwrap();
        assert_eq!(raw, data);
    }

    #[test]
    fn in_flight_read_flip_is_served_from_replica() {
        let m = mirror_over(Some("nvme.read:corrupt=2@op=2"));
        let mut ctx = FreeCtx::new(1);
        let data = page_of(0x17);
        m.write_pages(&mut ctx, 1, &data).unwrap(); // reads op 0 so far
        let mut back = page_of(0);
        m.read_pages(&mut ctx, 1, &mut back).unwrap();
        m.read_pages(&mut ctx, 1, &mut back).unwrap();
        assert_eq!(back, data);
        let c = m.integrity_counters().unwrap();
        assert!(c.detected >= 1, "the flipped transfer was caught");
        assert_eq!(c.undetected(), 0);
    }

    #[test]
    fn latent_primary_sector_repairs_from_replica() {
        let m = mirror_over(Some("nvme.read:latent=2@op=1"));
        let mut ctx = FreeCtx::new(1);
        let data = page_of(0x33);
        m.write_pages(&mut ctx, 4, &data).unwrap();
        let mut back = page_of(0);
        m.read_pages(&mut ctx, 4, &mut back).unwrap();
        assert_eq!(back, data, "replica served through the latent error");
        let c = m.integrity_counters().unwrap();
        assert!(c.repaired >= 1);
        // The repair rewrite healed the latent sectors.
        assert_eq!(m.primary_device().latent_sectors(), 0);
    }

    #[test]
    fn double_corruption_surfaces_typed_error() {
        let primary = Arc::new(NvmeDevice::optane(16));
        let replica = Arc::new(NvmeDevice::optane(16));
        // The same deterministic flips land on both copies, so the
        // replica cannot repair the primary.
        primary.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:corrupt=8@op=1").unwrap(),
        ));
        replica.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:corrupt=8@op=1").unwrap(),
        ));
        let m = MirrorAccess::new(primary, replica);
        let mut ctx = FreeCtx::new(1);
        m.write_pages(&mut ctx, 5, &page_of(0x77)).unwrap();
        let mut back = page_of(0);
        let err = m.read_pages(&mut ctx, 5, &mut back).unwrap_err();
        assert_eq!(err, DeviceError::Corrupt { page: 5 });
        let c = m.integrity_counters().unwrap();
        assert!(c.unrepairable >= 1);
        assert_eq!(c.undetected(), 0, "still nothing served silently");
    }

    #[test]
    fn scrubbing_repairs_cold_corruption_proactively() {
        let m = mirror_over(Some("nvme.write:corrupt=4@op=2"));
        let mut ctx = FreeCtx::new(1);
        m.write_pages(&mut ctx, 0, &page_of(0x01)).unwrap();
        m.write_pages(&mut ctx, 7, &page_of(0x02)).unwrap(); // flips here
        assert!(m.primary_device().poisoned_sectors() > 0);
        let mut scrubbed = 0;
        for p in 0..m.capacity_pages() {
            if m.scrub_page(&mut ctx, p).unwrap() {
                scrubbed += 1;
            }
        }
        assert_eq!(scrubbed, 1, "exactly the poisoned page was repaired");
        assert_eq!(m.primary_device().poisoned_sectors(), 0);
        // A later read needs no repair.
        let before = m.integrity_counters().unwrap().repaired;
        let mut back = page_of(0);
        m.read_pages(&mut ctx, 7, &mut back).unwrap();
        assert_eq!(back, page_of(0x02));
        assert_eq!(m.integrity_counters().unwrap().repaired, before);
    }

    #[test]
    fn disabling_checksums_lets_corruption_through_undetected() {
        let primary = Arc::new(NvmeDevice::optane(16));
        primary.set_fault_plan(Arc::new(
            FaultPlan::parse("nvme.write:corrupt=4@op=1").unwrap(),
        ));
        let m = MirrorAccess::with_options(
            primary,
            Arc::new(NvmeDevice::optane(16)),
            RetryPolicy::default(),
            false,
        );
        let mut ctx = FreeCtx::new(1);
        let data = page_of(0x5A);
        m.write_pages(&mut ctx, 2, &data).unwrap();
        let mut back = page_of(0);
        m.read_pages(&mut ctx, 2, &mut back).unwrap();
        assert_ne!(back, data, "garbage flowed straight through");
        let c = m.integrity_counters().unwrap();
        assert_eq!(c.detected, 0);
        assert!(
            c.undetected() > 0,
            "the ablation shows why checksums matter"
        );
    }

    #[test]
    fn mirrored_faulty_run_is_byte_identical_to_fault_free_run() {
        // Repair equivalence: with corrupt + latent plans active on the
        // primary, a mirrored run's logical reads AND its final primary
        // image match a fault-free run exactly.
        let run = |spec: Option<&str>| -> (Vec<Vec<u8>>, Vec<u8>) {
            let m = mirror_over(spec);
            let mut ctx = FreeCtx::new(7);
            for p in 0..8u64 {
                let data: Vec<u8> = (0..STORE_PAGE)
                    .map(|i| (i as u64 * 31 + p * 7) as u8)
                    .collect();
                m.write_pages(&mut ctx, p, &data).unwrap();
            }
            let mut reads = Vec::new();
            for p in 0..8u64 {
                let mut buf = page_of(0);
                m.read_pages(&mut ctx, p, &mut buf).unwrap();
                reads.push(buf);
            }
            (reads, m.primary_device().store().snapshot())
        };
        let (clean_reads, clean_image) = run(None);
        let (faulty_reads, faulty_image) = run(Some(
            "nvme.write:corrupt=16@op=3; nvme.read:corrupt=2@op=2; nvme.read:latent=2@op=5",
        ));
        assert_eq!(clean_reads, faulty_reads, "logical reads identical");
        assert_eq!(clean_image, faulty_image, "final device image identical");
    }
}
