//! Storage substrate for the Aquila reproduction: devices, access paths,
//! and the SPDK-style blobstore.
//!
//! - [`nvme::NvmeDevice`] — an Optane P4800X-class NVMe model with real
//!   queue-pair submission/completion and an IOPS/bandwidth-capped timing
//!   model;
//! - [`pmem::PmemDevice`] — byte-addressable NVM with DAX access and the
//!   paper's SIMD-vs-scalar memcpy cost distinction;
//! - [`access`] — the four storage paths of Figure 8(c) (SPDK-NVMe,
//!   HOST-NVMe, DAX-pmem, HOST-pmem) behind one [`access::StorageAccess`]
//!   trait;
//! - [`spdk::Blobstore`] — the flat blob namespace Aquila maps files onto.
//!
//! Device contents are real bytes; only the timing is modelled.

pub mod access;
pub mod error;
pub mod mirror;
pub mod nvme;
pub mod pmem;
pub mod retry;
pub mod spdk;
pub mod store;

pub use access::{
    AccessKind, CallDomain, DaxAccess, HostNvmeAccess, HostPmemAccess, SpdkAccess, StorageAccess,
};
pub use error::DeviceError;
pub use mirror::{IntegrityCounters, MirrorAccess};
pub use nvme::{BufRef, NvmeCompletion, NvmeDevice, NvmeOp, NvmeProfile, QueuePair};
pub use pmem::{PmemDevice, PmemProfile};
pub use retry::{CircuitBreaker, RetryPolicy};
pub use spdk::{BlobError, BlobId, Blobstore, MD_PAGES, PAGES_PER_CLUSTER};
pub use store::{PageStore, STORE_PAGE};
