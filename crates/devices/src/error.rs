//! Device-level errors.
//!
//! Storage paths used to `panic!` on out-of-range I/O, mismatched
//! buffers, and overfull queues. Those conditions are *reportable*: a
//! mis-sized mmap window or an evictor pushing past its queue depth is
//! a caller bug or a backpressure signal, not a reason to abort the
//! simulation. Every fallible device operation returns [`DeviceError`],
//! which the engine surfaces through `AquilaError::Device`.

/// An error from a device-model operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// An I/O touched pages beyond the device capacity.
    OutOfRange {
        /// First page of the offending range.
        page: u64,
        /// Length of the range in pages.
        pages: usize,
        /// Device capacity in pages.
        capacity: u64,
    },
    /// A sub-page access crossed its page boundary.
    CrossesPage {
        /// Offset within the page.
        offset: usize,
        /// Length of the access.
        len: usize,
    },
    /// A buffer length did not match the requested page count.
    BufferSize {
        /// Bytes the operation required.
        expected: usize,
        /// Bytes the caller supplied.
        got: usize,
    },
    /// Buffer mutability did not match the opcode (read needs `Mut`,
    /// write needs `Shared`).
    BufferDirection,
    /// A bounded queue pair is full; poll completions and resubmit.
    QueueFull {
        /// The queue depth that was exceeded.
        depth: usize,
    },
    /// The medium failed the command (uncorrectable error). Transient;
    /// retryable with backoff.
    MediaError {
        /// First page of the failed transfer.
        page: u64,
    },
    /// The command did not complete within the device's deadline.
    /// Transient; retryable with backoff.
    Timeout,
    /// The controller reset; in-flight state was lost. Transient;
    /// retryable with backoff.
    DeviceReset,
    /// The retry layer's circuit breaker is open: too many consecutive
    /// command failures. Not retryable — callers must degrade.
    CircuitOpen,
    /// Data read back failed its integrity check and no replica could
    /// supply a clean copy. Transient from the retry layer's point of
    /// view (a one-shot in-flight flip re-reads clean), but persistent
    /// corruption exhausts the budget and feeds the breaker, so the
    /// engine degrades the region instead of serving garbage.
    Corrupt {
        /// First page of the corrupt transfer.
        page: u64,
    },
}

impl core::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceError::OutOfRange {
                page,
                pages,
                capacity,
            } => write!(
                f,
                "I/O beyond device capacity: pages {page}..{} of {capacity}",
                page + *pages as u64
            ),
            DeviceError::CrossesPage { offset, len } => {
                write!(
                    f,
                    "access at offset {offset} len {len} crosses page boundary"
                )
            }
            DeviceError::BufferSize { expected, got } => {
                write!(
                    f,
                    "buffer size {got} does not match transfer size {expected}"
                )
            }
            DeviceError::BufferDirection => {
                write!(f, "buffer mutability does not match opcode")
            }
            DeviceError::QueueFull { depth } => {
                write!(f, "queue pair full (depth {depth})")
            }
            DeviceError::MediaError { page } => {
                write!(f, "uncorrectable media error at page {page}")
            }
            DeviceError::Timeout => write!(f, "command timed out"),
            DeviceError::DeviceReset => write!(f, "device reset; command lost"),
            DeviceError::CircuitOpen => {
                write!(f, "circuit breaker open after consecutive device failures")
            }
            DeviceError::Corrupt { page } => {
                write!(f, "unrepairable data corruption at page {page}")
            }
        }
    }
}

impl DeviceError {
    /// Whether the error is a transient device condition worth retrying
    /// (as opposed to a caller bug or a backpressure signal).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DeviceError::MediaError { .. }
                | DeviceError::Timeout
                | DeviceError::DeviceReset
                | DeviceError::Corrupt { .. }
        )
    }
}

impl std::error::Error for DeviceError {}
