//! Device-level errors.
//!
//! Storage paths used to `panic!` on out-of-range I/O, mismatched
//! buffers, and overfull queues. Those conditions are *reportable*: a
//! mis-sized mmap window or an evictor pushing past its queue depth is
//! a caller bug or a backpressure signal, not a reason to abort the
//! simulation. Every fallible device operation returns [`DeviceError`],
//! which the engine surfaces through `AquilaError::Device`.

/// An error from a device-model operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// An I/O touched pages beyond the device capacity.
    OutOfRange {
        /// First page of the offending range.
        page: u64,
        /// Length of the range in pages.
        pages: usize,
        /// Device capacity in pages.
        capacity: u64,
    },
    /// A sub-page access crossed its page boundary.
    CrossesPage {
        /// Offset within the page.
        offset: usize,
        /// Length of the access.
        len: usize,
    },
    /// A buffer length did not match the requested page count.
    BufferSize {
        /// Bytes the operation required.
        expected: usize,
        /// Bytes the caller supplied.
        got: usize,
    },
    /// Buffer mutability did not match the opcode (read needs `Mut`,
    /// write needs `Shared`).
    BufferDirection,
    /// A bounded queue pair is full; poll completions and resubmit.
    QueueFull {
        /// The queue depth that was exceeded.
        depth: usize,
    },
}

impl core::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceError::OutOfRange {
                page,
                pages,
                capacity,
            } => write!(
                f,
                "I/O beyond device capacity: pages {page}..{} of {capacity}",
                page + *pages as u64
            ),
            DeviceError::CrossesPage { offset, len } => {
                write!(f, "access at offset {offset} len {len} crosses page boundary")
            }
            DeviceError::BufferSize { expected, got } => {
                write!(f, "buffer size {got} does not match transfer size {expected}")
            }
            DeviceError::BufferDirection => {
                write!(f, "buffer mutability does not match opcode")
            }
            DeviceError::QueueFull { depth } => {
                write!(f, "queue pair full (depth {depth})")
            }
        }
    }
}

impl std::error::Error for DeviceError {}
