//! A Blobstore: SPDK-style flat namespace of blobs over a raw device.
//!
//! Aquila gives applications a file abstraction over SPDK's *Blobstore*
//! (section 3.3): a flat namespace of blobs, each identified by a number,
//! which can be created, resized, and deleted at runtime and carry
//! extended attributes. Aquila intercepts `open`/`mmap` and translates
//! files to blobs transparently, using the *direct* (unbuffered) I/O path
//! — not BlobFS, which would add its own cache.
//!
//! This implementation manages space in 1 MiB clusters with a bitmap
//! allocator, persists metadata into a reserved region of the device, and
//! performs all data I/O through a [`StorageAccess`] path.

use std::collections::BTreeMap;
use std::sync::Arc;

use aquila_sync::Mutex;

use aquila_sim::SimCtx;

use crate::access::StorageAccess;
use crate::error::DeviceError;
use crate::store::STORE_PAGE;

/// Pages per cluster (1 MiB clusters).
pub const PAGES_PER_CLUSTER: u64 = 256;
/// Pages reserved for the superblock + metadata region.
pub const MD_PAGES: u64 = 64;
/// Magic number identifying a formatted blobstore.
const MAGIC: u64 = 0x41_51_55_42_4C_4F_42_53; // "AQUBLOBS"

/// A blob identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlobId(pub u64);

/// Errors from blobstore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobError {
    /// The blob does not exist.
    NoSuchBlob,
    /// The device is out of free clusters.
    NoSpace,
    /// I/O beyond the blob's allocated size.
    OutOfRange,
    /// The device does not contain a valid blobstore.
    NotFormatted,
    /// The device is too small to hold a blobstore at all.
    DeviceTooSmall,
    /// Serialized metadata no longer fits the reserved region.
    MetadataOverflow,
    /// The underlying access path failed.
    Device(DeviceError),
}

impl From<DeviceError> for BlobError {
    fn from(e: DeviceError) -> BlobError {
        BlobError::Device(e)
    }
}

#[derive(Debug, Clone, Default)]
struct Blob {
    clusters: Vec<u32>,
    xattrs: BTreeMap<String, Vec<u8>>,
}

struct State {
    blobs: BTreeMap<u64, Blob>,
    free: Vec<bool>, // free[i] => cluster i is free
    next_id: u64,
}

/// A flat blob namespace over a storage access path.
pub struct Blobstore {
    access: Arc<dyn StorageAccess>,
    state: Mutex<State>,
    data_start_page: u64,
    total_clusters: u64,
}

impl Blobstore {
    /// Formats the device and creates an empty blobstore.
    pub fn format(
        ctx: &mut dyn SimCtx,
        access: Arc<dyn StorageAccess>,
    ) -> Result<Blobstore, BlobError> {
        let capacity = access.capacity_pages();
        if capacity <= MD_PAGES + PAGES_PER_CLUSTER {
            return Err(BlobError::DeviceTooSmall);
        }
        let total_clusters = (capacity - MD_PAGES) / PAGES_PER_CLUSTER;
        let bs = Blobstore {
            access,
            state: Mutex::new(State {
                blobs: BTreeMap::new(),
                free: vec![true; total_clusters as usize],
                next_id: 1,
            }),
            data_start_page: MD_PAGES,
            total_clusters,
        };
        bs.sync_md(ctx)?;
        Ok(bs)
    }

    /// Loads an existing blobstore from the device.
    pub fn load(
        ctx: &mut dyn SimCtx,
        access: Arc<dyn StorageAccess>,
    ) -> Result<Blobstore, BlobError> {
        let capacity = access.capacity_pages();
        let total_clusters = (capacity.saturating_sub(MD_PAGES)) / PAGES_PER_CLUSTER;
        let mut md = vec![0u8; (MD_PAGES as usize) * STORE_PAGE];
        access.read_pages(ctx, 0, &mut md)?;
        let mut rd = Reader::new(&md);
        if rd.u64().ok_or(BlobError::NotFormatted)? != MAGIC {
            return Err(BlobError::NotFormatted);
        }
        // A truncated or corrupt metadata region reads as unformatted
        // rather than a panic: every decode below is checked.
        let bad = BlobError::NotFormatted;
        let next_id = rd.u64().ok_or(bad.clone())?;
        let blob_count = rd.u32().ok_or(bad.clone())? as usize;
        let mut blobs = BTreeMap::new();
        let mut free = vec![true; total_clusters as usize];
        for _ in 0..blob_count {
            let id = rd.u64().ok_or(bad.clone())?;
            let nclusters = rd.u32().ok_or(bad.clone())? as usize;
            let mut clusters = Vec::with_capacity(nclusters);
            for _ in 0..nclusters {
                let c = rd.u32().ok_or(bad.clone())?;
                *free.get_mut(c as usize).ok_or(BlobError::NotFormatted)? = false;
                clusters.push(c);
            }
            let nxattrs = rd.u32().ok_or(bad.clone())? as usize;
            let mut xattrs = BTreeMap::new();
            for _ in 0..nxattrs {
                let k =
                    String::from_utf8(rd.bytes().ok_or(bad.clone())?.to_vec()).unwrap_or_default();
                let v = rd.bytes().ok_or(bad.clone())?.to_vec();
                xattrs.insert(k, v);
            }
            blobs.insert(id, Blob { clusters, xattrs });
        }
        Ok(Blobstore {
            access,
            state: Mutex::new(State {
                blobs,
                free,
                next_id,
            }),
            data_start_page: MD_PAGES,
            total_clusters,
        })
    }

    /// Persists blobstore metadata to the device's reserved region.
    pub fn sync_md(&self, ctx: &mut dyn SimCtx) -> Result<(), BlobError> {
        let st = self.state.lock();
        let mut w = Writer::new();
        w.u64(MAGIC);
        w.u64(st.next_id);
        w.u32(st.blobs.len() as u32);
        for (id, blob) in &st.blobs {
            w.u64(*id);
            w.u32(blob.clusters.len() as u32);
            for &c in &blob.clusters {
                w.u32(c);
            }
            w.u32(blob.xattrs.len() as u32);
            for (k, v) in &blob.xattrs {
                w.bytes(k.as_bytes());
                w.bytes(v);
            }
        }
        let mut buf = w.finish();
        if buf.len() > (MD_PAGES as usize) * STORE_PAGE {
            return Err(BlobError::MetadataOverflow);
        }
        buf.resize((MD_PAGES as usize) * STORE_PAGE, 0);
        drop(st);
        self.access.write_pages(ctx, 0, &buf)?;
        Ok(())
    }

    /// Creates an empty blob and returns its id.
    pub fn create(&self) -> BlobId {
        let mut st = self.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.blobs.insert(id, Blob::default());
        BlobId(id)
    }

    /// Deletes a blob, freeing its clusters.
    pub fn delete(&self, id: BlobId) -> Result<(), BlobError> {
        let mut st = self.state.lock();
        let blob = st.blobs.remove(&id.0).ok_or(BlobError::NoSuchBlob)?;
        for c in blob.clusters {
            st.free[c as usize] = true;
        }
        Ok(())
    }

    /// Grows (or keeps) a blob to at least `clusters` clusters.
    pub fn resize(&self, id: BlobId, clusters: u64) -> Result<(), BlobError> {
        let mut st = self.state.lock();
        let have = st
            .blobs
            .get(&id.0)
            .ok_or(BlobError::NoSuchBlob)?
            .clusters
            .len() as u64;
        if clusters <= have {
            return Ok(());
        }
        let need = (clusters - have) as usize;
        let mut grabbed = Vec::with_capacity(need);
        for (i, f) in st.free.iter_mut().enumerate() {
            if *f {
                *f = false;
                grabbed.push(i as u32);
                if grabbed.len() == need {
                    break;
                }
            }
        }
        if grabbed.len() < need {
            // Roll back.
            for &c in &grabbed {
                st.free[c as usize] = true;
            }
            return Err(BlobError::NoSpace);
        }
        match st.blobs.get_mut(&id.0) {
            Some(blob) => blob.clusters.extend(grabbed),
            None => {
                // Unreachable (existence checked above), but recover
                // instead of panicking: release the grabbed clusters.
                for &c in &grabbed {
                    st.free[c as usize] = true;
                }
                return Err(BlobError::NoSuchBlob);
            }
        }
        Ok(())
    }

    /// Size of a blob in clusters.
    pub fn size_clusters(&self, id: BlobId) -> Result<u64, BlobError> {
        let st = self.state.lock();
        Ok(st
            .blobs
            .get(&id.0)
            .ok_or(BlobError::NoSuchBlob)?
            .clusters
            .len() as u64)
    }

    /// Size of a blob in pages.
    pub fn size_pages(&self, id: BlobId) -> Result<u64, BlobError> {
        Ok(self.size_clusters(id)? * PAGES_PER_CLUSTER)
    }

    /// Sets an extended attribute.
    pub fn set_xattr(&self, id: BlobId, key: &str, value: &[u8]) -> Result<(), BlobError> {
        let mut st = self.state.lock();
        st.blobs
            .get_mut(&id.0)
            .ok_or(BlobError::NoSuchBlob)?
            .xattrs
            .insert(key.to_string(), value.to_vec());
        Ok(())
    }

    /// Reads an extended attribute.
    pub fn get_xattr(&self, id: BlobId, key: &str) -> Result<Option<Vec<u8>>, BlobError> {
        let st = self.state.lock();
        Ok(st
            .blobs
            .get(&id.0)
            .ok_or(BlobError::NoSuchBlob)?
            .xattrs
            .get(key)
            .cloned())
    }

    /// Lists all blob ids.
    pub fn list(&self) -> Vec<BlobId> {
        self.state.lock().blobs.keys().map(|&k| BlobId(k)).collect()
    }

    /// Free clusters remaining.
    pub fn free_clusters(&self) -> u64 {
        self.state.lock().free.iter().filter(|&&f| f).count() as u64
    }

    /// Total data clusters on the device.
    pub fn total_clusters(&self) -> u64 {
        self.total_clusters
    }

    /// Translates a blob-relative page to a device page (LBA / 8).
    ///
    /// This is the hook Aquila's mmio path uses: page faults resolve a
    /// file offset to a device page and then go straight to the device.
    pub fn lba_page(&self, id: BlobId, logical_page: u64) -> Result<u64, BlobError> {
        let st = self.state.lock();
        let blob = st.blobs.get(&id.0).ok_or(BlobError::NoSuchBlob)?;
        let cluster_idx = (logical_page / PAGES_PER_CLUSTER) as usize;
        let within = logical_page % PAGES_PER_CLUSTER;
        let cluster = *blob
            .clusters
            .get(cluster_idx)
            .ok_or(BlobError::OutOfRange)?;
        Ok(self.data_start_page + cluster as u64 * PAGES_PER_CLUSTER + within)
    }

    /// Reads `buf.len()` bytes from byte offset `pos` of a blob (direct,
    /// unbuffered).
    pub fn read(
        &self,
        ctx: &mut dyn SimCtx,
        id: BlobId,
        pos: u64,
        buf: &mut [u8],
    ) -> Result<(), BlobError> {
        self.io(
            ctx,
            id,
            pos,
            buf.len(),
            |this, ctx, dev_page, off, chunk_len, done, buf: &mut [u8]| {
                if off == 0 && chunk_len == STORE_PAGE {
                    this.access
                        .read_pages(ctx, dev_page, &mut buf[done..done + STORE_PAGE])?;
                } else {
                    let mut page = vec![0u8; STORE_PAGE];
                    this.access.read_pages(ctx, dev_page, &mut page)?;
                    buf[done..done + chunk_len].copy_from_slice(&page[off..off + chunk_len]);
                }
                Ok(())
            },
            buf,
        )
    }

    /// Writes `buf` at byte offset `pos` of a blob (direct, unbuffered;
    /// sub-page writes read-modify-write the containing page).
    pub fn write(
        &self,
        ctx: &mut dyn SimCtx,
        id: BlobId,
        pos: u64,
        buf: &[u8],
    ) -> Result<(), BlobError> {
        let mut scratch = buf.to_vec();
        self.io(
            ctx,
            id,
            pos,
            buf.len(),
            |this, ctx, dev_page, off, chunk_len, done, b: &mut [u8]| {
                if off == 0 && chunk_len == STORE_PAGE {
                    this.access
                        .write_pages(ctx, dev_page, &b[done..done + STORE_PAGE])?;
                } else {
                    let mut page = vec![0u8; STORE_PAGE];
                    this.access.read_pages(ctx, dev_page, &mut page)?;
                    page[off..off + chunk_len].copy_from_slice(&b[done..done + chunk_len]);
                    this.access.write_pages(ctx, dev_page, &page)?;
                }
                Ok(())
            },
            &mut scratch,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn io<F>(
        &self,
        ctx: &mut dyn SimCtx,
        id: BlobId,
        pos: u64,
        len: usize,
        mut op: F,
        buf: &mut [u8],
    ) -> Result<(), BlobError>
    where
        F: FnMut(
            &Blobstore,
            &mut dyn SimCtx,
            u64,
            usize,
            usize,
            usize,
            &mut [u8],
        ) -> Result<(), BlobError>,
    {
        let size_bytes = self.size_pages(id)? * STORE_PAGE as u64;
        if pos + len as u64 > size_bytes {
            return Err(BlobError::OutOfRange);
        }
        let mut done = 0usize;
        while done < len {
            let abs = pos + done as u64;
            let logical_page = abs / STORE_PAGE as u64;
            let off = (abs % STORE_PAGE as u64) as usize;
            let chunk = (STORE_PAGE - off).min(len - done);
            let dev_page = self.lba_page(id, logical_page)?;
            op(self, ctx, dev_page, off, chunk, done, buf)?;
            done += chunk;
        }
        Ok(())
    }
}

impl core::fmt::Debug for Blobstore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Blobstore {{ blobs: {}, free_clusters: {}/{} }}",
            self.list().len(),
            self.free_clusters(),
            self.total_clusters
        )
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn finish(self) -> Vec<u8> {
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn u64(&mut self) -> Option<u64> {
        let v = u64::from_le_bytes(self.buf.get(self.pos..self.pos + 8)?.try_into().ok()?);
        self.pos += 8;
        Some(v)
    }
    fn u32(&mut self) -> Option<u32> {
        let v = u32::from_le_bytes(self.buf.get(self.pos..self.pos + 4)?.try_into().ok()?);
        self.pos += 4;
        Some(v)
    }
    fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let b = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SpdkAccess;
    use crate::nvme::NvmeDevice;
    use aquila_sim::FreeCtx;

    fn new_store(ctx: &mut FreeCtx, pages: u64) -> (Blobstore, Arc<dyn StorageAccess>) {
        let dev = Arc::new(NvmeDevice::optane(pages));
        let access: Arc<dyn StorageAccess> = Arc::new(SpdkAccess::new(dev));
        (Blobstore::format(ctx, Arc::clone(&access)).unwrap(), access)
    }

    #[test]
    fn create_resize_write_read() {
        let mut ctx = FreeCtx::new(1);
        let (bs, _) = new_store(&mut ctx, 4096);
        let blob = bs.create();
        bs.resize(blob, 2).unwrap();
        assert_eq!(bs.size_pages(blob).unwrap(), 512);

        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        bs.write(&mut ctx, blob, 4090, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        bs.read(&mut ctx, blob, 4090, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn out_of_range_io_rejected() {
        let mut ctx = FreeCtx::new(1);
        let (bs, _) = new_store(&mut ctx, 4096);
        let blob = bs.create();
        bs.resize(blob, 1).unwrap();
        let end = PAGES_PER_CLUSTER * STORE_PAGE as u64;
        assert_eq!(
            bs.write(&mut ctx, blob, end - 2, &[1, 2, 3]),
            Err(BlobError::OutOfRange)
        );
    }

    #[test]
    fn delete_frees_clusters() {
        let mut ctx = FreeCtx::new(1);
        let (bs, _) = new_store(&mut ctx, 4096);
        let before = bs.free_clusters();
        let blob = bs.create();
        bs.resize(blob, 3).unwrap();
        assert_eq!(bs.free_clusters(), before - 3);
        bs.delete(blob).unwrap();
        assert_eq!(bs.free_clusters(), before);
        assert_eq!(bs.size_clusters(blob), Err(BlobError::NoSuchBlob));
    }

    #[test]
    fn no_space_rolls_back() {
        let mut ctx = FreeCtx::new(1);
        // Tiny device: MD + ~3 clusters.
        let (bs, _) = new_store(&mut ctx, MD_PAGES + 3 * PAGES_PER_CLUSTER + 10);
        let total = bs.total_clusters();
        let a = bs.create();
        bs.resize(a, total).unwrap();
        let b = bs.create();
        assert_eq!(bs.resize(b, 1), Err(BlobError::NoSpace));
        assert_eq!(bs.free_clusters(), 0);
        bs.delete(a).unwrap();
        assert_eq!(bs.free_clusters(), total);
    }

    #[test]
    fn xattrs_roundtrip() {
        let mut ctx = FreeCtx::new(1);
        let (bs, _) = new_store(&mut ctx, 4096);
        let blob = bs.create();
        bs.set_xattr(blob, "name", b"/data/file.sst").unwrap();
        assert_eq!(
            bs.get_xattr(blob, "name").unwrap().unwrap(),
            b"/data/file.sst"
        );
        assert_eq!(bs.get_xattr(blob, "missing").unwrap(), None);
    }

    #[test]
    fn metadata_survives_reload() {
        let mut ctx = FreeCtx::new(1);
        let dev = Arc::new(NvmeDevice::optane(8192));
        let access: Arc<dyn StorageAccess> = Arc::new(SpdkAccess::new(dev));
        let payload = vec![7u8; STORE_PAGE];

        let blob;
        {
            let bs = Blobstore::format(&mut ctx, Arc::clone(&access)).unwrap();
            blob = bs.create();
            bs.resize(blob, 2).unwrap();
            bs.set_xattr(blob, "name", b"persist-me").unwrap();
            bs.write(&mut ctx, blob, 0, &payload).unwrap();
            bs.sync_md(&mut ctx).unwrap();
        }
        let bs2 = Blobstore::load(&mut ctx, Arc::clone(&access)).unwrap();
        assert_eq!(bs2.size_clusters(blob).unwrap(), 2);
        assert_eq!(bs2.get_xattr(blob, "name").unwrap().unwrap(), b"persist-me");
        let mut back = vec![0u8; STORE_PAGE];
        bs2.read(&mut ctx, blob, 0, &mut back).unwrap();
        assert_eq!(back, payload);
        // Allocation state also recovered: new blobs don't collide.
        let other = bs2.create();
        bs2.resize(other, 1).unwrap();
        let mut again = vec![0u8; STORE_PAGE];
        bs2.write(&mut ctx, other, 0, &vec![9u8; STORE_PAGE])
            .unwrap();
        bs2.read(&mut ctx, blob, 0, &mut again).unwrap();
        assert_eq!(again, payload, "new allocations must not overlap old data");
    }

    #[test]
    fn load_unformatted_fails() {
        let mut ctx = FreeCtx::new(1);
        let dev = Arc::new(NvmeDevice::optane(4096));
        let access: Arc<dyn StorageAccess> = Arc::new(SpdkAccess::new(dev));
        assert!(matches!(
            Blobstore::load(&mut ctx, access),
            Err(BlobError::NotFormatted)
        ));
    }

    #[test]
    fn lba_translation_is_cluster_aware() {
        let mut ctx = FreeCtx::new(1);
        let (bs, _) = new_store(&mut ctx, 8192);
        let a = bs.create();
        let b = bs.create();
        bs.resize(a, 1).unwrap();
        bs.resize(b, 1).unwrap();
        bs.resize(a, 2).unwrap(); // Non-contiguous second cluster.
        let p0 = bs.lba_page(a, 0).unwrap();
        let p_second = bs.lba_page(a, PAGES_PER_CLUSTER).unwrap();
        // Blob b's cluster sits between a's two clusters.
        assert_eq!(p_second - p0, 2 * PAGES_PER_CLUSTER);
        assert!(bs.lba_page(a, 2 * PAGES_PER_CLUSTER).is_err());
    }
}
