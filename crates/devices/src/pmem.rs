//! Byte-addressable persistent memory (pmem) with DAX access.
//!
//! Models the paper's `pmem` configuration: a DRAM-backed emulated NVM
//! block device used to stress the software path (section 5), and the DAX
//! direct-access path Aquila uses for byte-addressable devices (section
//! 3.3). Data moves by memory copy; the cost model distinguishes the
//! kernel's scalar `memcpy` (~2400 cycles / 4 KiB) from Aquila's AVX2
//! streaming copy (~900 + 300 cycles FPU save/restore).

use aquila_sim::{Cycles, ServiceCenter, SimCtx};

use crate::error::DeviceError;
use crate::store::{PageStore, STORE_PAGE};

/// Performance profile for a pmem DIMM region.
#[derive(Debug, Clone)]
pub struct PmemProfile {
    /// Load latency for a cacheline-sized access (Optane DC PMM: ~300 ns).
    pub load_latency: Cycles,
    /// Aggregate bandwidth cap in bytes/s.
    pub max_bw: u64,
    /// Concurrent access channels (iMC queue depth).
    pub channels: usize,
}

impl PmemProfile {
    /// An Optane DC Persistent Memory-class profile.
    pub fn optane_pmm() -> PmemProfile {
        PmemProfile {
            load_latency: Cycles::from_nanos(300),
            max_bw: 10_000_000_000,
            channels: 16,
        }
    }

    /// The paper's `pmem` emulation: DRAM-backed (dual-socket DDR4-2400,
    /// ~50 GB/s effective), so much faster than real NVM. Used to stress
    /// the software path.
    pub fn dram_backed() -> PmemProfile {
        PmemProfile {
            load_latency: Cycles::from_nanos(80),
            max_bw: 50_000_000_000,
            channels: 48,
        }
    }
}

/// A byte-addressable persistent-memory device.
pub struct PmemDevice {
    store: PageStore,
    service: ServiceCenter,
    profile: PmemProfile,
}

impl PmemDevice {
    /// Creates a pmem device of `pages` 4 KiB pages.
    pub fn new(pages: u64, profile: PmemProfile) -> PmemDevice {
        PmemDevice {
            store: PageStore::new(pages),
            service: ServiceCenter::new(profile.channels, 0, profile.max_bw),
            profile,
        }
    }

    /// Creates a DRAM-backed pmem device (the paper's `pmem` block device).
    pub fn dram_backed(pages: u64) -> PmemDevice {
        PmemDevice::new(pages, PmemProfile::dram_backed())
    }

    /// Device capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.store.page_count()
    }

    /// Direct access to the underlying store.
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The device profile.
    pub fn profile(&self) -> &PmemProfile {
        &self.profile
    }

    /// Resets the timing model (between experiment phases; contents are
    /// untouched).
    pub fn reset_timing(&self) {
        self.service.reset();
    }

    /// DAX copy of `buf.len()` bytes from device offset `pos` into `buf`,
    /// charging the memcpy cost (`simd` selects Aquila's AVX2 streaming
    /// copy) and pacing against device bandwidth.
    ///
    /// Returns the cycles spent (CPU copy plus any bandwidth stall).
    pub fn dax_read(
        &self,
        ctx: &mut dyn SimCtx,
        pos: u64,
        buf: &mut [u8],
        simd: bool,
    ) -> Result<Cycles, DeviceError> {
        let before = ctx.now();
        self.store.read_range(pos, buf)?;
        let copy = ctx.cost().memcpy(buf.len() as u64, simd);
        let r = self
            .service
            .submit(ctx.now(), self.profile.load_latency, buf.len() as u64);
        ctx.charge(aquila_sim::CostCat::Memcpy, copy);
        ctx.wait_until(r.end, aquila_sim::CostCat::DeviceIo);
        ctx.counters().device_reads += 1;
        ctx.counters().bytes_read += buf.len() as u64;
        aquila_sim::trace::span(ctx, "pmem.memcpy.read", aquila_sim::CostCat::Memcpy, before);
        Ok(ctx.now() - before)
    }

    /// DAX copy of `buf` to device offset `pos`; mirror of [`Self::dax_read`].
    pub fn dax_write(
        &self,
        ctx: &mut dyn SimCtx,
        pos: u64,
        buf: &[u8],
        simd: bool,
    ) -> Result<Cycles, DeviceError> {
        let before = ctx.now();
        self.store.write_range(pos, buf)?;
        let copy = ctx.cost().memcpy(buf.len() as u64, simd);
        let r = self
            .service
            .submit(ctx.now(), self.profile.load_latency, buf.len() as u64);
        ctx.charge(aquila_sim::CostCat::Memcpy, copy);
        ctx.wait_until(r.end, aquila_sim::CostCat::DeviceIo);
        ctx.counters().device_writes += 1;
        ctx.counters().bytes_written += buf.len() as u64;
        aquila_sim::trace::span(
            ctx,
            "pmem.memcpy.write",
            aquila_sim::CostCat::Memcpy,
            before,
        );
        Ok(ctx.now() - before)
    }

    /// Page-granular DAX read (the common fault-fill size).
    pub fn dax_read_page(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &mut [u8],
        simd: bool,
    ) -> Result<(), DeviceError> {
        if buf.len() != STORE_PAGE {
            return Err(DeviceError::BufferSize {
                expected: STORE_PAGE,
                got: buf.len(),
            });
        }
        self.dax_read(ctx, page * STORE_PAGE as u64, buf, simd)?;
        Ok(())
    }

    /// Page-granular DAX write.
    pub fn dax_write_page(
        &self,
        ctx: &mut dyn SimCtx,
        page: u64,
        buf: &[u8],
        simd: bool,
    ) -> Result<(), DeviceError> {
        if buf.len() != STORE_PAGE {
            return Err(DeviceError::BufferSize {
                expected: STORE_PAGE,
                got: buf.len(),
            });
        }
        self.dax_write(ctx, page * STORE_PAGE as u64, buf, simd)?;
        Ok(())
    }
}

impl core::fmt::Debug for PmemDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PmemDevice {{ pages: {} }}", self.capacity_pages())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::{CostCat, FreeCtx};

    #[test]
    fn dax_roundtrip_preserves_data() {
        let dev = PmemDevice::dram_backed(16);
        let mut ctx = FreeCtx::new(1);
        let data: Vec<u8> = (0..STORE_PAGE).map(|i| (i % 256) as u8).collect();
        dev.dax_write_page(&mut ctx, 3, &data, true).unwrap();
        let mut back = vec![0u8; STORE_PAGE];
        dev.dax_read_page(&mut ctx, 3, &mut back, true).unwrap();
        assert_eq!(back, data);
        assert_eq!(ctx.stats.device_reads, 1);
        assert_eq!(ctx.stats.device_writes, 1);
    }

    #[test]
    fn simd_copy_is_cheaper() {
        let dev = PmemDevice::dram_backed(16);
        let data = vec![0u8; STORE_PAGE];

        let mut ctx_simd = FreeCtx::new(1);
        dev.dax_write_page(&mut ctx_simd, 0, &data, true).unwrap();
        let mut ctx_scalar = FreeCtx::new(1);
        dev.dax_write_page(&mut ctx_scalar, 1, &data, false)
            .unwrap();

        let simd = ctx_simd.breakdown.get(CostCat::Memcpy);
        let scalar = ctx_scalar.breakdown.get(CostCat::Memcpy);
        assert!(
            scalar.get() as f64 / simd.get() as f64 > 1.8,
            "simd {simd} vs scalar {scalar}"
        );
    }

    #[test]
    fn bandwidth_paces_bulk_traffic() {
        // 20 GB/s: copying 1 MB takes at least 1 MB / 20 GB/s = 50 us on
        // top of the CPU copy cost.
        let dev = PmemDevice::dram_backed(512);
        let mut ctx = FreeCtx::new(1);
        let chunk = vec![0u8; 256 * 1024];
        for i in 0..4 {
            dev.dax_write(&mut ctx, i * chunk.len() as u64, &chunk, true)
                .unwrap();
        }
        assert!(ctx.now() >= Cycles::from_micros(50), "paced: {}", ctx.now());
    }

    #[test]
    fn sub_page_ranges_work() {
        let dev = PmemDevice::dram_backed(4);
        let mut ctx = FreeCtx::new(1);
        dev.dax_write(&mut ctx, 5000, b"tail", true).unwrap();
        let mut buf = [0u8; 4];
        dev.dax_read(&mut ctx, 5000, &mut buf, false).unwrap();
        assert_eq!(&buf, b"tail");
    }

    #[test]
    fn mis_sized_page_io_is_error() {
        let dev = PmemDevice::dram_backed(4);
        let mut ctx = FreeCtx::new(1);
        assert_eq!(
            dev.dax_write_page(&mut ctx, 0, &[0u8; 100], true),
            Err(DeviceError::BufferSize {
                expected: STORE_PAGE,
                got: 100
            })
        );
        assert!(matches!(
            dev.dax_read(&mut ctx, 4 * STORE_PAGE as u64, &mut [0u8; 8], false),
            Err(DeviceError::OutOfRange { .. })
        ));
    }
}
