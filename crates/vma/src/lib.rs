//! Virtual-memory-area management for Aquila (paper section 3.4).
//!
//! A RadixVM-style radix tree replaces Linux's red-black tree + rwsem:
//! page-fault lookups take no global lock, and updates lock only the
//! entries they touch. See [`tree::VmaTree`].
//!
//! [`regions::RegionMap`] goes one step further: Theseus-style
//! spill-free region descriptors resolved in O(1) with no tree walk and
//! no shared lock at all on the fault path. [`AddressSpace`] lets the
//! engine select either structure per policy; both are observationally
//! equivalent (see `tests/properties.rs` at the workspace root).

pub mod regions;
pub mod tree;

use std::sync::Arc;

use aquila_mmu::Vpn;
use aquila_sim::SimCtx;

pub use regions::RegionMap;
pub use tree::{Advice, Prot, VmaDesc, VmaError, VmaTree};

/// The engine's address-space index: the radix tree baseline or the
/// spill-free region map. Fault-path instrumentation: every tree lookup
/// counts one `vma.tree.lock` shared acquisition (the arena/descriptor
/// read locks the walk takes), while region resolution counts nothing —
/// the scale sweep asserts that counter stays zero with regions enabled.
pub enum AddressSpace {
    /// Radix tree with shared arena/descriptor locks (baseline).
    Tree(VmaTree),
    /// Spill-free O(1) region descriptors (no shared lock on faults).
    Regions(RegionMap),
}

impl AddressSpace {
    /// Creates the structure selected by `spill_regions`.
    pub fn new(base_vpn: u64, spill_regions: bool) -> AddressSpace {
        if spill_regions {
            AddressSpace::Regions(RegionMap::new(base_vpn))
        } else {
            AddressSpace::Tree(VmaTree::new(base_vpn))
        }
    }

    /// Total pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        match self {
            AddressSpace::Tree(t) => t.mapped_pages(),
            AddressSpace::Regions(r) => r.mapped_pages(),
        }
    }

    /// Number of descriptors ever created.
    pub fn desc_count(&self) -> usize {
        match self {
            AddressSpace::Tree(t) => t.desc_count(),
            AddressSpace::Regions(r) => r.desc_count(),
        }
    }

    /// Finds a free virtual range of `pages` pages.
    pub fn find_free(&self, pages: u64) -> Vpn {
        match self {
            AddressSpace::Tree(t) => t.find_free(pages),
            AddressSpace::Regions(r) => r.find_free(pages),
        }
    }

    /// Maps a range; see [`VmaTree::map`].
    pub fn map(
        &self,
        ctx: &mut dyn SimCtx,
        start: Option<Vpn>,
        pages: u64,
        file: u32,
        file_page: u64,
        prot: Prot,
    ) -> Result<Arc<VmaDesc>, VmaError> {
        match self {
            AddressSpace::Tree(t) => t.map(ctx, start, pages, file, file_page, prot),
            AddressSpace::Regions(r) => r.map(ctx, start, pages, file, file_page, prot),
        }
    }

    /// Unmaps a range; see [`VmaTree::unmap`].
    pub fn unmap(&self, ctx: &mut dyn SimCtx, start: Vpn, pages: u64) -> Vec<(Vpn, Arc<VmaDesc>)> {
        match self {
            AddressSpace::Tree(t) => t.unmap(ctx, start, pages),
            AddressSpace::Regions(r) => r.unmap(ctx, start, pages),
        }
    }

    /// Resolves the mapping covering `vpn` (the fault fast path).
    pub fn lookup(&self, ctx: &mut dyn SimCtx, vpn: Vpn) -> Option<(Arc<VmaDesc>, Prot)> {
        match self {
            AddressSpace::Tree(t) => {
                aquila_sim::metrics::add(ctx, "vma.tree.lock", 1);
                t.lookup(ctx, vpn)
            }
            AddressSpace::Regions(r) => r.lookup(ctx, vpn),
        }
    }

    /// Tries to take the per-entry fault lock for `vpn`.
    pub fn try_lock_entry(&self, vpn: Vpn) -> bool {
        match self {
            AddressSpace::Tree(t) => t.try_lock_entry(vpn),
            AddressSpace::Regions(r) => r.try_lock_entry(vpn),
        }
    }

    /// Unlocks an entry locked by [`AddressSpace::try_lock_entry`].
    pub fn unlock_entry(&self, vpn: Vpn) {
        match self {
            AddressSpace::Tree(t) => t.unlock_entry(vpn),
            AddressSpace::Regions(r) => r.unlock_entry(vpn),
        }
    }

    /// Applies `mprotect` to a range; returns pages affected.
    pub fn protect(&self, ctx: &mut dyn SimCtx, start: Vpn, pages: u64, prot: Prot) -> u64 {
        match self {
            AddressSpace::Tree(t) => t.protect(ctx, start, pages, prot),
            AddressSpace::Regions(r) => r.protect(ctx, start, pages, prot),
        }
    }

    /// Remaps a range to a new automatically placed range.
    pub fn remap(
        &self,
        ctx: &mut dyn SimCtx,
        old_start: Vpn,
        old_pages: u64,
        new_pages: u64,
    ) -> Result<Arc<VmaDesc>, VmaError> {
        match self {
            AddressSpace::Tree(t) => t.remap(ctx, old_start, old_pages, new_pages),
            AddressSpace::Regions(r) => r.remap(ctx, old_start, old_pages, new_pages),
        }
    }
}

impl core::fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AddressSpace::Tree(t) => t.fmt(f),
            AddressSpace::Regions(r) => r.fmt(f),
        }
    }
}
