//! Virtual-memory-area management for Aquila (paper section 3.4).
//!
//! A RadixVM-style radix tree replaces Linux's red-black tree + rwsem:
//! page-fault lookups take no global lock, and updates lock only the
//! entries they touch. See [`tree::VmaTree`].

pub mod tree;

pub use tree::{Advice, Prot, VmaDesc, VmaError, VmaTree};
