//! Spill-free region descriptors: O(1) mapping resolution with no tree
//! and no shared lock on the fault path.
//!
//! The radix tree in [`crate::tree`] already avoids Linux's rb-tree, but
//! its lookups still walk four levels and take the arena/descriptor
//! read-write locks — shared acquisitions that every concurrent fault
//! funnels through. Following Theseus-style `MappedPages` regions, this
//! map trades virtual-address-space sparsity for a flat two-level array
//! of per-page entries: a fault resolves its region descriptor with one
//! shifted index into a pre-sized table (one `radix_level` charge, no
//! lock of any kind), and descriptors live in a fixed-capacity slot
//! arena that never reallocates ("spill-free"): once a slot is
//! published it is immutable until the map drops, so readers never
//! synchronize with writers. Map/unmap cost stays proportional to the
//! range being changed, never to the number of live regions.
//!
//! Entry encoding, placement policy, and per-entry fault locking are
//! bit-compatible with [`crate::tree::VmaTree`] (the linuxsim baseline
//! keeps the tree), which the property tests exploit: random operation
//! sequences must be observationally identical under both structures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use aquila_sync::Mutex;

use aquila_mmu::Vpn;
use aquila_sim::{CostCat, SimCtx};

use crate::tree::{ENTRY_FORCE_RO, ENTRY_ID_MASK, ENTRY_LOCK};
use crate::{Prot, VmaDesc, VmaError};

/// Bits of VPN resolved by the leaf table (the low half of the 36-bit
/// VPN space); the top table covers the high half.
const LEAF_BITS: u32 = 18;
const LEAF_SIZE: usize = 1 << LEAF_BITS;
const TOP_SIZE: usize = 1 << (36 - LEAF_BITS);

/// Fixed descriptor-slot capacity. Slots are never reused, so this
/// bounds the number of `map` calls over the map's lifetime; exhausting
/// it reports [`VmaError::NoVirtualSpace`], mirroring how the bump
/// allocator itself is append-only.
const DESC_SLOTS: usize = 1 << 16;

struct Leaf {
    entries: Box<[AtomicU64]>,
}

impl Leaf {
    fn new() -> Leaf {
        Leaf {
            entries: (0..LEAF_SIZE).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// The spill-free region map.
pub struct RegionMap {
    /// Lazily materialized 1 GiB windows of per-page entries. A `OnceLock`
    /// publish is the only synchronization a first-touch pays; steady-state
    /// resolution is two array indexes.
    tops: Box<[OnceLock<Box<Leaf>>]>,
    /// Append-only descriptor slots (id-1 indexes here, as in the tree).
    descs: Box<[OnceLock<Arc<VmaDesc>>]>,
    next_desc: Mutex<usize>,
    /// Bump pointer for `find_free`, same policy as the tree.
    next_free: Mutex<u64>,
    mapped_pages: AtomicU64,
}

impl RegionMap {
    /// Creates an empty map. `base_vpn` is where automatic placement
    /// starts (like `mmap_base`).
    pub fn new(base_vpn: u64) -> RegionMap {
        RegionMap {
            tops: (0..TOP_SIZE).map(|_| OnceLock::new()).collect(),
            descs: (0..DESC_SLOTS).map(|_| OnceLock::new()).collect(),
            next_desc: Mutex::new(0),
            next_free: Mutex::new(base_vpn),
            mapped_pages: AtomicU64::new(0),
        }
    }

    /// Total pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages.load(Ordering::Relaxed)
    }

    /// Number of region descriptors ever created.
    pub fn desc_count(&self) -> usize {
        *self.next_desc.lock()
    }

    #[inline]
    fn split(vpn: Vpn) -> (usize, usize) {
        (
            ((vpn.0 >> LEAF_BITS) as usize) & (TOP_SIZE - 1),
            (vpn.0 as usize) & (LEAF_SIZE - 1),
        )
    }

    #[inline]
    fn entry(&self, vpn: Vpn) -> Option<&AtomicU64> {
        let (top, slot) = Self::split(vpn);
        self.tops[top].get().map(|leaf| &leaf.entries[slot])
    }

    #[inline]
    fn entry_or_init(&self, vpn: Vpn) -> &AtomicU64 {
        let (top, slot) = Self::split(vpn);
        &self.tops[top].get_or_init(|| Box::new(Leaf::new())).entries[slot]
    }

    /// Charges the O(1) resolution cost: one table index, no walk.
    fn charge_resolve(ctx: &mut dyn SimCtx) {
        let c = ctx.cost().radix_level;
        ctx.charge(CostCat::FaultHandler, c);
    }

    fn desc_by_id(&self, id: u64) -> Arc<VmaDesc> {
        Arc::clone(
            self.descs[(id - 1) as usize]
                .get()
                .expect("live entry id has a published descriptor"),
        )
    }

    /// Finds a free virtual range of `pages` pages. Identical policy to
    /// [`crate::tree::VmaTree::find_free`] so both structures place the
    /// same sequence of mappings at the same addresses.
    pub fn find_free(&self, pages: u64) -> Vpn {
        let mut nf = self.next_free.lock();
        let mut start = *nf;
        if pages >= 512 {
            start = (start + 511) & !511;
        }
        *nf = start + pages + 16; // Guard gap between mappings.
        Vpn(start)
    }

    /// Maps `pages` pages starting at `start` (or an automatically chosen
    /// range when `None`) backed by `file` at `file_page`.
    pub fn map(
        &self,
        ctx: &mut dyn SimCtx,
        start: Option<Vpn>,
        pages: u64,
        file: u32,
        file_page: u64,
        prot: Prot,
    ) -> Result<Arc<VmaDesc>, VmaError> {
        assert!(pages > 0, "cannot map zero pages");
        let start = match start {
            Some(s) => s,
            None => self.find_free(pages),
        };
        // First pass: verify the range is free.
        for i in 0..pages {
            if let Some(e) = self.entry(Vpn(start.0 + i)) {
                if e.load(Ordering::Acquire) & ENTRY_ID_MASK != 0 {
                    return Err(VmaError::Overlap);
                }
            }
        }
        let desc = Arc::new(VmaDesc::new(file, file_page, start, pages, prot));
        let id = {
            let mut next = self.next_desc.lock();
            if *next >= DESC_SLOTS {
                return Err(VmaError::NoVirtualSpace);
            }
            assert!(
                self.descs[*next].set(Arc::clone(&desc)).is_ok(),
                "slot below next_desc is unpublished"
            );
            *next += 1;
            *next as u64 // id+1 encoding; descs[id-1].
        };
        for i in 0..pages {
            self.entry_or_init(Vpn(start.0 + i))
                .store(id, Ordering::Release);
        }
        Self::charge_resolve(ctx);
        self.mapped_pages.fetch_add(pages, Ordering::Relaxed);
        Ok(desc)
    }

    /// Unmaps `pages` pages starting at `start`; holes and partial ranges
    /// are allowed, as in the tree.
    pub fn unmap(&self, ctx: &mut dyn SimCtx, start: Vpn, pages: u64) -> Vec<(Vpn, Arc<VmaDesc>)> {
        let mut removed = Vec::new();
        for i in 0..pages {
            let vpn = Vpn(start.0 + i);
            if let Some(e) = self.entry(vpn) {
                // Wait out any in-flight fault holding the entry lock,
                // then claim the entry atomically (same protocol as the
                // tree: a plain swap could clear a later mapping's lock).
                let old = loop {
                    let cur = e.load(Ordering::Acquire);
                    if cur & ENTRY_ID_MASK == 0 {
                        break 0;
                    }
                    if cur & ENTRY_LOCK != 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    if e.compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break cur;
                    }
                };
                let id = old & ENTRY_ID_MASK;
                if id != 0 {
                    removed.push((vpn, self.desc_by_id(id)));
                }
            }
        }
        Self::charge_resolve(ctx);
        self.mapped_pages
            .fetch_sub(removed.len() as u64, Ordering::Relaxed);
        removed
    }

    /// Looks up the region covering `vpn` in O(1), plus whether the page
    /// is individually forced read-only.
    pub fn lookup(&self, ctx: &mut dyn SimCtx, vpn: Vpn) -> Option<(Arc<VmaDesc>, Prot)> {
        Self::charge_resolve(ctx);
        let e = self.entry(vpn)?.load(Ordering::Acquire);
        let id = e & ENTRY_ID_MASK;
        if id == 0 {
            return None;
        }
        let desc = self.desc_by_id(id);
        let mut prot = desc.prot;
        if e & ENTRY_FORCE_RO != 0 {
            prot.write = false;
        }
        Some((desc, prot))
    }

    /// Tries to lock the entry for `vpn` so a fault can install the page
    /// without racing concurrent faults.
    pub fn try_lock_entry(&self, vpn: Vpn) -> bool {
        if let Some(e) = self.entry(vpn) {
            let cur = e.load(Ordering::Acquire);
            if cur & ENTRY_ID_MASK == 0 || cur & ENTRY_LOCK != 0 {
                return false;
            }
            return e
                .compare_exchange(cur, cur | ENTRY_LOCK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        }
        false
    }

    /// Unlocks an entry locked by [`RegionMap::try_lock_entry`].
    pub fn unlock_entry(&self, vpn: Vpn) {
        if let Some(e) = self.entry(vpn) {
            e.fetch_and(!ENTRY_LOCK, Ordering::AcqRel);
        }
    }

    /// Applies `mprotect` to a range via the per-page override bits.
    /// Returns the number of pages affected.
    pub fn protect(&self, ctx: &mut dyn SimCtx, start: Vpn, pages: u64, prot: Prot) -> u64 {
        let mut n = 0;
        for i in 0..pages {
            if let Some(e) = self.entry(Vpn(start.0 + i)) {
                if e.load(Ordering::Acquire) & ENTRY_ID_MASK == 0 {
                    continue;
                }
                if prot.write {
                    e.fetch_and(!ENTRY_FORCE_RO, Ordering::AcqRel);
                } else {
                    e.fetch_or(ENTRY_FORCE_RO, Ordering::AcqRel);
                }
                n += 1;
            }
        }
        Self::charge_resolve(ctx);
        n
    }

    /// Remaps `old_start..+old_pages` to a new automatically placed range
    /// of `new_pages` (the `mremap` move path).
    pub fn remap(
        &self,
        ctx: &mut dyn SimCtx,
        old_start: Vpn,
        old_pages: u64,
        new_pages: u64,
    ) -> Result<Arc<VmaDesc>, VmaError> {
        let (desc, _) = self.lookup(ctx, old_start).ok_or(VmaError::NotMapped)?;
        let file = desc.file;
        let file_page = desc.file_page_of(old_start);
        let prot = desc.prot;
        self.unmap(ctx, old_start, old_pages);
        self.map(ctx, None, new_pages, file, file_page, prot)
    }
}

impl core::fmt::Debug for RegionMap {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "RegionMap {{ mapped_pages: {}, descs: {} }}",
            self.mapped_pages(),
            self.desc_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    fn map() -> RegionMap {
        RegionMap::new(0x1000)
    }

    #[test]
    fn map_lookup_unmap() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        let desc = t.map(&mut ctx, None, 8, 3, 100, Prot::RW).unwrap();
        let start = desc.start;
        let (d, prot) = t.lookup(&mut ctx, Vpn(start.0 + 5)).unwrap();
        assert_eq!(d.file, 3);
        assert_eq!(d.file_page_of(Vpn(start.0 + 5)), 105);
        assert!(prot.write);
        assert_eq!(t.mapped_pages(), 8);
        let removed = t.unmap(&mut ctx, start, 8);
        assert_eq!(removed.len(), 8);
        assert!(t.lookup(&mut ctx, start).is_none());
        assert_eq!(t.mapped_pages(), 0);
    }

    #[test]
    fn fixed_map_overlap_rejected() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        t.map(&mut ctx, Some(Vpn(100)), 10, 0, 0, Prot::RW).unwrap();
        assert!(matches!(
            t.map(&mut ctx, Some(Vpn(105)), 10, 1, 0, Prot::RW),
            Err(VmaError::Overlap)
        ));
        // Adjacent is fine.
        assert!(t.map(&mut ctx, Some(Vpn(110)), 10, 1, 0, Prot::RW).is_ok());
    }

    #[test]
    fn partial_unmap_punches_hole() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, Some(Vpn(200)), 10, 0, 0, Prot::RW).unwrap();
        let removed = t.unmap(&mut ctx, Vpn(203), 4);
        assert_eq!(removed.len(), 4);
        assert!(t.lookup(&mut ctx, Vpn(202)).is_some());
        assert!(t.lookup(&mut ctx, Vpn(204)).is_none());
        assert!(t.lookup(&mut ctx, Vpn(207)).is_some());
        assert_eq!(t.mapped_pages(), 6);
        let _ = d;
    }

    #[test]
    fn placement_matches_tree_policy() {
        let t = map();
        let tree = crate::VmaTree::new(0x1000);
        let mut ctx = FreeCtx::new(1);
        // Same placement decisions as the tree for an identical op mix,
        // including the 2 MiB alignment of large mappings.
        for pages in [3u64, 1024, 4, 700, 512, 9] {
            let a = t.map(&mut ctx, None, pages, 0, 0, Prot::RW).unwrap();
            let b = tree.map(&mut ctx, None, pages, 0, 0, Prot::RW).unwrap();
            assert_eq!(a.start, b.start, "placement diverged at {pages} pages");
        }
    }

    #[test]
    fn entry_lock_serializes_faults() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, Some(Vpn(50)), 2, 0, 0, Prot::RW).unwrap();
        assert!(t.try_lock_entry(Vpn(50)));
        assert!(!t.try_lock_entry(Vpn(50)), "second lock must fail");
        assert!(t.try_lock_entry(Vpn(51)), "other pages unaffected");
        t.unlock_entry(Vpn(50));
        assert!(t.try_lock_entry(Vpn(50)));
        // Lookup still works while locked.
        assert!(t.lookup(&mut ctx, Vpn(50)).is_some());
        let _ = d;
    }

    #[test]
    fn lock_unmapped_entry_fails() {
        let t = map();
        assert!(!t.try_lock_entry(Vpn(0xdead)));
    }

    #[test]
    fn mprotect_forces_readonly_per_page() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        t.map(&mut ctx, Some(Vpn(300)), 4, 0, 0, Prot::RW).unwrap();
        let n = t.protect(&mut ctx, Vpn(301), 2, Prot::READ);
        assert_eq!(n, 2);
        let (_, p300) = t.lookup(&mut ctx, Vpn(300)).unwrap();
        let (_, p301) = t.lookup(&mut ctx, Vpn(301)).unwrap();
        assert!(p300.write);
        assert!(!p301.write);
        // Restore write.
        t.protect(&mut ctx, Vpn(301), 1, Prot::RW);
        let (_, p301b) = t.lookup(&mut ctx, Vpn(301)).unwrap();
        assert!(p301b.write);
    }

    #[test]
    fn remap_moves_and_grows() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, Some(Vpn(400)), 4, 9, 50, Prot::RW).unwrap();
        let nd = t.remap(&mut ctx, Vpn(400), 4, 8).unwrap();
        assert!(t.lookup(&mut ctx, Vpn(400)).is_none(), "old range gone");
        assert_eq!(nd.file, 9);
        assert_eq!(nd.file_page_of(nd.start), 50, "file window preserved");
        assert_eq!(nd.pages, 8);
        assert_eq!(t.mapped_pages(), 8);
        let _ = d;
    }

    #[test]
    fn sparse_distant_mappings() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        // Far apart in the 36-bit VPN space: exercises distinct leaves.
        t.map(&mut ctx, Some(Vpn(0x0000_0001)), 1, 0, 0, Prot::RW)
            .unwrap();
        t.map(&mut ctx, Some(Vpn(0x0FFF_FFFF0)), 1, 1, 0, Prot::RW)
            .unwrap();
        assert_eq!(t.lookup(&mut ctx, Vpn(0x0000_0001)).unwrap().0.file, 0);
        assert_eq!(t.lookup(&mut ctx, Vpn(0x0FFF_FFFF0)).unwrap().0.file, 1);
        assert!(t.lookup(&mut ctx, Vpn(0x0000_1000)).is_none());
    }

    #[test]
    fn resolution_is_cheaper_than_a_tree_walk() {
        let t = map();
        let tree = crate::VmaTree::new(0x1000);
        let mut a = FreeCtx::new(1);
        let mut b = FreeCtx::new(1);
        t.map(&mut a, Some(Vpn(64)), 1, 0, 0, Prot::RW).unwrap();
        tree.map(&mut b, Some(Vpn(64)), 1, 0, 0, Prot::RW).unwrap();
        let a0 = a.now();
        let b0 = b.now();
        t.lookup(&mut a, Vpn(64)).unwrap();
        tree.lookup(&mut b, Vpn(64)).unwrap();
        assert!(
            a.now() - a0 < b.now() - b0,
            "O(1) resolve must charge less than the 4-level walk"
        );
    }

    #[test]
    fn desc_slots_are_spill_free_until_exhausted() {
        let t = map();
        let mut ctx = FreeCtx::new(1);
        // Publishing never moves earlier descriptors: an Arc taken before
        // later maps still reads the same fields after them.
        let first = t.map(&mut ctx, None, 1, 7, 0, Prot::RW).unwrap();
        for i in 0..64 {
            t.map(&mut ctx, None, 1, i, 0, Prot::RW).unwrap();
        }
        assert_eq!(first.file, 7);
        assert_eq!(t.desc_count(), 65);
    }

    #[test]
    fn concurrent_lookups_and_locks() {
        use std::sync::Arc as StdArc;
        let t = StdArc::new(map());
        let mut ctx = FreeCtx::new(1);
        t.map(&mut ctx, Some(Vpn(1000)), 64, 0, 0, Prot::RW)
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..4usize {
            let t = StdArc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut locked = 0;
                for p in 0..64u64 {
                    if p % 4 == i as u64 && t.try_lock_entry(Vpn(1000 + p)) {
                        locked += 1;
                        t.unlock_entry(Vpn(1000 + p));
                    }
                }
                locked
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 64, "each thread locks its disjoint quarter");
    }
}
