//! The radix tree of virtual memory areas, with per-entry locking.
//!
//! Linux keeps VMAs in a red-black tree behind one read-write semaphore;
//! even read acquisitions of that lock limit fault scalability on many
//! cores. Aquila (section 3.4) instead uses a radix tree, following
//! RadixVM: lookups walk the tree without any global lock, and *updates*
//! lock only the entries they touch. On a page fault the tree answers two
//! questions: (1) is the faulting address part of a valid mapping, and
//! (2) can this fault take ownership of the page entry so concurrent
//! faults on the same page serialize.
//!
//! Differences from RadixVM, as in the paper: a single page table shared
//! by all cores (so no per-core tables and no refcache); radix node
//! metadata uses plain shared reference counts (`Arc`), which are off the
//! common path.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use aquila_sync::{Mutex, RwLock};

use aquila_mmu::Vpn;
use aquila_sim::{CostCat, SimCtx};

/// Page protection of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prot {
    /// Loads allowed.
    pub read: bool,
    /// Stores allowed.
    pub write: bool,
}

impl Prot {
    /// Read-only mapping.
    pub const READ: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read-write mapping.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
    };
}

/// `madvise`-style access hints, used by the mmio engine's readahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Default readahead.
    Normal,
    /// Random access: disable readahead.
    Random,
    /// Sequential access: aggressive readahead.
    Sequential,
    /// The range will be needed soon.
    WillNeed,
    /// The range is no longer needed.
    DontNeed,
}

impl Advice {
    fn to_u8(self) -> u8 {
        match self {
            Advice::Normal => 0,
            Advice::Random => 1,
            Advice::Sequential => 2,
            Advice::WillNeed => 3,
            Advice::DontNeed => 4,
        }
    }

    fn from_u8(v: u8) -> Advice {
        match v {
            1 => Advice::Random,
            2 => Advice::Sequential,
            3 => Advice::WillNeed,
            4 => Advice::DontNeed,
            _ => Advice::Normal,
        }
    }
}

/// A mapping descriptor (one per `mmap` call).
#[derive(Debug)]
pub struct VmaDesc {
    /// Backing file id.
    pub file: u32,
    /// File page corresponding to `start`.
    pub file_page: u64,
    /// First mapped virtual page.
    pub start: Vpn,
    /// Length in pages at creation.
    pub pages: u64,
    /// Protection (per-desc; `mprotect` of a sub-range splits via
    /// per-page override in the tree entry's protection bits).
    pub prot: Prot,
    advice: std::sync::atomic::AtomicU8,
}

impl VmaDesc {
    pub(crate) fn new(file: u32, file_page: u64, start: Vpn, pages: u64, prot: Prot) -> VmaDesc {
        VmaDesc {
            file,
            file_page,
            start,
            pages,
            prot,
            advice: std::sync::atomic::AtomicU8::new(0),
        }
    }

    /// The file page backing virtual page `vpn` of this mapping.
    pub fn file_page_of(&self, vpn: Vpn) -> u64 {
        self.file_page + (vpn.0 - self.start.0)
    }

    /// Current access advice.
    pub fn advice(&self) -> Advice {
        Advice::from_u8(self.advice.load(Ordering::Relaxed))
    }

    /// Updates access advice (the `madvise` path).
    pub fn set_advice(&self, a: Advice) {
        self.advice.store(a.to_u8(), Ordering::Relaxed);
    }
}

/// Errors from range operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaError {
    /// The range overlaps an existing mapping (for fixed-address maps).
    Overlap,
    /// Part of the range is not mapped.
    NotMapped,
    /// The address space region is exhausted.
    NoVirtualSpace,
}

/// Entry state: low 32 bits hold VmaId+1 (0 = unmapped); bit 63 is the
/// per-entry fault lock; bit 62 forces the page read-only regardless of
/// the VMA protection (per-page `mprotect`).
pub(crate) const ENTRY_LOCK: u64 = 1 << 63;
pub(crate) const ENTRY_FORCE_RO: u64 = 1 << 62;
pub(crate) const ENTRY_ID_MASK: u64 = 0xFFFF_FFFF;

const FANOUT: usize = 512;
const LEVELS: usize = 4;

struct Interior {
    children: Vec<AtomicUsize>, // Arena indices; 0 = null.
}

struct Leaf {
    entries: Vec<AtomicU64>,
}

enum Node {
    Interior(Interior),
    Leaf(Leaf),
}

/// The VMA radix tree.
pub struct VmaTree {
    /// Arena of nodes; index 0 is the root (interior). Nodes are never
    /// freed before the tree drops (radix metadata is tiny; the paper
    /// likewise keeps a simple shared refcount off the common path).
    arena: RwLock<Vec<Arc<Node>>>,
    descs: RwLock<Vec<Arc<VmaDesc>>>,
    /// Bump pointer for `find_free` (page-granular, grows upward).
    next_free: Mutex<u64>,
    mapped_pages: AtomicU64,
}

impl VmaTree {
    /// Creates an empty tree. `base_vpn` is where automatic placement
    /// starts (like `mmap_base`).
    pub fn new(base_vpn: u64) -> VmaTree {
        VmaTree {
            arena: RwLock::new(vec![Arc::new(Node::Interior(Interior {
                children: (0..FANOUT).map(|_| AtomicUsize::new(0)).collect(),
            }))]),
            descs: RwLock::new(Vec::new()),
            next_free: Mutex::new(base_vpn),
            mapped_pages: AtomicU64::new(0),
        }
    }

    /// Total pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages.load(Ordering::Relaxed)
    }

    /// Number of VMA descriptors ever created.
    pub fn desc_count(&self) -> usize {
        self.descs.read().len()
    }

    #[inline]
    fn index_at(vpn: Vpn, level: usize) -> usize {
        // level 0 is the leaf; 9 bits per level, 36 bits of VPN.
        ((vpn.0 >> (9 * level as u32)) & 0x1FF) as usize
    }

    /// Walks to the leaf holding `vpn`, creating nodes when `create`.
    fn leaf_for(&self, vpn: Vpn, create: bool) -> Option<Arc<Node>> {
        let mut idx = 0usize;
        for level in (1..LEVELS).rev() {
            let slot = Self::index_at(vpn, level);
            let child = {
                let arena = self.arena.read();
                match &*arena[idx] {
                    Node::Interior(int) => int.children[slot].load(Ordering::Acquire),
                    Node::Leaf(_) => unreachable!("leaf at interior level"),
                }
            };
            idx = if child != 0 {
                child
            } else if !create {
                return None;
            } else {
                let mut arena = self.arena.write();
                // Re-check under the write lock (another thread may have
                // installed the child).
                let cur = match &*arena[idx] {
                    Node::Interior(int) => int.children[slot].load(Ordering::Acquire),
                    Node::Leaf(_) => unreachable!(),
                };
                if cur != 0 {
                    cur
                } else {
                    let new_idx = arena.len();
                    let node = if level == 1 {
                        Node::Leaf(Leaf {
                            entries: (0..FANOUT).map(|_| AtomicU64::new(0)).collect(),
                        })
                    } else {
                        Node::Interior(Interior {
                            children: (0..FANOUT).map(|_| AtomicUsize::new(0)).collect(),
                        })
                    };
                    arena.push(Arc::new(node));
                    match &*arena[idx] {
                        Node::Interior(int) => int.children[slot].store(new_idx, Ordering::Release),
                        Node::Leaf(_) => unreachable!(),
                    }
                    new_idx
                }
            };
        }
        let arena = self.arena.read();
        Some(Arc::clone(&arena[idx]))
    }

    fn entry(&self, vpn: Vpn, create: bool) -> Option<(Arc<Node>, usize)> {
        let leaf = self.leaf_for(vpn, create)?;
        let slot = Self::index_at(vpn, 0);
        Some((leaf, slot))
    }

    /// Charges the cost of one radix walk.
    fn charge_walk(ctx: &mut dyn SimCtx) {
        let c = ctx.cost().radix_level * LEVELS as u64;
        ctx.charge(CostCat::FaultHandler, c);
    }

    /// Finds a free virtual range of `pages` pages (bump allocation, as
    /// the engine's automatic placement policy). Mappings of at least 512
    /// pages are placed on a 2 MiB boundary so aligned file runs stay
    /// promotable to huge pages.
    pub fn find_free(&self, pages: u64) -> Vpn {
        let mut nf = self.next_free.lock();
        let mut start = *nf;
        if pages >= 512 {
            start = (start + 511) & !511;
        }
        *nf = start + pages + 16; // Guard gap between mappings.
        Vpn(start)
    }

    /// Maps `pages` pages starting at `start` (or an automatically chosen
    /// range when `None`) backed by `file` at `file_page`.
    pub fn map(
        &self,
        ctx: &mut dyn SimCtx,
        start: Option<Vpn>,
        pages: u64,
        file: u32,
        file_page: u64,
        prot: Prot,
    ) -> Result<Arc<VmaDesc>, VmaError> {
        assert!(pages > 0, "cannot map zero pages");
        let start = match start {
            Some(s) => s,
            None => self.find_free(pages),
        };
        // First pass: verify the range is free.
        for i in 0..pages {
            let vpn = Vpn(start.0 + i);
            if let Some((leaf, slot)) = self.entry(vpn, false) {
                let e = match &*leaf {
                    Node::Leaf(l) => l.entries[slot].load(Ordering::Acquire),
                    Node::Interior(_) => unreachable!(),
                };
                if e & ENTRY_ID_MASK != 0 {
                    return Err(VmaError::Overlap);
                }
            }
        }
        let desc = Arc::new(VmaDesc {
            file,
            file_page,
            start,
            pages,
            prot,
            advice: std::sync::atomic::AtomicU8::new(0),
        });
        let id = {
            let mut descs = self.descs.write();
            descs.push(Arc::clone(&desc));
            descs.len() as u64 // id+1 encoding; descs[id-1].
        };
        for i in 0..pages {
            let vpn = Vpn(start.0 + i);
            let (leaf, slot) = self.entry(vpn, true).expect("create mode");
            match &*leaf {
                Node::Leaf(l) => l.entries[slot].store(id, Ordering::Release),
                Node::Interior(_) => unreachable!(),
            }
        }
        Self::charge_walk(ctx);
        self.mapped_pages.fetch_add(pages, Ordering::Relaxed);
        Ok(desc)
    }

    /// Unmaps `pages` pages starting at `start`. Unmapping holes or
    /// partial ranges of a larger VMA is allowed (Linux semantics).
    /// Returns the descriptors of pages actually unmapped.
    pub fn unmap(&self, ctx: &mut dyn SimCtx, start: Vpn, pages: u64) -> Vec<(Vpn, Arc<VmaDesc>)> {
        let mut removed = Vec::new();
        for i in 0..pages {
            let vpn = Vpn(start.0 + i);
            if let Some((leaf, slot)) = self.entry(vpn, false) {
                let entries = match &*leaf {
                    Node::Leaf(l) => &l.entries,
                    Node::Interior(_) => unreachable!(),
                };
                // Wait out any in-flight fault holding the entry lock,
                // then claim the entry atomically; a plain swap could
                // otherwise let the fault's later unlock clear the lock
                // bit of a mapping installed here afterwards.
                let old = loop {
                    let cur = entries[slot].load(Ordering::Acquire);
                    if cur & ENTRY_ID_MASK == 0 {
                        break 0;
                    }
                    if cur & ENTRY_LOCK != 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    if entries[slot]
                        .compare_exchange(cur, 0, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        break cur;
                    }
                };
                let id = old & ENTRY_ID_MASK;
                if id != 0 {
                    let desc = Arc::clone(&self.descs.read()[(id - 1) as usize]);
                    removed.push((vpn, desc));
                }
            }
        }
        Self::charge_walk(ctx);
        self.mapped_pages
            .fetch_sub(removed.len() as u64, Ordering::Relaxed);
        removed
    }

    /// Looks up the mapping covering `vpn`, plus whether the page is
    /// individually forced read-only.
    pub fn lookup(&self, ctx: &mut dyn SimCtx, vpn: Vpn) -> Option<(Arc<VmaDesc>, Prot)> {
        Self::charge_walk(ctx);
        let (leaf, slot) = self.entry(vpn, false)?;
        let e = match &*leaf {
            Node::Leaf(l) => l.entries[slot].load(Ordering::Acquire),
            Node::Interior(_) => unreachable!(),
        };
        let id = e & ENTRY_ID_MASK;
        if id == 0 {
            return None;
        }
        let desc = Arc::clone(&self.descs.read()[(id - 1) as usize]);
        let mut prot = desc.prot;
        if e & ENTRY_FORCE_RO != 0 {
            prot.write = false;
        }
        Some((desc, prot))
    }

    /// Tries to lock the entry for `vpn` so a fault can install the page
    /// without racing concurrent faults. Returns false if the entry is
    /// unmapped or already locked.
    pub fn try_lock_entry(&self, vpn: Vpn) -> bool {
        if let Some((leaf, slot)) = self.entry(vpn, false) {
            let entries = match &*leaf {
                Node::Leaf(l) => &l.entries,
                Node::Interior(_) => unreachable!(),
            };
            let cur = entries[slot].load(Ordering::Acquire);
            if cur & ENTRY_ID_MASK == 0 || cur & ENTRY_LOCK != 0 {
                return false;
            }
            return entries[slot]
                .compare_exchange(cur, cur | ENTRY_LOCK, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
        }
        false
    }

    /// Unlocks an entry locked by [`VmaTree::try_lock_entry`].
    pub fn unlock_entry(&self, vpn: Vpn) {
        if let Some((leaf, slot)) = self.entry(vpn, false) {
            let entries = match &*leaf {
                Node::Leaf(l) => &l.entries,
                Node::Interior(_) => unreachable!(),
            };
            entries[slot].fetch_and(!ENTRY_LOCK, Ordering::AcqRel);
        }
    }

    /// Applies `mprotect` to a range: write-enables or write-disables the
    /// per-page override bits. Returns the number of pages affected.
    pub fn protect(&self, ctx: &mut dyn SimCtx, start: Vpn, pages: u64, prot: Prot) -> u64 {
        let mut n = 0;
        for i in 0..pages {
            let vpn = Vpn(start.0 + i);
            if let Some((leaf, slot)) = self.entry(vpn, false) {
                let entries = match &*leaf {
                    Node::Leaf(l) => &l.entries,
                    Node::Interior(_) => unreachable!(),
                };
                let cur = entries[slot].load(Ordering::Acquire);
                if cur & ENTRY_ID_MASK == 0 {
                    continue;
                }
                if prot.write {
                    entries[slot].fetch_and(!ENTRY_FORCE_RO, Ordering::AcqRel);
                } else {
                    entries[slot].fetch_or(ENTRY_FORCE_RO, Ordering::AcqRel);
                }
                n += 1;
            }
        }
        Self::charge_walk(ctx);
        n
    }

    /// Remaps `old_start..+old_pages` to a new automatically placed range
    /// of `new_pages` (the `mremap` move path). The new range maps the
    /// same backing file pages; growth beyond the old length extends the
    /// file window.
    pub fn remap(
        &self,
        ctx: &mut dyn SimCtx,
        old_start: Vpn,
        old_pages: u64,
        new_pages: u64,
    ) -> Result<Arc<VmaDesc>, VmaError> {
        let (desc, _) = self.lookup(ctx, old_start).ok_or(VmaError::NotMapped)?;
        let file = desc.file;
        let file_page = desc.file_page_of(old_start);
        let prot = desc.prot;
        self.unmap(ctx, old_start, old_pages);
        self.map(ctx, None, new_pages, file, file_page, prot)
    }
}

impl core::fmt::Debug for VmaTree {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "VmaTree {{ mapped_pages: {}, descs: {} }}",
            self.mapped_pages(),
            self.desc_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::FreeCtx;

    fn tree() -> VmaTree {
        VmaTree::new(0x1000)
    }

    #[test]
    fn map_lookup_unmap() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        let desc = t.map(&mut ctx, None, 8, 3, 100, Prot::RW).unwrap();
        let start = desc.start;
        let (d, prot) = t.lookup(&mut ctx, Vpn(start.0 + 5)).unwrap();
        assert_eq!(d.file, 3);
        assert_eq!(d.file_page_of(Vpn(start.0 + 5)), 105);
        assert!(prot.write);
        assert_eq!(t.mapped_pages(), 8);
        let removed = t.unmap(&mut ctx, start, 8);
        assert_eq!(removed.len(), 8);
        assert!(t.lookup(&mut ctx, start).is_none());
        assert_eq!(t.mapped_pages(), 0);
    }

    #[test]
    fn fixed_map_overlap_rejected() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        t.map(&mut ctx, Some(Vpn(100)), 10, 0, 0, Prot::RW).unwrap();
        assert!(matches!(
            t.map(&mut ctx, Some(Vpn(105)), 10, 1, 0, Prot::RW),
            Err(VmaError::Overlap)
        ));
        // Adjacent is fine.
        assert!(t.map(&mut ctx, Some(Vpn(110)), 10, 1, 0, Prot::RW).is_ok());
    }

    #[test]
    fn partial_unmap_punches_hole() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, Some(Vpn(200)), 10, 0, 0, Prot::RW).unwrap();
        let removed = t.unmap(&mut ctx, Vpn(203), 4);
        assert_eq!(removed.len(), 4);
        assert!(t.lookup(&mut ctx, Vpn(202)).is_some());
        assert!(t.lookup(&mut ctx, Vpn(204)).is_none());
        assert!(t.lookup(&mut ctx, Vpn(207)).is_some());
        assert_eq!(t.mapped_pages(), 6);
        let _ = d;
    }

    #[test]
    fn automatic_placement_does_not_overlap() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        let a = t.map(&mut ctx, None, 100, 0, 0, Prot::RW).unwrap();
        let b = t.map(&mut ctx, None, 100, 1, 0, Prot::RW).unwrap();
        let (a0, a1) = (a.start.0, a.start.0 + 100);
        let (b0, b1) = (b.start.0, b.start.0 + 100);
        assert!(
            a1 <= b0 || b1 <= a0,
            "ranges overlap: {a0}..{a1} vs {b0}..{b1}"
        );
    }

    #[test]
    fn large_mappings_are_huge_aligned() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        // A small map first skews the bump pointer off any 512 boundary.
        t.map(&mut ctx, None, 3, 0, 0, Prot::RW).unwrap();
        let big = t.map(&mut ctx, None, 1024, 1, 0, Prot::RW).unwrap();
        assert_eq!(big.start.0 % 512, 0, "large mapping must start 2M-aligned");
        let small = t.map(&mut ctx, None, 4, 2, 0, Prot::RW).unwrap();
        assert!(
            small.start.0 >= big.start.0 + 1024,
            "no overlap after big map"
        );
    }

    #[test]
    fn entry_lock_serializes_faults() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, Some(Vpn(50)), 2, 0, 0, Prot::RW).unwrap();
        assert!(t.try_lock_entry(Vpn(50)));
        assert!(!t.try_lock_entry(Vpn(50)), "second lock must fail");
        assert!(t.try_lock_entry(Vpn(51)), "other pages unaffected");
        t.unlock_entry(Vpn(50));
        assert!(t.try_lock_entry(Vpn(50)));
        // Lookup still works while locked.
        assert!(t.lookup(&mut ctx, Vpn(50)).is_some());
        let _ = d;
    }

    #[test]
    fn lock_unmapped_entry_fails() {
        let t = tree();
        assert!(!t.try_lock_entry(Vpn(0xdead)));
    }

    #[test]
    fn mprotect_forces_readonly_per_page() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        t.map(&mut ctx, Some(Vpn(300)), 4, 0, 0, Prot::RW).unwrap();
        let n = t.protect(&mut ctx, Vpn(301), 2, Prot::READ);
        assert_eq!(n, 2);
        let (_, p300) = t.lookup(&mut ctx, Vpn(300)).unwrap();
        let (_, p301) = t.lookup(&mut ctx, Vpn(301)).unwrap();
        assert!(p300.write);
        assert!(!p301.write);
        // Restore write.
        t.protect(&mut ctx, Vpn(301), 1, Prot::RW);
        let (_, p301b) = t.lookup(&mut ctx, Vpn(301)).unwrap();
        assert!(p301b.write);
    }

    #[test]
    fn remap_moves_and_grows() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, Some(Vpn(400)), 4, 9, 50, Prot::RW).unwrap();
        let nd = t.remap(&mut ctx, Vpn(400), 4, 8).unwrap();
        assert!(t.lookup(&mut ctx, Vpn(400)).is_none(), "old range gone");
        assert_eq!(nd.file, 9);
        assert_eq!(nd.file_page_of(nd.start), 50, "file window preserved");
        assert_eq!(nd.pages, 8);
        assert_eq!(t.mapped_pages(), 8);
        let _ = d;
    }

    #[test]
    fn advice_roundtrip() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        let d = t.map(&mut ctx, None, 2, 0, 0, Prot::RW).unwrap();
        assert_eq!(d.advice(), Advice::Normal);
        d.set_advice(Advice::Sequential);
        assert_eq!(d.advice(), Advice::Sequential);
    }

    #[test]
    fn sparse_distant_mappings() {
        let t = tree();
        let mut ctx = FreeCtx::new(1);
        // Far apart in the 36-bit VPN space: exercises deep radix paths.
        t.map(&mut ctx, Some(Vpn(0x0000_0001)), 1, 0, 0, Prot::RW)
            .unwrap();
        t.map(&mut ctx, Some(Vpn(0x0FFF_FFFF0)), 1, 1, 0, Prot::RW)
            .unwrap();
        assert_eq!(t.lookup(&mut ctx, Vpn(0x0000_0001)).unwrap().0.file, 0);
        assert_eq!(t.lookup(&mut ctx, Vpn(0x0FFF_FFFF0)).unwrap().0.file, 1);
        assert!(t.lookup(&mut ctx, Vpn(0x0000_1000)).is_none());
    }

    #[test]
    fn concurrent_lookups_and_locks() {
        use std::sync::Arc as StdArc;
        let t = StdArc::new(tree());
        let mut ctx = FreeCtx::new(1);
        t.map(&mut ctx, Some(Vpn(1000)), 64, 0, 0, Prot::RW)
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..4usize {
            let t = StdArc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut locked = 0;
                for p in 0..64u64 {
                    if p % 4 == i as u64 && t.try_lock_entry(Vpn(1000 + p)) {
                        locked += 1;
                        t.unlock_entry(Vpn(1000 + p));
                    }
                }
                locked
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 64, "each thread locks its disjoint quarter");
    }
}
