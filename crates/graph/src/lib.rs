//! Ligra-style graph processing over storage-extended heaps.
//!
//! The paper's Figure 6 scenario: a graph framework whose arrays live in
//! a memory region that may be plain DRAM, Linux `mmap`, or Aquila mmio —
//! extending the application heap over fast storage with no algorithm
//! changes.
//!
//! - [`rmat`] — R-MAT graph generation (the paper's workload);
//! - [`csr::CsrGraph`] — CSR graphs stored in a
//!   [`aquila_sim::MemRegion`];
//! - [`team::Team`] — OpenMP-style thread teams with barrier-idle
//!   accounting (Figure 6(c)'s user/system/idle split);
//! - [`algos`] — BFS (the paper's benchmark), label-propagation
//!   components, and PageRank.

pub mod algos;
pub mod csr;
pub mod rmat;
pub mod team;

pub use algos::{bfs, label_propagation, pagerank, BfsResult, NO_PARENT};
pub use csr::CsrGraph;
pub use rmat::{rmat_edges, RmatParams};
pub use team::Team;
