//! R-MAT graph generation (Chakrabarti et al., SDM '04).
//!
//! The paper's Figure 6 workload: an R-MAT graph of 100 M vertices with
//! 10x directed edges (scaled down here; the generator takes any size).
//! Standard parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05).

use aquila_sim::Rng64;

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates `m` directed edges over `2^scale` vertices.
///
/// Self-loops are retargeted and duplicate edges are allowed, as in the
/// standard Graph500/Ligra usage.
pub fn rmat_edges(scale: u32, m: u64, params: RmatParams, seed: u64) -> Vec<(u32, u32)> {
    assert!(scale <= 31, "vertex ids are u32");
    let mut rng = Rng64::new(seed);
    let mut edges = Vec::with_capacity(m as usize);
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..m {
        let mut u = 0u32;
        let mut v = 0u32;
        for bit in (0..scale).rev() {
            let r = rng.f64();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < ab {
                (0, 1)
            } else if r < abc {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u == v {
            v = (v.wrapping_add(1)) % (1u32 << scale);
        }
        edges.push((u, v));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_range() {
        let edges = rmat_edges(10, 5000, RmatParams::default(), 42);
        assert_eq!(edges.len(), 5000);
        for &(u, v) in &edges {
            assert!(u < 1024 && v < 1024);
            assert_ne!(u, v, "no self loops");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat_edges(8, 100, RmatParams::default(), 7);
        let b = rmat_edges(8, 100, RmatParams::default(), 7);
        let c = rmat_edges(8, 100, RmatParams::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_concentrates_on_low_ids() {
        // R-MAT's power law: low-id vertices get disproportionate degree.
        let edges = rmat_edges(12, 40_000, RmatParams::default(), 3);
        let low = edges.iter().filter(|&&(u, _)| u < 1024).count();
        // 1024/4096 = 25% of the id space should hold far more than 25%
        // of edge sources.
        assert!(
            low as f64 / edges.len() as f64 > 0.4,
            "low-id share {low} too small"
        );
    }
}
