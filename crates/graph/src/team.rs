//! OpenMP-style thread teams in virtual time.
//!
//! Ligra parallelizes with OpenMP: each parallel region splits work over
//! threads and joins at a barrier. In the simulation a [`Team`] holds one
//! virtual clock per thread; `round` runs a closure per thread, then the
//! barrier advances every thread to the round's makespan, charging the
//! gap as *idle* — which is precisely the idle time the paper's Figure
//! 6(c) breakdown reports.

use aquila_sim::{Breakdown, CostCat, CostModel, Counters, Cycles, FreeCtx, SimCtx};

/// A team of virtual threads with barrier semantics.
pub struct Team {
    ctxs: Vec<FreeCtx>,
}

impl Team {
    /// Creates a team of `threads` threads with per-thread RNG streams.
    pub fn new(threads: usize, seed: u64) -> Team {
        Team {
            ctxs: (0..threads)
                .map(|i| {
                    FreeCtx::new(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
                        .with_core(i, threads)
                })
                .collect(),
        }
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.ctxs.len()
    }

    /// Mutable access to one thread's context (for setup work attributed
    /// to a specific thread).
    pub fn ctx(&mut self, tid: usize) -> &mut FreeCtx {
        &mut self.ctxs[tid]
    }

    /// Runs one parallel region: `f(tid, ctx)` per thread, then a barrier.
    pub fn round(&mut self, mut f: impl FnMut(usize, &mut FreeCtx)) {
        for (tid, ctx) in self.ctxs.iter_mut().enumerate() {
            f(tid, ctx);
        }
        self.barrier();
    }

    /// Advances every thread to the latest clock, charging the gap as
    /// idle (the OpenMP join).
    pub fn barrier(&mut self) {
        let max = self
            .ctxs
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(Cycles::ZERO);
        for ctx in self.ctxs.iter_mut() {
            ctx.wait_until(max, CostCat::Idle);
        }
    }

    /// Current (barrier-aligned) virtual time.
    pub fn now(&self) -> Cycles {
        self.ctxs
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// Merged per-category breakdown across threads.
    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::new();
        for c in &self.ctxs {
            b.merge(&c.breakdown);
        }
        b
    }

    /// Merged counters across threads.
    pub fn counters(&self) -> Counters {
        let mut s = Counters::new();
        for c in &self.ctxs {
            s.merge(&c.stats);
        }
        s
    }

    /// The cost model (shared by all threads).
    pub fn cost(&self) -> &CostModel {
        self.ctxs[0].cost()
    }

    /// Splits `0..n` into per-thread chunks.
    pub fn chunks(&self, n: usize) -> Vec<(usize, usize)> {
        let t = self.ctxs.len();
        let per = n.div_ceil(t);
        (0..t)
            .map(|i| (per * i, (per * (i + 1)).min(n)))
            .filter(|(a, b)| a < b)
            .chain(std::iter::repeat((0, 0)))
            .take(t)
            .collect()
    }
}

impl core::fmt::Debug for Team {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Team {{ threads: {}, now: {} }}",
            self.threads(),
            self.now()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_aligns_clocks_and_charges_idle() {
        let mut team = Team::new(4, 1);
        team.round(|tid, ctx| {
            ctx.charge(CostCat::App, Cycles(100 * (tid as u64 + 1)));
        });
        // All threads aligned at the slowest (400).
        assert_eq!(team.now(), Cycles(400));
        let b = team.breakdown();
        assert_eq!(b.get(CostCat::App), Cycles(100 + 200 + 300 + 400));
        // Idle = sum of gaps: 300 + 200 + 100 + 0.
        assert_eq!(b.get(CostCat::Idle), Cycles(600));
    }

    #[test]
    fn chunks_cover_everything() {
        let team = Team::new(3, 1);
        let chunks = team.chunks(10);
        assert_eq!(chunks.len(), 3);
        let total: usize = chunks.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 10);
        // Chunks with fewer items than threads leave empties.
        let small = team.chunks(2);
        assert_eq!(small.len(), 3);
        assert_eq!(small.iter().filter(|(a, b)| a < b).count(), 2);
        let tiny: usize = small.iter().map(|(a, b)| b - a).sum();
        assert_eq!(tiny, 2);
    }

    #[test]
    fn deterministic_rng_per_thread() {
        let mut t1 = Team::new(2, 9);
        let mut t2 = Team::new(2, 9);
        let a = t1.ctx(0).rng().next_u64();
        let b = t2.ctx(0).rng().next_u64();
        assert_eq!(a, b);
        let c = t1.ctx(1).rng().next_u64();
        assert_ne!(a, c, "distinct streams per thread");
    }
}
