//! Compressed-sparse-row graphs stored in a [`MemRegion`].
//!
//! This is the paper's heap-extension scenario: Ligra's arrays (offsets,
//! edges, and per-vertex algorithm state) live in a memory region that
//! may be plain DRAM, Linux `mmap`, or Aquila mmio. Every access flows
//! through the region, so graph traversal costs exactly track the chosen
//! mmio path.
//!
//! Region layout:
//!
//! ```text
//! [ header: n, m ]                       (16 B)
//! [ offsets: (n+1) x u64 ]
//! [ edges:   m x u32 ]
//! [ algorithm state (allocated after the graph by callers) ]
//! ```

use std::sync::Arc;

use aquila_sim::{MemRegion, SimCtx};

const HEADER: u64 = 16;

/// A CSR graph over a region.
pub struct CsrGraph {
    region: Arc<dyn MemRegion>,
    n: u64,
    m: u64,
    offsets_at: u64,
    edges_at: u64,
}

impl CsrGraph {
    /// Builds a CSR graph in `region` from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if the region is too small.
    pub fn build(
        ctx: &mut dyn SimCtx,
        region: Arc<dyn MemRegion>,
        n: u64,
        edges: &[(u32, u32)],
    ) -> CsrGraph {
        let m = edges.len() as u64;
        let need = HEADER + (n + 1) * 8 + m * 4;
        assert!(need <= region.len(), "region too small: need {need} bytes");

        // Host-side CSR construction (Ligra builds its graph at load time
        // from an on-disk edge list; the interesting accesses are the
        // traversals, which go through the region below).
        let mut degree = vec![0u64; n as usize];
        for &(u, _) in edges {
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0u64; n as usize + 1];
        for i in 0..n as usize {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adj = vec![0u32; m as usize];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
        }

        // Write into the region in bulk (the initial population pass).
        region.write_u64(ctx, 0, n);
        region.write_u64(ctx, 8, m);
        let offsets_at = HEADER;
        let mut buf = Vec::with_capacity(offsets.len() * 8);
        for o in &offsets {
            buf.extend_from_slice(&o.to_le_bytes());
        }
        region.write(ctx, offsets_at, &buf);
        let edges_at = offsets_at + (n + 1) * 8;
        let mut ebuf = Vec::with_capacity(adj.len() * 4);
        for e in &adj {
            ebuf.extend_from_slice(&e.to_le_bytes());
        }
        region.write(ctx, edges_at, &ebuf);

        CsrGraph {
            region,
            n,
            m,
            offsets_at,
            edges_at,
        }
    }

    /// Reopens a graph already present in the region (e.g. after a
    /// restart: the file persisted).
    pub fn open(ctx: &mut dyn SimCtx, region: Arc<dyn MemRegion>) -> CsrGraph {
        let n = region.read_u64(ctx, 0);
        let m = region.read_u64(ctx, 8);
        CsrGraph {
            offsets_at: HEADER,
            edges_at: HEADER + (n + 1) * 8,
            region,
            n,
            m,
        }
    }

    /// Vertex count.
    pub fn vertices(&self) -> u64 {
        self.n
    }

    /// Edge count.
    pub fn edges(&self) -> u64 {
        self.m
    }

    /// Bytes the graph occupies (callers allocate state after this).
    pub fn bytes_used(&self) -> u64 {
        self.edges_at + self.m * 4
    }

    /// The backing region.
    pub fn region(&self) -> &Arc<dyn MemRegion> {
        &self.region
    }

    /// Out-degree of `v`.
    pub fn degree(&self, ctx: &mut dyn SimCtx, v: u32) -> u64 {
        let base = self.offsets_at + v as u64 * 8;
        let mut buf = [0u8; 16];
        self.region.read(ctx, base, &mut buf);
        let lo = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
        let hi = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
        hi - lo
    }

    /// Reads the out-neighbors of `v` into a vector.
    pub fn neighbors(&self, ctx: &mut dyn SimCtx, v: u32) -> Vec<u32> {
        let base = self.offsets_at + v as u64 * 8;
        let mut buf = [0u8; 16];
        self.region.read(ctx, base, &mut buf);
        let lo = u64::from_le_bytes(buf[0..8].try_into().expect("8"));
        let hi = u64::from_le_bytes(buf[8..16].try_into().expect("8"));
        let deg = (hi - lo) as usize;
        if deg == 0 {
            return Vec::new();
        }
        let mut ebuf = vec![0u8; deg * 4];
        self.region.read(ctx, self.edges_at + lo * 4, &mut ebuf);
        ebuf.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
            .collect()
    }
}

impl core::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CsrGraph {{ n: {}, m: {} }}", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::{DramRegion, FreeCtx};

    fn triangle() -> Vec<(u32, u32)> {
        vec![(0, 1), (0, 2), (1, 2), (2, 0)]
    }

    #[test]
    fn build_and_traverse() {
        let mut ctx = FreeCtx::new(1);
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(1 << 20));
        let g = CsrGraph::build(&mut ctx, region, 3, &triangle());
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.edges(), 4);
        assert_eq!(g.degree(&mut ctx, 0), 2);
        assert_eq!(g.neighbors(&mut ctx, 0), vec![1, 2]);
        assert_eq!(g.neighbors(&mut ctx, 1), vec![2]);
        assert_eq!(g.neighbors(&mut ctx, 2), vec![0]);
    }

    #[test]
    fn reopen_sees_same_graph() {
        let mut ctx = FreeCtx::new(1);
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(1 << 20));
        {
            CsrGraph::build(&mut ctx, Arc::clone(&region), 3, &triangle());
        }
        let g = CsrGraph::open(&mut ctx, region);
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.neighbors(&mut ctx, 2), vec![0]);
    }

    #[test]
    fn isolated_vertices_have_no_neighbors() {
        let mut ctx = FreeCtx::new(1);
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(1 << 20));
        let g = CsrGraph::build(&mut ctx, region, 10, &[(3, 4)]);
        assert_eq!(g.degree(&mut ctx, 7), 0);
        assert!(g.neighbors(&mut ctx, 7).is_empty());
        assert_eq!(g.neighbors(&mut ctx, 3), vec![4]);
    }

    #[test]
    #[should_panic(expected = "region too small")]
    fn oversized_graph_rejected() {
        let mut ctx = FreeCtx::new(1);
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(64));
        CsrGraph::build(&mut ctx, region, 100, &[(0, 1)]);
    }
}
