//! Ligra-style graph algorithms over region-backed CSR graphs.
//!
//! BFS is the paper's Figure 6 workload; connected components and
//! PageRank exercise the same edge-map pattern with different state
//! footprints. All per-vertex state lives in the region — the whole point
//! of the heap-extension scenario — and each parallel round ends at a
//! team barrier, like Ligra's OpenMP loops.

use aquila_sim::{CostCat, Cycles, SimCtx};

use crate::csr::CsrGraph;
use crate::team::Team;

/// Per-edge CPU work (compare + branch in the edge map).
const EDGE_WORK: Cycles = Cycles(20);
/// Per-vertex CPU work (frontier bookkeeping).
const VERTEX_WORK: Cycles = Cycles(60);

/// Sentinel for "unvisited" in the parents array.
pub const NO_PARENT: u32 = u32::MAX;

/// BFS result summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsResult {
    /// Vertices reached (including the source).
    pub visited: u64,
    /// BFS rounds executed.
    pub rounds: u32,
    /// Region offset of the parents array (u32 per vertex).
    pub parents_at: u64,
}

/// Runs breadth-first search from `src`, with per-vertex parents stored
/// in the region right after the graph.
pub fn bfs(team: &mut Team, g: &CsrGraph, src: u32) -> BfsResult {
    let n = g.vertices();
    let parents_at = (g.bytes_used() + 4095) & !4095;
    assert!(
        parents_at + n * 4 <= g.region().len(),
        "region lacks space for BFS state"
    );

    // Initialize parents to NO_PARENT in parallel chunks.
    let chunks = team.chunks(n as usize);
    let region = std::sync::Arc::clone(g.region());
    team.round(|tid, ctx| {
        let (a, b) = chunks[tid];
        if a < b {
            let buf = vec![0xFFu8; (b - a) * 4];
            region.write(ctx, parents_at + a as u64 * 4, &buf);
        }
    });

    // Source.
    region.write_u32(team.ctx(0), parents_at + src as u64 * 4, src);
    team.barrier();

    let mut frontier = vec![src];
    let mut visited = 1u64;
    let mut rounds = 0u32;
    while !frontier.is_empty() {
        rounds += 1;
        let nthreads = team.threads();
        let mut nexts: Vec<Vec<u32>> = vec![Vec::new(); nthreads];
        {
            // Edge-granular dynamic scheduling, as Ligra's edgeMap does:
            // work goes to the currently least-loaded thread in segments,
            // and a hub's edge list is split across threads instead of
            // serializing one of them.
            let min_clock = |team: &mut Team| {
                (0..nthreads)
                    .min_by_key(|&t| team.ctx(t).now())
                    .expect("team is non-empty")
            };
            const EDGE_SEG: usize = 512;
            for &u in &frontier {
                let tid = min_clock(team);
                let ctx = team.ctx(tid);
                ctx.charge(CostCat::App, VERTEX_WORK);
                let neigh = g.neighbors(ctx, u);
                for seg in neigh.chunks(EDGE_SEG) {
                    let tid = min_clock(team);
                    let ctx = team.ctx(tid);
                    for &v in seg {
                        ctx.charge(CostCat::App, EDGE_WORK);
                        let p = region.read_u32(ctx, parents_at + v as u64 * 4);
                        if p == NO_PARENT {
                            region.write_u32(ctx, parents_at + v as u64 * 4, u);
                            nexts[tid].push(v);
                        }
                    }
                }
            }
            team.barrier();
        }
        // Merge and deduplicate (two threads may discover the same vertex
        // in one round; either parent is a valid BFS parent).
        let mut next: Vec<u32> = nexts.into_iter().flatten().collect();
        next.sort_unstable();
        next.dedup();
        visited += next.len() as u64;
        frontier = next;
    }
    BfsResult {
        visited,
        rounds,
        parents_at,
    }
}

/// Connected components by label propagation (treating edges as
/// undirected via forward pushes until fixpoint); labels stored in the
/// region after the graph. Returns the number of distinct labels among
/// reachable fixpoints and the iteration count.
pub fn label_propagation(team: &mut Team, g: &CsrGraph, max_iters: u32) -> (u64, u32) {
    let n = g.vertices();
    let labels_at = (g.bytes_used() + 4095) & !4095;
    let region = std::sync::Arc::clone(g.region());
    assert!(labels_at + n * 4 <= region.len(), "region lacks space");

    // labels[v] = v.
    let chunks = team.chunks(n as usize);
    team.round(|tid, ctx| {
        let (a, b) = chunks[tid];
        let mut buf = Vec::with_capacity((b - a) * 4);
        for v in a..b {
            buf.extend_from_slice(&(v as u32).to_le_bytes());
        }
        if a < b {
            region.write(ctx, labels_at + a as u64 * 4, &buf);
        }
    });

    let mut iters = 0u32;
    loop {
        if iters >= max_iters {
            break;
        }
        iters += 1;
        let changed = std::sync::atomic::AtomicU64::new(0);
        let chunks = team.chunks(n as usize);
        team.round(|tid, ctx| {
            let (a, b) = chunks[tid];
            for u in a..b {
                ctx.charge(CostCat::App, VERTEX_WORK);
                let lu = region.read_u32(ctx, labels_at + u as u64 * 4);
                for v in g.neighbors(ctx, u as u32) {
                    ctx.charge(CostCat::App, EDGE_WORK);
                    let lv = region.read_u32(ctx, labels_at + v as u64 * 4);
                    if lu < lv {
                        region.write_u32(ctx, labels_at + v as u64 * 4, lu);
                        changed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            }
        });
        if changed.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            break;
        }
    }

    // Count distinct labels.
    let mut seen = aquila_sync::DetSet::new();
    let ctx = team.ctx(0);
    for v in 0..n {
        seen.insert(region.read_u32(ctx, labels_at + v * 4));
    }
    team.barrier();
    (seen.len() as u64, iters)
}

/// PageRank (push-based) for `iters` iterations; ranks stored in the
/// region as fixed-point u64 (rank * 2^32). Returns the rank of vertex 0.
pub fn pagerank(team: &mut Team, g: &CsrGraph, iters: u32) -> f64 {
    const ONE: u64 = 1 << 32;
    let n = g.vertices();
    let cur_at = (g.bytes_used() + 4095) & !4095;
    let next_at = cur_at + n * 8;
    let region = std::sync::Arc::clone(g.region());
    assert!(next_at + n * 8 <= region.len(), "region lacks space");

    let init = (ONE as f64 / n as f64) as u64;
    let base = ((0.15 * ONE as f64) / n as f64) as u64;
    let chunks = team.chunks(n as usize);
    team.round(|tid, ctx| {
        let (a, b) = chunks[tid];
        let mut buf = Vec::with_capacity((b - a) * 8);
        for _ in a..b {
            buf.extend_from_slice(&init.to_le_bytes());
        }
        if a < b {
            region.write(ctx, cur_at + a as u64 * 8, &buf);
        }
    });

    for _ in 0..iters {
        // Reset next to the teleport base.
        let chunks = team.chunks(n as usize);
        team.round(|tid, ctx| {
            let (a, b) = chunks[tid];
            let mut buf = Vec::with_capacity((b - a) * 8);
            for _ in a..b {
                buf.extend_from_slice(&base.to_le_bytes());
            }
            if a < b {
                region.write(ctx, next_at + a as u64 * 8, &buf);
            }
        });
        // Push shares along out-edges.
        team.round(|tid, ctx| {
            let (a, b) = chunks[tid];
            for u in a..b {
                ctx.charge(CostCat::App, VERTEX_WORK);
                let rank = region.read_u64(ctx, cur_at + u as u64 * 8);
                let neigh = g.neighbors(ctx, u as u32);
                if neigh.is_empty() {
                    continue;
                }
                let share = (rank as f64 * 0.85 / neigh.len() as f64) as u64;
                for v in neigh {
                    ctx.charge(CostCat::App, EDGE_WORK);
                    let nv = region.read_u64(ctx, next_at + v as u64 * 8);
                    region.write_u64(ctx, next_at + v as u64 * 8, nv + share);
                }
            }
        });
        // Swap: copy next -> cur.
        team.round(|tid, ctx| {
            let (a, b) = chunks[tid];
            if a < b {
                let mut buf = vec![0u8; (b - a) * 8];
                region.read(ctx, next_at + a as u64 * 8, &mut buf);
                region.write(ctx, cur_at + a as u64 * 8, &buf);
            }
        });
    }
    let r0 = region.read_u64(team.ctx(0), cur_at);
    team.barrier();
    r0 as f64 / ONE as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aquila_sim::{DramRegion, MemRegion};
    use std::sync::Arc;

    fn chain(n: u32) -> (Team, CsrGraph) {
        // 0 -> 1 -> 2 -> ... -> n-1.
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(4 << 20));
        let mut team = Team::new(2, 1);
        let g = CsrGraph::build(team.ctx(0), region, n as u64, &edges);
        team.barrier();
        (team, g)
    }

    #[test]
    fn bfs_on_chain_visits_everything() {
        let (mut team, g) = chain(100);
        let r = bfs(&mut team, &g, 0);
        assert_eq!(r.visited, 100);
        assert_eq!(r.rounds, 100, "one round per chain hop (last is empty)");
        // Parents follow the chain.
        let region = Arc::clone(g.region());
        let ctx = team.ctx(0);
        for v in 1..100u64 {
            assert_eq!(region.read_u32(ctx, r.parents_at + v * 4), v as u32 - 1);
        }
        assert_eq!(
            region.read_u32(ctx, r.parents_at),
            0,
            "source parents itself"
        );
    }

    #[test]
    fn bfs_from_middle_visits_suffix() {
        let (mut team, g) = chain(50);
        let r = bfs(&mut team, &g, 25);
        assert_eq!(r.visited, 25, "only the suffix is reachable");
    }

    #[test]
    fn bfs_on_star_is_two_rounds() {
        let edges: Vec<(u32, u32)> = (1..64).map(|v| (0, v)).collect();
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(1 << 20));
        let mut team = Team::new(4, 1);
        let g = CsrGraph::build(team.ctx(0), region, 64, &edges);
        team.barrier();
        let r = bfs(&mut team, &g, 0);
        assert_eq!(r.visited, 64);
        assert_eq!(r.rounds, 2);
    }

    #[test]
    fn bfs_deterministic_across_team_sizes() {
        // Visited count must not depend on thread count.
        let edges = crate::rmat::rmat_edges(10, 4096, crate::rmat::RmatParams::default(), 5);
        let mut counts = Vec::new();
        for threads in [1usize, 2, 8] {
            let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(8 << 20));
            let mut team = Team::new(threads, 1);
            let g = CsrGraph::build(team.ctx(0), region, 1024, &edges);
            team.barrier();
            counts.push(bfs(&mut team, &g, 0).visited);
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);
    }

    #[test]
    fn label_propagation_chain_converges_to_one() {
        let (mut team, g) = chain(32);
        let (labels, iters) = label_propagation(&mut team, &g, 100);
        assert_eq!(labels, 1, "a chain is one component");
        assert!(iters <= 100);
    }

    #[test]
    fn pagerank_sums_to_one_ish() {
        let edges: Vec<(u32, u32)> = (1..16)
            .map(|v| (0, v))
            .chain((1..16).map(|v| (v, 0)))
            .collect();
        let region: Arc<dyn MemRegion> = Arc::new(DramRegion::new(4 << 20));
        let mut team = Team::new(2, 1);
        let g = CsrGraph::build(team.ctx(0), region, 16, &edges);
        team.barrier();
        let r0 = pagerank(&mut team, &g, 10);
        // The hub of a star holds a large share of the rank.
        assert!(r0 > 0.2, "hub rank {r0}");
        assert!(r0 < 1.0);
    }
}
