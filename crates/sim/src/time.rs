//! Virtual time in CPU cycles.
//!
//! All simulated time in this workspace is expressed in cycles of the
//! paper's testbed CPU (Intel Xeon E5-2630 v3 at 2.4 GHz). A dedicated
//! newtype keeps cycle arithmetic from being confused with byte counts,
//! page numbers, and other `u64` quantities that appear throughout the
//! simulator.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Clock frequency of the modelled CPU, in Hz (2.4 GHz).
pub const CPU_HZ: u64 = 2_400_000_000;

/// A duration or instant measured in CPU cycles at [`CPU_HZ`].
///
/// `Cycles` is used both for durations (costs charged by the cost model)
/// and for instants (per-thread virtual clocks); the discrete-event engine
/// treats an instant as the duration since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration / simulation start.
    pub const ZERO: Cycles = Cycles(0);

    /// A far-future instant used as an "infinity" sentinel.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Builds a duration from nanoseconds at the modelled clock rate.
    ///
    /// 1 ns = 2.4 cycles at 2.4 GHz; the result is rounded to the nearest
    /// cycle.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Cycles {
        Cycles((ns * CPU_HZ + 500_000_000) / 1_000_000_000)
    }

    /// Builds a duration from microseconds at the modelled clock rate.
    #[inline]
    pub const fn from_micros(us: u64) -> Cycles {
        Cycles::from_nanos(us * 1_000)
    }

    /// Builds a duration from milliseconds at the modelled clock rate.
    #[inline]
    pub const fn from_millis(ms: u64) -> Cycles {
        Cycles::from_nanos(ms * 1_000_000)
    }

    /// Converts to nanoseconds (floating point, for reporting).
    #[inline]
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 * 1e9 / CPU_HZ as f64
    }

    /// Converts to microseconds (floating point, for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e6 / CPU_HZ as f64
    }

    /// Converts to seconds (floating point, for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / CPU_HZ as f64
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 10_000 {
            write!(f, "{} cyc", self.0)
        } else if self.as_micros_f64() < 10_000.0 {
            write!(f, "{:.2} us", self.as_micros_f64())
        } else {
            write!(f, "{:.3} s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_round_trip() {
        // 1000 ns at 2.4 GHz is exactly 2400 cycles.
        assert_eq!(Cycles::from_nanos(1000), Cycles(2400));
        let c = Cycles::from_nanos(250);
        assert_eq!(c, Cycles(600));
        assert!((c.as_nanos_f64() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn micros_and_millis() {
        assert_eq!(Cycles::from_micros(10), Cycles(24_000));
        assert_eq!(Cycles::from_millis(1), Cycles(2_400_000));
    }

    #[test]
    fn arithmetic() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a * 3, Cycles(300));
        assert_eq!(a / 4, Cycles(25));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn rounding_is_nearest() {
        // 1 ns = 2.4 cycles, rounds to 2.
        assert_eq!(Cycles::from_nanos(1), Cycles(2));
        // 3 ns = 7.2 cycles, rounds to 7.
        assert_eq!(Cycles::from_nanos(3), Cycles(7));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Cycles(500)), "500 cyc");
        assert!(format!("{}", Cycles(240_000)).ends_with("us"));
        assert!(format!("{}", Cycles(CPU_HZ * 60)).ends_with('s'));
    }

    #[test]
    fn sum_iterator() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }
}
