//! Per-category cycle accounting and event counters.

use crate::cost::CostCat;
use crate::time::Cycles;

/// Accumulates charged cycles per [`CostCat`].
///
/// This is what the figure binaries read to produce the paper's breakdown
/// plots (Figures 7, 8) and the user/system/idle split of Figure 6(c).
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    cells: [u64; CostCat::ALL.len()],
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Breakdown {
        Breakdown::default()
    }

    /// Adds `c` cycles to category `cat`.
    #[inline]
    pub fn add(&mut self, cat: CostCat, c: Cycles) {
        self.cells[cat.index()] += c.get();
    }

    /// Cycles accumulated in `cat`.
    pub fn get(&self, cat: CostCat) -> Cycles {
        Cycles(self.cells[cat.index()])
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> Cycles {
        Cycles(self.cells.iter().sum())
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            *a += b;
        }
    }

    /// Difference `self - other`, saturating at zero per category.
    pub fn since(&self, other: &Breakdown) -> Breakdown {
        let mut out = Breakdown::new();
        for (i, (a, b)) in self.cells.iter().zip(other.cells.iter()).enumerate() {
            out.cells[i] = a.saturating_sub(*b);
        }
        out
    }

    /// Fraction of the total that `cat` accounts for (0 when empty).
    pub fn share(&self, cat: CostCat) -> f64 {
        let total = self.total().get();
        if total == 0 {
            return 0.0;
        }
        self.get(cat).get() as f64 / total as f64
    }

    /// Iterates over non-empty `(category, cycles)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CostCat, Cycles)> + '_ {
        CostCat::ALL
            .iter()
            .copied()
            .filter(|c| self.cells[c.index()] > 0)
            .map(|c| (c, Cycles(self.cells[c.index()])))
    }

    /// Multi-line human-readable table, sorted by descending share.
    pub fn table(&self) -> String {
        let total = self.total().get().max(1);
        let mut rows: Vec<(CostCat, u64)> = CostCat::ALL
            .iter()
            .map(|&c| (c, self.cells[c.index()]))
            .filter(|&(_, v)| v > 0)
            .collect();
        rows.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
        let mut out = String::new();
        for (cat, v) in rows {
            out.push_str(&format!(
                "  {:<14} {:>14} cyc  {:>5.1}%\n",
                cat.name(),
                v,
                100.0 * v as f64 / total as f64
            ));
        }
        out
    }
}

/// Simulation-wide event counters.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    /// Page faults taken (both minor and major).
    pub page_faults: u64,
    /// Faults satisfied from the DRAM cache (minor).
    pub minor_faults: u64,
    /// Faults that required device I/O (major).
    pub major_faults: u64,
    /// Pages evicted from the DRAM cache.
    pub evictions: u64,
    /// Dirty pages written back to the device.
    pub writebacks: u64,
    /// Read I/O operations issued to a device.
    pub device_reads: u64,
    /// Write I/O operations issued to a device.
    pub device_writes: u64,
    /// Bytes read from devices.
    pub bytes_read: u64,
    /// Bytes written to devices.
    pub bytes_written: u64,
    /// TLB shootdown rounds (one IPI broadcast, possibly many pages).
    pub tlb_shootdowns: u64,
    /// Individual page invalidations requested.
    pub tlb_invalidations: u64,
    /// System calls executed through a kernel (host or guest-intercepted).
    pub syscalls: u64,
    /// vmcalls / forced vmexits taken.
    pub vmexits: u64,
    /// EPT violations handled by the hypervisor.
    pub ept_faults: u64,
    /// Readahead pages fetched speculatively.
    pub readahead_pages: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, o: &Counters) {
        self.page_faults += o.page_faults;
        self.minor_faults += o.minor_faults;
        self.major_faults += o.major_faults;
        self.evictions += o.evictions;
        self.writebacks += o.writebacks;
        self.device_reads += o.device_reads;
        self.device_writes += o.device_writes;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
        self.tlb_shootdowns += o.tlb_shootdowns;
        self.tlb_invalidations += o.tlb_invalidations;
        self.syscalls += o.syscalls;
        self.vmexits += o.vmexits;
        self.ept_faults += o.ept_faults;
        self.readahead_pages += o.readahead_pages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = Breakdown::new();
        b.add(CostCat::Trap, Cycles(100));
        b.add(CostCat::Trap, Cycles(50));
        b.add(CostCat::DeviceIo, Cycles(850));
        assert_eq!(b.get(CostCat::Trap), Cycles(150));
        assert_eq!(b.total(), Cycles(1000));
        assert!((b.share(CostCat::DeviceIo) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn breakdown_merge_and_since() {
        let mut a = Breakdown::new();
        a.add(CostCat::App, Cycles(10));
        let snapshot = a.clone();
        a.add(CostCat::App, Cycles(5));
        a.add(CostCat::Tlb, Cycles(7));
        let delta = a.since(&snapshot);
        assert_eq!(delta.get(CostCat::App), Cycles(5));
        assert_eq!(delta.get(CostCat::Tlb), Cycles(7));

        let mut m = Breakdown::new();
        m.merge(&a);
        m.merge(&delta);
        assert_eq!(m.get(CostCat::App), Cycles(20));
    }

    #[test]
    fn iter_skips_empty_categories() {
        let mut b = Breakdown::new();
        b.add(CostCat::Memcpy, Cycles(1));
        let items: Vec<_> = b.iter().collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, CostCat::Memcpy);
    }

    #[test]
    fn table_sorted_by_share() {
        let mut b = Breakdown::new();
        b.add(CostCat::App, Cycles(1));
        b.add(CostCat::DeviceIo, Cycles(99));
        let t = b.table();
        let dev = t.find("device-io").unwrap();
        let app = t.find("app").unwrap();
        assert!(dev < app, "largest category first:\n{t}");
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.page_faults = 3;
        a.bytes_read = 4096;
        let mut b = Counters::new();
        b.page_faults = 2;
        b.tlb_shootdowns = 1;
        a.merge(&b);
        assert_eq!(a.page_faults, 5);
        assert_eq!(a.tlb_shootdowns, 1);
        assert_eq!(a.bytes_read, 4096);
    }

    #[test]
    fn empty_share_is_zero() {
        let b = Breakdown::new();
        assert_eq!(b.share(CostCat::App), 0.0);
    }
}
