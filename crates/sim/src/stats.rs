//! Per-category cycle accounting and event counters.

use crate::cost::CostCat;
use crate::time::Cycles;

/// Accumulates charged cycles per [`CostCat`].
///
/// This is what the figure binaries read to produce the paper's breakdown
/// plots (Figures 7, 8) and the user/system/idle split of Figure 6(c).
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    cells: [u64; CostCat::ALL.len()],
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Breakdown {
        Breakdown::default()
    }

    /// Adds `c` cycles to category `cat`.
    #[inline]
    pub fn add(&mut self, cat: CostCat, c: Cycles) {
        self.cells[cat.index()] += c.get();
    }

    /// Cycles accumulated in `cat`.
    pub fn get(&self, cat: CostCat) -> Cycles {
        Cycles(self.cells[cat.index()])
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> Cycles {
        Cycles(self.cells.iter().sum())
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for (a, b) in self.cells.iter_mut().zip(other.cells.iter()) {
            *a += b;
        }
    }

    /// Difference `self - other`, saturating at zero per category.
    pub fn since(&self, other: &Breakdown) -> Breakdown {
        let mut out = Breakdown::new();
        for (i, (a, b)) in self.cells.iter().zip(other.cells.iter()).enumerate() {
            out.cells[i] = a.saturating_sub(*b);
        }
        out
    }

    /// Fraction of the total that `cat` accounts for (0 when empty).
    pub fn share(&self, cat: CostCat) -> f64 {
        let total = self.total().get();
        if total == 0 {
            return 0.0;
        }
        self.get(cat).get() as f64 / total as f64
    }

    /// Iterates over non-empty `(category, cycles)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CostCat, Cycles)> + '_ {
        CostCat::ALL
            .iter()
            .copied()
            .filter(|c| self.cells[c.index()] > 0)
            .map(|c| (c, Cycles(self.cells[c.index()])))
    }

    /// Multi-line human-readable table, sorted by descending share.
    pub fn table(&self) -> String {
        let total = self.total().get().max(1);
        let mut rows: Vec<(CostCat, u64)> = CostCat::ALL
            .iter()
            .map(|&c| (c, self.cells[c.index()]))
            .filter(|&(_, v)| v > 0)
            .collect();
        rows.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
        let mut out = String::new();
        for (cat, v) in rows {
            out.push_str(&format!(
                "  {:<14} {:>14} cyc  {:>5.1}%\n",
                cat.name(),
                v,
                100.0 * v as f64 / total as f64
            ));
        }
        out
    }
}

/// Defines [`Counters`] with every field enumerated exactly once.
///
/// `merge`, `NAMES`, and `iter` are all generated from the same field
/// list, so adding a counter cannot silently be dropped from merges or
/// from machine-readable reports (the bug class the old field-by-field
/// `merge` invited).
macro_rules! define_counters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Simulation-wide event counters.
        #[derive(Debug, Clone, Default)]
        pub struct Counters {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl Counters {
            /// Field names, in declaration order (matches [`Self::iter`]).
            pub const NAMES: &'static [&'static str] = &[$(stringify!($name)),+];

            /// Creates zeroed counters.
            pub fn new() -> Counters {
                Counters::default()
            }

            /// Merges another counter set into this one.
            pub fn merge(&mut self, o: &Counters) {
                $(self.$name += o.$name;)+
            }

            /// Iterates over `(name, value)` pairs in declaration order.
            pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
                [$((stringify!($name), self.$name)),+].into_iter()
            }
        }
    };
}

define_counters! {
    /// Page faults taken (both minor and major).
    page_faults,
    /// Faults satisfied from the DRAM cache (minor).
    minor_faults,
    /// Faults that required device I/O (major).
    major_faults,
    /// Pages evicted from the DRAM cache.
    evictions,
    /// Dirty pages written back to the device.
    writebacks,
    /// Read I/O operations issued to a device.
    device_reads,
    /// Write I/O operations issued to a device.
    device_writes,
    /// Bytes read from devices.
    bytes_read,
    /// Bytes written to devices.
    bytes_written,
    /// TLB shootdown rounds (one IPI broadcast, possibly many pages).
    tlb_shootdowns,
    /// Individual page invalidations requested.
    tlb_invalidations,
    /// System calls executed through a kernel (host or guest-intercepted).
    syscalls,
    /// vmcalls / forced vmexits taken.
    vmexits,
    /// EPT violations handled by the hypervisor.
    ept_faults,
    /// Readahead pages fetched speculatively.
    readahead_pages,
    /// 2 MiB huge-page promotions (512-page runs collapsed to one PTE).
    huge_promotions,
    /// 2 MiB huge-page demotions (runs splintered back to 4 KiB).
    huge_demotions,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates_and_totals() {
        let mut b = Breakdown::new();
        b.add(CostCat::Trap, Cycles(100));
        b.add(CostCat::Trap, Cycles(50));
        b.add(CostCat::DeviceIo, Cycles(850));
        assert_eq!(b.get(CostCat::Trap), Cycles(150));
        assert_eq!(b.total(), Cycles(1000));
        assert!((b.share(CostCat::DeviceIo) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn breakdown_merge_and_since() {
        let mut a = Breakdown::new();
        a.add(CostCat::App, Cycles(10));
        let snapshot = a.clone();
        a.add(CostCat::App, Cycles(5));
        a.add(CostCat::Tlb, Cycles(7));
        let delta = a.since(&snapshot);
        assert_eq!(delta.get(CostCat::App), Cycles(5));
        assert_eq!(delta.get(CostCat::Tlb), Cycles(7));

        let mut m = Breakdown::new();
        m.merge(&a);
        m.merge(&delta);
        assert_eq!(m.get(CostCat::App), Cycles(20));
    }

    #[test]
    fn iter_skips_empty_categories() {
        let mut b = Breakdown::new();
        b.add(CostCat::Memcpy, Cycles(1));
        let items: Vec<_> = b.iter().collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, CostCat::Memcpy);
    }

    #[test]
    fn table_sorted_by_share() {
        let mut b = Breakdown::new();
        b.add(CostCat::App, Cycles(1));
        b.add(CostCat::DeviceIo, Cycles(99));
        let t = b.table();
        let dev = t.find("device-io").unwrap();
        let app = t.find("app").unwrap();
        assert!(dev < app, "largest category first:\n{t}");
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.page_faults = 3;
        a.bytes_read = 4096;
        let mut b = Counters::new();
        b.page_faults = 2;
        b.tlb_shootdowns = 1;
        a.merge(&b);
        assert_eq!(a.page_faults, 5);
        assert_eq!(a.tlb_shootdowns, 1);
        assert_eq!(a.bytes_read, 4096);
    }

    #[test]
    fn counters_merge_covers_every_field() {
        // Set every counter to 1 through the generated iterator's field
        // list; a merge must double all of them. Guards against merge and
        // iter disagreeing with the struct definition.
        let mut a = Counters::new();
        let mut b = Counters::new();
        for c in [&mut a, &mut b] {
            c.page_faults = 1;
            c.minor_faults = 1;
            c.major_faults = 1;
            c.evictions = 1;
            c.writebacks = 1;
            c.device_reads = 1;
            c.device_writes = 1;
            c.bytes_read = 1;
            c.bytes_written = 1;
            c.tlb_shootdowns = 1;
            c.tlb_invalidations = 1;
            c.syscalls = 1;
            c.vmexits = 1;
            c.ept_faults = 1;
            c.readahead_pages = 1;
            c.huge_promotions = 1;
            c.huge_demotions = 1;
        }
        a.merge(&b);
        assert_eq!(Counters::NAMES.len(), a.iter().count());
        for (name, v) in a.iter() {
            assert_eq!(v, 2, "counter {name} dropped from merge");
        }
    }

    #[test]
    fn counters_iter_matches_names() {
        let c = Counters::new();
        let from_iter: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(from_iter, Counters::NAMES);
    }

    #[test]
    fn empty_share_is_zero() {
        let b = Breakdown::new();
        assert_eq!(b.share(CostCat::App), 0.0);
    }
}
