//! Deterministic discrete-event simulation kernel for the Aquila
//! reproduction.
//!
//! This crate provides the substrate every other crate in the workspace
//! builds on:
//!
//! - [`time::Cycles`] — virtual time at the paper testbed's 2.4 GHz clock;
//! - [`cost::CostModel`] — the calibrated per-event cycle costs, sourced
//!   from the paper (traps, vmexits, SIMD copies, ...);
//! - [`resource`] — reservation-based contention models for locks and
//!   storage devices;
//! - [`engine`] — the discrete-event scheduler that steps virtual threads
//!   in global time order and the [`engine::SimCtx`] trait through which
//!   library code charges costs;
//! - [`hist::LatencyHist`] and [`stats::Breakdown`] — the measurement
//!   machinery behind every figure;
//! - [`trace`], [`span`], and [`metrics`] — cycle-stamped event tracing
//!   (with a Chrome `trace_event` exporter for Perfetto), causal
//!   begin/end spans with cross-thread parent links, and a registry of
//!   named per-core counters/gauges/latency-histograms, all zero-cost
//!   when not installed;
//! - [`fault`] — schedule-deterministic fault plans (media errors,
//!   timeouts, torn writes, power cuts) that device models consult at
//!   chosen operation counts or cycle points, zero-cost when empty.
//!
//! Everything is deterministic: a run is a pure function of the seed, the
//! cost model, and the workload parameters.

pub mod cost;
pub mod engine;
pub mod fault;
pub mod hist;
pub mod metrics;
pub mod race;
pub mod region;
pub mod resource;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

pub use cost::{CostCat, CostModel};
pub use engine::{CoreDebts, Engine, FreeCtx, RunReport, SimCtx, Step, ThreadCtx, ThreadFn};
pub use fault::{
    CrashImage, FaultClause, FaultKind, FaultOutcome, FaultPlan, FaultSpecError, FaultTarget,
    FaultTrigger, SECTOR_SIZE,
};
pub use hist::LatencyHist;
pub use metrics::{HistId, MetricId, MetricKind, MetricsRegistry, MetricsSnapshot};
pub use race::{RaceDetector, RaceStats};
pub use region::{DramRegion, MemRegion};
pub use resource::{Reservation, ServiceCenter, SimMutex, SimRwLock};
pub use rng::{Rng64, ScrambledZipfian, Zipfian};
pub use span::{Span, SpanId};
pub use stats::{Breakdown, Counters};
pub use time::{Cycles, CPU_HZ};
pub use trace::{TraceEvent, Tracer};

/// Page size used throughout the simulation (4 KiB, matching the paper's
/// GVA->GPA granularity).
pub const PAGE_SIZE: usize = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_constants_agree() {
        assert_eq!(1usize << PAGE_SHIFT, PAGE_SIZE);
    }
}
