//! Causal begin/end spans over the trace ring.
//!
//! [`crate::trace`]'s retroactive `Span` events describe *one* piece of
//! work on *one* vcore. The fault path is not like that: a faulting vcore
//! triggers a pcache miss, which submits NVMe commands, while a dedicated
//! evictor writes back dirty frames and shoots down remote TLBs. This
//! module layers cycle-exact begin/end spans with **parent links** on the
//! same ring, so the whole causal chain reconstructs offline (Perfetto's
//! async `b`/`e` view, or `aquila-prof`'s folded flamegraph).
//!
//! Model:
//!
//! - [`begin`] opens a span whose parent is the innermost open span of
//!   the *calling virtual thread* (each `SimCtx` carries its own span
//!   stack, so interleaved threads never corrupt each other's nesting);
//! - [`begin_child`] opens a span under an **explicit** parent, which is
//!   how causality crosses DES threads: the sender publishes its
//!   [`SpanId`] through shared state (e.g. the evictor's last writeback
//!   round, or a [`crate::engine::CoreDebts`] shootdown tag) and the
//!   receiver links to it;
//! - [`end`] closes a span; unbalanced inner spans are popped so a
//!   forgotten `end` cannot wedge the stack.
//!
//! Determinism: span ids come from one process-global counter, allocated
//! only while a tracer is installed. The DES engine steps every virtual
//! thread from a single OS thread in virtual-time order, so allocation
//! order — and therefore the exported trace — is a pure function of the
//! run. Recording never charges virtual cycles; with no tracer installed
//! every function here is a single atomic load.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::cost::CostCat;
use crate::engine::SimCtx;
use crate::trace::{self, TraceEvent, Tracer};

/// Identity of a causal span. `NONE` (zero) means "no span": tracing was
/// disabled at `begin`, or a root with no parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id: no parent / tracing disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// An open span returned by [`begin`]/[`begin_child`]; close it with
/// [`end`]. Copy so it can ride through control flow freely; the
/// `must_use` nudges call sites to actually close what they open.
#[derive(Debug, Clone, Copy)]
#[must_use = "open spans must be closed with span::end"]
pub struct Span {
    name: &'static str,
    cat: CostCat,
    id: SpanId,
}

impl Span {
    /// This span's id, for publishing to another thread as a parent link.
    pub fn id(&self) -> SpanId {
        self.id
    }
}

/// Process-global span id allocator. Only advanced while a tracer is
/// installed, from the engine's single OS thread — deterministic.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Opens a span on `ctx`'s thread, parented to its innermost open span.
#[inline]
pub fn begin(ctx: &mut dyn SimCtx, name: &'static str, cat: CostCat) -> Span {
    let parent = current(ctx);
    begin_child(ctx, name, cat, parent)
}

/// Opens a span under an explicit `parent` (possibly from another DES
/// thread). Pass [`SpanId::NONE`] for a root span.
#[inline]
pub fn begin_child(ctx: &mut dyn SimCtx, name: &'static str, cat: CostCat, parent: SpanId) -> Span {
    match trace::global() {
        Some(t) => begin_in(t, ctx, name, cat, parent),
        None => Span {
            name,
            cat,
            id: SpanId::NONE,
        },
    }
}

/// Closes `span` at `ctx.now()`. A span opened while tracing was
/// disabled (null id) is a no-op.
#[inline]
pub fn end(ctx: &mut dyn SimCtx, span: Span) {
    if span.id.is_none() {
        return;
    }
    if let Some(t) = trace::global() {
        end_in(t, ctx, span);
    }
}

/// The calling thread's innermost open span, or [`SpanId::NONE`]. Use to
/// publish the current causal context to another thread.
#[inline]
pub fn current(ctx: &mut dyn SimCtx) -> SpanId {
    if !trace::enabled() {
        return SpanId::NONE;
    }
    ctx.span_stack()
        .and_then(|s| s.last().copied())
        .map(SpanId)
        .unwrap_or(SpanId::NONE)
}

/// [`begin_child`] against an explicit tracer (tests; the free functions
/// use the process-global one).
pub fn begin_in(
    t: &Tracer,
    ctx: &mut dyn SimCtx,
    name: &'static str,
    cat: CostCat,
    parent: SpanId,
) -> Span {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    t.record(TraceEvent::SpanBegin {
        name,
        cat,
        core: ctx.core(),
        ts: ctx.now(),
        id,
        parent: parent.0,
    });
    if let Some(stack) = ctx.span_stack() {
        stack.push(id);
    }
    Span {
        name,
        cat,
        id: SpanId(id),
    }
}

/// [`end`] against an explicit tracer.
pub fn end_in(t: &Tracer, ctx: &mut dyn SimCtx, span: Span) {
    if let Some(stack) = ctx.span_stack() {
        // Pop through unbalanced inner spans so a missed `end` deeper in
        // the call tree cannot leak stack entries forever.
        while let Some(top) = stack.pop() {
            if top == span.id.0 {
                break;
            }
        }
    }
    t.record(TraceEvent::SpanEnd {
        name: span.name,
        cat: span.cat,
        core: ctx.core(),
        ts: ctx.now(),
        id: span.id.0,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreeCtx;
    use crate::time::Cycles;

    fn begins(t: &Tracer) -> Vec<(u64, u64, u64)> {
        // (id, parent, ts) of SpanBegin events, recording order.
        t.events()
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::SpanBegin { id, parent, ts, .. } => Some((id, parent, ts.get())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let t = Tracer::new(64);
        let mut ctx = FreeCtx::new(7);
        let outer = begin_in(&t, &mut ctx, "outer", CostCat::App, SpanId::NONE);
        ctx.charge(CostCat::App, Cycles(10));
        let parent = ctx.span_stack().unwrap().last().copied().unwrap();
        assert_eq!(parent, outer.id().0);
        let inner = begin_in(&t, &mut ctx, "inner", CostCat::DeviceIo, SpanId(parent));
        ctx.charge(CostCat::DeviceIo, Cycles(5));
        end_in(&t, &mut ctx, inner);
        end_in(&t, &mut ctx, outer);
        let b = begins(&t);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].1, 0, "outer is a root");
        assert_eq!(b[1].1, b[0].0, "inner parented to outer");
        assert!(ctx.span_stack().unwrap().is_empty(), "stack drained");
    }

    #[test]
    fn end_pops_unbalanced_inner_spans() {
        let t = Tracer::new(64);
        let mut ctx = FreeCtx::new(7);
        let outer = begin_in(&t, &mut ctx, "outer", CostCat::App, SpanId::NONE);
        let _leaked = begin_in(&t, &mut ctx, "leaked", CostCat::App, SpanId(outer.id().0));
        end_in(&t, &mut ctx, outer); // closes outer, discarding `leaked`
        assert!(ctx.span_stack().unwrap().is_empty());
    }

    #[test]
    fn cross_thread_parent_link() {
        let t = Tracer::new(64);
        let mut producer = FreeCtx::new(0x11).with_core(1, 4);
        let mut consumer = FreeCtx::new(0x22).with_core(2, 4);
        let round = begin_in(
            &t,
            &mut producer,
            "evictor.round",
            CostCat::Eviction,
            SpanId::NONE,
        );
        // Publish the producer's span id; the consumer links to it even
        // though its own stack is empty.
        let handoff = round.id();
        let drain = begin_in(&t, &mut consumer, "msync.drain", CostCat::Syscall, handoff);
        end_in(&t, &mut consumer, drain);
        end_in(&t, &mut producer, round);
        let b = begins(&t);
        assert_eq!(b[1].1, b[0].0, "consumer span parented across threads");
    }

    #[test]
    fn spans_never_charge_cycles() {
        let t = Tracer::new(8);
        let mut ctx = FreeCtx::new(1);
        let sp = begin_in(&t, &mut ctx, "free", CostCat::App, SpanId::NONE);
        end_in(&t, &mut ctx, sp);
        assert_eq!(ctx.now(), Cycles(0));
    }

    #[test]
    fn disabled_global_returns_null_span() {
        // The global tracer may or may not be installed depending on
        // test order; a null-id span must always be a safe no-op.
        let mut ctx = FreeCtx::new(1);
        let sp = Span {
            name: "x",
            cat: CostCat::App,
            id: SpanId::NONE,
        };
        end(&mut ctx, sp);
        assert!(SpanId::NONE.is_none());
    }
}
