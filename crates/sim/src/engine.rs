//! The discrete-event simulation engine.
//!
//! Virtual threads are closures stepped in global virtual-time order: the
//! scheduler always advances the thread with the smallest local clock, so
//! reservations on shared resources (see [`crate::resource`]) are made in
//! causally consistent order. Each step performs one unit of workload (one
//! request, one fault, one graph iteration) and charges its costs through
//! the thread's [`ThreadCtx`].
//!
//! The engine is deliberately single-threaded and deterministic: with the
//! same seed and cost model it reproduces results bit-for-bit on any host,
//! which is what lets a one-core container reproduce the paper's 32-thread
//! scalability figures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::{CostCat, CostModel};
use crate::rng::Rng64;
use crate::stats::{Breakdown, Counters};
use crate::time::Cycles;

/// Result of one workload step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread has more work; reschedule it at its new clock.
    Yield,
    /// The thread has finished its workload.
    Done,
}

/// Execution context handed to library code: virtual clock, cost charging,
/// RNG, and counters.
///
/// Library crates (`pcache`, the Aquila core, `linuxsim`, ...) accept
/// `&mut dyn SimCtx` so they can be driven both by the engine and by plain
/// unit tests via [`FreeCtx`].
pub trait SimCtx {
    /// Current virtual time of this thread.
    fn now(&self) -> Cycles;
    /// Charges `c` cycles to category `cat`, advancing the clock.
    fn charge(&mut self, cat: CostCat, c: Cycles);
    /// Advances the clock to `t` (no-op if already past), charging the gap
    /// to `cat`. Used after resource reservations.
    fn wait_until(&mut self, t: Cycles, cat: CostCat);
    /// The calibrated cost model.
    fn cost(&self) -> &CostModel;
    /// The thread's deterministic RNG.
    fn rng(&mut self) -> &mut Rng64;
    /// Simulation event counters.
    fn counters(&mut self) -> &mut Counters;
    /// The core this thread is pinned to.
    fn core(&self) -> usize;
    /// Number of cores in the simulated machine.
    fn num_cores(&self) -> usize;
    /// Identity of the virtual thread, for happens-before tracking in
    /// [`crate::race`]. Defaults to the pinned core — correct for free
    /// contexts and one-thread-per-core runs; the engine's [`ThreadCtx`]
    /// overrides it with the dense engine thread id.
    fn thread_id(&self) -> usize {
        self.core()
    }
    /// This virtual thread's open causal-span stack (ids, innermost
    /// last), used by [`crate::span`]. `None` means the context does not
    /// track spans; [`ThreadCtx`] and [`FreeCtx`] both do.
    fn span_stack(&mut self) -> Option<&mut Vec<u64>> {
        None
    }
}

/// Per-core pending interrupt work, charged to a core the next time one of
/// its threads runs.
///
/// Cross-core effects (TLB shootdown IPIs interrupting remote cores) cannot
/// be charged synchronously in a reservation model, so senders deposit the
/// handler cost as *debt* and each thread drains its core's debt at the
/// start of its next step.
#[derive(Debug, Default)]
pub struct CoreDebts {
    debts: Vec<AtomicU64>,
    /// Causal-span id of the latest depositor per core ([`crate::span`]);
    /// drained with the debt so the IPI handler's span links back to the
    /// shootdown that caused it. Zero when untagged.
    span_tags: Vec<AtomicU64>,
}

impl CoreDebts {
    /// Creates a debt ledger for `cores` cores.
    pub fn new(cores: usize) -> CoreDebts {
        CoreDebts {
            debts: (0..cores).map(|_| AtomicU64::new(0)).collect(),
            span_tags: (0..cores).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Deposits `c` cycles of pending interrupt work on `core`.
    pub fn deposit(&self, core: usize, c: Cycles) {
        if let Some(d) = self.debts.get(core) {
            d.fetch_add(c.get(), Ordering::Relaxed);
        }
    }

    /// Deposits on every core except `sender`.
    pub fn broadcast_except(&self, sender: usize, c: Cycles) {
        for (i, d) in self.debts.iter().enumerate() {
            if i != sender {
                d.fetch_add(c.get(), Ordering::Relaxed);
            }
        }
    }

    /// Drains and returns the pending debt for `core`.
    pub fn drain(&self, core: usize) -> Cycles {
        match self.debts.get(core) {
            Some(d) => Cycles(d.swap(0, Ordering::Relaxed)),
            None => Cycles::ZERO,
        }
    }

    /// Tags every core except `sender` with the depositor's causal-span
    /// id (the shootdown span), linking the remote IPI drains back to it.
    pub fn tag_broadcast_except(&self, sender: usize, span: crate::span::SpanId) {
        if span.is_none() {
            return;
        }
        for (i, t) in self.span_tags.iter().enumerate() {
            if i != sender {
                t.store(span.0, Ordering::Relaxed);
            }
        }
    }

    /// Takes (and clears) the causal-span tag for `core`.
    pub fn take_span_tag(&self, core: usize) -> crate::span::SpanId {
        match self.span_tags.get(core) {
            Some(t) => crate::span::SpanId(t.swap(0, Ordering::Relaxed)),
            None => crate::span::SpanId::NONE,
        }
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.debts.len()
    }
}

/// The per-thread execution context used inside the engine.
pub struct ThreadCtx {
    id: usize,
    core: usize,
    num_cores: usize,
    clock: Cycles,
    cost: Arc<CostModel>,
    rng: Rng64,
    /// Per-category charged cycles for this thread.
    pub breakdown: Breakdown,
    /// Event counters for this thread.
    pub stats: Counters,
    debts: Arc<CoreDebts>,
    /// Open causal-span ids ([`crate::span`]), innermost last.
    spans: Vec<u64>,
}

impl ThreadCtx {
    /// Thread identifier (dense, 0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Drains pending cross-core interrupt debt into the TLB category.
    /// When the depositor tagged this core with its causal span (a TLB
    /// shootdown), the drain records a child span linking the remote
    /// IPI-handling cost back to the shootdown that caused it.
    fn drain_debt(&mut self) {
        let d = self.debts.drain(self.core);
        if d > Cycles::ZERO {
            let debts = Arc::clone(&self.debts);
            let parent = debts.take_span_tag(self.core);
            if parent.is_none() {
                self.charge(CostCat::Tlb, d);
            } else {
                let sp = crate::span::begin_child(self, "tlb.ipi.drain", CostCat::Tlb, parent);
                self.charge(CostCat::Tlb, d);
                crate::span::end(self, sp);
            }
        }
    }
}

impl SimCtx for ThreadCtx {
    fn now(&self) -> Cycles {
        self.clock
    }

    fn charge(&mut self, cat: CostCat, c: Cycles) {
        self.clock += c;
        self.breakdown.add(cat, c);
    }

    fn wait_until(&mut self, t: Cycles, cat: CostCat) {
        if t > self.clock {
            let gap = t - self.clock;
            self.clock = t;
            self.breakdown.add(cat, gap);
        }
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    fn counters(&mut self) -> &mut Counters {
        &mut self.stats
    }

    fn core(&self) -> usize {
        self.core
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn thread_id(&self) -> usize {
        self.id
    }

    fn span_stack(&mut self) -> Option<&mut Vec<u64>> {
        Some(&mut self.spans)
    }
}

/// A free-running context for unit tests: same accounting as [`ThreadCtx`],
/// no engine required.
pub struct FreeCtx {
    clock: Cycles,
    cost: Arc<CostModel>,
    rng: Rng64,
    /// Per-category charged cycles.
    pub breakdown: Breakdown,
    /// Event counters.
    pub stats: Counters,
    core: usize,
    num_cores: usize,
    spans: Vec<u64>,
}

impl FreeCtx {
    /// Creates a context with the paper cost model and the given seed.
    pub fn new(seed: u64) -> FreeCtx {
        FreeCtx {
            clock: Cycles::ZERO,
            cost: Arc::new(CostModel::paper()),
            rng: Rng64::new(seed),
            breakdown: Breakdown::new(),
            stats: Counters::new(),
            core: 0,
            num_cores: 1,
            spans: Vec::new(),
        }
    }

    /// Sets the core id and machine width (for code paths that ask).
    pub fn with_core(mut self, core: usize, num_cores: usize) -> FreeCtx {
        self.core = core;
        self.num_cores = num_cores;
        self
    }
}

impl SimCtx for FreeCtx {
    fn now(&self) -> Cycles {
        self.clock
    }

    fn charge(&mut self, cat: CostCat, c: Cycles) {
        self.clock += c;
        self.breakdown.add(cat, c);
    }

    fn wait_until(&mut self, t: Cycles, cat: CostCat) {
        if t > self.clock {
            let gap = t - self.clock;
            self.clock = t;
            self.breakdown.add(cat, gap);
        }
    }

    fn cost(&self) -> &CostModel {
        &self.cost
    }

    fn rng(&mut self) -> &mut Rng64 {
        &mut self.rng
    }

    fn counters(&mut self) -> &mut Counters {
        &mut self.stats
    }

    fn core(&self) -> usize {
        self.core
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn span_stack(&mut self) -> Option<&mut Vec<u64>> {
        Some(&mut self.spans)
    }
}

/// A workload step function: performs one unit of work, returns whether the
/// thread continues.
pub type ThreadFn = Box<dyn FnMut(&mut ThreadCtx) -> Step>;

struct SimThread {
    ctx: ThreadCtx,
    body: ThreadFn,
    done: bool,
}

/// Aggregate results of an engine run.
#[derive(Debug)]
pub struct RunReport {
    /// Virtual time at which the last thread finished.
    pub makespan: Cycles,
    /// Per-thread finish times.
    pub finish_times: Vec<Cycles>,
    /// Merged per-category breakdown across threads.
    pub breakdown: Breakdown,
    /// Merged event counters across threads.
    pub counters: Counters,
    /// Per-thread breakdowns (for per-core analyses).
    pub per_thread: Vec<Breakdown>,
    /// Snapshot of the global metrics registry at the end of the run
    /// (empty when no registry is installed).
    pub metrics: crate::metrics::MetricsSnapshot,
}

impl RunReport {
    /// Throughput in operations per second given a total op count.
    pub fn ops_per_sec(&self, total_ops: u64) -> f64 {
        if self.makespan == Cycles::ZERO {
            return 0.0;
        }
        total_ops as f64 / self.makespan.as_secs_f64()
    }
}

/// The discrete-event engine: a set of virtual threads pinned to cores.
pub struct Engine {
    cost: Arc<CostModel>,
    debts: Arc<CoreDebts>,
    threads: Vec<SimThread>,
    num_cores: usize,
    seed: u64,
}

impl Engine {
    /// Creates an engine for a machine with `num_cores` cores.
    pub fn new(num_cores: usize, seed: u64) -> Engine {
        Engine::with_cost(num_cores, seed, CostModel::paper())
    }

    /// Creates an engine with a custom cost model.
    pub fn with_cost(num_cores: usize, seed: u64, cost: CostModel) -> Engine {
        assert!(num_cores > 0, "a machine needs at least one core");
        Engine {
            cost: Arc::new(cost),
            debts: Arc::new(CoreDebts::new(num_cores)),
            threads: Vec::new(),
            num_cores,
            seed,
        }
    }

    /// The shared cross-core interrupt ledger (for shootdown senders).
    pub fn debts(&self) -> Arc<CoreDebts> {
        Arc::clone(&self.debts)
    }

    /// The engine's cost model.
    pub fn cost(&self) -> Arc<CostModel> {
        Arc::clone(&self.cost)
    }

    /// Spawns a virtual thread pinned to `core`.
    pub fn spawn(&mut self, core: usize, body: ThreadFn) -> usize {
        assert!(core < self.num_cores, "core {core} out of range");
        let id = self.threads.len();
        let mut seed_rng = Rng64::new(self.seed ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let rng = seed_rng.fork();
        self.threads.push(SimThread {
            ctx: ThreadCtx {
                id,
                core,
                num_cores: self.num_cores,
                clock: Cycles::ZERO,
                cost: Arc::clone(&self.cost),
                rng,
                breakdown: Breakdown::new(),
                stats: Counters::new(),
                debts: Arc::clone(&self.debts),
                spans: Vec::new(),
            },
            body,
            done: false,
        });
        id
    }

    /// Runs all threads to completion and returns the merged report.
    ///
    /// # Panics
    ///
    /// Panics if a thread yields more than `10^12` times without finishing
    /// (a runaway-workload backstop).
    pub fn run(&mut self) -> RunReport {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut heap: BinaryHeap<Reverse<(Cycles, usize)>> = self
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| Reverse((t.ctx.clock, i)))
            .collect();
        let mut steps: u64 = 0;
        while let Some(Reverse((_, idx))) = heap.pop() {
            let t = &mut self.threads[idx];
            if t.done {
                continue;
            }
            t.ctx.drain_debt();
            let before = t.ctx.clock;
            let step = (t.body)(&mut t.ctx);
            steps += 1;
            assert!(steps < 1_000_000_000_000, "engine runaway: too many steps");
            match step {
                Step::Done => t.done = true,
                Step::Yield => {
                    if t.ctx.clock == before {
                        // Guarantee progress to avoid a livelocked heap.
                        t.ctx.clock += Cycles(1);
                    }
                    heap.push(Reverse((t.ctx.clock, idx)));
                }
            }
        }

        let mut breakdown = Breakdown::new();
        let mut counters = Counters::new();
        let mut per_thread = Vec::with_capacity(self.threads.len());
        let mut finish_times = Vec::with_capacity(self.threads.len());
        let mut makespan = Cycles::ZERO;
        for t in &self.threads {
            breakdown.merge(&t.ctx.breakdown);
            counters.merge(&t.ctx.stats);
            per_thread.push(t.ctx.breakdown.clone());
            finish_times.push(t.ctx.clock);
            makespan = makespan.max(t.ctx.clock);
        }
        RunReport {
            makespan,
            finish_times,
            breakdown,
            counters,
            per_thread,
            metrics: crate::metrics::global()
                .map(|m| m.snapshot())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_accumulates_time() {
        let mut e = Engine::new(1, 1);
        e.spawn(
            0,
            Box::new(|ctx| {
                ctx.charge(CostCat::App, Cycles(100));
                if ctx.now() >= Cycles(1000) {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
        let r = e.run();
        assert_eq!(r.makespan, Cycles(1000));
        assert_eq!(r.breakdown.get(CostCat::App), Cycles(1000));
    }

    #[test]
    fn threads_interleave_in_time_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let order: Rc<RefCell<Vec<(usize, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let mut e = Engine::new(2, 1);
        for (id, step_cost) in [(0usize, 30u64), (1, 100)] {
            let order = Rc::clone(&order);
            let mut n = 0;
            e.spawn(
                id,
                Box::new(move |ctx| {
                    order.borrow_mut().push((id, ctx.now().get()));
                    ctx.charge(CostCat::App, Cycles(step_cost));
                    n += 1;
                    if n == 3 {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }),
            );
        }
        e.run();
        // Events must be globally sorted by the time each step started.
        let times: Vec<u64> = order.borrow().iter().map(|&(_, t)| t).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        // Thread 0 (cheap steps) runs several times before thread 1's
        // second step at t=100.
        let t0_runs_before_100 = order
            .borrow()
            .iter()
            .filter(|&&(id, t)| id == 0 && t < 100)
            .count();
        assert!(t0_runs_before_100 >= 3);
    }

    #[test]
    fn zero_progress_yield_still_terminates() {
        let mut e = Engine::new(1, 1);
        let mut n = 0;
        e.spawn(
            0,
            Box::new(move |_ctx| {
                n += 1;
                if n > 10 {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
        let r = e.run();
        // Forced 1-cycle progress per empty yield.
        assert_eq!(r.makespan, Cycles(10));
    }

    #[test]
    fn core_debt_is_drained_as_tlb_time() {
        let mut e = Engine::new(2, 1);
        let debts = e.debts();
        let d2 = Arc::clone(&debts);
        // Thread on core 0 deposits interrupt work on core 1 and finishes.
        e.spawn(
            0,
            Box::new(move |ctx| {
                d2.deposit(1, Cycles(500));
                ctx.charge(CostCat::App, Cycles(10));
                Step::Done
            }),
        );
        // Thread on core 1 takes two cheap steps; the debt lands on it.
        let mut n = 0;
        e.spawn(
            1,
            Box::new(move |ctx| {
                ctx.charge(CostCat::App, Cycles(5));
                n += 1;
                if n == 2 {
                    Step::Done
                } else {
                    Step::Yield
                }
            }),
        );
        let r = e.run();
        assert_eq!(r.breakdown.get(CostCat::Tlb), Cycles(500));
    }

    #[test]
    fn broadcast_except_skips_sender() {
        let d = CoreDebts::new(4);
        d.broadcast_except(2, Cycles(100));
        assert_eq!(d.drain(2), Cycles::ZERO);
        assert_eq!(d.drain(0), Cycles(100));
        assert_eq!(d.drain(0), Cycles::ZERO);
        assert_eq!(d.cores(), 4);
    }

    #[test]
    fn report_ops_per_sec() {
        let mut e = Engine::new(1, 1);
        e.spawn(
            0,
            Box::new(|ctx| {
                ctx.charge(CostCat::App, Cycles(crate::time::CPU_HZ));
                Step::Done
            }),
        );
        let r = e.run();
        // 1000 ops in exactly one virtual second.
        assert!((r.ops_per_sec(1000) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn free_ctx_behaves_like_thread_ctx() {
        let mut ctx = FreeCtx::new(42).with_core(3, 8);
        ctx.charge(CostCat::Syscall, Cycles(150));
        ctx.wait_until(Cycles(1000), CostCat::Idle);
        ctx.wait_until(Cycles(10), CostCat::Idle); // no-op, already past
        assert_eq!(ctx.now(), Cycles(1000));
        assert_eq!(ctx.breakdown.get(CostCat::Idle), Cycles(850));
        assert_eq!(ctx.core(), 3);
        assert_eq!(ctx.num_cores(), 8);
    }

    #[test]
    fn rng_streams_differ_per_thread() {
        let mut e = Engine::new(2, 7);
        use std::cell::RefCell;
        use std::rc::Rc;
        let vals: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for core in 0..2 {
            let vals = Rc::clone(&vals);
            e.spawn(
                core,
                Box::new(move |ctx| {
                    vals.borrow_mut().push(ctx.rng().next_u64());
                    Step::Done
                }),
            );
        }
        e.run();
        let v = vals.borrow();
        assert_ne!(v[0], v[1]);
    }
}
