//! Reservation-based contention models for shared resources.
//!
//! The discrete-event engine steps virtual threads in global time order, so
//! a shared resource can be modelled as a *reservation*: acquiring it at
//! virtual time `now` for `hold` cycles reserves the first interval of
//! length `hold` that starts no earlier than `now` and no earlier than the
//! resource's previous reservations. Queueing delay then emerges naturally
//! from overlapping requests — which is exactly how the paper's contended
//! kernel locks behave (Figure 10's collapse of Linux `mmap` under a single
//! page-cache tree lock).
//!
//! The models use `aquila_sync` locks internally so the structures stay `Sync`
//! and usable from real threads in library code, even though the engine
//! itself is single-threaded.

use aquila_sync::Mutex;

use crate::time::Cycles;

/// Outcome of a resource reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Queueing delay experienced before the resource was granted.
    pub wait: Cycles,
    /// Virtual time at which the holder acquired the resource.
    pub start: Cycles,
    /// Virtual time at which the resource is released / the operation
    /// completes.
    pub end: Cycles,
}

#[derive(Debug, Default)]
struct MutexState {
    available: Cycles,
    acquisitions: u64,
    contended: u64,
    busy: Cycles,
}

/// A mutual-exclusion resource with FIFO-by-arrival reservation semantics.
///
/// Models, e.g., the Linux page-cache tree lock or a shard lock in a
/// user-space cache.
#[derive(Debug, Default)]
pub struct SimMutex {
    state: Mutex<MutexState>,
}

impl SimMutex {
    /// Creates an idle mutex.
    pub fn new() -> SimMutex {
        SimMutex::default()
    }

    /// Reserves the mutex at `now` for `hold` cycles.
    pub fn acquire(&self, now: Cycles, hold: Cycles) -> Reservation {
        let mut st = self.state.lock();
        let start = now.max(st.available);
        let end = start + hold;
        st.available = end;
        st.acquisitions += 1;
        if start > now {
            st.contended += 1;
        }
        st.busy += hold;
        Reservation {
            wait: start - now,
            start,
            end,
        }
    }

    /// Backlog at `now`: how far the resource's reservation cursor is
    /// ahead of the caller's clock. Zero means an acquisition at `now`
    /// would be granted immediately; a large backlog means many holders
    /// are queued ahead. Callers can use this to model *non-scalable*
    /// locks, whose per-acquisition cost grows with the number of
    /// waiters spinning on the lock's cache line.
    pub fn backlog(&self, now: Cycles) -> Cycles {
        let st = self.state.lock();
        if st.available > now {
            st.available - now
        } else {
            Cycles::ZERO
        }
    }

    /// Number of acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.state.lock().acquisitions
    }

    /// Number of acquisitions that had to wait.
    pub fn contended(&self) -> u64 {
        self.state.lock().contended
    }

    /// Total busy (held) time.
    pub fn busy(&self) -> Cycles {
        self.state.lock().busy
    }

    /// Resets reservation state (between experiment phases).
    pub fn reset(&self) {
        *self.state.lock() = MutexState::default();
    }
}

#[derive(Debug, Default)]
struct RwState {
    /// Earliest time a new writer may start (after all prior writers).
    writer_available: Cycles,
    /// Latest end among granted readers; a writer must also wait for this.
    readers_until: Cycles,
    read_acquisitions: u64,
    write_acquisitions: u64,
    contended: u64,
}

/// A readers-writer resource: readers overlap freely; writers exclude
/// everyone.
///
/// Models Linux's `mmap_sem`-style locks where page faults take the lock
/// for reading and `mmap`/`munmap` take it for writing.
#[derive(Debug, Default)]
pub struct SimRwLock {
    state: Mutex<RwState>,
}

impl SimRwLock {
    /// Creates an idle lock.
    pub fn new() -> SimRwLock {
        SimRwLock::default()
    }

    /// Reserves a shared (read) slot at `now` for `hold` cycles.
    pub fn acquire_read(&self, now: Cycles, hold: Cycles) -> Reservation {
        let mut st = self.state.lock();
        let start = now.max(st.writer_available);
        let end = start + hold;
        st.readers_until = st.readers_until.max(end);
        st.read_acquisitions += 1;
        if start > now {
            st.contended += 1;
        }
        Reservation {
            wait: start - now,
            start,
            end,
        }
    }

    /// Reserves an exclusive (write) slot at `now` for `hold` cycles.
    pub fn acquire_write(&self, now: Cycles, hold: Cycles) -> Reservation {
        let mut st = self.state.lock();
        let start = now.max(st.writer_available).max(st.readers_until);
        let end = start + hold;
        st.writer_available = end;
        st.write_acquisitions += 1;
        if start > now {
            st.contended += 1;
        }
        Reservation {
            wait: start - now,
            start,
            end,
        }
    }

    /// Number of contended acquisitions (read or write).
    pub fn contended(&self) -> u64 {
        self.state.lock().contended
    }

    /// Resets reservation state (between experiment phases).
    pub fn reset(&self) {
        *self.state.lock() = RwState::default();
    }
}

#[derive(Debug)]
struct ServiceState {
    channels: Vec<Cycles>,
    gate: Cycles,
    ops: u64,
    bytes: u64,
}

/// A service center with `k` parallel channels and a global admission gate,
/// modelling a storage device.
///
/// Each operation occupies one channel for its service time (latency plus
/// transfer). The admission gate enforces device-wide IOPS and bandwidth
/// caps: successive operations may not be admitted faster than
/// `gap_per_op + bytes * gap_per_byte` apart. An Optane-class NVMe device
/// is then `k = 128` channels, ~10 us service, 500 K IOPS gate.
#[derive(Debug)]
pub struct ServiceCenter {
    state: Mutex<ServiceState>,
    /// Minimum spacing between admissions (1 / max IOPS).
    gap_per_op: Cycles,
    /// Additional admission spacing per byte transferred (1 / bandwidth).
    gap_per_byte_femto: u64,
}

impl ServiceCenter {
    /// Creates a service center.
    ///
    /// `channels` is the internal parallelism; `max_iops` and
    /// `max_bytes_per_sec` bound aggregate admission (zero means
    /// unlimited).
    pub fn new(channels: usize, max_iops: u64, max_bytes_per_sec: u64) -> ServiceCenter {
        assert!(channels > 0, "a device needs at least one channel");
        let gap_per_op = Cycles(crate::time::CPU_HZ.checked_div(max_iops).unwrap_or(0));
        // Store per-byte gap in femtocycles to keep integer precision:
        // gap_per_byte = CPU_HZ / bytes_per_sec cycles, usually < 1.
        let gap_per_byte_femto = crate::time::CPU_HZ
            .saturating_mul(1_000_000_000)
            .checked_div(max_bytes_per_sec)
            .unwrap_or(0);
        ServiceCenter {
            state: Mutex::new(ServiceState {
                channels: vec![Cycles::ZERO; channels],
                gate: Cycles::ZERO,
                ops: 0,
                bytes: 0,
            }),
            gap_per_op,
            gap_per_byte_femto,
        }
    }

    /// Submits an operation of `bytes` bytes with channel service time
    /// `service` at virtual time `now`.
    pub fn submit(&self, now: Cycles, service: Cycles, bytes: u64) -> Reservation {
        let mut st = self.state.lock();
        // Admission gate: IOPS and bandwidth pacing.
        let admit = now.max(st.gate);
        let advance =
            self.gap_per_op + Cycles(self.gap_per_byte_femto.saturating_mul(bytes) / 1_000_000_000);
        st.gate = admit + advance;
        // Channel selection: earliest-available channel.
        let (idx, _) = st
            .channels
            .iter()
            .enumerate()
            .min_by_key(|&(_, c)| *c)
            .expect("at least one channel");
        let start = admit.max(st.channels[idx]);
        let end = start + service;
        st.channels[idx] = end;
        st.ops += 1;
        st.bytes += bytes;
        Reservation {
            wait: start - now,
            start,
            end,
        }
    }

    /// Operations admitted so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Channels still serving an operation at virtual time `now` — the
    /// device's instantaneous queue occupancy, for observability.
    pub fn busy_channels(&self, now: Cycles) -> usize {
        self.state
            .lock()
            .channels
            .iter()
            .filter(|&&c| c > now)
            .count()
    }

    /// Bytes transferred so far.
    pub fn bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// Resets reservation state.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        for c in st.channels.iter_mut() {
            *c = Cycles::ZERO;
        }
        st.gate = Cycles::ZERO;
        st.ops = 0;
        st.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_serializes_overlapping_holders() {
        let m = SimMutex::new();
        let a = m.acquire(Cycles(0), Cycles(100));
        assert_eq!(a.wait, Cycles::ZERO);
        assert_eq!(a.end, Cycles(100));
        // Second arrival at t=10 must wait until t=100.
        let b = m.acquire(Cycles(10), Cycles(100));
        assert_eq!(b.start, Cycles(100));
        assert_eq!(b.wait, Cycles(90));
        assert_eq!(b.end, Cycles(200));
        assert_eq!(m.acquisitions(), 2);
        assert_eq!(m.contended(), 1);
        assert_eq!(m.busy(), Cycles(200));
    }

    #[test]
    fn mutex_idle_gap_resets_waiting() {
        let m = SimMutex::new();
        m.acquire(Cycles(0), Cycles(10));
        let late = m.acquire(Cycles(1000), Cycles(10));
        assert_eq!(late.wait, Cycles::ZERO);
        assert_eq!(late.start, Cycles(1000));
    }

    #[test]
    fn rwlock_readers_overlap_writers_exclude() {
        let l = SimRwLock::new();
        let r1 = l.acquire_read(Cycles(0), Cycles(100));
        let r2 = l.acquire_read(Cycles(10), Cycles(100));
        // Readers overlap: r2 does not wait for r1.
        assert_eq!(r2.wait, Cycles::ZERO);
        // A writer waits for all readers.
        let w = l.acquire_write(Cycles(20), Cycles(50));
        assert_eq!(w.start, Cycles(110));
        assert_eq!(w.end, Cycles(160));
        // A subsequent reader waits for the writer.
        let r3 = l.acquire_read(Cycles(30), Cycles(10));
        assert_eq!(r3.start, Cycles(160));
        let _ = (r1, r2);
        assert!(l.contended() >= 2);
    }

    #[test]
    fn service_center_parallel_channels() {
        let d = ServiceCenter::new(2, 0, 0);
        let a = d.submit(Cycles(0), Cycles(100), 4096);
        let b = d.submit(Cycles(0), Cycles(100), 4096);
        let c = d.submit(Cycles(0), Cycles(100), 4096);
        // Two ops run in parallel; the third queues behind one of them.
        assert_eq!(a.end, Cycles(100));
        assert_eq!(b.end, Cycles(100));
        assert_eq!(c.start, Cycles(100));
        assert_eq!(d.ops(), 3);
        assert_eq!(d.bytes(), 3 * 4096);
    }

    #[test]
    fn service_center_iops_gate() {
        // 1M IOPS cap => 2400 cycles between admissions at 2.4 GHz.
        let d = ServiceCenter::new(64, 1_000_000, 0);
        let a = d.submit(Cycles(0), Cycles(10), 0);
        let b = d.submit(Cycles(0), Cycles(10), 0);
        assert_eq!(a.start, Cycles(0));
        assert_eq!(b.start, Cycles(2400));
    }

    #[test]
    fn service_center_bandwidth_gate() {
        // 2.4 GB/s => 1 cycle per byte at 2.4 GHz.
        let d = ServiceCenter::new(64, 0, 2_400_000_000);
        d.submit(Cycles(0), Cycles(10), 4096);
        let b = d.submit(Cycles(0), Cycles(10), 4096);
        assert_eq!(b.start, Cycles(4096));
    }

    #[test]
    fn service_center_reset() {
        let d = ServiceCenter::new(1, 0, 0);
        d.submit(Cycles(0), Cycles(1_000_000), 1);
        d.reset();
        let a = d.submit(Cycles(0), Cycles(10), 1);
        assert_eq!(a.wait, Cycles::ZERO);
        assert_eq!(d.ops(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channel_device_panics() {
        let _ = ServiceCenter::new(0, 0, 0);
    }
}
