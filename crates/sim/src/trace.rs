//! Cycle-accurate event tracing for the simulation.
//!
//! A [`Tracer`] collects spans, instants, and counter samples stamped
//! with *virtual* cycles and the virtual core that produced them, into a
//! bounded ring (oldest events are overwritten under pressure). The ring
//! exports to Chrome's `trace_event` JSON format, so any run opens in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` as a
//! per-vcore timeline.
//!
//! Tracing is strictly an observer: recording an event never charges
//! virtual cycles, so an instrumented run produces bit-identical results
//! to an uninstrumented one (determinism is the simulator's core
//! contract). When no tracer is installed the instrumentation sites cost
//! one atomic load each.
//!
//! The tracer is process-global, installed once by a figure binary's
//! `--trace <path>` flag via [`install`]; library code reaches it through
//! the free functions [`span`], [`instant`], and [`counter`], which read
//! the clock and core id from the `SimCtx` they are handed.

use std::sync::{Arc, OnceLock};

use aquila_sync::Mutex;

use crate::cost::CostCat;
use crate::engine::SimCtx;
use crate::time::{Cycles, CPU_HZ};

/// Default ring capacity (events). ~48 bytes/event, so ~50 MB worst case.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed span: work of `dur` cycles ending at `end`.
    Span {
        /// Event name (Perfetto slice title).
        name: &'static str,
        /// Cost category (Perfetto category, for filtering).
        cat: CostCat,
        /// Virtual core the work ran on.
        core: usize,
        /// Span start, in virtual cycles.
        start: Cycles,
        /// Span duration, in virtual cycles.
        dur: Cycles,
    },
    /// A point-in-time event.
    Instant {
        /// Event name.
        name: &'static str,
        /// Cost category.
        cat: CostCat,
        /// Virtual core.
        core: usize,
        /// Timestamp, in virtual cycles.
        ts: Cycles,
    },
    /// A sampled counter value (rendered as a counter track).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Virtual core (counters are tracked per core).
        core: usize,
        /// Timestamp, in virtual cycles.
        ts: Cycles,
        /// Sampled value.
        value: u64,
    },
}

impl TraceEvent {
    fn core(&self) -> usize {
        match *self {
            TraceEvent::Span { core, .. }
            | TraceEvent::Instant { core, .. }
            | TraceEvent::Counter { core, .. } => core,
        }
    }
}

struct Ring {
    buf: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

/// A bounded collector of [`TraceEvent`]s.
pub struct Tracer {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl Tracer {
    /// Creates a tracer with the given ring capacity (events).
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "trace ring needs room for at least one event");
        Tracer {
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Records one event, overwriting the oldest if the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let mut r = self.ring.lock();
        if r.buf.len() < self.capacity {
            r.buf.push(ev);
        } else {
            let head = r.head;
            r.buf[head] = ev;
            r.head = (head + 1) % self.capacity;
            r.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Returns the retained events in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let r = self.ring.lock();
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.head..]);
        out.extend_from_slice(&r.buf[..r.head]);
        out
    }

    /// Serializes the retained events as Chrome `trace_event` JSON
    /// (`ts`/`dur` in microseconds of virtual time; `tid` is the vcore).
    pub fn export_chrome(&self) -> String {
        // Cycles -> microseconds at the simulated clock.
        let us = |c: Cycles| c.get() as f64 * 1e6 / CPU_HZ as f64;
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        // Thread-name metadata so Perfetto labels each track "vcore N".
        let mut cores: Vec<usize> = events.iter().map(|e| e.core()).collect();
        cores.sort_unstable();
        cores.dedup();
        let mut first = true;
        let mut emit = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(line);
        };
        for c in cores {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{c},\
                     \"args\":{{\"name\":\"vcore {c}\"}}}}"
                ),
            );
        }
        for ev in &events {
            let line = match *ev {
                TraceEvent::Span {
                    name,
                    cat,
                    core,
                    start,
                    dur,
                } => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{core},\
                     \"args\":{{\"start_cycles\":{},\"dur_cycles\":{}}}}}",
                    cat.name(),
                    us(start),
                    us(dur),
                    start.get(),
                    dur.get()
                ),
                TraceEvent::Instant { name, cat, core, ts } => format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":1,\"tid\":{core},\
                     \"args\":{{\"ts_cycles\":{}}}}}",
                    cat.name(),
                    us(ts),
                    ts.get()
                ),
                TraceEvent::Counter {
                    name,
                    core,
                    ts,
                    value,
                } => format!(
                    "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\
                     \"tid\":{core},\"args\":{{\"value\":{value}}}}}",
                    us(ts)
                ),
            };
            emit(&mut out, &line);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome trace to `path`.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_chrome())
    }
}

static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();

/// Installs a process-global tracer with `capacity` events and returns
/// it. If a tracer is already installed, the existing one is returned
/// (install-once: figure binaries call this before running).
pub fn install(capacity: usize) -> Arc<Tracer> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Tracer::new(capacity))))
}

/// The installed global tracer, if any.
pub fn global() -> Option<&'static Arc<Tracer>> {
    GLOBAL.get()
}

/// Whether tracing is enabled (a global tracer is installed).
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some()
}

/// Records a completed span from `start` to `ctx.now()` on the calling
/// vcore. Call *after* the work, passing the `ctx.now()` sampled before
/// it; never charges cycles.
#[inline]
pub fn span(ctx: &dyn SimCtx, name: &'static str, cat: CostCat, start: Cycles) {
    if let Some(t) = GLOBAL.get() {
        let end = ctx.now();
        t.record(TraceEvent::Span {
            name,
            cat,
            core: ctx.core(),
            start,
            dur: end.saturating_sub(start),
        });
    }
}

/// Records an instant event at `ctx.now()` on the calling vcore.
#[inline]
pub fn instant(ctx: &dyn SimCtx, name: &'static str, cat: CostCat) {
    if let Some(t) = GLOBAL.get() {
        t.record(TraceEvent::Instant {
            name,
            cat,
            core: ctx.core(),
            ts: ctx.now(),
        });
    }
}

/// Records a counter sample at `ctx.now()` on the calling vcore.
#[inline]
pub fn counter(ctx: &dyn SimCtx, name: &'static str, value: u64) {
    if let Some(t) = GLOBAL.get() {
        t.record(TraceEvent::Counter {
            name,
            core: ctx.core(),
            ts: ctx.now(),
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreeCtx;

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(4);
        for i in 0..6u64 {
            t.record(TraceEvent::Counter {
                name: "x",
                core: 0,
                ts: Cycles(i),
                value: i,
            });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        let evs = t.events();
        // Oldest two (ts 0, 1) overwritten; order preserved.
        let ts: Vec<u64> = evs
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { ts, .. } => ts.get(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let t = Tracer::new(16);
        t.record(TraceEvent::Span {
            name: "fault",
            cat: CostCat::FaultHandler,
            core: 1,
            start: Cycles(2400),
            dur: Cycles(4800),
        });
        t.record(TraceEvent::Instant {
            name: "shootdown",
            cat: CostCat::Tlb,
            core: 0,
            ts: Cycles(100),
        });
        t.record(TraceEvent::Counter {
            name: "nvme.inflight",
            core: 0,
            ts: Cycles(200),
            value: 7,
        });
        let s = t.export_chrome();
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"name\":\"vcore 0\""));
        assert!(s.contains("\"name\":\"vcore 1\""));
        // 2400 cycles at 2.4 GHz = exactly 1 us.
        assert!(s.contains("\"ts\":1.000"), "virtual-cycle timestamp:\n{s}");
        assert!(s.contains("\"dur\":2.000"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn free_functions_are_noops_without_global() {
        // The global may or may not be installed (test order), so only
        // check these never panic or charge cycles.
        let mut ctx = FreeCtx::new(1);
        let t0 = ctx.now();
        ctx.charge(CostCat::App, Cycles(10));
        span(&ctx, "work", CostCat::App, t0);
        instant(&ctx, "tick", CostCat::Other);
        counter(&ctx, "gauge", 3);
        assert_eq!(ctx.now(), Cycles(10), "tracing never charges cycles");
    }
}
