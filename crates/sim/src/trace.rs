//! Cycle-accurate event tracing for the simulation.
//!
//! A [`Tracer`] collects spans, instants, and counter samples stamped
//! with *virtual* cycles and the virtual core that produced them, into a
//! bounded ring (oldest events are overwritten under pressure). The ring
//! exports to Chrome's `trace_event` JSON format, so any run opens in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` as a
//! per-vcore timeline.
//!
//! Tracing is strictly an observer: recording an event never charges
//! virtual cycles, so an instrumented run produces bit-identical results
//! to an uninstrumented one (determinism is the simulator's core
//! contract). When no tracer is installed the instrumentation sites cost
//! one atomic load each.
//!
//! The tracer is process-global, installed once by a figure binary's
//! `--trace <path>` flag via [`install`]; library code reaches it through
//! the free functions [`span`], [`instant`], and [`counter`], which read
//! the clock and core id from the `SimCtx` they are handed.

use std::sync::{Arc, OnceLock};

use aquila_sync::Mutex;

use crate::cost::CostCat;
use crate::engine::SimCtx;
use crate::time::{Cycles, CPU_HZ};

/// Default ring capacity (events). ~48 bytes/event, so ~50 MB worst case.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A completed span: work of `dur` cycles ending at `end`.
    Span {
        /// Event name (Perfetto slice title).
        name: &'static str,
        /// Cost category (Perfetto category, for filtering).
        cat: CostCat,
        /// Virtual core the work ran on.
        core: usize,
        /// Span start, in virtual cycles.
        start: Cycles,
        /// Span duration, in virtual cycles.
        dur: Cycles,
    },
    /// A point-in-time event.
    Instant {
        /// Event name.
        name: &'static str,
        /// Cost category.
        cat: CostCat,
        /// Virtual core.
        core: usize,
        /// Timestamp, in virtual cycles.
        ts: Cycles,
    },
    /// A sampled counter value (rendered as a counter track).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Virtual core (counters are tracked per core).
        core: usize,
        /// Timestamp, in virtual cycles.
        ts: Cycles,
        /// Sampled value.
        value: u64,
    },
    /// Opens a causal span (see [`crate::span`]); paired with the
    /// [`TraceEvent::SpanEnd`] carrying the same `id`.
    SpanBegin {
        /// Span name.
        name: &'static str,
        /// Cost category.
        cat: CostCat,
        /// Virtual core the span opened on.
        core: usize,
        /// Open timestamp, in virtual cycles.
        ts: Cycles,
        /// Process-unique span id (never zero).
        id: u64,
        /// Parent span id, or zero for a root span. The parent may live
        /// on a *different* core/thread (causal link, not a call stack).
        parent: u64,
    },
    /// Closes the causal span opened with the same `id`.
    SpanEnd {
        /// Span name (repeated so a torn pair is still readable).
        name: &'static str,
        /// Cost category (Chrome matches async events on name+cat+id).
        cat: CostCat,
        /// Virtual core the span closed on.
        core: usize,
        /// Close timestamp, in virtual cycles.
        ts: Cycles,
        /// Id of the matching [`TraceEvent::SpanBegin`].
        id: u64,
    },
}

impl TraceEvent {
    fn core(&self) -> usize {
        match *self {
            TraceEvent::Span { core, .. }
            | TraceEvent::Instant { core, .. }
            | TraceEvent::Counter { core, .. }
            | TraceEvent::SpanBegin { core, .. }
            | TraceEvent::SpanEnd { core, .. } => core,
        }
    }
}

/// Escapes a name for embedding in a JSON string literal (RFC 8259).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Ring {
    buf: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
}

/// A bounded collector of [`TraceEvent`]s.
pub struct Tracer {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl Tracer {
    /// Creates a tracer with the given ring capacity (events).
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "trace ring needs room for at least one event");
        Tracer {
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Records one event, overwriting the oldest if the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let mut r = self.ring.lock();
        if r.buf.len() < self.capacity {
            r.buf.push(ev);
        } else {
            let head = r.head;
            r.buf[head] = ev;
            r.head = (head + 1) % self.capacity;
            r.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Returns the retained events in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let r = self.ring.lock();
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.head..]);
        out.extend_from_slice(&r.buf[..r.head]);
        out
    }

    /// Serializes the retained events as Chrome `trace_event` JSON
    /// (`ts`/`dur` in microseconds of virtual time; `tid` is the vcore).
    ///
    /// Causal spans export as async `b`/`e` pairs matched on id. When
    /// ring pressure has overwritten a span's `SpanBegin`, the orphaned
    /// `SpanEnd` is suppressed so the export never contains a torn pair.
    pub fn export_chrome(&self) -> String {
        // Cycles -> microseconds at the simulated clock.
        let us = |c: Cycles| c.get() as f64 * 1e6 / CPU_HZ as f64;
        let events = self.events();
        // Ids whose SpanBegin survived in the ring: only their ends export.
        let mut begun = aquila_sync::DetSet::new();
        for ev in &events {
            if let TraceEvent::SpanBegin { id, .. } = ev {
                begun.insert(*id);
            }
        }
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        // Thread-name metadata so Perfetto labels each track "vcore N".
        let mut cores: Vec<usize> = events.iter().map(|e| e.core()).collect();
        cores.sort_unstable();
        cores.dedup();
        let mut first = true;
        let mut emit = |out: &mut String, line: &str| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(line);
        };
        for c in cores {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{c},\
                     \"args\":{{\"name\":\"vcore {c}\"}}}}"
                ),
            );
        }
        for ev in &events {
            let line = match *ev {
                TraceEvent::Span {
                    name,
                    cat,
                    core,
                    start,
                    dur,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\
                     \"dur\":{:.3},\"pid\":1,\"tid\":{core},\
                     \"args\":{{\"start_cycles\":{},\"dur_cycles\":{}}}}}",
                    esc(name),
                    cat.name(),
                    us(start),
                    us(dur),
                    start.get(),
                    dur.get()
                ),
                TraceEvent::Instant {
                    name,
                    cat,
                    core,
                    ts,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":1,\"tid\":{core},\
                     \"args\":{{\"ts_cycles\":{}}}}}",
                    esc(name),
                    cat.name(),
                    us(ts),
                    ts.get()
                ),
                TraceEvent::Counter {
                    name,
                    core,
                    ts,
                    value,
                } => format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":1,\
                     \"tid\":{core},\"args\":{{\"value\":{value}}}}}",
                    esc(name),
                    us(ts)
                ),
                TraceEvent::SpanBegin {
                    name,
                    cat,
                    core,
                    ts,
                    id,
                    parent,
                } => format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"b\",\
                     \"id2\":{{\"local\":\"0x{id:x}\"}},\"ts\":{:.3},\"pid\":1,\
                     \"tid\":{core},\"args\":{{\"span_id\":{id},\
                     \"parent_span\":{parent},\"ts_cycles\":{}}}}}",
                    esc(name),
                    cat.name(),
                    us(ts),
                    ts.get()
                ),
                TraceEvent::SpanEnd {
                    name,
                    cat,
                    core,
                    ts,
                    id,
                } => {
                    if !begun.contains(&id) {
                        // Begin was overwritten under ring pressure; drop
                        // the end rather than export a torn pair.
                        continue;
                    }
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"e\",\
                         \"id2\":{{\"local\":\"0x{id:x}\"}},\"ts\":{:.3},\"pid\":1,\
                         \"tid\":{core},\"args\":{{\"span_id\":{id},\
                         \"ts_cycles\":{}}}}}",
                        esc(name),
                        cat.name(),
                        us(ts),
                        ts.get()
                    )
                }
            };
            emit(&mut out, &line);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the Chrome trace to `path`.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.export_chrome())
    }
}

static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();

/// Installs a process-global tracer with `capacity` events and returns
/// it. If a tracer is already installed, the existing one is returned
/// (install-once: figure binaries call this before running).
pub fn install(capacity: usize) -> Arc<Tracer> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Tracer::new(capacity))))
}

/// The installed global tracer, if any.
pub fn global() -> Option<&'static Arc<Tracer>> {
    GLOBAL.get()
}

/// Whether tracing is enabled (a global tracer is installed).
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some()
}

/// Records a completed span from `start` to `ctx.now()` on the calling
/// vcore. Call *after* the work, passing the `ctx.now()` sampled before
/// it; never charges cycles.
#[inline]
pub fn span(ctx: &dyn SimCtx, name: &'static str, cat: CostCat, start: Cycles) {
    if let Some(t) = GLOBAL.get() {
        let end = ctx.now();
        t.record(TraceEvent::Span {
            name,
            cat,
            core: ctx.core(),
            start,
            dur: end.saturating_sub(start),
        });
    }
}

/// Records an instant event at `ctx.now()` on the calling vcore.
#[inline]
pub fn instant(ctx: &dyn SimCtx, name: &'static str, cat: CostCat) {
    if let Some(t) = GLOBAL.get() {
        t.record(TraceEvent::Instant {
            name,
            cat,
            core: ctx.core(),
            ts: ctx.now(),
        });
    }
}

/// Records a counter sample at `ctx.now()` on the calling vcore.
#[inline]
pub fn counter(ctx: &dyn SimCtx, name: &'static str, value: u64) {
    if let Some(t) = GLOBAL.get() {
        t.record(TraceEvent::Counter {
            name,
            core: ctx.core(),
            ts: ctx.now(),
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreeCtx;

    #[test]
    fn ring_overwrites_oldest() {
        let t = Tracer::new(4);
        for i in 0..6u64 {
            t.record(TraceEvent::Counter {
                name: "x",
                core: 0,
                ts: Cycles(i),
                value: i,
            });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        let evs = t.events();
        // Oldest two (ts 0, 1) overwritten; order preserved.
        let ts: Vec<u64> = evs
            .iter()
            .map(|e| match e {
                TraceEvent::Counter { ts, .. } => ts.get(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ts, vec![2, 3, 4, 5]);
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        let t = Tracer::new(16);
        t.record(TraceEvent::Span {
            name: "fault",
            cat: CostCat::FaultHandler,
            core: 1,
            start: Cycles(2400),
            dur: Cycles(4800),
        });
        t.record(TraceEvent::Instant {
            name: "shootdown",
            cat: CostCat::Tlb,
            core: 0,
            ts: Cycles(100),
        });
        t.record(TraceEvent::Counter {
            name: "nvme.inflight",
            core: 0,
            ts: Cycles(200),
            value: 7,
        });
        let s = t.export_chrome();
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("\"name\":\"vcore 0\""));
        assert!(s.contains("\"name\":\"vcore 1\""));
        // 2400 cycles at 2.4 GHz = exactly 1 us.
        assert!(s.contains("\"ts\":1.000"), "virtual-cycle timestamp:\n{s}");
        assert!(s.contains("\"dur\":2.000"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    /// Count occurrences of a span id in export lines of phase `ph`.
    fn phase_ids(export: &str, ph: char) -> Vec<u64> {
        let needle = format!("\"ph\":\"{ph}\"");
        export
            .lines()
            .filter(|l| l.contains(&needle))
            .map(|l| {
                let tail = l.split("\"span_id\":").nth(1).expect("span_id arg");
                tail.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .unwrap()
                    .parse::<u64>()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn overflowed_ring_drops_oldest_and_never_tears_span_pairs() {
        use crate::rng::Rng64;
        // Property check over several seeds: a tiny ring under random
        // begin/end/counter pressure drops the oldest events, and the
        // Chrome export never contains an `e` whose `b` was dropped.
        for seed in 1u64..=8 {
            let t = Tracer::new(16);
            let mut rng = Rng64::new(seed);
            let mut open: Vec<u64> = Vec::new();
            let mut next_id = 1u64;
            let mut recorded = 0u64;
            for step in 0..200u64 {
                match rng.below(3) {
                    0 => {
                        let parent = open.last().copied().unwrap_or(0);
                        t.record(TraceEvent::SpanBegin {
                            name: "work",
                            cat: CostCat::App,
                            core: 0,
                            ts: Cycles(step),
                            id: next_id,
                            parent,
                        });
                        open.push(next_id);
                        next_id += 1;
                    }
                    1 => {
                        if let Some(id) = open.pop() {
                            t.record(TraceEvent::SpanEnd {
                                name: "work",
                                cat: CostCat::App,
                                core: 0,
                                ts: Cycles(step),
                                id,
                            });
                        } else {
                            continue;
                        }
                    }
                    _ => t.record(TraceEvent::Counter {
                        name: "c",
                        core: 0,
                        ts: Cycles(step),
                        value: step,
                    }),
                }
                recorded += 1;
            }
            // Drop-oldest accounting: ring holds the newest `capacity`.
            assert_eq!(t.len() as u64 + t.dropped(), recorded, "seed {seed}");
            assert!(t.len() <= 16);
            let export = t.export_chrome();
            let begins = phase_ids(&export, 'b');
            for id in phase_ids(&export, 'e') {
                assert!(
                    begins.contains(&id),
                    "seed {seed}: torn pair — end {id} exported without its begin"
                );
            }
            // Cheap well-formedness: balanced braces/brackets.
            assert_eq!(export.matches('{').count(), export.matches('}').count());
            assert_eq!(export.matches('[').count(), export.matches(']').count());
        }
    }

    #[test]
    fn export_escapes_names() {
        let t = Tracer::new(8);
        t.record(TraceEvent::Instant {
            name: "bad\"name\\with\ncontrol\tchars",
            cat: CostCat::Other,
            core: 0,
            ts: Cycles(1),
        });
        let s = t.export_chrome();
        assert!(s.contains("bad\\\"name\\\\with\\ncontrol\\tchars"), "{s}");
        // No raw quote/newline survives inside the name.
        assert!(!s.contains("bad\"name"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn span_pairs_roundtrip_through_export() {
        let t = Tracer::new(16);
        t.record(TraceEvent::SpanBegin {
            name: "aquila.fault",
            cat: CostCat::FaultHandler,
            core: 2,
            ts: Cycles(2400),
            id: 7,
            parent: 0,
        });
        t.record(TraceEvent::SpanBegin {
            name: "aquila.fault.read",
            cat: CostCat::DeviceIo,
            core: 2,
            ts: Cycles(3600),
            id: 8,
            parent: 7,
        });
        t.record(TraceEvent::SpanEnd {
            name: "aquila.fault.read",
            cat: CostCat::DeviceIo,
            core: 2,
            ts: Cycles(6000),
            id: 8,
        });
        t.record(TraceEvent::SpanEnd {
            name: "aquila.fault",
            cat: CostCat::FaultHandler,
            core: 2,
            ts: Cycles(7200),
            id: 7,
        });
        let s = t.export_chrome();
        assert!(s.contains("\"ph\":\"b\""));
        assert!(s.contains("\"ph\":\"e\""));
        assert!(s.contains("\"parent_span\":7"));
        assert!(s.contains("\"id2\":{\"local\":\"0x7\"}"));
        assert_eq!(phase_ids(&s, 'b'), vec![7, 8]);
        assert_eq!(phase_ids(&s, 'e'), vec![8, 7]);
    }

    #[test]
    fn free_functions_are_noops_without_global() {
        // The global may or may not be installed (test order), so only
        // check these never panic or charge cycles.
        let mut ctx = FreeCtx::new(1);
        let t0 = ctx.now();
        ctx.charge(CostCat::App, Cycles(10));
        span(&ctx, "work", CostCat::App, t0);
        instant(&ctx, "tick", CostCat::Other);
        counter(&ctx, "gauge", 3);
        assert_eq!(ctx.now(), Cycles(10), "tracing never charges cycles");
    }
}
