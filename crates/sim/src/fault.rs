//! Deterministic fault injection for device models.
//!
//! A [`FaultPlan`] is a list of clauses, each naming a device operation
//! stream (`nvme.read`, `nvme.write`), a fault kind, and a trigger — the
//! Nth matching operation or the first one at/after a virtual cycle.
//! Because triggers are counted in operation order and stamped with
//! virtual time, the same plan over the same seed reproduces the same
//! failure bit-for-bit: a power cut in the middle of a queue-depth-8
//! write-back can be replayed forever.
//!
//! Like [`crate::trace`] and [`crate::metrics`], the fault layer never
//! charges virtual cycles and is invisible when unconfigured: with no
//! plan installed an injection site costs one `OnceLock` load, and an
//! *empty* plan only bumps host-side operation counters, so a run with
//! fault injection compiled in but unconfigured is bit-identical to one
//! without (the determinism suite asserts exactly this).
//!
//! Spec grammar (clauses separated by `;`):
//!
//! ```text
//! spec    := clause (';' clause)*
//! clause  := target ':' kind '@' trigger
//! target  := 'nvme.read' | 'nvme.write'
//! kind    := 'media_error' | 'timeout' | 'device_reset'
//!          | 'queue_full' ('*' LEN)?     # storm of LEN submissions (default 1)
//!          | 'torn' ('=' SECTORS)?       # persist only SECTORS x 512 B (default 1)
//!          | 'crash' ('=' SECTORS)?      # power cut; image torn at SECTORS (default 0)
//!          | 'corrupt' ('=' BITS)?       # silently flip BITS bits in the payload (default 1)
//!          | 'latent' ('=' SECTORS)?     # SECTORS sectors become unreadable until rewritten (default 1)
//! trigger := 'op=' N                     # the Nth (1-based) matching operation
//!          | 'cycle=' N                  # first matching operation at/after cycle N
//! ```
//!
//! Example: `--faults "nvme.write:media_error@op=1000"`.

use std::sync::{Arc, OnceLock};

use aquila_sync::Mutex;

use crate::time::Cycles;

/// Torn-write granularity: the device persists whole 512-byte sectors.
pub const SECTOR_SIZE: usize = 512;

/// Which device operation stream a clause watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// NVMe read submissions.
    NvmeRead,
    /// NVMe write submissions.
    NvmeWrite,
}

impl FaultTarget {
    /// Stable spec-string name.
    pub fn name(self) -> &'static str {
        match self {
            FaultTarget::NvmeRead => "nvme.read",
            FaultTarget::NvmeWrite => "nvme.write",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultTarget::NvmeRead => 0,
            FaultTarget::NvmeWrite => 1,
        }
    }

    fn parse(s: &str) -> Result<FaultTarget, FaultSpecError> {
        match s {
            "nvme.read" => Ok(FaultTarget::NvmeRead),
            "nvme.write" => Ok(FaultTarget::NvmeWrite),
            _ => Err(FaultSpecError(format!(
                "unknown fault target {s:?} (expected nvme.read or nvme.write)"
            ))),
        }
    }
}

const TARGETS: usize = 2;

/// What a clause injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The command fails with an uncorrectable media error.
    MediaError,
    /// The command times out without completing.
    Timeout,
    /// The next `len` submissions report a full queue (a completion
    /// starvation storm, not ordinary backpressure).
    QueueFullStorm {
        /// Number of consecutive submissions that report QueueFull.
        len: u64,
    },
    /// The device resets; the in-flight command is lost.
    DeviceReset,
    /// Only the first `sectors` 512-byte sectors of the write persist
    /// before the command fails.
    TornWrite {
        /// Sectors that reach the medium.
        sectors: u64,
    },
    /// Power cut: capture the device image as it stands, with only the
    /// first `sectors` sectors of the in-flight write applied. The live
    /// run continues (so the workload can finish and be measured); the
    /// crash-consistency harness recovers from the captured image.
    Crash {
        /// Sectors of the in-flight write that reach the captured image.
        sectors: u64,
    },
    /// *Silent* corruption: flip `bits` bits of the command's payload
    /// (on a write, as the data lands on the medium; on a read, in the
    /// returned buffer). The command reports success — only an
    /// integrity layer above the device can notice.
    Corrupt {
        /// Number of payload bits flipped (deterministic positions).
        bits: u64,
    },
    /// Latent sector errors: `sectors` sectors of the command's target
    /// range become persistently unreadable (every read intersecting
    /// them fails with a media error) until rewritten, which heals
    /// them — the way a real drive reallocates a bad sector on write.
    Latent {
        /// Sectors marked bad, from the start of the command's range.
        sectors: u64,
    },
}

/// When a clause fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// On the Nth (1-based) operation matching the clause's target.
    Op(u64),
    /// On the first matching operation at or after the given virtual
    /// cycle.
    Cycle(Cycles),
}

/// One parsed `target:kind@trigger` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClause {
    /// Operation stream the clause watches.
    pub target: FaultTarget,
    /// Fault to inject.
    pub kind: FaultKind,
    /// When to inject it.
    pub trigger: FaultTrigger,
}

/// What an injection site must do, as decided by [`FaultPlan::draw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Fail the command with a media error.
    MediaError,
    /// Fail the command with a timeout.
    Timeout,
    /// Report the queue as full.
    QueueFull,
    /// Fail the command with a device reset.
    DeviceReset,
    /// Persist only the first `sectors` sectors, then fail the command.
    Torn {
        /// Sectors that reach the medium.
        sectors: u64,
    },
    /// Capture a crash image torn at `sectors`, then let the command
    /// proceed normally.
    Crash {
        /// Sectors of the in-flight write applied to the image.
        sectors: u64,
    },
    /// Silently flip `bits` bits in the command's payload; the command
    /// succeeds.
    Corrupt {
        /// Payload bits to flip.
        bits: u64,
    },
    /// Mark `sectors` sectors of the command's range persistently
    /// unreadable (until rewritten); the triggering command fails if it
    /// is a read, and succeeds (marking the sectors behind it) if it is
    /// a write.
    Latent {
        /// Sectors marked bad.
        sectors: u64,
    },
}

/// A device image captured at a crash point.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// Virtual time of the power cut.
    pub at: Cycles,
    /// Flat byte image of the device at the cut (never-written pages
    /// read as zero, matching page-store semantics).
    pub image: Vec<u8>,
}

/// A malformed fault spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl core::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

struct ClauseState {
    fired: bool,
}

struct PlanState {
    /// Per-target operation counters (1-based after the increment).
    ops: [u64; TARGETS],
    clauses: Vec<ClauseState>,
    /// Remaining QueueFull-storm submissions, per target.
    storm: [u64; TARGETS],
    injected: u64,
    crash: Option<CrashImage>,
}

/// A parsed, stateful fault plan.
///
/// All trigger bookkeeping lives *inside* the plan (host memory only),
/// so a plan never perturbs virtual time or the RNG stream; injection
/// sites call [`FaultPlan::draw`] with their current virtual time and
/// act on the returned outcome.
pub struct FaultPlan {
    clauses: Vec<FaultClause>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan with no clauses (draws always return `None`).
    pub fn empty() -> FaultPlan {
        FaultPlan::from_clauses(Vec::new())
    }

    /// Builds a plan from already-parsed clauses.
    pub fn from_clauses(clauses: Vec<FaultClause>) -> FaultPlan {
        let states = clauses
            .iter()
            .map(|_| ClauseState { fired: false })
            .collect();
        FaultPlan {
            clauses,
            state: Mutex::new(PlanState {
                ops: [0; TARGETS],
                clauses: states,
                storm: [0; TARGETS],
                injected: 0,
                crash: None,
            }),
        }
    }

    /// Parses a spec string (see the module docs for the grammar). The
    /// empty string parses to an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(parse_clause(raw)?);
        }
        Ok(FaultPlan::from_clauses(clauses))
    }

    /// Whether the plan has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The parsed clauses.
    pub fn clauses(&self) -> &[FaultClause] {
        &self.clauses
    }

    /// Records one operation on `target` at virtual time `now` and
    /// returns the fault to inject, if any fires.
    pub fn draw(&self, target: FaultTarget, now: Cycles) -> Option<FaultOutcome> {
        let mut st = self.state.lock();
        let t = target.index();
        st.ops[t] += 1;
        let n = st.ops[t];
        if st.storm[t] > 0 {
            st.storm[t] -= 1;
            st.injected += 1;
            return Some(FaultOutcome::QueueFull);
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if clause.target != target || st.clauses[i].fired {
                continue;
            }
            let fires = match clause.trigger {
                FaultTrigger::Op(k) => k == n,
                FaultTrigger::Cycle(c) => now >= c,
            };
            if !fires {
                continue;
            }
            st.clauses[i].fired = true;
            st.injected += 1;
            return Some(match clause.kind {
                FaultKind::MediaError => FaultOutcome::MediaError,
                FaultKind::Timeout => FaultOutcome::Timeout,
                FaultKind::QueueFullStorm { len } => {
                    st.storm[t] = len.saturating_sub(1);
                    FaultOutcome::QueueFull
                }
                FaultKind::DeviceReset => FaultOutcome::DeviceReset,
                FaultKind::TornWrite { sectors } => FaultOutcome::Torn { sectors },
                FaultKind::Crash { sectors } => FaultOutcome::Crash { sectors },
                FaultKind::Corrupt { bits } => FaultOutcome::Corrupt { bits },
                FaultKind::Latent { sectors } => FaultOutcome::Latent { sectors },
            });
        }
        None
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().injected
    }

    /// Operations observed on `target` so far.
    pub fn ops(&self, target: FaultTarget) -> u64 {
        self.state.lock().ops[target.index()]
    }

    /// Stores the crash image captured by a `crash` clause. Only the
    /// first capture is kept (one power cut per run).
    pub fn record_crash(&self, image: CrashImage) {
        let mut st = self.state.lock();
        if st.crash.is_none() {
            st.crash = Some(image);
        }
    }

    /// The captured crash image, if a `crash` clause fired.
    pub fn crash_image(&self) -> Option<CrashImage> {
        self.state.lock().crash.clone()
    }
}

impl core::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "FaultPlan {{ clauses: {}, injected: {}, crashed: {} }}",
            self.clauses.len(),
            st.injected,
            st.crash.is_some()
        )
    }
}

/// Every kind the grammar accepts, quoted verbatim in parse errors so a
/// typo'd spec tells the user what would have been valid.
const VALID_KINDS: &str = "media_error, timeout, device_reset, queue_full*N, \
     torn=S, crash=S, corrupt=N, latent=S";

fn parse_clause(raw: &str) -> Result<FaultClause, FaultSpecError> {
    let (target, rest) = raw
        .split_once(':')
        .ok_or_else(|| FaultSpecError(format!("clause {raw:?} missing ':' after target")))?;
    let (kind, trigger) = rest
        .split_once('@')
        .ok_or_else(|| FaultSpecError(format!("clause {raw:?} missing '@trigger'")))?;
    Ok(FaultClause {
        target: FaultTarget::parse(target.trim())?,
        kind: parse_kind(kind.trim(), raw)?,
        trigger: parse_trigger(trigger.trim(), raw)?,
    })
}

fn parse_num(s: &str, what: &str, raw: &str) -> Result<u64, FaultSpecError> {
    s.parse::<u64>()
        .map_err(|_| FaultSpecError(format!("clause {raw:?}: {what} {s:?} is not a number")))
}

fn parse_kind(s: &str, raw: &str) -> Result<FaultKind, FaultSpecError> {
    let malformed = |form: &str| {
        FaultSpecError(format!(
            "clause {raw:?}: bad {form} form {s:?} (valid kinds: {VALID_KINDS})"
        ))
    };
    if let Some(len) = s.strip_prefix("queue_full") {
        let len = match len.strip_prefix('*') {
            Some(n) => parse_num(n, "storm length", raw)?,
            None if len.is_empty() => 1,
            None => return Err(malformed("queue_full")),
        };
        return Ok(FaultKind::QueueFullStorm { len: len.max(1) });
    }
    if let Some(sectors) = s.strip_prefix("torn") {
        let sectors = match sectors.strip_prefix('=') {
            Some(n) => parse_num(n, "torn sectors", raw)?,
            None if sectors.is_empty() => 1,
            None => return Err(malformed("torn")),
        };
        return Ok(FaultKind::TornWrite { sectors });
    }
    if let Some(sectors) = s.strip_prefix("crash") {
        let sectors = match sectors.strip_prefix('=') {
            Some(n) => parse_num(n, "crash sectors", raw)?,
            None if sectors.is_empty() => 0,
            None => return Err(malformed("crash")),
        };
        return Ok(FaultKind::Crash { sectors });
    }
    if let Some(bits) = s.strip_prefix("corrupt") {
        let bits = match bits.strip_prefix('=') {
            Some(n) => parse_num(n, "corrupt bits", raw)?,
            None if bits.is_empty() => 1,
            None => return Err(malformed("corrupt")),
        };
        return Ok(FaultKind::Corrupt { bits: bits.max(1) });
    }
    if let Some(sectors) = s.strip_prefix("latent") {
        let sectors = match sectors.strip_prefix('=') {
            Some(n) => parse_num(n, "latent sectors", raw)?,
            None if sectors.is_empty() => 1,
            None => return Err(malformed("latent")),
        };
        return Ok(FaultKind::Latent {
            sectors: sectors.max(1),
        });
    }
    match s {
        "media_error" => Ok(FaultKind::MediaError),
        "timeout" => Ok(FaultKind::Timeout),
        "device_reset" => Ok(FaultKind::DeviceReset),
        _ => Err(FaultSpecError(format!(
            "clause {raw:?}: unknown fault kind {s:?} (valid kinds: {VALID_KINDS})"
        ))),
    }
}

fn parse_trigger(s: &str, raw: &str) -> Result<FaultTrigger, FaultSpecError> {
    if let Some(n) = s.strip_prefix("op=") {
        let n = parse_num(n, "op trigger", raw)?;
        if n == 0 {
            return Err(FaultSpecError(format!(
                "clause {raw:?}: op trigger is 1-based; op=0 never fires"
            )));
        }
        return Ok(FaultTrigger::Op(n));
    }
    if let Some(n) = s.strip_prefix("cycle=") {
        return Ok(FaultTrigger::Cycle(Cycles(parse_num(
            n,
            "cycle trigger",
            raw,
        )?)));
    }
    Err(FaultSpecError(format!(
        "clause {raw:?}: unknown trigger {s:?} (expected op=N or cycle=N)"
    )))
}

static GLOBAL: OnceLock<Arc<FaultPlan>> = OnceLock::new();

/// Installs a process-global fault plan and returns it. If one is
/// already installed, the existing plan is returned (first install
/// wins, mirroring `metrics::install`).
pub fn install(plan: FaultPlan) -> Arc<FaultPlan> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(plan)))
}

/// Parses `spec` and installs the plan globally.
pub fn install_spec(spec: &str) -> Result<Arc<FaultPlan>, FaultSpecError> {
    Ok(install(FaultPlan::parse(spec)?))
}

/// The installed global plan, if any.
pub fn global() -> Option<&'static Arc<FaultPlan>> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_parses_to_empty_plan() {
        let p = FaultPlan::parse("").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.draw(FaultTarget::NvmeWrite, Cycles(0)), None);
        assert_eq!(p.injected(), 0);
        assert_eq!(p.ops(FaultTarget::NvmeWrite), 1);
    }

    #[test]
    fn media_error_fires_on_exact_op() {
        let p = FaultPlan::parse("nvme.write:media_error@op=3").unwrap();
        assert_eq!(p.draw(FaultTarget::NvmeWrite, Cycles(0)), None);
        // Reads do not advance the write stream.
        assert_eq!(p.draw(FaultTarget::NvmeRead, Cycles(0)), None);
        assert_eq!(p.draw(FaultTarget::NvmeWrite, Cycles(0)), None);
        assert_eq!(
            p.draw(FaultTarget::NvmeWrite, Cycles(0)),
            Some(FaultOutcome::MediaError)
        );
        // One-shot: the clause does not re-fire.
        assert_eq!(p.draw(FaultTarget::NvmeWrite, Cycles(0)), None);
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn cycle_trigger_fires_first_op_at_or_after() {
        let p = FaultPlan::parse("nvme.read:timeout@cycle=1000").unwrap();
        assert_eq!(p.draw(FaultTarget::NvmeRead, Cycles(999)), None);
        assert_eq!(
            p.draw(FaultTarget::NvmeRead, Cycles(1000)),
            Some(FaultOutcome::Timeout)
        );
        assert_eq!(p.draw(FaultTarget::NvmeRead, Cycles(2000)), None);
    }

    #[test]
    fn queue_full_storm_spans_submissions() {
        let p = FaultPlan::parse("nvme.write:queue_full*3@op=1").unwrap();
        for _ in 0..3 {
            assert_eq!(
                p.draw(FaultTarget::NvmeWrite, Cycles(0)),
                Some(FaultOutcome::QueueFull)
            );
        }
        assert_eq!(p.draw(FaultTarget::NvmeWrite, Cycles(0)), None);
        assert_eq!(p.injected(), 3);
    }

    #[test]
    fn torn_and_crash_carry_sector_counts() {
        let p = FaultPlan::parse("nvme.write:torn=3@op=1; nvme.write:crash=5@op=2").unwrap();
        assert_eq!(
            p.draw(FaultTarget::NvmeWrite, Cycles(0)),
            Some(FaultOutcome::Torn { sectors: 3 })
        );
        assert_eq!(
            p.draw(FaultTarget::NvmeWrite, Cycles(7)),
            Some(FaultOutcome::Crash { sectors: 5 })
        );
    }

    #[test]
    fn crash_image_keeps_first_capture() {
        let p = FaultPlan::empty();
        assert!(p.crash_image().is_none());
        p.record_crash(CrashImage {
            at: Cycles(10),
            image: vec![1],
        });
        p.record_crash(CrashImage {
            at: Cycles(20),
            image: vec![2],
        });
        let img = p.crash_image().unwrap();
        assert_eq!(img.at, Cycles(10));
        assert_eq!(img.image, vec![1]);
    }

    #[test]
    fn defaults_and_whitespace() {
        let p = FaultPlan::parse(" nvme.write:torn@op=1 ; nvme.write:crash@op=2 ;").unwrap();
        assert_eq!(p.clauses().len(), 2);
        assert_eq!(p.clauses()[0].kind, FaultKind::TornWrite { sectors: 1 });
        assert_eq!(p.clauses()[1].kind, FaultKind::Crash { sectors: 0 });
        let q = FaultPlan::parse("nvme.read:queue_full@op=9").unwrap();
        assert_eq!(q.clauses()[0].kind, FaultKind::QueueFullStorm { len: 1 });
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "nvme.write",                     // no kind
            "nvme.write:media_error",         // no trigger
            "scsi.write:media_error@op=1",    // unknown target
            "nvme.write:gamma_ray@op=1",      // unknown kind
            "nvme.write:media_error@when=1",  // unknown trigger
            "nvme.write:media_error@op=zero", // not a number
            "nvme.write:media_error@op=0",    // 1-based
            "nvme.write:corrupt*4@op=1",      // corrupt takes '=', not '*'
            "nvme.read:latent=x@op=1",        // latent sectors not a number
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_errors_name_the_offending_clause() {
        // A multi-clause spec with one bad clause must name *that*
        // clause verbatim, so the user can find it in a long spec.
        let cases = [
            ("nvme.write:gamma_ray@op=1", "gamma_ray"),
            ("nvme.write:corrupt*4@op=1", "corrupt"),
            ("nvme.read:latent=x@op=1", "latent sectors"),
            ("nvme.write:torn~2@op=1", "torn"),
            ("nvme.write:media_error@op=zero", "op trigger"),
            ("nvme.write:media_error@when=1", "unknown trigger"),
            ("nvme.write:media_error@op=0", "1-based"),
        ];
        for (bad, detail) in cases {
            let spec = format!("nvme.read:media_error@op=9;{bad}");
            let err = FaultPlan::parse(&spec).unwrap_err().0;
            assert!(
                err.contains(&format!("{bad:?}")),
                "error {err:?} does not name clause {bad:?}"
            );
            assert!(
                err.contains(detail),
                "error {err:?} does not mention {detail:?}"
            );
        }
        // Unknown-kind errors list every valid kind.
        let err = FaultPlan::parse("nvme.write:gamma_ray@op=1").unwrap_err().0;
        for kind in ["media_error", "queue_full*N", "corrupt=N", "latent=S"] {
            assert!(err.contains(kind), "error {err:?} does not list {kind}");
        }
    }

    #[test]
    fn corrupt_and_latent_parse_and_fire() {
        let p = FaultPlan::parse("nvme.write:corrupt=4@op=1; nvme.read:latent=2@op=1").unwrap();
        assert_eq!(p.clauses()[0].kind, FaultKind::Corrupt { bits: 4 });
        assert_eq!(p.clauses()[1].kind, FaultKind::Latent { sectors: 2 });
        assert_eq!(
            p.draw(FaultTarget::NvmeWrite, Cycles(0)),
            Some(FaultOutcome::Corrupt { bits: 4 })
        );
        assert_eq!(
            p.draw(FaultTarget::NvmeRead, Cycles(0)),
            Some(FaultOutcome::Latent { sectors: 2 })
        );
        assert_eq!(p.injected(), 2);
        // Defaults: one bit, one sector.
        let q = FaultPlan::parse("nvme.read:corrupt@op=1; nvme.write:latent@op=1").unwrap();
        assert_eq!(q.clauses()[0].kind, FaultKind::Corrupt { bits: 1 });
        assert_eq!(q.clauses()[1].kind, FaultKind::Latent { sectors: 1 });
    }

    #[test]
    fn draws_are_schedule_deterministic() {
        let run = || {
            let p = FaultPlan::parse("nvme.write:media_error@op=2; nvme.read:timeout@cycle=50")
                .unwrap();
            let mut log = Vec::new();
            for i in 0..5u64 {
                log.push(p.draw(FaultTarget::NvmeWrite, Cycles(i * 20)));
                log.push(p.draw(FaultTarget::NvmeRead, Cycles(i * 20)));
            }
            log
        };
        assert_eq!(run(), run());
    }
}
