//! Deterministic data-race and lock-order detector for the DES.
//!
//! The scalability claims the simulation reproduces (tree-lock
//! serialization, per-core pcache partitions, TLB shootdown fan-out)
//! only mean anything if the run is bit-deterministic *and* the modeled
//! concurrency is sound. This module checks the second half at runtime:
//! sim-path crates annotate their shared accesses and lock
//! acquisitions, and the detector replays classic dynamic analyses over
//! the deterministic schedule the engine already produces:
//!
//! - **Happens-before (FastTrack)**: every virtual thread carries a
//!   vector clock; lock releases publish the holder's clock and
//!   acquisitions join it. Variables keep a last-write *epoch*
//!   `(tid, clock)` — the FastTrack fast path — promoted to a full read
//!   vector only when genuinely read-shared. Conflicting accesses not
//!   ordered by the clocks are reported.
//! - **Lockset (Eraser)**: each variable intersects the locks held
//!   across its accesses; an empty lockset on a variable touched by two
//!   or more threads means the locking discipline — not just this
//!   schedule — is broken.
//! - **Lock order**: crates declare a canonical order per domain
//!   ([`declare_order`]); acquisitions that invert a declared rank are
//!   flagged immediately, and an order graph over all nested
//!   acquisitions is checked for cycles (potential deadlocks) even
//!   where no rank was declared.
//!
//! Like [`crate::trace`], the detector is an *observer*: it is host-time
//! only, charges zero virtual cycles, never blocks a virtual thread, and
//! — because the DES schedule is a pure function of the seed — its
//! report is identical across runs. Annotations route through a global
//! [`install`]ed detector and are no-ops when none is installed.
//!
//! Atomics are modeled with [`read_acquire`]/[`write_release`]: an
//! acquire-read joins the reader's clock with the variable's last-write
//! clock (Acquire/Release publication), and such variables are exempt
//! from lockset checking (they are lock-free by design, e.g. the pcache
//! hashtable's probe path).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

use aquila_sync::Mutex;

use crate::engine::SimCtx;

/// A lock identity: (name, instance). Instance distinguishes per-core or
/// per-bucket locks sharing one name; ordering checks apply to the name.
pub type LockKey = (&'static str, u64);

/// A shared-variable identity: (name, instance).
pub type VarKey = (&'static str, u64);

/// A growable vector clock over dense thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    /// The all-zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    /// Component for thread `tid` (0 if never seen).
    #[inline]
    pub fn get(&self, tid: usize) -> u64 {
        self.clocks.get(tid).copied().unwrap_or(0)
    }

    /// Sets thread `tid`'s component to `v`, growing as needed.
    pub fn set(&mut self, tid: usize, v: u64) {
        if self.clocks.len() <= tid {
            self.clocks.resize(tid + 1, 0);
        }
        self.clocks[tid] = v;
    }

    /// Pointwise maximum with `other` (the happens-before join).
    pub fn join(&mut self, other: &VectorClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &c) in other.clocks.iter().enumerate() {
            if c > self.clocks[i] {
                self.clocks[i] = c;
            }
        }
    }

    /// Whether `self` is pointwise >= `other` (other happens-before or
    /// equals self).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        (0..other.clocks.len().max(self.clocks.len())).all(|i| self.get(i) >= other.get(i))
    }
}

/// A FastTrack epoch: one (thread, clock) pair standing in for a full
/// vector when a variable is accessed by one thread at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Epoch {
    /// Thread that performed the access.
    pub tid: usize,
    /// That thread's clock component at the access.
    pub clock: u64,
}

/// One detector finding. `Ord` gives reports a deterministic order and
/// the detector dedups by full value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Finding {
    /// Two writes unordered by happens-before.
    WriteWrite {
        /// The racing variable.
        var: VarKey,
        /// Thread of the earlier write epoch.
        first: usize,
        /// Thread of the later, unordered write.
        second: usize,
    },
    /// A read and a later write unordered by happens-before.
    ReadWrite {
        /// The racing variable.
        var: VarKey,
        /// Thread of the earlier read.
        reader: usize,
        /// Thread of the unordered write.
        writer: usize,
    },
    /// A write and a later read unordered by happens-before.
    WriteRead {
        /// The racing variable.
        var: VarKey,
        /// Thread of the earlier write.
        writer: usize,
        /// Thread of the unordered read.
        reader: usize,
    },
    /// Eraser: a variable touched by >= 2 threads whose lockset
    /// intersection is empty.
    EmptyLockset {
        /// The undisciplined variable.
        var: VarKey,
        /// Thread whose access emptied the lockset.
        tid: usize,
    },
    /// An acquisition violating a [`declare_order`] rank.
    LockOrderInversion {
        /// Order domain both locks belong to.
        domain: &'static str,
        /// Higher-ranked lock already held.
        held: &'static str,
        /// Lower-ranked lock being acquired.
        acquired: &'static str,
        /// Acquiring thread.
        tid: usize,
    },
    /// A cycle in the dynamic lock-order graph (potential deadlock).
    LockCycle {
        /// Lock names along the cycle; first == last.
        path: Vec<&'static str>,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::WriteWrite { var, first, second } => write!(
                f,
                "write-write race on {}[{}]: t{first} vs t{second}",
                var.0, var.1
            ),
            Finding::ReadWrite { var, reader, writer } => write!(
                f,
                "read-write race on {}[{}]: read t{reader} vs write t{writer}",
                var.0, var.1
            ),
            Finding::WriteRead { var, writer, reader } => write!(
                f,
                "write-read race on {}[{}]: write t{writer} vs read t{reader}",
                var.0, var.1
            ),
            Finding::EmptyLockset { var, tid } => write!(
                f,
                "empty lockset on {}[{}] (>=2 threads, no common lock; t{tid})",
                var.0, var.1
            ),
            Finding::LockOrderInversion {
                domain,
                held,
                acquired,
                tid,
            } => write!(
                f,
                "lock-order inversion in domain {domain}: t{tid} acquired {acquired} while holding {held}"
            ),
            Finding::LockCycle { path } => {
                write!(f, "lock-order cycle: {}", path.join(" -> "))
            }
        }
    }
}

/// Aggregate detector statistics (all deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Distinct virtual threads observed.
    pub threads: usize,
    /// Distinct lock instances observed.
    pub locks: usize,
    /// Distinct shared variables observed.
    pub vars: usize,
    /// Total lock acquisitions.
    pub acquires: u64,
    /// Total annotated accesses.
    pub accesses: u64,
    /// Deduplicated findings.
    pub findings: usize,
}

#[derive(Default)]
struct ThreadState {
    vc: VectorClock,
    held: Vec<LockKey>,
}

#[derive(Default)]
struct VarState {
    write_epoch: Option<Epoch>,
    write_vc: VectorClock,
    read_epoch: Option<Epoch>,
    read_vc: Option<VectorClock>,
    lockset: Option<BTreeSet<LockKey>>,
    atomic: bool,
    threads: BTreeSet<usize>,
}

#[derive(Default)]
struct Inner {
    threads: BTreeMap<usize, ThreadState>,
    /// Release clocks per lock instance.
    locks: BTreeMap<LockKey, VectorClock>,
    vars: BTreeMap<VarKey, VarState>,
    /// Declared rank per lock name: name -> (domain, rank).
    ranks: BTreeMap<&'static str, (&'static str, usize)>,
    /// Dynamic lock-order graph over lock names: held -> then-acquired.
    edges: BTreeMap<&'static str, BTreeSet<&'static str>>,
    findings: BTreeSet<Finding>,
    acquires: u64,
    accesses: u64,
}

impl Inner {
    fn thread(&mut self, tid: usize) -> &mut ThreadState {
        self.threads.entry(tid).or_insert_with(|| {
            let mut ts = ThreadState::default();
            ts.vc.set(tid, 1);
            ts
        })
    }

    /// DFS: is `to` reachable from `from` in the order graph? Returns the
    /// path if so.
    fn path(&self, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
        let mut stack = vec![vec![from]];
        let mut visited = BTreeSet::new();
        while let Some(p) = stack.pop() {
            let last = *p.last().expect("non-empty path");
            if last == to {
                return Some(p);
            }
            if !visited.insert(last) {
                continue;
            }
            if let Some(next) = self.edges.get(last) {
                for &n in next {
                    let mut q = p.clone();
                    q.push(n);
                    stack.push(q);
                }
            }
        }
        None
    }
}

/// The deterministic race detector. Construct directly for tests or via
/// [`install`] for a process-global instance the annotations feed.
#[derive(Default)]
pub struct RaceDetector {
    inner: Mutex<Inner>,
}

impl RaceDetector {
    /// Creates an empty detector.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Declares a canonical acquisition order for `names` within
    /// `domain`: earlier names must be acquired before later ones when
    /// nested. Idempotent; later declarations overwrite.
    pub fn declare_order(&self, domain: &'static str, names: &[&'static str]) {
        let mut inner = self.inner.lock();
        for (rank, &name) in names.iter().enumerate() {
            inner.ranks.insert(name, (domain, rank));
        }
    }

    /// Records thread `tid` acquiring `lock`.
    pub fn on_acquire(&self, tid: usize, lock: LockKey) {
        let mut inner = self.inner.lock();
        inner.acquires += 1;
        let held = self.held_snapshot(&mut inner, tid);
        // Declared-rank check against every held lock in the same domain.
        for &h in &held {
            if h.0 == lock.0 {
                continue;
            }
            if let (Some(&(dh, rh)), Some(&(dl, rl))) =
                (inner.ranks.get(h.0), inner.ranks.get(lock.0))
            {
                if dh == dl && rh > rl {
                    inner.findings.insert(Finding::LockOrderInversion {
                        domain: dh,
                        held: h.0,
                        acquired: lock.0,
                        tid,
                    });
                }
            }
        }
        // Dynamic order graph + cycle detection on new edges.
        for &h in &held {
            if h.0 == lock.0 {
                continue;
            }
            let new_edge = inner.edges.entry(h.0).or_default().insert(lock.0);
            if new_edge {
                if let Some(mut path) = inner.path(lock.0, h.0) {
                    path.push(lock.0);
                    inner.findings.insert(Finding::LockCycle { path });
                }
            }
        }
        // Happens-before: join the last release of this lock instance.
        let release_vc = inner.locks.get(&lock).cloned();
        let ts = inner.thread(tid);
        if let Some(vc) = release_vc {
            ts.vc.join(&vc);
        }
        ts.held.push(lock);
    }

    /// Records thread `tid` releasing `lock`: publishes the thread's
    /// clock on the lock and ticks the thread's own component.
    pub fn on_release(&self, tid: usize, lock: LockKey) {
        let mut inner = self.inner.lock();
        let ts = inner.thread(tid);
        if let Some(pos) = ts.held.iter().rposition(|&l| l == lock) {
            ts.held.remove(pos);
        }
        let vc = ts.vc.clone();
        let next = ts.vc.get(tid) + 1;
        ts.vc.set(tid, next);
        inner.locks.insert(lock, vc);
    }

    /// Records a plain read of `var` by `tid`.
    pub fn on_read(&self, tid: usize, var: VarKey) {
        self.access(tid, var, false, false);
    }

    /// Records a plain write of `var` by `tid`.
    pub fn on_write(&self, tid: usize, var: VarKey) {
        self.access(tid, var, true, false);
    }

    /// Records an Acquire-ordered atomic read of `var`: joins the
    /// reader's clock with the variable's last-write clock and exempts
    /// the variable from lockset checks.
    pub fn on_read_acquire(&self, tid: usize, var: VarKey) {
        self.access(tid, var, false, true);
    }

    /// Records a Release-ordered atomic write of `var` (lockset-exempt).
    pub fn on_write_release(&self, tid: usize, var: VarKey) {
        self.access(tid, var, true, true);
    }

    fn held_snapshot(&self, inner: &mut Inner, tid: usize) -> Vec<LockKey> {
        inner.thread(tid).held.clone()
    }

    fn access(&self, tid: usize, var: VarKey, is_write: bool, atomic: bool) {
        let mut inner = self.inner.lock();
        inner.accesses += 1;
        let held: BTreeSet<LockKey> = inner.thread(tid).held.iter().copied().collect();
        if atomic {
            // Atomic accesses are synchronization operations, not data
            // accesses: they carry happens-before edges (a Release write
            // publishes the writer's clock, an Acquire read joins it)
            // but are never themselves race-checked. An Acquire probe
            // racing a later Release store is the by-design behaviour of
            // a lock-free structure, not a finding. Marking the variable
            // atomic also exempts it from Eraser lockset checks below.
            let vc = inner.thread(tid).vc.clone();
            let vs = inner.vars.entry(var).or_default();
            vs.atomic = true;
            if is_write {
                vs.write_vc.join(&vc);
            } else {
                let wvc = vs.write_vc.clone();
                inner.thread(tid).vc.join(&wvc);
            }
            return;
        }
        let vc = inner.thread(tid).vc.clone();
        let vs = inner.vars.entry(var).or_default();
        vs.atomic |= atomic;
        let mut found: Vec<Finding> = Vec::new();

        if is_write {
            if let Some(w) = vs.write_epoch {
                if w.tid != tid && vc.get(w.tid) < w.clock {
                    found.push(Finding::WriteWrite {
                        var,
                        first: w.tid,
                        second: tid,
                    });
                }
            }
            if let Some(rvc) = &vs.read_vc {
                for rt in 0..rvc.clocks.len() {
                    let c = rvc.get(rt);
                    if c > 0 && rt != tid && vc.get(rt) < c {
                        found.push(Finding::ReadWrite {
                            var,
                            reader: rt,
                            writer: tid,
                        });
                    }
                }
            } else if let Some(r) = vs.read_epoch {
                if r.tid != tid && vc.get(r.tid) < r.clock {
                    found.push(Finding::ReadWrite {
                        var,
                        reader: r.tid,
                        writer: tid,
                    });
                }
            }
            vs.write_epoch = Some(Epoch {
                tid,
                clock: vc.get(tid),
            });
            vs.write_vc = vc.clone();
        } else {
            if let Some(w) = vs.write_epoch {
                if w.tid != tid && vc.get(w.tid) < w.clock {
                    found.push(Finding::WriteRead {
                        var,
                        writer: w.tid,
                        reader: tid,
                    });
                }
            }
            // FastTrack read tracking: epoch fast path while the
            // variable is thread-local, promotion to a vector on the
            // first concurrent second reader.
            match (&mut vs.read_vc, vs.read_epoch) {
                (Some(rvc), _) => rvc.set(tid, vc.get(tid)),
                (rv @ None, Some(r)) if r.tid != tid => {
                    let mut rvc = VectorClock::new();
                    rvc.set(r.tid, r.clock);
                    rvc.set(tid, vc.get(tid));
                    *rv = Some(rvc);
                    vs.read_epoch = None;
                }
                _ => {
                    vs.read_epoch = Some(Epoch {
                        tid,
                        clock: vc.get(tid),
                    });
                }
            }
        }

        // Eraser lockset discipline (skipped for modeled atomics).
        if !vs.atomic {
            vs.threads.insert(tid);
            let ls = match vs.lockset.take() {
                None => held,
                Some(prev) => prev.intersection(&held).copied().collect(),
            };
            if ls.is_empty() && vs.threads.len() >= 2 {
                found.push(Finding::EmptyLockset { var, tid });
            }
            vs.lockset = Some(ls);
        }

        for f in found {
            inner.findings.insert(f);
        }
    }

    /// Deduplicated findings in deterministic (`Ord`) order.
    pub fn findings(&self) -> Vec<Finding> {
        self.inner.lock().findings.iter().cloned().collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> RaceStats {
        let inner = self.inner.lock();
        RaceStats {
            threads: inner.threads.len(),
            locks: inner.locks.len(),
            vars: inner.vars.len(),
            acquires: inner.acquires,
            accesses: inner.accesses,
            findings: inner.findings.len(),
        }
    }

    /// Deterministic multi-line report: a summary line plus one line per
    /// finding.
    pub fn summary(&self) -> String {
        let s = self.stats();
        let mut out = format!(
            "race detector: {} findings ({} threads, {} locks, {} vars, {} acquisitions, {} accesses)",
            s.findings, s.threads, s.locks, s.vars, s.acquires, s.accesses
        );
        for f in self.findings() {
            out.push_str("\n  ");
            out.push_str(&f.to_string());
        }
        out
    }
}

static GLOBAL: OnceLock<Arc<RaceDetector>> = OnceLock::new();

/// Installs (or returns) the process-global detector the annotation
/// functions feed. Idempotent.
pub fn install() -> Arc<RaceDetector> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(RaceDetector::new())))
}

/// The installed global detector, if any.
pub fn global() -> Option<&'static Arc<RaceDetector>> {
    GLOBAL.get()
}

/// Whether a global detector is installed (annotations are no-ops
/// otherwise).
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some()
}

/// Declares a canonical lock order on the global detector (no-op when
/// disabled). See [`RaceDetector::declare_order`].
pub fn declare_order(domain: &'static str, names: &[&'static str]) {
    if let Some(d) = GLOBAL.get() {
        d.declare_order(domain, names);
    }
}

/// Annotates a lock acquisition by the current virtual thread.
#[inline]
pub fn acquire(ctx: &dyn SimCtx, lock: LockKey) {
    if let Some(d) = GLOBAL.get() {
        d.on_acquire(ctx.thread_id(), lock);
    }
}

/// Annotates a lock release by the current virtual thread.
#[inline]
pub fn release(ctx: &dyn SimCtx, lock: LockKey) {
    if let Some(d) = GLOBAL.get() {
        d.on_release(ctx.thread_id(), lock);
    }
}

/// Annotates a plain shared read.
#[inline]
pub fn read(ctx: &dyn SimCtx, var: VarKey) {
    if let Some(d) = GLOBAL.get() {
        d.on_read(ctx.thread_id(), var);
    }
}

/// Annotates a plain shared write.
#[inline]
pub fn write(ctx: &dyn SimCtx, var: VarKey) {
    if let Some(d) = GLOBAL.get() {
        d.on_write(ctx.thread_id(), var);
    }
}

/// Annotates an Acquire-ordered atomic read (lock-free structures).
#[inline]
pub fn read_acquire(ctx: &dyn SimCtx, var: VarKey) {
    if let Some(d) = GLOBAL.get() {
        d.on_read_acquire(ctx.thread_id(), var);
    }
}

/// Annotates a Release-ordered atomic write (lock-free structures).
#[inline]
pub fn write_release(ctx: &dyn SimCtx, var: VarKey) {
    if let Some(d) = GLOBAL.get() {
        d.on_write_release(ctx.thread_id(), var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: VarKey = ("test.var", 0);
    const L: LockKey = ("test.lock", 0);

    #[test]
    fn vector_clock_join_and_dominates() {
        let mut a = VectorClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(1, 5);
        b.set(2, 4);
        assert!(!a.dominates(&b));
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 4);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn read_epoch_fast_path_then_promotion() {
        let d = RaceDetector::new();
        d.on_write(0, V);
        d.on_read(0, V); // Same-thread re-read: stays an epoch.
        {
            let inner = d.inner.lock();
            let vs = &inner.vars[&V];
            assert!(vs.read_vc.is_none(), "fast path keeps an epoch");
            assert_eq!(vs.read_epoch.map(|e| e.tid), Some(0));
        }
        // A second reader: race with the write AND promotion to a vector.
        d.on_read(1, V);
        {
            let inner = d.inner.lock();
            let vs = &inner.vars[&V];
            assert!(vs.read_vc.is_some(), "shared read promotes to vector");
            assert!(vs.read_epoch.is_none());
        }
        assert!(d.findings().iter().any(|f| matches!(
            f,
            Finding::WriteRead {
                writer: 0,
                reader: 1,
                ..
            }
        )));
    }

    #[test]
    fn unordered_writes_race() {
        let d = RaceDetector::new();
        d.on_write(0, V);
        d.on_write(1, V);
        assert!(d.findings().iter().any(|f| matches!(
            f,
            Finding::WriteWrite {
                first: 0,
                second: 1,
                ..
            }
        )));
        // Eraser agrees: two threads, no common lock.
        assert!(d
            .findings()
            .iter()
            .any(|f| matches!(f, Finding::EmptyLockset { .. })));
    }

    #[test]
    fn lock_protected_writes_do_not_race() {
        let d = RaceDetector::new();
        for tid in 0..3 {
            d.on_acquire(tid, L);
            d.on_write(tid, V);
            d.on_read(tid, V);
            d.on_release(tid, L);
        }
        assert_eq!(d.findings(), vec![], "release/acquire orders the writes");
        assert_eq!(d.stats().acquires, 3);
    }

    #[test]
    fn release_acquire_atomics_do_not_race() {
        let d = RaceDetector::new();
        d.on_write_release(0, V); // Publication...
        d.on_read_acquire(1, V); // ...observed with Acquire: ordered.
        assert_eq!(d.findings(), vec![]);
    }

    #[test]
    fn declared_rank_inversion_is_flagged() {
        let d = RaceDetector::new();
        d.declare_order("dom", &["a", "b"]);
        d.on_acquire(0, ("b", 0));
        d.on_acquire(0, ("a", 0)); // b held while taking a: inverted.
        assert!(d.findings().iter().any(|f| matches!(
            f,
            Finding::LockOrderInversion {
                held: "b",
                acquired: "a",
                ..
            }
        )));
    }

    #[test]
    fn three_lock_cycle_is_detected() {
        let (a, b, c) = (("la", 0), ("lb", 0), ("lc", 0));
        let d = RaceDetector::new();
        // t0: a -> b, t1: b -> c (no cycle yet), t2: c -> a closes it.
        d.on_acquire(0, a);
        d.on_acquire(0, b);
        d.on_release(0, b);
        d.on_release(0, a);
        d.on_acquire(1, b);
        d.on_acquire(1, c);
        d.on_release(1, c);
        d.on_release(1, b);
        assert!(d.findings().is_empty());
        d.on_acquire(2, c);
        d.on_acquire(2, a);
        let cycles: Vec<_> = d
            .findings()
            .into_iter()
            .filter_map(|f| match f {
                Finding::LockCycle { path } => Some(path),
                _ => None,
            })
            .collect();
        assert_eq!(cycles.len(), 1);
        let path = &cycles[0];
        assert_eq!(path.first(), path.last(), "path closes on itself");
        assert!(path.len() >= 4, "three locks + closing node: {path:?}");
    }

    #[test]
    fn per_instance_locks_share_a_name_without_cycles() {
        // Per-core lock instances: sequential acquire/release of
        // ("tlb", i) must not build self-edges.
        let d = RaceDetector::new();
        for i in 0..4 {
            d.on_acquire(0, ("tlb", i));
            d.on_write(0, ("tlb.state", i));
            d.on_release(0, ("tlb", i));
        }
        assert_eq!(d.findings(), vec![]);
    }
}
