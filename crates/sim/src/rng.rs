//! Deterministic pseudo-random number generation for experiments.
//!
//! Every experiment takes an explicit seed so runs are exactly
//! reproducible. The generator is xoshiro256**, seeded through SplitMix64,
//! which is the standard, statistically solid non-cryptographic choice.

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng64 { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a non-zero bound");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry only when `low` falls in the biased
            // remainder band.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Returns a uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fills a byte slice with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Derives an independent child generator (for per-thread streams).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

/// A Zipfian distribution over `[0, n)` with parameter `theta`, using the
/// Gray et al. rejection-free method popularized by YCSB.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// YCSB's default skew parameter.
    pub const YCSB_THETA: f64 = 0.99;

    /// Creates a Zipfian distribution over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0, "Zipfian needs a non-empty domain");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; domains in this workspace are at most a few
        // hundred million, and the constructor runs once per experiment.
        // For large n, sample-based approximation keeps setup fast.
        if n <= 10_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            // Integral approximation with exact head.
            let head: f64 = (1..=10_000u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
            let a = 10_000f64;
            let b = n as f64;
            let tail = (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
            head + tail
        }
    }

    /// Draws the next sample in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let u = rng.f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// A scrambled Zipfian: Zipfian ranks hashed over the key space so hot keys
/// are spread uniformly (the YCSB default request distribution).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
    n: u64,
}

impl ScrambledZipfian {
    /// Creates a scrambled Zipfian over `[0, n)`.
    pub fn new(n: u64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(n, Zipfian::YCSB_THETA),
            n,
        }
    }

    /// Draws the next sample in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng64) -> u64 {
        let rank = self.inner.sample(rng);
        fnv1a_64(rank) % self.n
    }
}

/// FNV-1a hash of a u64, used to scramble Zipfian ranks.
#[inline]
pub fn fnv1a_64(x: u64) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng64::new(9);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Rng64::new(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = Rng64::new(123);
        let mut head = 0usize;
        let total = 20_000;
        for _ in 0..total {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With theta=0.99 the top 1% of items draws a large share of
        // requests -- far above the 1% a uniform distribution would give.
        assert!(head as f64 / total as f64 > 0.15, "head share {head}");
    }

    #[test]
    fn zipfian_samples_in_domain() {
        let z = Zipfian::new(50, 0.5);
        let mut rng = Rng64::new(5);
        for _ in 0..5000 {
            assert!(z.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1000);
        let mut rng = Rng64::new(11);
        let mut counts = vec![0u32; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // The hottest key should no longer be key 0 specifically, but some
        // key should still be disproportionately hot.
        let max = *counts.iter().max().unwrap();
        assert!(max > 1000, "max count {max}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng64::new(77);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn large_domain_zipfian_constructs() {
        // Exercises the integral-approximation path of zeta().
        let z = Zipfian::new(50_000_000, 0.99);
        let mut rng = Rng64::new(1);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 50_000_000);
        }
    }
}
