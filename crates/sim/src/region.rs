//! A byte-addressable memory region abstraction.
//!
//! Applications that extend their heap over storage (the paper's Ligra
//! use case) or build mmio-native data structures (Kreon) program against
//! this trait; implementations back it with plain DRAM, Linux `mmap`,
//! kmmap, or Aquila mmio — which is exactly the comparison the paper's
//! Figures 6 and 9 make.

use crate::engine::SimCtx;

/// A contiguous byte region with explicit-context access.
pub trait MemRegion: Send + Sync {
    /// Region length in bytes.
    fn len(&self) -> u64;

    /// Whether the region is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    fn read(&self, ctx: &mut dyn SimCtx, off: u64, buf: &mut [u8]);

    /// Writes `buf` at `off`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    fn write(&self, ctx: &mut dyn SimCtx, off: u64, buf: &[u8]);

    /// Flushes dirty pages covering `[off, off + len)` to the backing
    /// store (no-op for plain DRAM).
    fn sync(&self, ctx: &mut dyn SimCtx, off: u64, len: u64);

    /// Reads a little-endian `u64` at `off`.
    fn read_u64(&self, ctx: &mut dyn SimCtx, off: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(ctx, off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `off`.
    fn write_u64(&self, ctx: &mut dyn SimCtx, off: u64, v: u64) {
        self.write(ctx, off, &v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `off`.
    fn read_u32(&self, ctx: &mut dyn SimCtx, off: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(ctx, off, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `off`.
    fn write_u32(&self, ctx: &mut dyn SimCtx, off: u64, v: u32) {
        self.write(ctx, off, &v.to_le_bytes());
    }
}

/// A plain DRAM region (the in-memory baseline: `malloc`-class cost,
/// no I/O ever).
pub struct DramRegion {
    data: aquila_sync::RwLock<Vec<u8>>,
}

impl DramRegion {
    /// Allocates a zeroed DRAM region of `len` bytes.
    pub fn new(len: u64) -> DramRegion {
        DramRegion {
            data: aquila_sync::RwLock::new(vec![0u8; len as usize]),
        }
    }
}

impl MemRegion for DramRegion {
    fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn read(&self, _ctx: &mut dyn SimCtx, off: u64, buf: &mut [u8]) {
        let data = self.data.read();
        buf.copy_from_slice(&data[off as usize..off as usize + buf.len()]);
    }

    fn write(&self, _ctx: &mut dyn SimCtx, off: u64, buf: &[u8]) {
        let mut data = self.data.write();
        data[off as usize..off as usize + buf.len()].copy_from_slice(buf);
    }

    fn sync(&self, _ctx: &mut dyn SimCtx, _off: u64, _len: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FreeCtx;
    use crate::time::Cycles;

    #[test]
    fn dram_region_roundtrip() {
        let r = DramRegion::new(8192);
        let mut ctx = FreeCtx::new(1);
        r.write(&mut ctx, 100, b"plain dram");
        let mut back = [0u8; 10];
        r.read(&mut ctx, 100, &mut back);
        assert_eq!(&back, b"plain dram");
        assert_eq!(r.len(), 8192);
        assert!(!r.is_empty());
        r.sync(&mut ctx, 0, 8192);
        assert_eq!(ctx.now(), Cycles::ZERO, "DRAM costs nothing");
    }

    #[test]
    fn typed_helpers() {
        let r = DramRegion::new(64);
        let mut ctx = FreeCtx::new(1);
        r.write_u64(&mut ctx, 8, 0xDEAD_BEEF_1234_5678);
        assert_eq!(r.read_u64(&mut ctx, 8), 0xDEAD_BEEF_1234_5678);
        r.write_u32(&mut ctx, 0, 42);
        assert_eq!(r.read_u32(&mut ctx, 0), 42);
    }
}
