//! The calibrated cycle-cost model.
//!
//! Every hardware or kernel event that the simulation cannot execute for
//! real (traps, vmexits, device accesses, SIMD memory copies, TLB
//! operations) is charged from this table. The defaults come from the
//! Aquila paper (EuroSys '21) and the sources it cites; each field's doc
//! comment records the provenance so calibration stays auditable.

use crate::time::Cycles;

/// Charge categories used for execution-time breakdowns.
///
/// The figure binaries aggregate charged cycles per category to produce the
/// paper's breakdown plots (Figures 7 and 8) and the user/system/idle split
/// of Figure 6(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostCat {
    /// Application-level computation (e.g. key comparison, BFS logic).
    App,
    /// Protection-domain switch into and out of a fault/exception handler.
    Trap,
    /// Page-fault handler software path excluding I/O and cache management.
    FaultHandler,
    /// I/O page-cache management: lookups, insertions, LRU, dirty tracking.
    CacheMgmt,
    /// Page-frame allocation and eviction (freelist, victim selection).
    Eviction,
    /// Waiting for and transferring data to/from a storage device.
    DeviceIo,
    /// Memory copies between the DRAM cache and a byte-addressable device.
    Memcpy,
    /// TLB invalidations and shootdown IPIs.
    Tlb,
    /// System-call entry/exit and in-kernel syscall work.
    Syscall,
    /// Hypervisor transitions: vmexit/vmentry and vmcall round trips.
    Vmexit,
    /// Time spent spinning on or queueing for a contended lock.
    LockWait,
    /// CPU idle while blocked on synchronous device I/O.
    Idle,
    /// Everything else (setup, bookkeeping outside the measured path).
    Other,
}

impl CostCat {
    /// All categories, in display order.
    pub const ALL: [CostCat; 13] = [
        CostCat::App,
        CostCat::Trap,
        CostCat::FaultHandler,
        CostCat::CacheMgmt,
        CostCat::Eviction,
        CostCat::DeviceIo,
        CostCat::Memcpy,
        CostCat::Tlb,
        CostCat::Syscall,
        CostCat::Vmexit,
        CostCat::LockWait,
        CostCat::Idle,
        CostCat::Other,
    ];

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CostCat::App => "app",
            CostCat::Trap => "trap",
            CostCat::FaultHandler => "fault-handler",
            CostCat::CacheMgmt => "cache-mgmt",
            CostCat::Eviction => "eviction",
            CostCat::DeviceIo => "device-io",
            CostCat::Memcpy => "memcpy",
            CostCat::Tlb => "tlb",
            CostCat::Syscall => "syscall",
            CostCat::Vmexit => "vmexit",
            CostCat::LockWait => "lock-wait",
            CostCat::Idle => "idle",
            CostCat::Other => "other",
        }
    }

    /// Index of the category inside [`CostCat::ALL`].
    pub fn index(self) -> usize {
        match self {
            CostCat::App => 0,
            CostCat::Trap => 1,
            CostCat::FaultHandler => 2,
            CostCat::CacheMgmt => 3,
            CostCat::Eviction => 4,
            CostCat::DeviceIo => 5,
            CostCat::Memcpy => 6,
            CostCat::Tlb => 7,
            CostCat::Syscall => 8,
            CostCat::Vmexit => 9,
            CostCat::LockWait => 10,
            CostCat::Idle => 11,
            CostCat::Other => 12,
        }
    }
}

/// Calibrated per-event cycle costs.
///
/// Constructed via [`CostModel::paper`] (the defaults used by every
/// experiment) and optionally tweaked for ablations. All values are in
/// cycles at 2.4 GHz unless stated otherwise.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Ring-3 -> ring-0 trap plus `iret` return (protection-domain switch,
    /// excluding the handler body). Paper section 6.4 measures 1287 cycles
    /// (536 ns).
    pub trap_ring3: Cycles,
    /// Exception entry/exit when already in non-root ring 0 (Aquila's fault
    /// path). Paper section 6.4 / Figure 8(a): 552 cycles (230 ns), 2.33x
    /// cheaper than the ring-3 trap.
    pub trap_nonroot_ring0: Cycles,
    /// vmexit + vmentry round trip. Paper section 4.4 cites ~750 cycles
    /// (250 ns), from Dune.
    pub vmexit_roundtrip: Cycles,
    /// Explicit `vmcall` hypercall round trip (a deliberate vmexit plus
    /// hypervisor dispatch).
    pub vmcall: Cycles,
    /// Posted-interrupt IPI send without a vmexit (Shinjuku): 298 cycles.
    pub ipi_send_posted: Cycles,
    /// IPI send through an MSR write that takes a vmexit so the hypervisor
    /// can rate-limit interrupt floods (Aquila section 4.1): 2081 cycles.
    pub ipi_send_vmexit: Cycles,
    /// Receiving and dispatching an IPI on the target core (vmexit-less
    /// receive path).
    pub ipi_receive: Cycles,
    /// Local TLB invalidation of a single page (`invlpg`).
    pub tlb_invlpg: Cycles,
    /// Full local TLB flush (CR3 reload class cost).
    pub tlb_flush_local: Cycles,
    /// 4 KB memcpy without SIMD (kernel-style `memcpy`): ~2400 cycles
    /// (paper section 3.3).
    pub memcpy_4k_nosimd: Cycles,
    /// 4 KB memcpy with AVX2 streaming stores: ~900 cycles (section 3.3).
    pub memcpy_4k_avx2: Cycles,
    /// FPU (AVX) state save + restore around a SIMD copy in kernel/fault
    /// context: ~300 cycles (section 3.3, XSAVEOPT/FXRSTOR).
    pub fpu_save_restore: Cycles,
    /// System-call entry/exit (syscall/sysret plus kernel entry glue),
    /// excluding the in-kernel work of the specific call.
    pub syscall_entry_exit: Cycles,
    /// In-kernel software path of a buffered/direct `read`/`write` beyond
    /// entry/exit: VFS dispatch, block layer, request setup.
    pub kernel_io_submit: Cycles,
    /// Page-fault handler software body in the Linux kernel (VMA lookup
    /// on the rb-tree, page-cache radix lookup, rmap insertion, memcg
    /// accounting, PTE install), excluding the trap, locks, and device
    /// I/O. Calibrated between Figure 8(a) (Linux fault ~5380 cycles with
    /// ~2.6 K of pmem I/O) and Figure 10(a) (Linux mmio 1.81x slower than
    /// Aquila for in-memory minor faults).
    pub linux_fault_body: Cycles,
    /// Aquila page-fault handler software body (radix VMA walk, lock-free
    /// hash lookup, PTE install), excluding trap and I/O. Calibrated so the
    /// Figure 8(c) cache-hit total of 2179 cycles holds (2179 - 552 trap -
    /// lookup/map costs charged separately).
    pub aquila_fault_body: Cycles,
    /// One probe of the lock-free cached-page hash table.
    pub hash_lookup: Cycles,
    /// Insertion/removal in the lock-free cached-page hash table.
    pub hash_update: Cycles,
    /// Pop or push on a per-core freelist queue.
    pub freelist_op: Cycles,
    /// LRU bookkeeping per fault (approximate LRU list update).
    pub lru_update: Cycles,
    /// Insert/remove in a per-core dirty-page red-black tree.
    pub rbtree_op: Cycles,
    /// One step of a radix-tree walk (per level).
    pub radix_level: Cycles,
    /// Uncontended lock acquire+release (cache-hot).
    pub lock_uncontended: Cycles,
    /// Extra cost of a contended acquisition (cacheline transfer), added on
    /// top of queueing delay, which the resource model supplies.
    pub lock_contended_extra: Cycles,
    /// Per-get cost of user-space block-cache management on the lookup
    /// side: key hashing, shard locking, handle pinning/unpinning, LRU
    /// list maintenance, and block registration. Calibrated with
    /// `ucache_evict` so Figure 7's measured 32 K cycles/get of
    /// "user-space lookups and evictions" emerges at the ~75% miss ratio
    /// of the 4x-cache experiment.
    pub ucache_lookup: Cycles,
    /// Per-eviction cost in the user-space cache: victim selection, block
    /// deallocation, replacement copy-in, LRU surgery under the shard
    /// lock.
    pub ucache_evict: Cycles,
    /// Fixed per-request CPU cost of an NVMe submission/completion pair in
    /// a polled user-space driver (SPDK-style, no syscalls).
    pub nvme_submit_poll: Cycles,
    /// Fixed per-request CPU cost of an NVMe I/O through the host kernel
    /// (interrupt-driven block layer), excluding syscall entry/exit.
    pub nvme_submit_kernel: Cycles,
    /// In-kernel software path of a *direct I/O* `pread`/`pwrite` request
    /// issued from Aquila to the host OS (VFS + block layer + completion),
    /// excluding syscall entry/exit, the vmcall, and the device itself.
    /// Calibrated against Figure 8(c): HOST-pmem is 7.77x the DAX-pmem
    /// fault cost and HOST-NVMe 1.53x the SPDK-NVMe cost, and against
    /// Figure 7's ~13 K cycles of per-get syscall cost at the measured
    /// miss ratio.
    pub host_directio_sw: Cycles,
}

impl CostModel {
    /// The paper-calibrated default model.
    pub fn paper() -> CostModel {
        CostModel {
            trap_ring3: Cycles(1287),
            trap_nonroot_ring0: Cycles(552),
            vmexit_roundtrip: Cycles(750),
            vmcall: Cycles(1500),
            ipi_send_posted: Cycles(298),
            ipi_send_vmexit: Cycles(2081),
            ipi_receive: Cycles(300),
            tlb_invlpg: Cycles(120),
            tlb_flush_local: Cycles(500),
            memcpy_4k_nosimd: Cycles(2400),
            memcpy_4k_avx2: Cycles(900),
            fpu_save_restore: Cycles(300),
            syscall_entry_exit: Cycles(150),
            kernel_io_submit: Cycles(1800),
            linux_fault_body: Cycles(1900),
            aquila_fault_body: Cycles(1000),
            hash_lookup: Cycles(80),
            hash_update: Cycles(120),
            freelist_op: Cycles(60),
            lru_update: Cycles(90),
            rbtree_op: Cycles(180),
            radix_level: Cycles(25),
            lock_uncontended: Cycles(40),
            lock_contended_extra: Cycles(150),
            ucache_lookup: Cycles(10_500),
            ucache_evict: Cycles(33_000),
            nvme_submit_poll: Cycles(1200),
            nvme_submit_kernel: Cycles(3200),
            host_directio_sw: Cycles(17_500),
        }
    }

    /// Cost of copying `bytes` between DRAM and a byte-addressable device.
    ///
    /// When `simd` is set, the copy uses AVX2 streaming stores plus one FPU
    /// state save/restore (Aquila's optimization, section 3.3); otherwise
    /// the kernel-style scalar copy cost applies. Sub-4 KB copies are
    /// charged pro rata with a small fixed floor.
    pub fn memcpy(&self, bytes: u64, simd: bool) -> Cycles {
        let per_4k = if simd {
            self.memcpy_4k_avx2
        } else {
            self.memcpy_4k_nosimd
        };
        let whole = bytes / 4096;
        let rem = bytes % 4096;
        let mut c = per_4k * whole + Cycles(per_4k.get() * rem / 4096);
        // Fixed setup floor for tiny copies.
        c += Cycles(30);
        if simd {
            c += self.fpu_save_restore;
        }
        c
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_paper() {
        let m = CostModel::paper();
        assert_eq!(m.trap_ring3, Cycles(1287));
        assert_eq!(m.trap_nonroot_ring0, Cycles(552));
        assert_eq!(m.ipi_send_vmexit, Cycles(2081));
        assert_eq!(m.memcpy_4k_nosimd, Cycles(2400));
    }

    #[test]
    fn simd_memcpy_is_about_2x_faster_for_4k() {
        // Paper section 3.3: 1200 vs 2400 cycles for a 4 KB copy.
        let m = CostModel::paper();
        let simd = m.memcpy(4096, true);
        let scalar = m.memcpy(4096, false);
        assert!(simd.get() >= 1200 && simd.get() <= 1300, "{simd:?}");
        assert!(scalar.get() >= 2400 && scalar.get() <= 2500, "{scalar:?}");
        assert!(scalar.get() as f64 / simd.get() as f64 > 1.8);
    }

    #[test]
    fn memcpy_scales_with_size() {
        let m = CostModel::paper();
        let one = m.memcpy(4096, false);
        let four = m.memcpy(4 * 4096, false);
        assert!(four.get() > 3 * one.get());
        let half = m.memcpy(2048, false);
        assert!(half < one);
    }

    #[test]
    fn nonroot_trap_is_2_33x_cheaper() {
        // Paper: 552 vs 1287 cycles, i.e. 2.33x.
        let m = CostModel::paper();
        let ratio = m.trap_ring3.get() as f64 / m.trap_nonroot_ring0.get() as f64;
        assert!((ratio - 2.33).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn categories_are_consistent() {
        for (i, c) in CostCat::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }
}
