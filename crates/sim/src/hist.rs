//! Log-bucketed latency histograms.
//!
//! The paper reports average, p99, and p99.9 latencies; this module
//! provides an HdrHistogram-style structure: power-of-two magnitude groups
//! with a fixed number of linear sub-buckets each, giving a bounded
//! relative error (~1.5% with 64 sub-buckets) over the full `u64` range in
//! a few KB of memory.

use crate::time::Cycles;

/// Number of linear sub-buckets per power-of-two magnitude group.
const SUB_BUCKETS: usize = 64;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 6;
/// Number of magnitude groups needed to cover `u64`.
const GROUPS: usize = 64 - SUB_BITS as usize + 1;

/// A latency histogram over cycle counts.
#[derive(Clone)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist {
            counts: vec![0; GROUPS * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        // Group 0 covers [0, SUB_BUCKETS) with exact resolution. For larger
        // values in [2^m, 2^(m+1)) with m >= SUB_BITS, group m-SUB_BITS+1
        // splits the range into SUB_BUCKETS linear sub-buckets:
        // (value >> (m - SUB_BITS)) lands in [SUB_BUCKETS, 2*SUB_BUCKETS).
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let m = 63 - value.leading_zeros();
        let group = (m - SUB_BITS + 1) as usize;
        let sub = ((value >> (m - SUB_BITS)) - SUB_BUCKETS as u64) as usize;
        debug_assert!(sub < SUB_BUCKETS);
        group * SUB_BUCKETS + sub
    }

    #[inline]
    fn bucket_value(index: usize) -> u64 {
        // Lower bound of the bucket; relative error is at most 1/SUB_BUCKETS.
        let group = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if group == 0 {
            return sub;
        }
        (SUB_BUCKETS as u64 + sub) << (group - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: Cycles) {
        let value = v.get();
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded samples, in cycles. (Bucketing loses
    /// precision on quantiles, never on the sum — `aquila-prof` uses this
    /// to cross-check folded span totals against the histogram.)
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean of the samples, or zero when empty.
    pub fn mean(&self) -> Cycles {
        if self.total == 0 {
            return Cycles::ZERO;
        }
        Cycles((self.sum / self.total as u128) as u64)
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> Cycles {
        if self.total == 0 {
            Cycles::ZERO
        } else {
            Cycles(self.min)
        }
    }

    /// Largest recorded sample, or zero when empty.
    pub fn max(&self) -> Cycles {
        Cycles(self.max)
    }

    /// Returns the value at quantile `q` in `[0, 1]` (e.g. 0.999 for
    /// p99.9), or zero when empty.
    pub fn quantile(&self, q: f64) -> Cycles {
        if self.total == 0 {
            return Cycles::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Cycles(Self::bucket_value(i).min(self.max).max(self.min));
            }
        }
        Cycles(self.max)
    }

    /// Merges `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary line for reports: mean / p50 / p99 / p99.9 / max.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={} p50={} p99={} p99.9={} max={}",
            self.total,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
            self.max()
        )
    }
}

impl core::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LatencyHist {{ {} }}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Cycles::ZERO);
        assert_eq!(h.quantile(0.99), Cycles::ZERO);
        assert_eq!(h.min(), Cycles::ZERO);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHist::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(Cycles(v));
        }
        assert_eq!(h.min(), Cycles(0));
        assert_eq!(h.max(), Cycles(SUB_BUCKETS as u64 - 1));
        assert_eq!(h.quantile(0.0), Cycles(0));
    }

    #[test]
    fn mean_is_correct() {
        let mut h = LatencyHist::new();
        h.record(Cycles(100));
        h.record(Cycles(300));
        assert_eq!(h.mean(), Cycles(200));
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let mut h = LatencyHist::new();
        // A known distribution: values 1..=10_000.
        for v in 1..=10_000u64 {
            h.record(Cycles(v));
        }
        for (q, expect) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900), (0.999, 9_990)] {
            let got = h.quantile(q).get() as f64;
            let err = (got - expect as f64).abs() / expect as f64;
            assert!(err < 0.05, "q={q} got={got} expect={expect} err={err}");
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(Cycles(10));
        b.record(Cycles(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Cycles(10));
        assert_eq!(a.max(), Cycles(1_000_000));
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHist::new();
        h.record(Cycles(u64::MAX));
        h.record(Cycles(u64::MAX / 2));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).get() > 0);
    }

    #[test]
    fn quantile_monotonic() {
        let mut h = LatencyHist::new();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Cycles(x % 1_000_000));
        }
        let mut prev = 0;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0).get();
            assert!(q >= prev, "quantiles must be monotonic");
            prev = q;
        }
    }

    #[test]
    fn summary_mentions_percentiles() {
        let mut h = LatencyHist::new();
        h.record(Cycles(42));
        let s = h.summary();
        assert!(s.contains("p99.9"));
        assert!(s.contains("n=1"));
    }
}
